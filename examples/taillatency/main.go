// Taillatency: the paper's batching critique (Section I) made measurable.
//
// Batch-based reclamation amortizes well on average but "the occasional
// freeing of large batches causes long program interruptions and
// dramatically increases tail latency". This example runs the lazy list
// under 100% updates, records every operation's simulated latency, and
// prints the distribution for Conditional Access (no batches, frees one
// node inline) against epoch-based reclamation configured with a large
// batch (the tuning a throughput-chasing operator would pick).
package main

import (
	"fmt"
	"os"
	"sort"

	"condaccess/internal/ds/lazylist"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

const (
	threads      = 8
	keyRange     = 1000
	opsPerThread = 6000
	bigBatch     = 400 // rcu reclaim frequency chosen for throughput
)

func main() {
	fmt.Printf("lazy list, %d threads, 100%% updates, %d ops/thread\n\n", threads, opsPerThread)
	fmt.Printf("%-22s %10s %10s %10s %10s %12s\n", "scheme", "p50", "p99", "p99.9", "max", "cycles")
	runOne("ca (no batching)", "ca", 0)
	runOne(fmt.Sprintf("rcu (batch=%d)", bigBatch), "rcu", bigBatch)
	runOne("rcu (batch=30)", "rcu", 30)
	fmt.Println("\nCA frees one node per delete, inline, so no operation ever absorbs a")
	fmt.Println("reclamation batch: its p99 sits below both rcu configurations and it")
	fmt.Println("finishes the whole run in fewer cycles. rcu operations that trigger a")
	fmt.Println("scan pay for freeing hundreds of nodes at once — the paper's")
	fmt.Println("tail-latency argument. (CA's rare maximum is a retry storm under")
	fmt.Println("contention, not a reclamation stall.)")
}

func runOne(label, scheme string, batch int) {
	m := sim.New(sim.Config{Cores: threads, Seed: 11})
	var set interface {
		Insert(c *sim.Ctx, k uint64) bool
		Delete(c *sim.Ctx, k uint64) bool
	}
	if scheme == "ca" {
		set = lazylist.NewCA(m.Space)
	} else {
		r, err := smr.New(scheme, m.Space, threads, smr.Options{ReclaimEvery: batch})
		if err != nil {
			fmt.Fprintln(os.Stderr, "taillatency:", err)
			os.Exit(1)
		}
		set = lazylist.NewGuarded(m.Space, r)
	}
	// Prefill to 50%.
	m.Spawn(func(c *sim.Ctx) {
		rng := sim.NewRNG(99)
		for n := 0; n < keyRange/2; {
			if set.Insert(c, rng.Uint64n(keyRange)+1) {
				n++
			}
		}
	})
	m.Run()
	m.ResetClocks()

	lats := make([][]uint64, threads)
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			id := c.ThreadID()
			rng := c.Rand()
			for j := 0; j < opsPerThread; j++ {
				key := rng.Uint64n(keyRange) + 1
				start := c.Clock()
				if rng.Intn(2) == 0 {
					set.Insert(c, key)
				} else {
					set.Delete(c, key)
				}
				lats[id] = append(lats[id], c.Clock()-start)
			}
		})
	}
	m.Run()

	var all []uint64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) uint64 { return all[int(p*float64(len(all)-1))] }
	fmt.Printf("%-22s %10d %10d %10d %10d %12d\n",
		label, q(0.50), q(0.99), q(0.999), all[len(all)-1], m.MaxClock())
}
