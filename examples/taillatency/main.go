// Taillatency: the paper's batching critique (Section I) made measurable.
//
// Batch-based reclamation amortizes well on average but "the occasional
// freeing of large batches causes long program interruptions and
// dramatically increases tail latency". This example runs the lazy list
// under 100% updates through the harness's streaming tail-latency pipeline
// (internal/latency): every operation's simulated latency lands in a
// log-bucketed histogram — O(buckets) memory however long the run — tagged
// by what the latency was spent on: useful work, absorbing an SMR
// reclamation scan/free pass, or a conditional-access/validation retry.
// Conditional Access (no batches, frees one node inline) is compared
// against epoch-based reclamation at the paper's default batch and at the
// large batch a throughput-chasing operator would pick.
package main

import (
	"cmp"
	"fmt"
	"os"
	"slices"

	"condaccess/internal/bench"
	"condaccess/internal/smr"
)

const (
	threads      = 8
	keyRange     = 1000
	opsPerThread = 6000
	bigBatch     = 400 // rcu reclaim frequency chosen for throughput
)

func main() {
	fmt.Printf("lazy list, %d threads, 100%% updates, %d ops/thread\n\n", threads, opsPerThread)
	fmt.Printf("%-22s %8s %8s %8s %8s  %22s %18s\n",
		"scheme", "p50", "p99", "p99.9", "max", "reclaim-tagged ops", "pause p99/max")
	runOne("ca (no batching)", "ca", 0)
	runOne(fmt.Sprintf("rcu (batch=%d)", bigBatch), "rcu", bigBatch)
	runOne("rcu (batch=30)", "rcu", 30)
	fmt.Println("\nCA frees one node per delete, inline, so no operation ever absorbs a")
	fmt.Println("reclamation batch: its reclaim row is empty and its rare maximum is a")
	fmt.Println("retry storm under contention, which the attribution split shows")
	fmt.Println("directly. rcu operations that trigger a scan pay for freeing hundreds")
	fmt.Println("of nodes at once — the pause column is the distribution of those")
	fmt.Println("interruptions, the paper's tail-latency argument in one histogram.")
}

func runOne(label, scheme string, batch int) {
	res, err := bench.Run(bench.Workload{
		DS: "list", Scheme: scheme,
		Threads: threads, KeyRange: keyRange, UpdatePct: 100,
		OpsPerThread: opsPerThread, Seed: 11,
		SMR:        smr.Options{ReclaimEvery: batch},
		RecordTail: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "taillatency:", err)
		os.Exit(1)
	}
	t := res.Tail
	s := t.Total.Summary()
	fmt.Printf("%-22s %8d %8d %8d %8d  %15d (%4.1f%%) %11d/%d\n",
		label, s.P50, s.P99, s.P999, s.Max,
		t.Reclaim.Count(), 100*float64(t.Reclaim.Count())/float64(t.Total.Count()),
		t.Pause.Quantile(0.99), t.Pause.Max())

	// The histograms are plain data: any further slicing is a few lines.
	// E.g. the worst attribution class by p99.9, found with the slices
	// package instead of a hand-rolled sort:
	classes := []struct {
		name string
		p999 uint64
	}{
		{"useful", t.Useful.Quantile(0.999)},
		{"reclaim", t.Reclaim.Quantile(0.999)},
		{"retry", t.Retry.Quantile(0.999)},
	}
	worst := slices.MaxFunc(classes, func(a, b struct {
		name string
		p999 uint64
	}) int {
		return cmp.Compare(a.p999, b.p999)
	})
	fmt.Printf("%22s  worst class by p99.9: %s (%d cycles)\n", "", worst.name, worst.p999)
}
