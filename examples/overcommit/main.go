// Overcommit: the paper's data-center motivation (Section I) as a scenario.
//
// A virtual machine is billed for its peak resident memory. This example
// runs the same churn-heavy key-value workload — a 128-bucket hash table
// under 100% updates, the paper's Figure 2 configuration — under every
// reclamation scheme and reports the peak memory footprint next to the
// throughput, i.e. what the workload costs under memory overcommitment.
//
// Expected outcome: Conditional Access holds the peak at the live data-set
// size; the batching schemes hold hundreds of dead nodes; the leaky baseline
// grows linearly and would eventually OOM the VM.
package main

import (
	"fmt"
	"os"

	"condaccess/internal/bench"
)

func main() {
	fmt.Println("workload: hash table, 128 buckets, 1K keys, 16 threads, 100% updates")
	fmt.Println()
	fmt.Printf("%-6s %14s %12s %12s %s\n", "scheme", "ops/Mcyc", "peak nodes", "peak KiB", "verdict")
	var caPeak, rcuPeak uint64
	for _, scheme := range []string{"ca", "rcu", "qsbr", "ibr", "hp", "he", "none"} {
		res, err := bench.Run(bench.Workload{
			DS: "hash", Scheme: scheme, Buckets: 128,
			Threads: 16, KeyRange: 1000, UpdatePct: 100,
			OpsPerThread: 3000, Seed: 7,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "overcommit:", err)
			os.Exit(1)
		}
		peak := res.Mem.PeakLive
		verdict := "bounded"
		switch {
		case scheme == "ca":
			verdict = "= live set: ideal for overcommitment"
			caPeak = peak
		case scheme == "none":
			verdict = "unbounded growth: would OOM the VM"
		case scheme == "rcu":
			rcuPeak = peak
		}
		fmt.Printf("%-6s %14.1f %12d %12d %s\n",
			scheme, res.Throughput, peak, peak*64/1024, verdict)
	}
	fmt.Println()
	if rcuPeak > caPeak {
		fmt.Printf("Conditional Access trims the peak footprint by %.1f%% versus rcu\n",
			100*(1-float64(caPeak)/float64(rcuPeak)))
		fmt.Println("with comparable throughput — memory a host could hand to another VM.")
	}
}
