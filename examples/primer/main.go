// Primer: a guided tour of the four Conditional Access instructions —
// cread, cwrite, untagOne, untagAll — against a live cache simulation,
// following the paper's Section II semantics step by step. Run it to watch
// tagging, revocation, the untagged-cwrite rule, and ABA immunity happen.
package main

import (
	"fmt"

	"condaccess/internal/sim"
)

func main() {
	m := sim.New(sim.Config{Cores: 2, Seed: 1, Check: true})
	x := m.Space.AllocInfra()     // a shared location
	yCell := m.Space.AllocInfra() // passes y's address to thread 1
	flag := m.Space.AllocInfra()
	m.Space.Write(x, 100)

	step := func(n int, what string) { fmt.Printf("\n[%d] %s\n", n, what) }

	m.Spawn(func(c *sim.Ctx) { // thread 0: the reader
		step(1, "cread loads a value and tags its cache line")
		v, ok := c.CRead(x)
		fmt.Printf("    cread(x) = %d, ok=%v  (line now in tagSet)\n", v, ok)

		step(2, "cwrite succeeds while the tag is intact")
		ok = c.CWrite(x, v+1)
		fmt.Printf("    cwrite(x, %d) ok=%v\n", v+1, ok)

		step(3, "another core writes x: our tagged line is invalidated")
		c.Write(flag, 1)
		for c.Read(flag) != 2 {
			c.Work(10)
		}

		step(4, "the accessRevokedBit is set: conditional accesses now fail")
		_, ok = c.CRead(x)
		fmt.Printf("    cread(x) ok=%v  (failed: possible use-after-free)\n", ok)
		ok = c.CWrite(x, 0)
		fmt.Printf("    cwrite(x) ok=%v  (failed for the same reason)\n", ok)

		step(5, "untagAll clears the tagSet and the revoked bit: retry works")
		c.UntagAll()
		v, ok = c.CRead(x)
		fmt.Printf("    cread(x) = %d, ok=%v\n", v, ok)

		step(6, "cwrite on a never-tagged line fails by design")
		y := c.AllocNode()
		ok = c.CWrite(y, 5)
		fmt.Printf("    cwrite(untagged y) ok=%v  (paper: tag-first avoids TOCTOU fills)\n", ok)

		step(7, "untagOne stops tracking one line but keeps the rest")
		c.UntagAll()
		c.CRead(x)
		c.CRead(y)
		c.UntagOne(y)
		c.Write(yCell, y)
		c.Write(flag, 3) // ask thread 1 to write y
		for c.Read(flag) != 4 {
			c.Work(10)
		}
		_, ok = c.CRead(x)
		fmt.Printf("    after remote write to untagged y: cread(x) ok=%v (unaffected)\n", ok)

		step(8, "why CAS is ABA-vulnerable and cwrite is not")
		fmt.Println("    a CAS compares values: top==A succeeds even if A was freed,")
		fmt.Println("    recycled, and re-pushed. cwrite instead asks the coherence")
		fmt.Println("    protocol 'was my tagged line ever invalidated?' — recycling a")
		fmt.Println("    node requires writing it, so the answer is always yes.")
		c.Write(flag, 5)
	})

	m.Spawn(func(c *sim.Ctx) { // thread 1: the interfering writer
		for c.Read(flag) != 1 {
			c.Work(10)
		}
		c.Write(x, 999) // invalidates thread 0's tagged copy
		c.Write(flag, 2)
		for c.Read(flag) != 3 {
			c.Work(10)
		}
		// Write the line thread 0 untagged: must NOT revoke thread 0.
		c.Write(c.Read(yCell), 7)
		c.Write(flag, 4)
		for c.Read(flag) != 5 {
			c.Work(10)
		}
	})
	m.Run()

	st := m.Ext.Stats()
	fmt.Printf("\nsummary: %d creads (%d failed), %d cwrites (%d failed), %d revocations\n",
		st.CReads, st.CReadFails, st.CWrites, st.CWriteFails, st.Revocations)
}
