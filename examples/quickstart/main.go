// Quickstart: build a simulated multicore, run a Conditional Access stack
// and lazy list from several threads, and confirm immediate reclamation —
// the library's 60-second tour.
package main

import (
	"fmt"

	"condaccess/internal/ds/lazylist"
	"condaccess/internal/ds/stack"
	"condaccess/internal/sim"
)

func main() {
	// A machine with 4 simulated cores. Check mode turns the paper's safety
	// theorems into runtime assertions: any use-after-free or ABA violation
	// panics.
	m := sim.New(sim.Config{Cores: 4, Seed: 42, Check: true})

	// Data structures live in the simulated heap, not the Go heap.
	st := stack.NewCA(m.Space)
	set := lazylist.NewCA(m.Space)

	// Spawn one simulated thread per core. Threads only touch shared state
	// through their Ctx, which charges simulated cycles for every access.
	for i := 0; i < 4; i++ {
		m.Spawn(func(c *sim.Ctx) {
			id := uint64(c.ThreadID())
			for j := uint64(0); j < 1000; j++ {
				key := id*1000 + j + 1
				st.Push(c, key)
				set.Insert(c, key)
				if j%2 == 0 {
					st.Pop(c)          // pop frees the node immediately
					set.Delete(c, key) // so does delete
				}
			}
		})
	}
	m.Run()

	heap := m.Space.Stats()
	fmt.Println(m)
	fmt.Printf("simulated time: %d cycles across 4 cores\n", m.MaxClock())
	fmt.Printf("nodes allocated: %d, freed: %d, live: %d\n",
		heap.NodeAllocs, heap.NodeFrees, heap.NodeLive())
	fmt.Printf("set size: %d, stack depth: %d\n",
		lazylist.Len(m.Space, set.Head), heap.NodeLive()-uint64(lazylist.Len(m.Space, set.Head)))

	ca := m.Ext.Stats()
	fmt.Printf("creads: %d (%d failed), cwrites: %d (%d failed), revocations: %d\n",
		ca.CReads, ca.CReadFails, ca.CWrites, ca.CWriteFails, ca.Revocations)
	fmt.Println("every deleted node was freed the instant it was unlinked —")
	fmt.Println("no epochs, no hazard pointers, no batches, and the Check-mode")
	fmt.Println("assertions prove no thread ever touched freed memory.")
}
