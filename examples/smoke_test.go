// Package examples_test smoke-tests every example program so examples can
// no longer rot silently: each subdirectory with a main.go is built and run
// (discovered dynamically — a new example is covered the moment it exists),
// must exit 0, and must print something. The taillatency example
// additionally must show the attribution split this repo's tail-latency
// subsystem exists for.
package examples_test

import (
	"context"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// examplePrograms lists the example subdirectories that hold a main.go.
func examplePrograms(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(e.Name() + "/main.go"); err == nil {
			names = append(names, e.Name())
		}
	}
	if len(names) < 5 {
		t.Fatalf("found only %d example programs (%v) — discovery is broken", len(names), names)
	}
	return names
}

func TestExamplesBuildAndRun(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	for _, name := range examplePrograms(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, goBin, "run", "./examples/"+name)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatalf("example %s printed nothing", name)
			}
			if name == "taillatency" {
				for _, want := range []string{"p99", "reclaim", "pause"} {
					if !strings.Contains(string(out), want) {
						t.Errorf("taillatency output lacks %q — the attribution split went missing:\n%s", want, out)
					}
				}
			}
		})
	}
}
