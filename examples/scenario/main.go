// Scenario: the paper's batching critique under *non-stationary* load.
//
// The paper's evaluation (and examples/taillatency) runs one stationary op
// mix from prefill to exit. Real services don't: load arrives in phases —
// a read-mostly steady state, a write burst, a cooldown. This walkthrough
// builds that scenario declaratively with internal/scenario, runs it under
// Conditional Access and under epoch-based reclamation on the same seeds,
// and prints the per-phase breakdown the stationary harness cannot see:
//
//   - During the write burst, rcu's allocated-not-freed footprint balloons
//     to ~2.5x the live set (retired nodes wait for epoch scans) while CA
//     frees inline and stays flat.
//   - The burst's p99/p99.9 under rcu absorb batch frees. (CA's absolute
//     maximum is a retry storm under contention, not a reclamation stall —
//     the same caveat examples/taillatency prints.)
//   - The cooldown shows the hangover: rcu re-enters the read-mostly phase
//     still dragging the burst's garbage, and its throughput stays pinned
//     near the burst level while CA's rebounds.
//
// Presets for this and other shapes ship in internal/scenario (run
// `go run ./cmd/cascenario -list`); this example builds its scenario from
// parts to show the API.
package main

import (
	"fmt"
	"os"

	"condaccess/internal/bench"
	"condaccess/internal/scenario"
	"condaccess/internal/smr"
)

// bigBatch is rcu's reclaim frequency tuned for throughput, as in
// examples/taillatency — the tuning whose pathologies bursts expose.
const bigBatch = 400

func main() {
	sc := scenario.Scenario{
		Name: "burst-walkthrough",
		Phases: []scenario.Phase{
			// Steady state: 90% reads, default think time.
			{Name: "read-mostly", Ops: 1200, Weights: scenario.Weights{Insert: 5, Delete: 5, Read: 90}},
			// The burst: write-heavy, and *bursty in time* too — every 50
			// ops, 25 arrive nearly back-to-back (2-cycle think time).
			{Name: "write-burst", Ops: 600, Weights: scenario.Weights{Insert: 45, Delete: 45, Read: 10},
				Profile: scenario.Profile{Kind: scenario.ProfileBurst, Period: 50, Len: 25, Work: 40, BurstWork: 2}},
			// Back to reads: who is still paying for the burst?
			{Name: "cooldown", Ops: 600, Weights: scenario.Weights{Insert: 5, Delete: 5, Read: 90}},
		},
	}

	fmt.Println("lazy list, 8 threads, read-mostly -> write-burst -> cooldown")
	fmt.Println()
	fmt.Printf("%-8s %-12s %10s %10s %8s %8s %8s\n",
		"scheme", "phase", "ops/Mcyc", "live", "p99", "p99.9", "max")
	for _, scheme := range []string{"ca", "rcu"} {
		res, err := bench.RunScenario(bench.ScenarioWorkload{
			DS: "list", Scheme: scheme,
			Threads: 8, KeyRange: 1000, Seed: 11,
			SMR:           smr.Options{ReclaimEvery: bigBatch},
			RecordLatency: true,
			Scenario:      sc,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenario:", err)
			os.Exit(1)
		}
		for _, seg := range res.Phases {
			fmt.Printf("%-8s %-12s %10.1f %10d %8d %8d %8d\n",
				scheme, seg.Name, seg.Throughput, seg.LiveNodes,
				seg.Latency.P99, seg.Latency.P999, seg.Latency.Max)
		}
		fmt.Println()
	}
	fmt.Println("CA's live count stays at the prefill level through the burst; rcu leaves")
	fmt.Println("it dragging retired-but-unfreed nodes into the cooldown, where its")
	fmt.Println("throughput stays depressed while CA's rebounds, and its burst-phase")
	fmt.Println("p99/p99.9 absorb whole reclamation batches. That is the paper's Section I")
	fmt.Println("critique, now visible per phase instead of smeared over a stationary run.")
}
