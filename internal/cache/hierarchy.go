package cache

import "fmt"

const (
	lineBytes = 64
	lineShift = 6 // log2(lineBytes)

	// invalidLine marks an empty way in the line-tag slabs. Line addresses
	// are always 64-byte aligned, so no lookup can ever match it — find needs
	// only a single compare per way, no validity check.
	invalidLine = ^uint64(0)
)

// State is an MSI line state as seen by a private L1.
type State uint8

// MSI states. A line absent from the cache is Invalid.
const (
	Invalid State = iota
	Shared
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

// Listener receives coherence events. The Conditional Access extension
// (package core) registers one to learn when a core loses its copy of a
// tagged line. LineInvalidated fires whenever core's L1 copy of line is
// removed for any reason: a remote write invalidating it, a local capacity or
// conflict eviction, or an inclusive-L2 back-invalidation. It does not fire
// on an M->S downgrade, matching the paper: only invalidations revoke access.
type Listener interface {
	LineInvalidated(core int, line uint64)
}

// Stats aggregates hierarchy activity for one simulation.
type Stats struct {
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	L2Misses      uint64
	Invalidations uint64 // remote L1 copies invalidated by writes
	RemoteFwds    uint64 // misses served by a remote Modified copy
	Upgrades      uint64 // S->M upgrades with no other sharers
	L1Evictions   uint64 // local conflict/capacity evictions
	BackInvals    uint64 // L1 copies dropped by inclusive-L2 evictions
}

// l1cache stores each per-way field as one contiguous slab — set s occupies
// indices [s*assoc, (s+1)*assoc) — indexed by shifting and masking the
// address. The slabs are struct-of-arrays: the tag probe on every access
// scans only the lines slab (8 ways = exactly one host cache line at the
// default associativity), touching lru/state solely on the way it hits.
type l1cache struct {
	lines []uint64 // line base addresses; invalidLine iff the way is empty
	lru   []uint64
	state []State
	// l2way caches each resident line's way index in the shared L2. The L2
	// is inclusive and never relocates a resident line (a fill only claims an
	// empty or evicted way, and an L2 eviction back-invalidates every L1
	// copy), so the index recorded at install time stays valid for the
	// line's whole L1 residency — evictions and upgrades reach the directory
	// without a second L2 set scan.
	l2way []int32
	// full counts the valid ways per set; installs consult it to skip the
	// empty-way scan once a set is full (the steady state).
	full    []uint16
	setMask uint64
	assoc   uint64
	// wayOf is the residency index: wayOf[li] is 1 + the slab index of the
	// way holding line li<<lineShift, or 0 when the line is not resident.
	// Simulated line numbers are small and dense (the heap carves lines
	// upward from zero), so a flat table turns the per-access tag probe —
	// the hottest operation in the whole simulator — from an
	// associativity-wide scan into one load. install/drop keep it exactly
	// in sync with the lines slab; find's result is identical to a scan.
	wayOf []int32
}

// l2cache is laid out exactly like l1cache, with the directory state
// (sharers, owner, dirty) in further parallel slabs. A way is valid iff its
// line tag is not invalidLine.
type l2cache struct {
	lines   []uint64
	lru     []uint64
	sharers []uint64 // bitmask of cores with an L1 copy
	owner   []int8   // core holding Modified, or -1
	dirty   []bool
	full    []uint16 // valid ways per set, as in l1cache
	setMask uint64
	assoc   uint64
	wayOf   []int32 // residency index, as in l1cache
}

// Hierarchy is the full simulated memory system: one private L1 per
// physical core (shared by its hyperthreads when ThreadsPerCore > 1) over
// one shared inclusive L2 with a directory. It is not safe for concurrent
// use; the simulator serializes accesses.
//
// All public entry points take a hardware-thread id; the hierarchy maps it
// to its physical L1. Listener events are delivered per hardware thread:
// losing an L1 line notifies every hyperthread of that core, and a write by
// one hyperthread notifies its siblings (whose tags on the line must be
// revoked even though the line stays resident — paper Section III).
type Hierarchy struct {
	p      Params
	smt    int     // hardware threads per L1
	coreOf []int32 // hardware thread -> physical core; a divide here would
	// sit on every simulated access
	l1       []l1cache
	l2       l2cache
	listener Listener
	tick     uint64
	stats    Stats
}

// New builds a hierarchy for p. listener may be nil. Geometry is validated
// (including power-of-two set counts) before anything is allocated.
func New(p Params, listener Listener) *Hierarchy {
	p.Validate()
	h := &Hierarchy{p: p, smt: p.SMTWidth(), listener: listener}
	h.coreOf = make([]int32, p.Cores)
	for t := range h.coreOf {
		h.coreOf[t] = int32(t / h.smt)
	}
	l1Ways := (p.L1Bytes / (p.L1Assoc * lineBytes)) * p.L1Assoc
	h.l1 = make([]l1cache, p.L1Count())
	for c := range h.l1 {
		h.l1[c] = l1cache{
			lines:   make([]uint64, l1Ways),
			lru:     make([]uint64, l1Ways),
			state:   make([]State, l1Ways),
			l2way:   make([]int32, l1Ways),
			full:    make([]uint16, l1Ways/p.L1Assoc),
			setMask: uint64(p.L1Bytes/(p.L1Assoc*lineBytes) - 1),
			assoc:   uint64(p.L1Assoc),
		}
		h.l1[c].reset()
	}
	l2Ways := (p.L2Bytes / (p.L2Assoc * lineBytes)) * p.L2Assoc
	h.l2 = l2cache{
		lines:   make([]uint64, l2Ways),
		lru:     make([]uint64, l2Ways),
		sharers: make([]uint64, l2Ways),
		owner:   make([]int8, l2Ways),
		dirty:   make([]bool, l2Ways),
		full:    make([]uint16, l2Ways/p.L2Assoc),
		setMask: uint64(p.L2Bytes/(p.L2Assoc*lineBytes) - 1),
		assoc:   uint64(p.L2Assoc),
	}
	h.l2.reset()
	return h
}

func (c *l1cache) reset() {
	for i := range c.lines {
		c.lines[i] = invalidLine
	}
	clear(c.lru)
	clear(c.state)
	clear(c.full)
	clear(c.wayOf)
}

func (c *l2cache) reset() {
	for i := range c.lines {
		c.lines[i] = invalidLine
	}
	clear(c.lru)
	clear(c.sharers)
	clear(c.owner)
	clear(c.dirty)
	clear(c.full)
	clear(c.wayOf)
}

// Reset empties every cache and zeroes the statistics and the replacement
// tick, returning the hierarchy to its post-New state without reallocating
// the slabs.
func (h *Hierarchy) Reset() {
	for c := range h.l1 {
		h.l1[c].reset()
	}
	h.l2.reset()
	h.tick = 0
	h.stats = Stats{}
}

// Params returns the configuration the hierarchy was built with.
func (h *Hierarchy) Params() Params { return h.p }

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

// base returns the slab index of the first way of line's set.
func (c *l1cache) base(line uint64) uint64 {
	return ((line >> lineShift) & c.setMask) * c.assoc
}

// min8 returns the index of the smallest of a's eight values, first index
// winning ties (LRU ticks are unique in practice, but the tie-break matches
// the sequential scan regardless). The tournament shape gives the CPU four
// independent comparisons instead of a serial dependency chain.
func min8(a *[8]uint64) int {
	i01, v01 := 0, a[0]
	if a[1] < v01 {
		i01, v01 = 1, a[1]
	}
	i23, v23 := 2, a[2]
	if a[3] < v23 {
		i23, v23 = 3, a[3]
	}
	i45, v45 := 4, a[4]
	if a[5] < v45 {
		i45, v45 = 5, a[5]
	}
	i67, v67 := 6, a[6]
	if a[7] < v67 {
		i67, v67 = 7, a[7]
	}
	if v23 < v01 {
		i01, v01 = i23, v23
	}
	if v67 < v45 {
		i45, v45 = i67, v67
	}
	if v45 < v01 {
		i01 = i45
	}
	return i01
}

// minLRU returns the offset within lru (length assoc) of the minimum value,
// specialized for the common associativities.
func minLRU(lru []uint64) int {
	switch len(lru) {
	case 8:
		return min8((*[8]uint64)(lru))
	case 16:
		lo := min8((*[8]uint64)(lru))
		hi := 8 + min8((*[8]uint64)(lru[8:16]))
		if lru[hi] < lru[lo] {
			return hi
		}
		return lo
	}
	minI, minV := 0, lru[0]
	for i, v := range lru[1:] {
		if v < minV {
			minI, minV = i+1, v
		}
	}
	return minI
}

// find returns the slab index of line's way, or -1 when not resident: one
// load of the residency index, equivalent by construction to scanning the
// set's tags.
func (c *l1cache) find(line uint64) int {
	if li := line >> lineShift; li < uint64(len(c.wayOf)) {
		return int(c.wayOf[li]) - 1
	}
	return -1
}

func (c *l2cache) base(line uint64) uint64 {
	return ((line >> lineShift) & c.setMask) * c.assoc
}

func (c *l2cache) find(line uint64) int {
	if li := line >> lineShift; li < uint64(len(c.wayOf)) {
		return int(c.wayOf[li]) - 1
	}
	return -1
}

// growWays extends a residency index to cover line index li. The simulated
// heap only grows, so this amortizes to nothing after warm-up.
func growWays(w []int32, li uint64) []int32 {
	n := uint64(64)
	for n <= li {
		n *= 2
	}
	nw := make([]int32, n)
	copy(nw, w)
	return nw
}

// HasLine reports the L1 state of line for hardware thread tid without
// touching LRU or charging latency (a diagnostic, used by tests).
func (h *Hierarchy) HasLine(tid int, line uint64) State {
	l1 := &h.l1[h.coreOf[tid]]
	if w := l1.find(line); w >= 0 {
		return l1.state[w]
	}
	return Invalid
}

// notify delivers a LineInvalidated event to every hardware thread of
// physical core l1i.
func (h *Hierarchy) notify(l1i int, line uint64) {
	if h.listener == nil {
		return
	}
	for k := 0; k < h.smt; k++ {
		h.listener.LineInvalidated(l1i*h.smt+k, line)
	}
}

// notifySiblings delivers a LineInvalidated event to tid's hyperthread
// siblings (not tid itself): a local write leaves the line resident, but any
// sibling tag on it must be revoked.
func (h *Hierarchy) notifySiblings(tid int, line uint64) {
	if h.listener == nil || h.smt == 1 {
		return
	}
	base := int(h.coreOf[tid]) * h.smt
	for k := 0; k < h.smt; k++ {
		if base+k != tid {
			h.listener.LineInvalidated(base+k, line)
		}
	}
}

// Read performs a load by hardware thread tid from the line containing addr
// and returns its latency in cycles.
func (h *Hierarchy) Read(tid int, addr uint64) uint64 {
	core := int(h.coreOf[tid])
	line := addr &^ (lineBytes - 1)
	h.tick++
	l1 := &h.l1[core]
	if w := l1.find(line); w >= 0 {
		l1.lru[w] = h.tick
		h.stats.L1Hits++
		return h.p.LatL1Hit
	}
	h.stats.L1Misses++
	lat, w2 := h.missFill(core, line, false)
	h.l2.sharers[w2] |= 1 << uint(core)
	h.l2.lru[w2] = h.tick
	h.installL1(core, line, Shared, w2)
	return lat
}

// Write obtains Modified ownership of the line containing addr for hardware
// thread tid and returns the latency. The caller performs the actual data
// store in the simulated heap.
func (h *Hierarchy) Write(tid int, addr uint64) uint64 {
	core := int(h.coreOf[tid])
	line := addr &^ (lineBytes - 1)
	h.tick++
	l1 := &h.l1[core]
	if w := l1.find(line); w >= 0 {
		l1.lru[w] = h.tick
		if l1.state[w] == Modified {
			h.stats.L1Hits++
			h.notifySiblings(tid, line)
			return h.p.LatL1Hit
		}
		// S -> M upgrade.
		h.stats.L1Hits++
		lat := h.p.LatL1Hit + h.p.LatDir
		w2 := int(l1.l2way[w])
		if h.l2.lines[w2] != line {
			panic(fmt.Sprintf("cache: inclusivity violated for line %#x", line))
		}
		if others := h.l2.sharers[w2] &^ (1 << uint(core)); others != 0 {
			lat += h.p.LatInv
			h.invalidateSharers(line, others)
			h.l2.sharers[w2] &= 1 << uint(core)
		} else {
			lat += h.p.LatUpgrade
			h.stats.Upgrades++
		}
		h.l2.owner[w2] = int8(core)
		h.l2.lru[w2] = h.tick
		l1.state[w] = Modified
		h.notifySiblings(tid, line)
		return lat
	}
	// Miss: read-for-ownership.
	h.stats.L1Misses++
	lat, w2 := h.missFill(core, line, true)
	h.l2.sharers[w2] = 1 << uint(core)
	h.l2.owner[w2] = int8(core)
	h.l2.lru[w2] = h.tick
	h.installL1(core, line, Modified, w2)
	h.notifySiblings(tid, line)
	return lat
}

// missFill is the L1-miss path shared by Read and Write: directory lookup,
// L2 fill on an L2 miss, and remote-owner resolution. For a read the remote
// Modified copy is downgraded and forwarded; for a write (read-for-
// ownership) the owner's copy is dropped and every other sharer invalidated.
// It returns the latency accumulated so far and the slab index of the line's
// L2 way, whose sharers/owner/lru the caller updates.
func (h *Hierarchy) missFill(core int, line uint64, forWrite bool) (uint64, int) {
	lat := h.p.LatL1Hit + h.p.LatDir
	w2 := h.l2.find(line)
	if w2 < 0 {
		h.stats.L2Misses++
		return lat + h.p.LatMem, h.installL2(line)
	}
	h.stats.L2Hits++
	lat += h.p.LatL2Hit
	if owner := h.l2.owner[w2]; owner >= 0 && (forWrite || int(owner) != core) {
		// A remote L1 holds the line Modified: forward it.
		lat += h.p.LatRemoteFwd
		h.stats.RemoteFwds++
		if forWrite {
			h.dropL1(int(owner), line)
			h.l2.dirty[w2] = true
			h.l2.sharers[w2] &^= 1 << uint(owner)
			h.l2.owner[w2] = -1
		} else {
			h.downgradeOwner(w2)
		}
	}
	if forWrite {
		if others := h.l2.sharers[w2] &^ (1 << uint(core)); others != 0 {
			lat += h.p.LatInv
			h.invalidateSharers(line, others)
		}
	}
	return lat, w2
}

// downgradeOwner moves the current owner's copy of the line in L2 way w2
// from Modified to Shared, writing the line back to the L2. Downgrades do
// not fire the listener.
func (h *Hierarchy) downgradeOwner(w2 int) {
	line := h.l2.lines[w2]
	l1 := &h.l1[h.l2.owner[w2]]
	ow := l1.find(line)
	if ow < 0 || l1.state[ow] != Modified {
		panic(fmt.Sprintf("cache: directory owner desync for line %#x", line))
	}
	l1.state[ow] = Shared
	h.l2.dirty[w2] = true
	h.l2.owner[w2] = -1
}

// invalidateSharers drops every L1 copy named in mask and fires the listener
// for each (these are true invalidations: tagged copies are revoked).
func (h *Hierarchy) invalidateSharers(line uint64, mask uint64) {
	for c := 0; mask != 0; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		mask &^= 1 << uint(c)
		h.dropL1(c, line)
		h.stats.Invalidations++
	}
}

// dropL1 removes physical core l1i's copy of line (if present) and notifies
// every hyperthread of that core.
func (h *Hierarchy) dropL1(l1i int, line uint64) {
	l1 := &h.l1[l1i]
	if w := l1.find(line); w >= 0 {
		l1.state[w] = Invalid
		l1.lines[w] = invalidLine
		l1.wayOf[line>>lineShift] = 0
		l1.full[(line>>lineShift)&l1.setMask]--
		h.notify(l1i, line)
	}
}

// installL1 places line (whose L2 way is w2new) into core's L1 in the given
// state, evicting a victim if the set is full. A victim eviction is an
// invalidation of the victim line for this core (revoking any tag on it),
// and updates the directory.
func (h *Hierarchy) installL1(core int, line uint64, st State, w2new int) {
	l1 := &h.l1[core]
	set := (line >> lineShift) & l1.setMask
	base := int(set) * int(l1.assoc)
	end := base + int(l1.assoc)
	victim := -1
	// First empty way wins; a full set (the steady state, tracked in full)
	// skips straight to the LRU pass. Range loops over subslices let the
	// compiler elide per-way bounds checks.
	if int(l1.full[set]) < int(l1.assoc) {
		for i, l := range l1.lines[base:end] {
			if l == invalidLine {
				victim = base + i
				break
			}
		}
	}
	if victim >= 0 {
		l1.full[set]++
		goto place
	}
	victim = base + minLRU(l1.lru[base:end])
	// Evict the LRU way.
	{
		vline := l1.lines[victim]
		h.stats.L1Evictions++
		w2 := int(l1.l2way[victim])
		if h.l2.lines[w2] != vline {
			panic(fmt.Sprintf("cache: inclusivity violated evicting %#x", vline))
		}
		if l1.state[victim] == Modified {
			h.l2.dirty[w2] = true
		}
		if int(h.l2.owner[w2]) == core {
			h.l2.owner[w2] = -1
		}
		h.l2.sharers[w2] &^= 1 << uint(core)
		l1.state[victim] = Invalid
		l1.wayOf[vline>>lineShift] = 0
		h.notify(core, vline)
	}
place:
	if li := line >> lineShift; li < uint64(len(l1.wayOf)) {
		l1.wayOf[li] = int32(victim) + 1
	} else {
		l1.wayOf = growWays(l1.wayOf, li)
		l1.wayOf[li] = int32(victim) + 1
	}
	l1.lines[victim] = line
	l1.state[victim] = st
	l1.lru[victim] = h.tick
	l1.l2way[victim] = int32(w2new)
}

// installL2 places line into the L2, evicting (and back-invalidating) a
// victim if needed, and returns the slab index of the new way.
func (h *Hierarchy) installL2(line uint64) int {
	l2 := &h.l2
	set := (line >> lineShift) & l2.setMask
	base := int(set) * int(l2.assoc)
	end := base + int(l2.assoc)
	victim := -1
	if int(l2.full[set]) < int(l2.assoc) {
		for i, l := range l2.lines[base:end] {
			if l == invalidLine {
				victim = base + i
				break
			}
		}
	}
	if victim >= 0 {
		l2.full[set]++
		goto place
	}
	victim = base + minLRU(l2.lru[base:end])
	// Evict LRU, back-invalidating all L1 copies (inclusive L2).
	{
		vline := l2.lines[victim]
		for c, m := 0, l2.sharers[victim]; m != 0; c++ {
			if m&(1<<uint(c)) == 0 {
				continue
			}
			m &^= 1 << uint(c)
			h.dropL1(c, vline)
			h.stats.BackInvals++
		}
		l2.wayOf[vline>>lineShift] = 0
		// Dirty victims write back to memory; the cost is off the requester's
		// critical path and is not charged.
	}
place:
	if li := line >> lineShift; li < uint64(len(l2.wayOf)) {
		l2.wayOf[li] = int32(victim) + 1
	} else {
		l2.wayOf = growWays(l2.wayOf, li)
		l2.wayOf[li] = int32(victim) + 1
	}
	l2.lines[victim] = line
	l2.lru[victim] = h.tick
	l2.sharers[victim] = 0
	l2.owner[victim] = -1
	l2.dirty[victim] = false
	return victim
}

// CheckInvariants validates directory/L1 consistency: at most one Modified
// copy per line, directory sharer sets exactly matching L1 contents, and
// inclusivity. Property tests call it after random access sequences, and
// checked simulation runs lean on it, so it works directly off the indexed
// cache slabs (set-indexed l1.find/l2.find probes) rather than building a
// per-call map of holders: no allocation, and cost proportional to resident
// lines plus actual sharing.
func (h *Hierarchy) CheckInvariants() error {
	// Every valid L1 line must be in the inclusive L2, its directory sharer
	// bit must be set, and a Modified copy must be the directory owner.
	for c := range h.l1 {
		l1 := &h.l1[c]
		for i, line := range l1.lines {
			if line == invalidLine {
				if l1.state[i] != Invalid {
					return fmt.Errorf("empty L1 way %d in core %d has state %v", i, c, l1.state[i])
				}
				continue
			}
			if l1.state[i] == Invalid {
				return fmt.Errorf("invalid L1 way in core %d holds line %#x instead of the sentinel", c, line)
			}
			w2 := h.l2.find(line)
			if w2 < 0 {
				return fmt.Errorf("line %#x in an L1 but not in inclusive L2", line)
			}
			if h.l2.sharers[w2]&(1<<uint(c)) == 0 {
				return fmt.Errorf("line %#x held by core %d but directory sharers %b lack it", line, c, h.l2.sharers[w2])
			}
			if l1.state[i] == Modified && int(h.l2.owner[w2]) != c {
				return fmt.Errorf("line %#x Modified in core %d but directory owner is %d", line, c, h.l2.owner[w2])
			}
		}
	}
	// Every directory entry's claimed sharers must actually hold the line,
	// with exactly the directory's owner (if any) Modified and owning alone.
	// Combined with the pass above (no L1 copy outside the sharer set), the
	// claimed set equals the actual set.
	for i, line := range h.l2.lines {
		if line == invalidLine {
			continue
		}
		owner := int8(-1)
		for c, m := 0, h.l2.sharers[i]; m != 0; c++ {
			if c >= len(h.l1) {
				return fmt.Errorf("line %#x directory sharers %b name nonexistent cores", line, h.l2.sharers[i])
			}
			if m&(1<<uint(c)) == 0 {
				continue
			}
			m &^= 1 << uint(c)
			w := h.l1[c].find(line)
			if w < 0 {
				return fmt.Errorf("directory claims sharer %d for line %#x held by no such L1", c, line)
			}
			if h.l1[c].state[w] == Modified {
				if owner >= 0 {
					return fmt.Errorf("line %#x Modified in cores %d and %d", line, owner, c)
				}
				owner = int8(c)
			}
		}
		if h.l2.owner[i] != owner {
			return fmt.Errorf("line %#x directory owner %d != actual %d", line, h.l2.owner[i], owner)
		}
		if owner >= 0 && h.l2.sharers[i] != 1<<uint(owner) {
			return fmt.Errorf("line %#x Modified at %d but shared by %b", line, owner, h.l2.sharers[i])
		}
	}
	// The redundant per-set occupancy counters must match the slabs exactly:
	// a drifted counter silently corrupts victim selection (install would
	// evict a live line while an empty way exists, or scan a full set).
	for c := range h.l1 {
		if err := checkFull("L1", h.l1[c].lines, h.l1[c].full, int(h.l1[c].assoc)); err != nil {
			return fmt.Errorf("core %d: %w", c, err)
		}
	}
	if err := checkFull("L2", h.l2.lines, h.l2.full, int(h.l2.assoc)); err != nil {
		return err
	}
	// The residency indexes must mirror the line slabs exactly — every other
	// check above probes residency through find, so a drifted index would
	// otherwise corrupt both the simulation and its own validation.
	for c := range h.l1 {
		if err := checkWayOf("L1", h.l1[c].lines, h.l1[c].wayOf); err != nil {
			return fmt.Errorf("core %d: %w", c, err)
		}
	}
	return checkWayOf("L2", h.l2.lines, h.l2.wayOf)
}

// checkWayOf verifies a cache's residency index against its line slab in
// both directions: every valid way is indexed at its line, and every index
// entry points at a way holding that line.
func checkWayOf(level string, lines []uint64, wayOf []int32) error {
	for w, line := range lines {
		if line == invalidLine {
			continue
		}
		got := -1
		if li := line >> lineShift; li < uint64(len(wayOf)) {
			got = int(wayOf[li]) - 1
		}
		if got != w {
			return fmt.Errorf("%s line %#x in way %d but residency index says %d", level, line, w, got)
		}
	}
	for li, w := range wayOf {
		if w == 0 {
			continue
		}
		if int(w) > len(lines) || lines[w-1] != uint64(li)<<lineShift {
			return fmt.Errorf("%s residency index maps line %#x to way %d holding %#x", level, uint64(li)<<lineShift, w-1, lines[w-1])
		}
	}
	return nil
}

// checkFull verifies a cache's per-set valid-way counters against its line
// slab.
func checkFull(level string, lines []uint64, full []uint16, assoc int) error {
	for set := range full {
		n := 0
		for _, l := range lines[set*assoc : (set+1)*assoc] {
			if l != invalidLine {
				n++
			}
		}
		if int(full[set]) != n {
			return fmt.Errorf("%s set %d occupancy counter %d != actual %d valid ways", level, set, full[set], n)
		}
	}
	return nil
}
