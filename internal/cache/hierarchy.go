package cache

import "fmt"

const lineBytes = 64

// State is an MSI line state as seen by a private L1.
type State uint8

// MSI states. A line absent from the cache is Invalid.
const (
	Invalid State = iota
	Shared
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return "?"
}

// Listener receives coherence events. The Conditional Access extension
// (package core) registers one to learn when a core loses its copy of a
// tagged line. LineInvalidated fires whenever core's L1 copy of line is
// removed for any reason: a remote write invalidating it, a local capacity or
// conflict eviction, or an inclusive-L2 back-invalidation. It does not fire
// on an M->S downgrade, matching the paper: only invalidations revoke access.
type Listener interface {
	LineInvalidated(core int, line uint64)
}

// Stats aggregates hierarchy activity for one simulation.
type Stats struct {
	L1Hits        uint64
	L1Misses      uint64
	L2Hits        uint64
	L2Misses      uint64
	Invalidations uint64 // remote L1 copies invalidated by writes
	RemoteFwds    uint64 // misses served by a remote Modified copy
	Upgrades      uint64 // S->M upgrades with no other sharers
	L1Evictions   uint64 // local conflict/capacity evictions
	BackInvals    uint64 // L1 copies dropped by inclusive-L2 evictions
}

type l1way struct {
	line  uint64 // line base address; valid iff state != Invalid
	state State
	lru   uint64
}

type l1cache struct {
	sets    [][]l1way
	setMask uint64
}

type l2way struct {
	line    uint64
	valid   bool
	dirty   bool
	sharers uint64 // bitmask of cores with an L1 copy
	owner   int8   // core holding Modified, or -1
	lru     uint64
}

type l2cache struct {
	sets    [][]l2way
	setMask uint64
}

// Hierarchy is the full simulated memory system: one private L1 per
// physical core (shared by its hyperthreads when ThreadsPerCore > 1) over
// one shared inclusive L2 with a directory. It is not safe for concurrent
// use; the simulator serializes accesses.
//
// All public entry points take a hardware-thread id; the hierarchy maps it
// to its physical L1. Listener events are delivered per hardware thread:
// losing an L1 line notifies every hyperthread of that core, and a write by
// one hyperthread notifies its siblings (whose tags on the line must be
// revoked even though the line stays resident — paper Section III).
type Hierarchy struct {
	p        Params
	smt      int // hardware threads per L1
	l1       []l1cache
	l2       l2cache
	listener Listener
	tick     uint64
	stats    Stats
}

// New builds a hierarchy for p. listener may be nil.
func New(p Params, listener Listener) *Hierarchy {
	p.Validate()
	h := &Hierarchy{p: p, smt: p.SMTWidth(), listener: listener}
	l1Sets := p.L1Bytes / (p.L1Assoc * lineBytes)
	h.l1 = make([]l1cache, p.L1Count())
	for c := range h.l1 {
		h.l1[c].sets = make([][]l1way, l1Sets)
		for i := range h.l1[c].sets {
			h.l1[c].sets[i] = make([]l1way, p.L1Assoc)
		}
		h.l1[c].setMask = uint64(l1Sets - 1)
	}
	l2Sets := p.L2Bytes / (p.L2Assoc * lineBytes)
	h.l2.sets = make([][]l2way, l2Sets)
	for i := range h.l2.sets {
		h.l2.sets[i] = make([]l2way, p.L2Assoc)
	}
	h.l2.setMask = uint64(l2Sets - 1)
	if l1Sets&(l1Sets-1) != 0 || l2Sets&(l2Sets-1) != 0 {
		panic("cache: set counts must be powers of two")
	}
	return h
}

// Params returns the configuration the hierarchy was built with.
func (h *Hierarchy) Params() Params { return h.p }

// Stats returns a copy of the accumulated statistics.
func (h *Hierarchy) Stats() Stats { return h.stats }

func (c *l1cache) set(line uint64) []l1way {
	return c.sets[(line/lineBytes)&c.setMask]
}

func (c *l1cache) find(line uint64) *l1way {
	set := c.set(line)
	for i := range set {
		if set[i].state != Invalid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

func (c *l2cache) set(line uint64) []l2way {
	return c.sets[(line/lineBytes)&c.setMask]
}

func (c *l2cache) find(line uint64) *l2way {
	set := c.set(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return &set[i]
		}
	}
	return nil
}

// HasLine reports the L1 state of line for hardware thread tid without
// touching LRU or charging latency (a diagnostic, used by tests).
func (h *Hierarchy) HasLine(tid int, line uint64) State {
	if w := h.l1[tid/h.smt].find(line); w != nil {
		return w.state
	}
	return Invalid
}

// notify delivers a LineInvalidated event to every hardware thread of
// physical core l1i.
func (h *Hierarchy) notify(l1i int, line uint64) {
	if h.listener == nil {
		return
	}
	for k := 0; k < h.smt; k++ {
		h.listener.LineInvalidated(l1i*h.smt+k, line)
	}
}

// notifySiblings delivers a LineInvalidated event to tid's hyperthread
// siblings (not tid itself): a local write leaves the line resident, but any
// sibling tag on it must be revoked.
func (h *Hierarchy) notifySiblings(tid int, line uint64) {
	if h.listener == nil || h.smt == 1 {
		return
	}
	base := (tid / h.smt) * h.smt
	for k := 0; k < h.smt; k++ {
		if base+k != tid {
			h.listener.LineInvalidated(base+k, line)
		}
	}
}

// Read performs a load by hardware thread tid from the line containing addr
// and returns its latency in cycles.
func (h *Hierarchy) Read(tid int, addr uint64) uint64 {
	core := tid / h.smt
	line := addr &^ (lineBytes - 1)
	h.tick++
	if w := h.l1[core].find(line); w != nil {
		w.lru = h.tick
		h.stats.L1Hits++
		return h.p.LatL1Hit
	}
	h.stats.L1Misses++
	lat := h.p.LatL1Hit + h.p.LatDir
	w2 := h.l2.find(line)
	if w2 == nil {
		h.stats.L2Misses++
		lat += h.p.LatMem
		w2 = h.installL2(line)
	} else {
		h.stats.L2Hits++
		lat += h.p.LatL2Hit
		if w2.owner >= 0 && int(w2.owner) != core {
			// A remote L1 holds the line Modified: forward and downgrade.
			lat += h.p.LatRemoteFwd
			h.stats.RemoteFwds++
			h.downgradeOwner(w2)
		}
	}
	w2.sharers |= 1 << uint(core)
	w2.lru = h.tick
	h.installL1(core, line, Shared)
	return lat
}

// Write obtains Modified ownership of the line containing addr for hardware
// thread tid and returns the latency. The caller performs the actual data
// store in the simulated heap.
func (h *Hierarchy) Write(tid int, addr uint64) uint64 {
	core := tid / h.smt
	defer h.notifySiblings(tid, addr&^(lineBytes-1))
	line := addr &^ (lineBytes - 1)
	h.tick++
	if w := h.l1[core].find(line); w != nil {
		w.lru = h.tick
		if w.state == Modified {
			h.stats.L1Hits++
			return h.p.LatL1Hit
		}
		// S -> M upgrade.
		h.stats.L1Hits++
		lat := h.p.LatL1Hit + h.p.LatDir
		w2 := h.l2.find(line)
		if w2 == nil {
			panic(fmt.Sprintf("cache: inclusivity violated for line %#x", line))
		}
		if others := w2.sharers &^ (1 << uint(core)); others != 0 {
			lat += h.p.LatInv
			h.invalidateSharers(line, others)
			w2.sharers &= 1 << uint(core)
		} else {
			lat += h.p.LatUpgrade
			h.stats.Upgrades++
		}
		w2.owner = int8(core)
		w2.lru = h.tick
		w.state = Modified
		return lat
	}
	// Miss: read-for-ownership.
	h.stats.L1Misses++
	lat := h.p.LatL1Hit + h.p.LatDir
	w2 := h.l2.find(line)
	if w2 == nil {
		h.stats.L2Misses++
		lat += h.p.LatMem
		w2 = h.installL2(line)
	} else {
		h.stats.L2Hits++
		lat += h.p.LatL2Hit
		if w2.owner >= 0 {
			lat += h.p.LatRemoteFwd
			h.stats.RemoteFwds++
			h.dropL1(int(w2.owner), line)
			w2.dirty = true
			w2.sharers &^= 1 << uint(w2.owner)
			w2.owner = -1
		}
		if others := w2.sharers &^ (1 << uint(core)); others != 0 {
			lat += h.p.LatInv
			h.invalidateSharers(line, others)
		}
	}
	w2.sharers = 1 << uint(core)
	w2.owner = int8(core)
	w2.lru = h.tick
	h.installL1(core, line, Modified)
	return lat
}

// downgradeOwner moves the current owner's copy from Modified to Shared,
// writing the line back to the L2. Downgrades do not fire the listener.
func (h *Hierarchy) downgradeOwner(w2 *l2way) {
	ow := h.l1[w2.owner].find(w2.line)
	if ow == nil || ow.state != Modified {
		panic(fmt.Sprintf("cache: directory owner desync for line %#x", w2.line))
	}
	ow.state = Shared
	w2.dirty = true
	w2.owner = -1
}

// invalidateSharers drops every L1 copy named in mask and fires the listener
// for each (these are true invalidations: tagged copies are revoked).
func (h *Hierarchy) invalidateSharers(line uint64, mask uint64) {
	for c := 0; mask != 0; c++ {
		if mask&(1<<uint(c)) == 0 {
			continue
		}
		mask &^= 1 << uint(c)
		h.dropL1(c, line)
		h.stats.Invalidations++
	}
}

// dropL1 removes physical core l1i's copy of line (if present) and notifies
// every hyperthread of that core.
func (h *Hierarchy) dropL1(l1i int, line uint64) {
	if w := h.l1[l1i].find(line); w != nil {
		w.state = Invalid
		h.notify(l1i, line)
	}
}

// installL1 places line into core's L1 in the given state, evicting a victim
// if the set is full. A victim eviction is an invalidation of the victim line
// for this core (revoking any tag on it), and updates the directory.
func (h *Hierarchy) installL1(core int, line uint64, st State) {
	set := h.l1[core].set(line)
	victim := 0
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			goto place
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	// Evict the LRU way.
	{
		v := &set[victim]
		h.stats.L1Evictions++
		w2 := h.l2.find(v.line)
		if w2 == nil {
			panic(fmt.Sprintf("cache: inclusivity violated evicting %#x", v.line))
		}
		if v.state == Modified {
			w2.dirty = true
		}
		if int(w2.owner) == core {
			w2.owner = -1
		}
		w2.sharers &^= 1 << uint(core)
		v.state = Invalid
		h.notify(core, v.line)
	}
place:
	set[victim] = l1way{line: line, state: st, lru: h.tick}
}

// installL2 places line into the L2, evicting (and back-invalidating) a
// victim if needed, and returns the new way.
func (h *Hierarchy) installL2(line uint64) *l2way {
	set := h.l2.set(line)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	// Evict LRU, back-invalidating all L1 copies (inclusive L2).
	{
		v := &set[victim]
		for c, m := 0, v.sharers; m != 0; c++ {
			if m&(1<<uint(c)) == 0 {
				continue
			}
			m &^= 1 << uint(c)
			h.dropL1(c, v.line)
			h.stats.BackInvals++
		}
		// Dirty victims write back to memory; the cost is off the requester's
		// critical path and is not charged.
		v.valid = false
	}
place:
	set[victim] = l2way{line: line, valid: true, owner: -1, lru: h.tick}
	return &set[victim]
}

// CheckInvariants validates directory/L1 consistency: at most one Modified
// copy per line, directory sharer sets exactly matching L1 contents, and
// inclusivity. Property tests call it after random access sequences, and
// checked simulation runs lean on it, so it works directly off the indexed
// cache arrays (set-indexed l1.find/l2.find probes) rather than building a
// per-call map of holders: no allocation, and cost proportional to resident
// lines plus actual sharing.
func (h *Hierarchy) CheckInvariants() error {
	// Every valid L1 line must be in the inclusive L2, its directory sharer
	// bit must be set, and a Modified copy must be the directory owner.
	for c := range h.l1 {
		for _, set := range h.l1[c].sets {
			for _, w := range set {
				if w.state == Invalid {
					continue
				}
				w2 := h.l2.find(w.line)
				if w2 == nil {
					return fmt.Errorf("line %#x in an L1 but not in inclusive L2", w.line)
				}
				if w2.sharers&(1<<uint(c)) == 0 {
					return fmt.Errorf("line %#x held by core %d but directory sharers %b lack it", w.line, c, w2.sharers)
				}
				if w.state == Modified && int(w2.owner) != c {
					return fmt.Errorf("line %#x Modified in core %d but directory owner is %d", w.line, c, w2.owner)
				}
			}
		}
	}
	// Every directory entry's claimed sharers must actually hold the line,
	// with exactly the directory's owner (if any) Modified and owning alone.
	// Combined with the pass above (no L1 copy outside the sharer set), the
	// claimed set equals the actual set.
	for _, set := range h.l2.sets {
		for i := range set {
			w2 := &set[i]
			if !w2.valid {
				continue
			}
			owner := int8(-1)
			for c, m := 0, w2.sharers; m != 0; c++ {
				if c >= len(h.l1) {
					return fmt.Errorf("line %#x directory sharers %b name nonexistent cores", w2.line, w2.sharers)
				}
				if m&(1<<uint(c)) == 0 {
					continue
				}
				m &^= 1 << uint(c)
				w := h.l1[c].find(w2.line)
				if w == nil {
					return fmt.Errorf("directory claims sharer %d for line %#x held by no such L1", c, w2.line)
				}
				if w.state == Modified {
					if owner >= 0 {
						return fmt.Errorf("line %#x Modified in cores %d and %d", w2.line, owner, c)
					}
					owner = int8(c)
				}
			}
			if w2.owner != owner {
				return fmt.Errorf("line %#x directory owner %d != actual %d", w2.line, w2.owner, owner)
			}
			if owner >= 0 && w2.sharers != 1<<uint(owner) {
				return fmt.Errorf("line %#x Modified at %d but shared by %b", w2.line, owner, w2.sharers)
			}
		}
	}
	return nil
}
