// Package cache models the simulated memory hierarchy: per-core private L1
// data caches and a shared inclusive L2 with an in-cache directory running an
// MSI coherence protocol.
//
// This is the Graphite-equivalent substrate the paper prototypes Conditional
// Access on (Section V: "directory based MSI cache coherency protocol with a
// private 32K L1 and a shared inclusive 256K L2 cache", 64-byte lines).
//
// The hierarchy is a timing-and-event model: data lives in the simulated
// heap (package mem); the caches track line state, replacement, and sharers,
// and report (a) the latency of each access and (b) the coherence events —
// invalidations and evictions — that the Conditional Access extension in
// package core listens to. Keeping data out of the cache model is sound
// because the simulator executes exactly one memory access at a time, so
// there is always a single authoritative copy of every word.
package cache

import "fmt"

// Params configures cache geometry and the latency model. All latencies are
// in simulated core cycles.
type Params struct {
	// Cores is the number of hardware threads. With ThreadsPerCore > 1,
	// consecutive hardware threads share one physical core and its L1 (the
	// paper's SMT discussion in Section III): each hyperthread keeps its own
	// tag state, a hyperthread's write revokes its siblings' tags on that
	// line, and coherence events on the shared L1 notify every hyperthread.
	Cores int
	// ThreadsPerCore is the SMT width; 0 or 1 means no SMT.
	ThreadsPerCore int

	L1Bytes int // private L1 data cache capacity
	L1Assoc int // L1 associativity (bounds the Conditional Access tagSet)
	L2Bytes int // shared inclusive L2 capacity
	L2Assoc int

	// Latency model. An access pays the sum of the components it exercises.
	LatL1Hit     uint64 // load-to-use on an L1 hit; includes issue cost
	LatL2Hit     uint64 // additional cost of an L1 miss served by the L2
	LatMem       uint64 // additional cost of an L2 miss served by DRAM
	LatRemoteFwd uint64 // additional cost when a remote L1 holds the line Modified
	LatInv       uint64 // additional cost of invalidating remote sharers
	LatDir       uint64 // directory lookup cost on any L1 miss or upgrade
	LatFence     uint64 // full fence / store buffer drain (hp, he, ibr pay this)
	LatFlagCheck uint64 // checking the Conditional Access flag register
	LatUpgrade   uint64 // S->M upgrade request when no sharers need invalidating
}

// DefaultParams mirrors the paper's Graphite configuration: 32K/8-way L1,
// 256K/16-way shared inclusive L2, 64-byte lines. Latencies model an
// out-of-order core the way Graphite's timing model does: L1 hits are nearly
// free (they pipeline behind other work), the conditional-access flag check
// is hidden entirely (it is a register test), and the costs that matter are
// L2/DRAM fills, remote forwards, invalidations, and fences.
func DefaultParams(cores int) Params {
	return Params{
		Cores:        cores,
		L1Bytes:      32 << 10,
		L1Assoc:      8,
		L2Bytes:      256 << 10,
		L2Assoc:      16,
		LatL1Hit:     1,
		LatL2Hit:     12,
		LatMem:       120,
		LatRemoteFwd: 40,
		LatInv:       20,
		LatDir:       6,
		LatFence:     20,
		LatFlagCheck: 0,
		LatUpgrade:   10,
	}
}

// SMTWidth returns the effective threads-per-core (at least 1).
func (p Params) SMTWidth() int {
	if p.ThreadsPerCore <= 1 {
		return 1
	}
	return p.ThreadsPerCore
}

// L1Count returns the number of physical L1 caches.
func (p Params) L1Count() int { return p.Cores / p.SMTWidth() }

// Check reports whether the geometry is consistent: positive sizes, whole
// sets, and power-of-two set counts (the caches index sets by masking).
// Everything is validated up front, before any cache is allocated, so bad
// geometry — including a sweep's Cache override — fails immediately.
func (p Params) Check() error {
	if p.Cores <= 0 || p.Cores > 64 {
		return fmt.Errorf("cache: core count %d must be in [1,64]", p.Cores)
	}
	if p.Cores%p.SMTWidth() != 0 {
		return fmt.Errorf("cache: cores %d must be a multiple of ThreadsPerCore %d", p.Cores, p.SMTWidth())
	}
	if p.L1Bytes <= 0 || p.L1Assoc <= 0 || p.L1Bytes%(p.L1Assoc*lineBytes) != 0 {
		return fmt.Errorf("cache: bad L1 geometry %dB/%d-way", p.L1Bytes, p.L1Assoc)
	}
	if p.L2Bytes <= 0 || p.L2Assoc <= 0 || p.L2Bytes%(p.L2Assoc*lineBytes) != 0 {
		return fmt.Errorf("cache: bad L2 geometry %dB/%d-way", p.L2Bytes, p.L2Assoc)
	}
	if sets := p.L1Bytes / (p.L1Assoc * lineBytes); sets&(sets-1) != 0 {
		return fmt.Errorf("cache: L1 set count %d must be a power of two", sets)
	}
	if sets := p.L2Bytes / (p.L2Assoc * lineBytes); sets&(sets-1) != 0 {
		return fmt.Errorf("cache: L2 set count %d must be a power of two", sets)
	}
	return nil
}

// Validate panics if the geometry is inconsistent (see Check).
func (p Params) Validate() {
	if err := p.Check(); err != nil {
		panic(err)
	}
}
