package cache

import (
	"testing"
	"testing/quick"
)

// tiny returns a small hierarchy so eviction paths are easy to exercise.
func tiny(cores int, l *recorder) *Hierarchy {
	p := DefaultParams(cores)
	p.L1Bytes = 4 * 64 * 2 // 4 sets, 2-way
	p.L1Assoc = 2
	p.L2Bytes = 8 * 64 * 4 // 8 sets, 4-way
	p.L2Assoc = 4
	var lis Listener
	if l != nil {
		lis = l
	}
	return New(p, lis)
}

type recorder struct {
	events []struct {
		core int
		line uint64
	}
}

func (r *recorder) LineInvalidated(core int, line uint64) {
	r.events = append(r.events, struct {
		core int
		line uint64
	}{core, line})
}

func TestReadMissThenHit(t *testing.T) {
	h := tiny(2, nil)
	lat1 := h.Read(0, 0x1000)
	lat2 := h.Read(0, 0x1000)
	if lat1 <= lat2 {
		t.Fatalf("miss latency %d should exceed hit latency %d", lat1, lat2)
	}
	if lat2 != h.Params().LatL1Hit {
		t.Fatalf("hit latency = %d, want %d", lat2, h.Params().LatL1Hit)
	}
	if st := h.HasLine(0, 0x1000); st != Shared {
		t.Fatalf("state = %v, want S", st)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	rec := &recorder{}
	h := tiny(3, rec)
	h.Read(0, 0x2000)
	h.Read(1, 0x2000)
	h.Read(2, 0x2000)
	rec.events = nil
	h.Write(0, 0x2000)
	if h.HasLine(0, 0x2000) != Modified {
		t.Fatal("writer not Modified")
	}
	if h.HasLine(1, 0x2000) != Invalid || h.HasLine(2, 0x2000) != Invalid {
		t.Fatal("sharers not invalidated")
	}
	if len(rec.events) != 2 {
		t.Fatalf("listener events = %d, want 2", len(rec.events))
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteModifiedForwardDowngrades(t *testing.T) {
	rec := &recorder{}
	h := tiny(2, rec)
	h.Write(0, 0x3000)
	rec.events = nil
	lat := h.Read(1, 0x3000)
	if h.HasLine(0, 0x3000) != Shared || h.HasLine(1, 0x3000) != Shared {
		t.Fatal("downgrade to S/S failed")
	}
	if lat < h.Params().LatRemoteFwd {
		t.Fatalf("remote forward latency %d too small", lat)
	}
	// Downgrades are not invalidations: the listener must stay silent.
	if len(rec.events) != 0 {
		t.Fatalf("downgrade fired %d invalidation events", len(rec.events))
	}
}

func TestL1EvictionFiresListener(t *testing.T) {
	rec := &recorder{}
	h := tiny(1, rec)
	// 4 sets * 64B: addresses 0x0, 0x1000, 0x2000 map to set 0 (stride 256).
	base := uint64(0x10000)
	stride := uint64(4 * 64) // set count * line size
	h.Read(0, base)
	h.Read(0, base+stride)
	rec.events = nil
	h.Read(0, base+2*stride) // 2-way set overflows: evicts LRU (base)
	if len(rec.events) != 1 || rec.events[0].line != base {
		t.Fatalf("eviction events = %+v, want [{0 %#x}]", rec.events, base)
	}
	if h.HasLine(0, base) != Invalid {
		t.Fatal("victim still present")
	}
}

func TestUpgradeNoSharersIsCheap(t *testing.T) {
	h := tiny(2, nil)
	h.Read(0, 0x4000)
	latUp := h.Write(0, 0x4000)
	h.Read(0, 0x5000)
	h.Read(1, 0x5000)
	latInv := h.Write(0, 0x5000)
	if latUp >= latInv {
		t.Fatalf("lone upgrade (%d) should be cheaper than invalidating upgrade (%d)", latUp, latInv)
	}
}

func TestWriteMissStealsFromRemoteOwner(t *testing.T) {
	rec := &recorder{}
	h := tiny(2, rec)
	h.Write(0, 0x6000)
	rec.events = nil
	h.Write(1, 0x6000)
	if h.HasLine(0, 0x6000) != Invalid || h.HasLine(1, 0x6000) != Modified {
		t.Fatal("ownership transfer failed")
	}
	if len(rec.events) != 1 || rec.events[0].core != 0 {
		t.Fatalf("owner invalidation events = %+v", rec.events)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInclusiveL2BackInvalidation(t *testing.T) {
	rec := &recorder{}
	h := tiny(1, rec)
	// Fill one L2 set (4 ways) and force an eviction. L2 has 8 sets:
	// stride = 8*64 = 512.
	base := uint64(0x20000)
	stride := uint64(8 * 64)
	for i := uint64(0); i < 4; i++ {
		h.Read(0, base+i*stride)
	}
	rec.events = nil
	h.Read(0, base+4*stride)
	// The L2 victim's L1 copy (if still resident) must be back-invalidated;
	// either way invariants must hold.
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.Stats().BackInvals == 0 && len(rec.events) == 0 {
		t.Log("victim was already evicted from L1; acceptable")
	}
}

// TestCoherenceProperty fires random reads/writes from random cores and
// checks the MSI invariants after every step.
func TestCoherenceProperty(t *testing.T) {
	type step struct {
		Core  uint8
		Line  uint8
		Write bool
	}
	f := func(steps []step) bool {
		h := tiny(4, &recorder{})
		for _, s := range steps {
			addr := uint64(s.Line) * 64
			core := int(s.Core) % 4
			if s.Write {
				h.Write(core, addr)
			} else {
				h.Read(core, addr)
			}
			if err := h.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := tiny(2, nil)
	h.Read(0, 0x100)
	h.Read(0, 0x100)
	h.Read(1, 0x100)
	h.Write(1, 0x100)
	st := h.Stats()
	if st.L1Hits == 0 || st.L1Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	p := DefaultParams(1)
	p.L1Bytes = 1000 // not divisible
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	New(p, nil)
}
