package cache

import "testing"

// smtRig builds a 2-way SMT hierarchy: 4 hardware threads on 2 physical
// cores/L1s.
func smtRig(l *recorder) *Hierarchy {
	p := DefaultParams(4)
	p.ThreadsPerCore = 2
	var lis Listener
	if l != nil {
		lis = l
	}
	return New(p, lis)
}

func TestSMTGeometry(t *testing.T) {
	p := DefaultParams(8)
	p.ThreadsPerCore = 2
	if p.L1Count() != 4 || p.SMTWidth() != 2 {
		t.Fatalf("L1Count=%d SMTWidth=%d, want 4, 2", p.L1Count(), p.SMTWidth())
	}
	p.ThreadsPerCore = 3
	defer func() {
		if recover() == nil {
			t.Fatal("8 threads on 3-way SMT accepted")
		}
	}()
	p.Validate()
}

func TestSMTSiblingsShareL1(t *testing.T) {
	h := smtRig(nil)
	h.Read(0, 0x1000) // thread 0 fills the shared L1
	if h.HasLine(1, 0x1000) != Shared {
		t.Fatal("sibling thread 1 does not see the shared L1 line")
	}
	if h.HasLine(2, 0x1000) != Invalid {
		t.Fatal("thread 2 (other core) sees the line")
	}
	// A sibling hit must cost only an L1 hit.
	if lat := h.Read(1, 0x1000); lat != h.Params().LatL1Hit {
		t.Fatalf("sibling hit latency = %d, want %d", lat, h.Params().LatL1Hit)
	}
}

func TestSMTSiblingWriteNotifiesSiblingOnly(t *testing.T) {
	rec := &recorder{}
	h := smtRig(rec)
	h.Read(0, 0x2000)
	h.Read(1, 0x2000)
	rec.events = nil
	// Thread 1 writes: its sibling (thread 0) must get the event even though
	// the line stays resident in their shared L1; thread 1 itself must not.
	h.Write(1, 0x2000)
	if len(rec.events) != 1 || rec.events[0].core != 0 || rec.events[0].line != 0x2000 {
		t.Fatalf("events = %+v, want exactly thread 0 on 0x2000", rec.events)
	}
	if h.HasLine(0, 0x2000) != Modified {
		t.Fatal("line should stay resident (Modified) in the shared L1")
	}
}

func TestSMTRemoteInvalidationNotifiesBothHyperthreads(t *testing.T) {
	rec := &recorder{}
	h := smtRig(rec)
	h.Read(0, 0x3000) // core 0's L1 (threads 0 and 1)
	rec.events = nil
	h.Write(2, 0x3000) // core 1 steals ownership
	// Both hyperthreads of core 0 must hear the invalidation.
	seen := map[int]bool{}
	for _, ev := range rec.events {
		if ev.line == 0x3000 {
			seen[ev.core] = true
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("events = %+v, want both threads 0 and 1", rec.events)
	}
	// Thread 3 (sibling of the writer) also gets a sibling notification.
	if !seen[3] {
		t.Fatalf("writer's sibling (thread 3) not notified: %+v", rec.events)
	}
	if seen[2] {
		t.Fatalf("writer itself notified: %+v", rec.events)
	}
}

func TestSMTInvariantsHold(t *testing.T) {
	h := smtRig(nil)
	for i := 0; i < 200; i++ {
		tid := i % 4
		addr := uint64((i*7)%32) * 64
		if i%3 == 0 {
			h.Write(tid, addr)
		} else {
			h.Read(tid, addr)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
