package lab

import (
	"strings"
	"testing"

	"condaccess/internal/bench"
)

// storeTrials runs each workload through a store-backed Runner so the store
// ends up holding one entry per workload, then closes the handle (packed
// segments become durable, the index sidecar is persisted).
func storeTrials(t *testing.T, dir string, loose bool, ws ...bench.Workload) {
	t.Helper()
	var st *Store
	var err error
	if loose {
		st, err = OpenLoose(dir)
	} else {
		st, err = Open(dir)
	}
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Runner{Store: st}
	for _, w := range ws {
		if _, err := r.Run(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func mergeW(seed uint64) bench.Workload {
	return bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 40, Seed: seed}
}

// TestMergeDedupAndIdempotence: merging two shard stores with an overlapping
// entry copies each key once, the merged store serves every workload warm,
// and re-merging the same sources is a no-op (all Skipped).
func TestMergeDedupAndIdempotence(t *testing.T) {
	w1, w2, w3 := mergeW(1), mergeW(2), mergeW(3)
	dirA, dirB := t.TempDir(), t.TempDir()
	storeTrials(t, dirA, false, w1, w2)
	storeTrials(t, dirB, false, w2, w3)

	srcA, err := OpenExisting(dirA)
	if err != nil {
		t.Fatal(err)
	}
	srcB, err := OpenExisting(dirB)
	if err != nil {
		t.Fatal(err)
	}
	dstDir := t.TempDir()
	dst, err := Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Merge(dst, srcA, srcB)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 3 || stats.Skipped != 1 {
		t.Fatalf("merge added %d skipped %d, want 3/1", stats.Added, stats.Skipped)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenExisting(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []bench.Workload{w1, w2, w3} {
		if _, ok := re.LookupTrial(w); !ok {
			t.Fatalf("merged store misses workload seed %d", w.Seed)
		}
	}
	stats, err = Merge(re, srcA, srcB)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 0 || stats.Skipped != 4 {
		t.Fatalf("re-merge added %d skipped %d, want 0/4", stats.Added, stats.Skipped)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeLooseSource: a loose-layout source merges into a packed
// destination; the copied entries land on the packed write path.
func TestMergeLooseSource(t *testing.T) {
	w := mergeW(7)
	srcDir := t.TempDir()
	storeTrials(t, srcDir, true, w)

	src, err := OpenExisting(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Merge(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 1 || stats.Skipped != 0 {
		t.Fatalf("merge added %d skipped %d, want 1/0", stats.Added, stats.Skipped)
	}
	if _, ok := dst.LookupTrial(w); !ok {
		t.Fatal("merged store misses the loose source's entry")
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeRefusesForeignTag: a source written under a different engine tag
// must be refused — merging across engine versions would build a store that
// every single-tag consumer rejects.
func TestMergeRefusesForeignTag(t *testing.T) {
	w := mergeW(11)
	dstDir := t.TempDir()
	storeTrials(t, dstDir, false, w)

	srcDir := t.TempDir()
	old, err := openTagged(srcDir, "0000deadbeef0000", false)
	if err != nil {
		t.Fatal(err)
	}
	res := bench.Result{W: w}
	if err := old.StoreTrial(w, res); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	dst, err := Open(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenExisting(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Merge(dst, src)
	if err == nil || !strings.Contains(err.Error(), "engine tag") {
		t.Fatalf("foreign-tag source not refused: %v", err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeRefusesMixedSource: a single source that itself mixes engine
// versions is refused before any entry is copied.
func TestMergeRefusesMixedSource(t *testing.T) {
	w := mergeW(13)
	srcDir := t.TempDir()
	storeTrials(t, srcDir, false, w)
	old, err := openTagged(srcDir, "0000deadbeef0000", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.StoreTrial(w, bench.Result{W: w}); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenExisting(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Merge(dst, src)
	if err == nil || !strings.Contains(err.Error(), "mixes 2 engine versions") {
		t.Fatalf("mixed-tag source not refused: %v", err)
	}
	if stats.Added != 0 {
		t.Fatalf("refused merge still copied %d entries", stats.Added)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
}
