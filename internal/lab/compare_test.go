package lab

import (
	"reflect"
	"strings"
	"testing"

	"condaccess/internal/bench"
	"condaccess/internal/scenario"
)

// runMatrix fills a store with Trials replicas of a tiny sweep plus one
// scenario trial, returning its cells.
func runMatrix(t *testing.T, dir string, ops int) []Cell {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = bench.Sweep(bench.SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"}, Threads: []int{2},
		Updates: []int{100}, KeyRange: 64, Ops: ops, Seed: 5, Trials: 3,
		Store: st,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Preset("read-burst")
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Runner{Store: st}
	if _, err := r.RunScenario(bench.ScenarioWorkload{
		DS: "list", Scheme: "ca", Threads: 2, KeyRange: 64, Seed: 5, Scenario: sc,
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := st.SpecEntries()
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return Cells(entries)
}

// TestCellsGroupReplicas: the 3 trials of each sweep point must fold into
// one cell with replication statistics; the scenario trial is its own cell.
func TestCellsGroupReplicas(t *testing.T) {
	cells := runMatrix(t, t.TempDir(), 80)
	if len(cells) != 3 { // list/ca + list/rcu stationary, list/ca scenario
		t.Fatalf("cells = %d (%+v), want 3", len(cells), cells)
	}
	var trialCells, scenarioCells int
	for _, c := range cells {
		switch c.Key.Kind {
		case KindTrial:
			trialCells++
			if c.Stats.Count != 3 {
				t.Errorf("cell %s has %d replicas, want 3", c.Key, c.Stats.Count)
			}
			if c.Stats.CI95 <= 0 {
				t.Errorf("cell %s: no confidence interval over 3 replicas", c.Key)
			}
			if len(c.Seeds) != 3 || c.Seeds[0] >= c.Seeds[1] {
				t.Errorf("cell %s seeds not ordered: %v", c.Key, c.Seeds)
			}
		case KindScenario:
			scenarioCells++
			if c.Key.Scenario != "read-burst" {
				t.Errorf("scenario cell lost its name: %+v", c.Key)
			}
			if c.Stats.Count != 1 {
				t.Errorf("scenario cell has %d replicas, want 1", c.Stats.Count)
			}
		}
	}
	if trialCells != 2 || scenarioCells != 1 {
		t.Fatalf("cell kinds: %d trial, %d scenario; want 2/1", trialCells, scenarioCells)
	}
}

// TestCellsSeparateVariantsAndNormalizeDist: ablation points that differ
// only in cache geometry (figures' assoc grid) must form distinct cells —
// never pool as replicas — while the two spellings of the default key
// distribution ("" from figures, "uniform" from cabench) must land in one
// cell.
func TestCellsSeparateVariantsAndNormalizeDist(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Runner{Store: st}
	base := bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 64, UpdatePct: 100, OpsPerThread: 60, Seed: 1}
	for _, assoc := range []int{2, 4} {
		w := base
		w.Cache = bench.DefaultCache(2)
		w.Cache.L1Assoc = assoc
		if _, err := r.Run(w); err != nil {
			t.Fatal(err)
		}
	}
	we := base
	we.Seed, we.Dist = 2, "" // figures' spelling of the default distribution
	wu := base
	wu.Seed, wu.Dist = 3, bench.DistUniform // cabench's spelling
	wu.Buckets = 128                        // inert for a list; must not split the cell
	for _, w := range []bench.Workload{we, wu} {
		if _, err := r.Run(w); err != nil {
			t.Fatal(err)
		}
	}

	entries, err := st.SpecEntries()
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(entries)
	if len(cells) != 3 { // assoc=2, assoc=4, default geometry
		t.Fatalf("cells = %d (%v), want 3", len(cells), cells)
	}
	var variants, defaults int
	for _, c := range cells {
		if c.Key.Variant != "" {
			variants++
			if c.Stats.Count != 1 {
				t.Errorf("ablation cell %s pooled %d entries as replicas", c.Key, c.Stats.Count)
			}
			if !strings.Contains(c.Key.String(), "cache=") {
				t.Errorf("ablation cell label %q does not show its variant", c.Key)
			}
		} else {
			defaults++
			if c.Stats.Count != 2 {
				t.Errorf("dist spellings did not pool: cell %s has %d replicas, want 2", c.Key, c.Stats.Count)
			}
			if c.Key.Dist != bench.DistUniform {
				t.Errorf("default-dist cell key = %q, want normalized %q", c.Key.Dist, bench.DistUniform)
			}
		}
	}
	if variants != 2 || defaults != 1 {
		t.Fatalf("cell split = %d variant / %d default, want 2/1", variants, defaults)
	}
}

// TestSnapshotCellsRefusesMixedTags: a store holding entries from two
// engine versions must not silently pool them into one snapshot.
func TestSnapshotCellsRefusesMixedTags(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1}
	r := bench.Runner{Store: st}
	res, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SnapshotCells(st); err != nil {
		t.Fatalf("single-tag store refused: %v", err)
	}
	old, err := openTagged(dir, "0000deadbeef0000", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.StoreTrial(w, res); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := SnapshotCells(st); err == nil || !strings.Contains(err.Error(), "mixes 2 engine versions") {
		t.Fatalf("mixed-tag store accepted (err=%v)", err)
	}
	if removed, _, err := st.GC(false); err != nil || removed != 1 {
		t.Fatalf("gc: removed %d, err %v", removed, err)
	}
	if _, err := SnapshotCells(st); err != nil {
		t.Fatalf("store still refused after gc: %v", err)
	}
}

// TestDiffAlignsAndFlagSignificance exercises the A/B report on crafted
// summaries: identical cells align, disjoint CIs flag significant, missing
// cells land in the only-one-side lists.
func TestDiffAlignsAndFlagSignificance(t *testing.T) {
	key := func(scheme string) CellKey {
		return CellKey{Kind: KindTrial, DS: "list", Scheme: scheme, Threads: 2, UpdatePct: 100, KeyRange: 64, Ops: 80}
	}
	cell := func(scheme string, xs ...float64) Cell {
		return Cell{Key: key(scheme), Throughputs: xs, Stats: bench.Summarize(xs)}
	}
	a := []Cell{cell("ca", 100, 101, 99), cell("rcu", 50, 51, 49), cell("hp", 10, 11, 9)}
	b := []Cell{cell("ca", 200, 201, 199), cell("rcu", 50.5, 51.5, 49.5), cell("he", 7, 8, 9)}

	rows, onlyA, onlyB := Diff(a, b)
	if len(rows) != 2 {
		t.Fatalf("aligned rows = %d, want 2", len(rows))
	}
	byScheme := map[string]DiffRow{}
	for _, r := range rows {
		byScheme[r.Key.Scheme] = r
	}
	ca := byScheme["ca"]
	if ca.Speedup < 1.9 || ca.Speedup > 2.1 {
		t.Errorf("ca speedup %.3f, want ~2.0", ca.Speedup)
	}
	if !ca.Significant {
		t.Error("ca: disjoint CIs not flagged significant")
	}
	if rcu := byScheme["rcu"]; rcu.Significant {
		t.Error("rcu: overlapping CIs flagged significant")
	}
	if len(onlyA) != 1 || onlyA[0].Scheme != "hp" {
		t.Errorf("onlyA = %v, want [hp]", onlyA)
	}
	if len(onlyB) != 1 || onlyB[0].Scheme != "he" {
		t.Errorf("onlyB = %v, want [he]", onlyB)
	}

	out := FormatDiff(rows, onlyA, onlyB)
	for _, want := range []string{"speedup", "sig", "*", "only in A", "only in B"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff table missing %q:\n%s", want, out)
		}
	}
}

// TestDiffAcrossStores: two separately-built stores of the same matrix must
// align on every cell (the real cross-run use), and identical inputs must
// not flag significance.
func TestDiffAcrossStores(t *testing.T) {
	a := runMatrix(t, t.TempDir(), 80)
	b := runMatrix(t, t.TempDir(), 80)
	rows, onlyA, onlyB := Diff(a, b)
	if len(onlyA) != 0 || len(onlyB) != 0 {
		t.Fatalf("same matrix left unaligned cells: %v / %v", onlyA, onlyB)
	}
	for _, r := range rows {
		if r.Speedup != 1 {
			t.Errorf("cell %s: identical runs, speedup %.3f", r.Key, r.Speedup)
		}
		if r.Significant {
			t.Errorf("cell %s: identical runs flagged significant", r.Key)
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical matrices produced different cells")
	}

	out := FormatCells(a)
	for _, want := range []string{"mean", "±95", "list/ca", "sc=read-burst"} {
		if !strings.Contains(out, want) {
			t.Errorf("cell table missing %q:\n%s", want, out)
		}
	}
}
