package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"condaccess/internal/bench"
)

// Entry kinds, also the on-disk envelope discriminator.
const (
	KindTrial    = "trial"
	KindScenario = "scenario"
)

// Store is an on-disk, content-addressed trial store. Each entry is one
// self-describing JSON file under <dir>/objects/<kk>/<key>.json, where key =
// SHA-256(engine tag, kind, canonical spec): the name is the content address
// of the spec, so integrity is checkable offline and two stores can be
// diffed by coordinates without sharing any state. Writes go to a temp file
// and rename into place, so concurrent sweep workers and interrupted runs
// never leave a partial entry under a valid name.
type Store struct {
	dir string
	tag string

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// Store implements the harness's read-through/write-through contract.
var _ bench.TrialStore = (*Store)(nil)

// Open opens (creating if necessary) the store rooted at dir. Entries are
// keyed under the current bench.EngineTag(); entries written by other engine
// versions remain on disk — invisible to lookups — until GC.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("lab: opening store: %w", err)
	}
	return &Store{dir: dir, tag: bench.EngineTag()}, nil
}

// OpenExisting opens a store that must already exist. Read-only consumers
// (calab) use this so a mistyped path fails loudly instead of silently
// materializing an empty store and reporting zero entries.
func OpenExisting(dir string) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "objects")); err != nil {
		return nil, fmt.Errorf("lab: %s is not a result store (no objects/ directory): %w", dir, err)
	}
	return Open(dir)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Tag returns the engine tag lookups are scoped to.
func (s *Store) Tag() string { return s.tag }

// StoreStats counts this handle's store traffic. After a fully warm sweep,
// Misses and Puts are zero: every trial came from the store and none was
// simulated.
type StoreStats struct {
	Hits   uint64
	Misses uint64
	Puts   uint64
}

// Stats returns the traffic counters accumulated on this handle.
func (s *Store) Stats() StoreStats {
	return StoreStats{Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load()}
}

// String renders the traffic line every -store command reports on stderr;
// "(100% warm)" is the re-run-executed-zero-trials signal CI greps for.
func (s StoreStats) String() string {
	total := s.Hits + s.Misses
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	return fmt.Sprintf("store: %d hits, %d misses (%.0f%% warm)", s.Hits, s.Misses, pct)
}

// envelope is the on-disk entry format. Spec and Result are the canonical
// serialized forms verbatim; Sum fingerprints Result so a lookup (and
// Verify) can detect payload corruption.
type envelope struct {
	Tag    string          `json:"tag"`
	Kind   string          `json:"kind"`
	Spec   json.RawMessage `json:"spec"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// key derives the content address of a spec under tag.
func key(tag, kind string, spec []byte) string {
	h := sha256.New()
	io.WriteString(h, tag)
	h.Write([]byte{'\n'})
	io.WriteString(h, kind)
	h.Write([]byte{'\n'})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil))
}

// payloadSum fingerprints a serialized result.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// lookup reads the entry for (kind, spec) into out. Any defect — missing
// file, unparsable envelope, wrong kind, corrupt payload — is a miss: the
// caller re-simulates and the write-through overwrites the bad entry.
func (s *Store) lookup(kind string, spec []byte, out any) bool {
	env, err := readEnvelope(s.path(key(s.tag, kind, spec)))
	if err != nil || env.Kind != kind || payloadSum(env.Result) != env.Sum {
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(env.Result, out); err != nil {
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// put writes the entry for (kind, spec) atomically.
func (s *Store) put(kind string, spec []byte, res any) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("lab: encoding result: %w", err)
	}
	data, err := json.Marshal(envelope{
		Tag: s.tag, Kind: kind, Spec: spec,
		Sum: payloadSum(payload), Result: payload,
	})
	if err != nil {
		return fmt.Errorf("lab: encoding entry: %w", err)
	}
	path := s.path(key(s.tag, kind, spec))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: writing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: writing entry: %w", err)
	}
	s.puts.Add(1)
	return nil
}

func readEnvelope(path string) (envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return envelope{}, err
	}
	return env, nil
}

// LookupTrial implements bench.TrialStore.
func (s *Store) LookupTrial(w bench.Workload) (bench.Result, bool) {
	var res bench.Result
	spec, err := bench.TrialSpecBytes(w)
	if err != nil {
		s.misses.Add(1)
		return res, false
	}
	return res, s.lookup(KindTrial, spec, &res)
}

// StoreTrial implements bench.TrialStore.
func (s *Store) StoreTrial(w bench.Workload, res bench.Result) error {
	spec, err := bench.TrialSpecBytes(w)
	if err != nil {
		return fmt.Errorf("lab: encoding trial spec: %w", err)
	}
	return s.put(KindTrial, spec, res)
}

// LookupScenario implements bench.TrialStore.
func (s *Store) LookupScenario(sw bench.ScenarioWorkload) (bench.ScenarioResult, bool) {
	var res bench.ScenarioResult
	spec, err := bench.ScenarioSpecBytes(sw)
	if err != nil {
		s.misses.Add(1)
		return res, false
	}
	return res, s.lookup(KindScenario, spec, &res)
}

// StoreScenario implements bench.TrialStore.
func (s *Store) StoreScenario(sw bench.ScenarioWorkload, res bench.ScenarioResult) error {
	spec, err := bench.ScenarioSpecBytes(sw)
	if err != nil {
		return fmt.Errorf("lab: encoding scenario spec: %w", err)
	}
	return s.put(KindScenario, spec, res)
}

// Entry is one decoded store entry. Exactly one of the (Workload, Result)
// and (Scenario, ScenarioResult) pairs is set, per Kind.
type Entry struct {
	Key  string
	Tag  string
	Kind string

	Workload *bench.Workload
	Result   *bench.Result

	Scenario       *bench.ScenarioSpec
	ScenarioResult *bench.ScenarioResult
}

// walk visits every entry file under the store in deterministic (sorted
// path) order.
func (s *Store) walk(fn func(path string) error) error {
	root := filepath.Join(s.dir, "objects")
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("lab: walking store: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// decodeEntry fully decodes one entry file, verifying its content address
// and payload fingerprint.
func decodeEntry(path string) (Entry, error) {
	env, err := readEnvelope(path)
	if err != nil {
		return Entry{}, err
	}
	name := strings.TrimSuffix(filepath.Base(path), ".json")
	if got := key(env.Tag, env.Kind, env.Spec); got != name {
		return Entry{}, fmt.Errorf("content address mismatch: file %s, spec hashes to %s", name, got)
	}
	if payloadSum(env.Result) != env.Sum {
		return Entry{}, errors.New("result payload does not match its fingerprint")
	}
	e := Entry{Key: name, Tag: env.Tag, Kind: env.Kind}
	switch env.Kind {
	case KindTrial:
		e.Workload = new(bench.Workload)
		e.Result = new(bench.Result)
		if err := json.Unmarshal(env.Spec, e.Workload); err != nil {
			return Entry{}, fmt.Errorf("decoding trial spec: %w", err)
		}
		if err := json.Unmarshal(env.Result, e.Result); err != nil {
			return Entry{}, fmt.Errorf("decoding trial result: %w", err)
		}
	case KindScenario:
		e.Scenario = new(bench.ScenarioSpec)
		e.ScenarioResult = new(bench.ScenarioResult)
		if err := json.Unmarshal(env.Spec, e.Scenario); err != nil {
			return Entry{}, fmt.Errorf("decoding scenario spec: %w", err)
		}
		if err := json.Unmarshal(env.Result, e.ScenarioResult); err != nil {
			return Entry{}, fmt.Errorf("decoding scenario result: %w", err)
		}
	default:
		return Entry{}, fmt.Errorf("unknown entry kind %q", env.Kind)
	}
	return e, nil
}

// Entries decodes every valid entry in the store (all engine tags), in
// deterministic order. Corrupt entries are skipped — Verify reports them.
func (s *Store) Entries() ([]Entry, error) {
	var entries []Entry
	err := s.walk(func(path string) error {
		e, err := decodeEntry(path)
		if err != nil {
			return nil // corrupt: Verify's business
		}
		entries = append(entries, e)
		return nil
	})
	return entries, err
}

// Problem is one integrity defect found by Verify.
type Problem struct {
	Path   string
	Reason string
}

// Verify checks the integrity of every entry: envelope parses, the file
// name matches the content address of (tag, kind, spec), and the result
// payload matches its fingerprint. It returns the number of sound entries
// alongside the defects.
func (s *Store) Verify() (sound int, problems []Problem, err error) {
	err = s.walk(func(path string) error {
		if _, derr := decodeEntry(path); derr != nil {
			problems = append(problems, Problem{Path: path, Reason: derr.Error()})
			return nil
		}
		sound++
		return nil
	})
	return sound, problems, err
}

// GC removes store entries that can no longer serve lookups: entries
// written under a different engine tag than the current one, and corrupt
// entries. With all set, every entry goes. It returns the number of entries
// removed and kept.
func (s *Store) GC(all bool) (removed, kept int, err error) {
	err = s.walk(func(path string) error {
		e, derr := decodeEntry(path)
		if !all && derr == nil && e.Tag == s.tag {
			kept++
			return nil
		}
		if rerr := os.Remove(path); rerr != nil {
			return fmt.Errorf("lab: gc: %w", rerr)
		}
		removed++
		return nil
	})
	return removed, kept, err
}
