package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"condaccess/internal/bench"
	"condaccess/internal/obs"
)

// Entry kinds, also the on-disk envelope discriminator.
const (
	KindTrial    = "trial"
	KindScenario = "scenario"
)

// Store is an on-disk, content-addressed trial store. Every entry is keyed
// by key = SHA-256(engine tag, kind, canonical spec): the name is the
// content address of the spec, so integrity is checkable offline and two
// stores can be diffed by coordinates without sharing any state.
//
// Two coexisting layouts back the same keyspace:
//
//   - Packed (the write path): append-only segment files under segments/
//     holding length-prefixed, checksummed records, plus an in-memory
//     index loaded once per Open from a sidecar (segment.go). A warm
//     lookup is a map probe and one ReadAt; puts buffer per stripe and
//     flush in batches with one fsync per flush.
//   - Loose (the historical layout): one self-describing JSON file per
//     entry under objects/<kk>/<key>.json, written by pre-pack binaries
//     (and by OpenLoose handles). Lookups consult the index first and fall
//     back to the loose probe, so old stores keep serving without
//     conversion; `calab pack` converts them in place.
type Store struct {
	dir   string
	tag   string
	loose bool // write loose objects instead of packed segments (OpenLoose)

	mu      sync.RWMutex
	index   map[string]recLoc // content key -> flushed packed record
	pending map[string][]byte // content key -> buffered envelope payload, not yet flushed
	readers map[int]*os.File  // open segment read handles
	covered map[int]int64     // indexed clean-prefix length per segment
	writers []*segmentWriter
	nextSeg int
	dirty   bool // in-memory index has entries the sidecar lacks

	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
	opens  atomic.Uint64 // file opens; warm packed sweeps keep this O(segments)

	// Write-back durability counters (segment.go): batched flushes, bytes
	// made durable (segment flushes and loose entry writes), and the time
	// spent inside flushes (fsync included) and loading the index at Open.
	flushes        atomic.Uint64
	bytesWritten   atomic.Uint64
	flushNanos     atomic.Int64
	fsyncNanos     atomic.Int64
	indexLoadNanos atomic.Int64

	// OnFlush, when non-nil, is called after each durable segment flush
	// with the number of records published and bytes written. It is
	// observational (obs event stream); set it before the store sees
	// traffic and never from a callback. Called with no store locks held
	// beyond the flushing stripe's.
	OnFlush func(records, bytes int)
}

// Store implements the harness's read-through/write-through contract,
// including the keyed fast path.
var (
	_ bench.TrialStore      = (*Store)(nil)
	_ bench.KeyedTrialStore = (*Store)(nil)
)

// writeStripes is the number of append buffers puts are striped across:
// enough that pool workers rarely contend on one buffer's lock, few enough
// that a cold run leaves a handful of segments, not one per trial.
const writeStripes = 4

// Open opens (creating if necessary) the store rooted at dir. Entries are
// keyed under the current bench.EngineTag(); entries written by other engine
// versions remain on disk — invisible to lookups — until GC. The packed
// index is loaded here, once: the sidecar if it is current, plus a scan of
// whatever segment bytes it does not cover.
func Open(dir string) (*Store, error) {
	return openTagged(dir, bench.EngineTag(), false)
}

// OpenLoose opens the store with the historical loose-object write path:
// every put is its own temp-file + rename under objects/. Packed segments
// are still read. It exists for benchmarking the two layouts against each
// other and for producing stores shaped like pre-pack binaries left them.
func OpenLoose(dir string) (*Store, error) {
	return openTagged(dir, bench.EngineTag(), true)
}

func openTagged(dir, tag string, loose bool) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("lab: opening store: %w", err)
	}
	s := &Store{
		dir: dir, tag: tag, loose: loose,
		index:   map[string]recLoc{},
		pending: map[string][]byte{},
		readers: map[int]*os.File{},
		covered: map[int]int64{},
	}
	for i := 0; i < writeStripes; i++ {
		s.writers = append(s.writers, &segmentWriter{st: s})
	}
	t0 := time.Now()
	s.loadSidecar()
	if err := s.refresh(); err != nil {
		return nil, err
	}
	s.indexLoadNanos.Add(int64(time.Since(t0)))
	return s, nil
}

// OpenExisting opens a store that must already exist. Read-only consumers
// (calab) use this so a mistyped path fails loudly instead of silently
// materializing an empty store and reporting zero entries.
func OpenExisting(dir string) (*Store, error) {
	if _, err := os.Stat(filepath.Join(dir, "objects")); err != nil {
		if _, serr := os.Stat(filepath.Join(dir, "segments")); serr != nil {
			return nil, fmt.Errorf("lab: %s is not a result store (no objects/ or segments/ directory): %w", dir, err)
		}
	}
	return Open(dir)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Tag returns the engine tag lookups are scoped to.
func (s *Store) Tag() string { return s.tag }

// StoreStats counts this handle's store traffic. After a fully warm sweep,
// Misses, Puts, Flushes, and BytesWritten are zero: every trial came from
// the store and none was simulated or written back. Opens counts file opens
// — a warm packed sweep holds it at O(segments) however many trials it
// serves. The nanosecond fields time the durability work itself: flushes
// (FsyncNanos is the fsync share of FlushNanos) and the one-time index load
// at Open.
type StoreStats struct {
	Hits   uint64
	Misses uint64
	Puts   uint64
	Opens  uint64

	Flushes      uint64 // durable write-back batches (one fsync each)
	BytesWritten uint64 // bytes made durable (segment flushes + loose writes)

	FlushNanos     int64
	FsyncNanos     int64
	IndexLoadNanos int64
}

// Stats returns the traffic counters accumulated on this handle.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load(), Opens: s.opens.Load(),
		Flushes: s.flushes.Load(), BytesWritten: s.bytesWritten.Load(),
		FlushNanos: s.flushNanos.Load(), FsyncNanos: s.fsyncNanos.Load(),
		IndexLoadNanos: s.indexLoadNanos.Load(),
	}
}

// Rollup converts the counters to the manifest's store section.
func (s StoreStats) Rollup() obs.StoreRollup {
	return obs.StoreRollup{
		Hits: s.Hits, Misses: s.Misses, Puts: s.Puts, Opens: s.Opens,
		Flushes: s.Flushes, BytesWritten: s.BytesWritten,
		FlushNanos: s.FlushNanos, FsyncNanos: s.FsyncNanos,
		IndexLoadNanos: s.IndexLoadNanos,
	}
}

// String renders the traffic line every -store command reports on stderr;
// "(100% warm)" is the re-run-executed-zero-trials signal CI greps for. A
// handle that served no lookups at all says so explicitly — "0% warm"
// would read as a fully cold run to the same greps. When the handle wrote
// anything back durably, the line gains the flush traffic; a fully warm run
// writes nothing and keeps the historical line byte for byte.
func (s StoreStats) String() string {
	total := s.Hits + s.Misses
	if total == 0 {
		return "store: no traffic"
	}
	pct := 100 * float64(s.Hits) / float64(total)
	line := fmt.Sprintf("store: %d hits, %d misses (%.0f%% warm)", s.Hits, s.Misses, pct)
	if s.Flushes > 0 || s.BytesWritten > 0 {
		line += fmt.Sprintf(", %d flushes (%s written)", s.Flushes, formatBytes(s.BytesWritten))
	}
	return line
}

// formatBytes renders a byte count with a binary unit, one decimal place
// past KiB.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// envelope is the entry payload format, shared by both layouts (a packed
// record's payload is exactly a loose file's contents). Spec and Result are
// the canonical serialized forms verbatim; Sum fingerprints Result so a
// lookup (and Verify) can detect payload corruption.
type envelope struct {
	Tag    string          `json:"tag"`
	Kind   string          `json:"kind"`
	Spec   json.RawMessage `json:"spec"`
	Sum    string          `json:"sum"`
	Result json.RawMessage `json:"result"`
}

// key derives the content address of a spec under tag.
func key(tag, kind string, spec []byte) string {
	h := sha256.New()
	io.WriteString(h, tag)
	h.Write([]byte{'\n'})
	io.WriteString(h, kind)
	h.Write([]byte{'\n'})
	h.Write(spec)
	return hex.EncodeToString(h.Sum(nil))
}

// payloadSum fingerprints a serialized result.
func payloadSum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, "objects", key[:2], key+".json")
}

// loadKey fetches the envelope payload for key, trying the in-process
// overlay of unflushed puts, then the packed index (one ReadAt), then the
// loose layout (one file read). It returns nil when the key is absent or
// its bytes fail their checksums.
func (s *Store) loadKey(key string) []byte {
	s.mu.RLock()
	data, buffered := s.pending[key]
	loc, indexed := s.index[key]
	s.mu.RUnlock()
	if buffered {
		return data
	}
	if indexed {
		if payload, err := s.readRecord(loc); err == nil {
			return payload
		}
		// A bad record (bitrot, lineage mismatch) falls through to the
		// loose probe; a miss re-simulates and heals.
	}
	payload, err := s.readLoose(key)
	if err != nil {
		return nil
	}
	return payload
}

// readLoose reads a loose entry file's raw contents.
func (s *Store) readLoose(key string) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if err == nil {
		s.opens.Add(1)
	}
	return data, err
}

// lookupKey reads the entry at key into out. Any defect — missing record,
// unparsable envelope, wrong kind, corrupt payload — is a miss: the caller
// re-simulates and the write-through overwrites the bad entry.
func (s *Store) lookupKey(kind, key string, out any) bool {
	data := s.loadKey(key)
	if data == nil {
		s.misses.Add(1)
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Kind != kind || payloadSum(env.Result) != env.Sum {
		s.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(env.Result, out); err != nil {
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// putKey writes the entry for (kind, spec) under its precomputed key: a
// buffered segment append on the packed path, an atomic loose file write on
// an OpenLoose handle.
func (s *Store) putKey(kind string, spec []byte, key string, res any) error {
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("lab: encoding result: %w", err)
	}
	data, err := json.Marshal(envelope{
		Tag: s.tag, Kind: kind, Spec: spec,
		Sum: payloadSum(payload), Result: payload,
	})
	if err != nil {
		return fmt.Errorf("lab: encoding entry: %w", err)
	}
	return s.putPayload(key, data)
}

// putLoose writes one loose entry file atomically (temp file + rename), so
// concurrent writers and interrupted runs never leave a partial entry under
// a valid name.
func (s *Store) putLoose(key string, data []byte) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	s.opens.Add(1)
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: writing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lab: writing entry: %w", err)
	}
	s.bytesWritten.Add(uint64(len(data) + 1))
	return nil
}

func readEnvelope(path string) (envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return envelope{}, err
	}
	return env, nil
}

// specKeyOf resolves a prepared spec's memoized content key, deriving and
// caching it on first use so the write-through after a miss never re-hashes.
func (s *Store) specKeyOf(kind string, ps *bench.PreparedSpec) string {
	if ps.Key == "" {
		ps.Key = key(s.tag, kind, ps.Spec)
	}
	return ps.Key
}

// LookupTrialSpec implements bench.KeyedTrialStore: the spec is already
// canonicalized, and the derived key is memoized on ps for the put.
func (s *Store) LookupTrialSpec(ps *bench.PreparedSpec) (bench.Result, bool) {
	var res bench.Result
	return res, s.lookupKey(KindTrial, s.specKeyOf(KindTrial, ps), &res)
}

// StoreTrialSpec implements bench.KeyedTrialStore.
func (s *Store) StoreTrialSpec(ps *bench.PreparedSpec, res bench.Result) error {
	return s.putKey(KindTrial, ps.Spec, s.specKeyOf(KindTrial, ps), res)
}

// LookupScenarioSpec implements bench.KeyedTrialStore.
func (s *Store) LookupScenarioSpec(ps *bench.PreparedSpec) (bench.ScenarioResult, bool) {
	var res bench.ScenarioResult
	return res, s.lookupKey(KindScenario, s.specKeyOf(KindScenario, ps), &res)
}

// StoreScenarioSpec implements bench.KeyedTrialStore.
func (s *Store) StoreScenarioSpec(ps *bench.PreparedSpec, res bench.ScenarioResult) error {
	return s.putKey(KindScenario, ps.Spec, s.specKeyOf(KindScenario, ps), res)
}

// LookupTrial implements bench.TrialStore.
func (s *Store) LookupTrial(w bench.Workload) (bench.Result, bool) {
	spec, err := bench.TrialSpecBytes(w)
	if err != nil {
		s.misses.Add(1)
		return bench.Result{}, false
	}
	return s.LookupTrialSpec(&bench.PreparedSpec{Spec: spec})
}

// StoreTrial implements bench.TrialStore.
func (s *Store) StoreTrial(w bench.Workload, res bench.Result) error {
	spec, err := bench.TrialSpecBytes(w)
	if err != nil {
		return fmt.Errorf("lab: encoding trial spec: %w", err)
	}
	return s.StoreTrialSpec(&bench.PreparedSpec{Spec: spec}, res)
}

// LookupScenario implements bench.TrialStore.
func (s *Store) LookupScenario(sw bench.ScenarioWorkload) (bench.ScenarioResult, bool) {
	spec, err := bench.ScenarioSpecBytes(sw)
	if err != nil {
		s.misses.Add(1)
		return bench.ScenarioResult{}, false
	}
	return s.LookupScenarioSpec(&bench.PreparedSpec{Spec: spec})
}

// StoreScenario implements bench.TrialStore.
func (s *Store) StoreScenario(sw bench.ScenarioWorkload, res bench.ScenarioResult) error {
	spec, err := bench.ScenarioSpecBytes(sw)
	if err != nil {
		return fmt.Errorf("lab: encoding scenario spec: %w", err)
	}
	return s.StoreScenarioSpec(&bench.PreparedSpec{Spec: spec}, res)
}

// Entry is one fully decoded store entry. Exactly one of the (Workload,
// Result) and (Scenario, ScenarioResult) pairs is set, per Kind.
type Entry struct {
	Key  string
	Tag  string
	Kind string

	Workload *bench.Workload
	Result   *bench.Result

	Scenario       *bench.ScenarioSpec
	ScenarioResult *bench.ScenarioResult
}

// SpecEntry is one store entry with its spec decoded and its result left as
// raw bytes. Cell grouping and diffing need every entry's coordinates and
// seed (the spec) but only one number from the result, so they read entries
// spec-first and decode the payload lazily instead of materializing every
// trial's full Result — tail histograms, phase segments and all.
type SpecEntry struct {
	Key  string
	Tag  string
	Kind string

	Workload *bench.Workload     // KindTrial
	Scenario *bench.ScenarioSpec // KindScenario

	rawResult json.RawMessage
}

// Seed returns the entry's spec seed.
func (e *SpecEntry) Seed() uint64 {
	if e.Kind == KindScenario {
		return e.Scenario.Seed
	}
	return e.Workload.Seed
}

// Throughput partially decodes just the throughput from the raw result.
func (e *SpecEntry) Throughput() float64 {
	var t struct{ Throughput float64 }
	if json.Unmarshal(e.rawResult, &t) != nil {
		return 0
	}
	return t.Throughput
}

// Decode materializes the full entry, result payload included.
func (e *SpecEntry) Decode() (Entry, error) {
	full := Entry{Key: e.Key, Tag: e.Tag, Kind: e.Kind, Workload: e.Workload, Scenario: e.Scenario}
	if e.Kind == KindScenario {
		full.ScenarioResult = new(bench.ScenarioResult)
		if err := json.Unmarshal(e.rawResult, full.ScenarioResult); err != nil {
			return Entry{}, fmt.Errorf("decoding scenario result: %w", err)
		}
		return full, nil
	}
	full.Result = new(bench.Result)
	if err := json.Unmarshal(e.rawResult, full.Result); err != nil {
		return Entry{}, fmt.Errorf("decoding trial result: %w", err)
	}
	return full, nil
}

// walk visits every loose entry file under the store in deterministic
// (sorted path) order.
func (s *Store) walk(fn func(path string) error) error {
	root := filepath.Join(s.dir, "objects")
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("lab: walking store: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

// specEntryOf validates an envelope against its claimed content address and
// decodes its spec, leaving the result raw.
func specEntryOf(name string, env envelope) (SpecEntry, error) {
	if got := key(env.Tag, env.Kind, env.Spec); got != name {
		return SpecEntry{}, fmt.Errorf("content address mismatch: entry %s, spec hashes to %s", name, got)
	}
	if payloadSum(env.Result) != env.Sum {
		return SpecEntry{}, errors.New("result payload does not match its fingerprint")
	}
	e := SpecEntry{Key: name, Tag: env.Tag, Kind: env.Kind, rawResult: env.Result}
	switch env.Kind {
	case KindTrial:
		e.Workload = new(bench.Workload)
		if err := json.Unmarshal(env.Spec, e.Workload); err != nil {
			return SpecEntry{}, fmt.Errorf("decoding trial spec: %w", err)
		}
	case KindScenario:
		e.Scenario = new(bench.ScenarioSpec)
		if err := json.Unmarshal(env.Spec, e.Scenario); err != nil {
			return SpecEntry{}, fmt.Errorf("decoding scenario spec: %w", err)
		}
	default:
		return SpecEntry{}, fmt.Errorf("unknown entry kind %q", env.Kind)
	}
	return e, nil
}

// forEachSpecEntry visits every valid entry across both layouts, packed
// index winners first, then loose files whose key the index doesn't hold
// (the packed write path is newer than any loose leftover). Corrupt entries
// are skipped — Verify reports them. Whole-store reads flush and refresh
// first, so they see every durable record, this handle's and others'.
func (s *Store) forEachSpecEntry(fn func(SpecEntry)) error {
	if err := s.Flush(); err != nil {
		return err
	}
	if err := s.refresh(); err != nil {
		return err
	}
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	packed := map[string]bool{}
	for _, k := range keys {
		s.mu.RLock()
		loc, ok := s.index[k]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		payload, err := s.readRecord(loc)
		if err != nil {
			continue
		}
		var env envelope
		if json.Unmarshal(payload, &env) != nil {
			continue
		}
		e, err := specEntryOf(k, env)
		if err != nil {
			continue
		}
		packed[k] = true
		fn(e)
	}
	return s.walk(func(path string) error {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		if packed[name] {
			return nil
		}
		env, err := readEnvelope(path)
		if err != nil {
			return nil
		}
		s.opens.Add(1)
		e, err := specEntryOf(name, env)
		if err != nil {
			return nil
		}
		fn(e)
		return nil
	})
}

// SpecEntries reads every valid entry (all engine tags, both layouts) with
// specs decoded and results raw, in deterministic (sorted key) order.
func (s *Store) SpecEntries() ([]SpecEntry, error) {
	var entries []SpecEntry
	err := s.forEachSpecEntry(func(e SpecEntry) { entries = append(entries, e) })
	if err != nil {
		return nil, err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries, nil
}

// Entries fully decodes every valid entry in the store (all engine tags,
// both layouts), in deterministic order. Corrupt entries are skipped —
// Verify reports them.
func (s *Store) Entries() ([]Entry, error) {
	specs, err := s.SpecEntries()
	if err != nil {
		return nil, err
	}
	var entries []Entry
	for i := range specs {
		e, err := specs[i].Decode()
		if err != nil {
			continue
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Problem is one integrity defect found by Verify.
type Problem struct {
	Path   string
	Reason string
}

// verifyPayload checks one entry payload end to end: envelope parses, the
// claimed key matches the content address of (tag, kind, spec), the result
// payload matches its fingerprint, and the spec decodes under its kind.
func verifyPayload(name string, payload []byte) (envelope, error) {
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return env, err
	}
	_, err := specEntryOf(name, env)
	return env, err
}

// Verify checks the integrity of every entry in both layouts. For loose
// entries: the envelope parses, the file name matches the content address,
// and the payload matches its fingerprint. For packed segments every
// record is re-framed, re-checksummed, and verified the same way; a
// truncated or corrupt tail (the residue of a crashed flush) is reported
// once per segment — lookups already ignore it, and Pack drops it. It
// returns the number of sound records alongside the defects.
func (s *Store) Verify() (sound int, problems []Problem, err error) {
	if err := s.Flush(); err != nil {
		return 0, nil, err
	}
	if err := s.refresh(); err != nil {
		return 0, nil, err
	}
	segs, err := s.listSegments()
	if err != nil {
		return 0, nil, err
	}
	for _, seg := range segs {
		path := s.segmentPath(seg)
		f, ferr := os.Open(path)
		if ferr != nil {
			return 0, nil, fmt.Errorf("lab: %w", ferr)
		}
		s.opens.Add(1)
		st, serr := f.Stat()
		if serr != nil {
			f.Close()
			return 0, nil, fmt.Errorf("lab: %w", serr)
		}
		end, serr := scanSegment(f, 0, func(key string, loc recLoc, payload []byte) error {
			if _, verr := verifyPayload(key, payload); verr != nil {
				problems = append(problems, Problem{
					Path:   fmt.Sprintf("%s@%d", path, loc.off),
					Reason: verr.Error(),
				})
				return nil
			}
			sound++
			return nil
		}, seg)
		f.Close()
		if serr != nil {
			return 0, nil, serr
		}
		if end < st.Size() {
			problems = append(problems, Problem{
				Path:   fmt.Sprintf("%s@%d", path, end),
				Reason: fmt.Sprintf("truncated or checksum-corrupt tail record (%d trailing bytes ignored; calab pack drops them)", st.Size()-end),
			})
		}
	}
	err = s.walk(func(path string) error {
		data, derr := os.ReadFile(path)
		if derr == nil {
			s.opens.Add(1)
			_, derr = verifyPayload(strings.TrimSuffix(filepath.Base(path), ".json"), data)
		}
		if derr != nil {
			problems = append(problems, Problem{Path: path, Reason: derr.Error()})
			return nil
		}
		sound++
		return nil
	})
	return sound, problems, err
}

// GC removes store entries that can no longer serve lookups: entries
// written under a different engine tag than the current one, and corrupt
// entries. With all set, every entry goes. Loose entries are unlinked;
// packed survivors are compacted into a fresh segment (which also drops
// superseded records and crash residue). It returns the number of entries
// removed and kept.
func (s *Store) GC(all bool) (removed, kept int, err error) {
	if err := s.Flush(); err != nil {
		return 0, 0, err
	}
	if err := s.refresh(); err != nil {
		return 0, 0, err
	}

	// Loose layout: unlink losers file by file, as always; survivors stay
	// loose (conversion is Pack's, not GC's).
	err = s.walk(func(path string) error {
		keep := false
		if !all {
			if data, derr := os.ReadFile(path); derr == nil {
				s.opens.Add(1)
				name := strings.TrimSuffix(filepath.Base(path), ".json")
				env, verr := verifyPayload(name, data)
				keep = verr == nil && env.Tag == s.tag
			}
		}
		if keep {
			kept++
			return nil
		}
		if rerr := os.Remove(path); rerr != nil {
			return fmt.Errorf("lab: gc: %w", rerr)
		}
		removed++
		return nil
	})
	if err != nil {
		return removed, kept, err
	}

	// Packed layout: prune the index of losers, then compact the
	// survivors into a fresh segment (which also drops superseded records
	// and crash residue).
	for _, key := range s.indexKeys() {
		s.mu.RLock()
		loc, ok := s.index[key]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		keep := false
		if !all {
			if payload, rerr := s.readRecord(loc); rerr == nil {
				env, verr := verifyPayload(key, payload)
				keep = verr == nil && env.Tag == s.tag
			}
		}
		if keep {
			kept++
			continue
		}
		s.mu.Lock()
		delete(s.index, key)
		s.dirty = true
		s.mu.Unlock()
		removed++
	}
	if err := s.compactSegments(nil); err != nil {
		return removed, kept, err
	}
	return removed, kept, nil
}

// indexKeys snapshots the index's keys in sorted order.
func (s *Store) indexKeys() []string {
	s.mu.RLock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys
}
