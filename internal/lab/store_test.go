package lab

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"condaccess/internal/bench"
	"condaccess/internal/scenario"
)

func testSweepConfig(store bench.TrialStore) bench.SweepConfig {
	return bench.SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"},
		Threads: []int{1, 2}, Updates: []int{0, 100},
		KeyRange: 64, Ops: 120, Seed: 11, Trials: 2,
		Store: store,
	}
}

// TestWarmSweepByteIdentical is the subsystem's acceptance test: a sweep
// re-run against a warm store must execute zero simulator trials (no store
// misses, no store puts) and reproduce the cold run's points, table, and CSV
// byte for byte.
func TestWarmSweepByteIdentical(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSweepConfig(st)
	cold, err := bench.Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	jobs := uint64(2 * 2 * 2 * cfg.Trials) // schemes x threads x updates x trials
	if stats.Hits != 0 || stats.Misses != jobs || stats.Puts != jobs {
		t.Fatalf("cold run traffic %+v, want 0 hits / %d misses / %d puts", stats, jobs, jobs)
	}

	warm, err := bench.Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats = st.Stats()
	if stats.Hits != jobs || stats.Misses != jobs || stats.Puts != jobs {
		t.Fatalf("warm run traffic %+v, want %d hits and no new misses/puts (zero trials simulated)", stats, jobs)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm points diverge from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	for _, u := range cfg.Updates {
		if a, b := bench.FormatTable(cold, u), bench.FormatTable(warm, u); a != b {
			t.Fatalf("u=%d: warm table not byte-identical:\ncold:\n%s\nwarm:\n%s", u, a, b)
		}
	}
	var coldCSV, warmCSV strings.Builder
	if err := bench.WriteCSV(&coldCSV, cfg.DS, cold); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteCSV(&warmCSV, cfg.DS, warm); err != nil {
		t.Fatal(err)
	}
	if coldCSV.String() != warmCSV.String() {
		t.Fatal("warm CSV not byte-identical to cold CSV")
	}
}

// TestWarmSweepParallelPath: the pool path must hit the same store entries
// the sequential path wrote, and reproduce its points exactly.
func TestWarmSweepParallelPath(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testSweepConfig(st)
	cold, err := bench.Sweep(cfg, nil) // sequential cold fill
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.Workers = runtime.GOMAXPROCS(0)
	warm, err := bench.Sweep(par, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Puts != got.Misses || got.Hits == 0 {
		t.Fatalf("parallel warm run traffic %+v, want pure hits", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("parallel warm points diverge from sequential cold points")
	}
}

// TestScenarioWarmRun: RunScenario must round-trip a full ScenarioResult —
// per-phase segments, prefill, latency percentiles — through the store.
func TestScenarioWarmRun(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Preset("read-burst")
	if err != nil {
		t.Fatal(err)
	}
	sw := bench.ScenarioWorkload{
		DS: "list", Scheme: "ca", Threads: 4, KeyRange: 128, Seed: 7,
		RecordLatency: true, Scenario: sc,
	}
	r := bench.Runner{Store: st}
	cold, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm scenario result diverges:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	if got := st.Stats(); got.Hits != 1 || got.Misses != 1 || got.Puts != 1 {
		t.Fatalf("scenario traffic %+v, want 1 hit / 1 miss / 1 put", got)
	}
}

// TestTimelineWarmRoundTrip: the windowed timeline travels through the
// store envelope losslessly — a warm hit's timeline is deeply equal to the
// simulated one and re-marshals to identical bytes, on both the stationary
// and scenario paths.
func TestTimelineWarmRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := bench.Workload{
		DS: "list", Scheme: "rcu", Threads: 2, KeyRange: 64, UpdatePct: 100,
		OpsPerThread: 150, Seed: 5, RecordTimeline: true, TimelineWindow: 8192,
	}
	r := bench.Runner{Store: st}
	cold, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Hits != 1 {
		t.Fatalf("store traffic %+v, want exactly one hit", got)
	}
	if warm.Timeline == nil || !reflect.DeepEqual(cold.Timeline, warm.Timeline) {
		t.Fatalf("warm timeline diverges:\ncold: %+v\nwarm: %+v", cold.Timeline, warm.Timeline)
	}
	cb, err := json.Marshal(cold.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(warm.Timeline)
	if err != nil {
		t.Fatal(err)
	}
	if string(cb) != string(wb) {
		t.Fatalf("warm timeline bytes diverge:\ncold: %s\nwarm: %s", cb, wb)
	}

	sc, err := scenario.Preset(scenario.PresetChurnDrain)
	if err != nil {
		t.Fatal(err)
	}
	sw := bench.ScenarioWorkload{
		DS: "list", Scheme: "rcu", Threads: 2, KeyRange: 64, Seed: 5,
		RecordTimeline: true, Scenario: sc,
	}
	scold, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	swarm, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if swarm.Timeline == nil || !reflect.DeepEqual(scold.Timeline, swarm.Timeline) {
		t.Fatal("warm scenario trial timeline diverges")
	}
	if len(swarm.Phases) != len(scold.Phases) {
		t.Fatal("phase count diverges")
	}
	for i := range scold.Phases {
		if !reflect.DeepEqual(scold.Phases[i].Timeline, swarm.Phases[i].Timeline) {
			t.Errorf("phase %s timeline diverges", scold.Phases[i].Name)
		}
	}
}

// TestRunManyWarm: the workload-list pool must be cacheable too.
func TestRunManyWarm(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ws := []bench.Workload{
		{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1},
		{DS: "stack", Scheme: "none", Threads: 1, KeyRange: 32, UpdatePct: 100, OpsPerThread: 60, Seed: 2},
	}
	cold, err := bench.RunMany(ws, 2, st)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := bench.RunMany(ws, 1, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm RunMany results diverge from cold")
	}
	if got := st.Stats(); got.Hits != 2 || got.Puts != 2 {
		t.Fatalf("RunMany traffic %+v, want 2 hits / 2 puts", got)
	}
}

// TestSpecsKeySeparately: any spec difference — even just the seed — must
// address a different entry.
func TestSpecsKeySeparately(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1}
	r := bench.Runner{Store: st}
	if _, err := r.Run(w); err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Seed++
	if _, ok := st.LookupTrial(w2); ok {
		t.Fatal("seed change still hit the original entry")
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	if entries[0].Kind != KindTrial || entries[0].Workload.Seed != 1 {
		t.Fatalf("decoded entry mismatch: %+v", entries[0])
	}
}

// entryPaths lists the store's entry files.
func entryPaths(t *testing.T, st *Store) []string {
	t.Helper()
	var paths []string
	err := filepath.WalkDir(filepath.Join(st.Dir(), "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestCorruptionIsAMissAndVerifyReportsIt: a flipped payload byte must fail
// the fingerprint check — lookups treat the entry as cold and re-simulation
// repairs it, and Verify names the defect.
func TestCorruptionIsAMissAndVerifyReportsIt(t *testing.T) {
	// A loose handle, so the entry is a file this test can flip bytes in;
	// packed-record corruption is covered by the segment crash tests.
	st, err := OpenLoose(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w := bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1}
	r := bench.Runner{Store: st}
	res, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	paths := entryPaths(t, st)
	if len(paths) != 1 {
		t.Fatalf("entry files = %d, want 1", len(paths))
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside the result payload without breaking the JSON.
	corrupt := strings.Replace(string(data), `"result":{"W":{"DS"`, `"result":{"X":{"DS"`, 1)
	if corrupt == string(data) {
		t.Fatal("corruption did not apply; envelope layout changed?")
	}
	if err := os.WriteFile(paths[0], []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.LookupTrial(w); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	sound, problems, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if sound != 0 || len(problems) != 1 {
		t.Fatalf("verify: %d sound, %d problems; want 0/1", sound, len(problems))
	}
	if !strings.Contains(problems[0].Reason, "fingerprint") {
		t.Fatalf("problem reason %q does not name the fingerprint", problems[0].Reason)
	}

	// Re-running repairs the entry in place.
	repaired, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, repaired) {
		t.Fatal("repaired result diverges from original")
	}
	if sound, problems, _ = st.Verify(); sound != 1 || len(problems) != 0 {
		t.Fatalf("after repair: %d sound, %d problems; want 1/0", sound, len(problems))
	}
}

// TestGCRemovesForeignTags: entries written under another engine tag are
// unreachable and must be collected; current-tag entries stay.
func TestGCRemovesForeignTags(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenLoose(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1}
	r := bench.Runner{Store: st}
	res, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}

	// A second handle pinned to a stale engine tag writes a foreign entry.
	old, err := openTagged(dir, "0000deadbeef0000", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.StoreTrial(w, res); err != nil {
		t.Fatal(err)
	}
	if len(entryPaths(t, st)) != 2 {
		t.Fatal("foreign-tag entry landed on the current entry's path")
	}

	removed, kept, err := st.GC(false)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || kept != 1 {
		t.Fatalf("gc removed %d kept %d, want 1/1", removed, kept)
	}
	if _, ok := st.LookupTrial(w); !ok {
		t.Fatal("gc removed the current-tag entry")
	}

	removed, kept, err = st.GC(true)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || kept != 0 {
		t.Fatalf("gc -all removed %d kept %d, want 1/0", removed, kept)
	}
}

// TestOpenExisting: read-only consumers must fail loudly on a mistyped
// path instead of materializing an empty store there.
func TestOpenExisting(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nosuchstore")
	if _, err := OpenExisting(missing); err == nil {
		t.Fatal("nonexistent store opened")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatal("OpenExisting materialized the missing store")
	}
	if _, err := Open(missing); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenExisting(missing); err != nil {
		t.Fatalf("existing store refused: %v", err)
	}
}

// TestEngineTagScopesLookups: a handle with a different tag must not see
// entries written under the current tag.
func TestEngineTagScopesLookups(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := bench.Workload{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1}
	r := bench.Runner{Store: st}
	if _, err := r.Run(w); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	other, err := openTagged(dir, "ffffffffffffffff", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := other.LookupTrial(w); ok {
		t.Fatal("entry visible across engine tags")
	}
}

// TestTailSurvivesStoreEnvelope: the tail-latency histograms (per-kind and
// per-attribution partitions, pause distribution, sparse bucket arrays)
// round-trip through the serialized envelope exactly, on both the stationary
// and scenario paths — a warm hit reproduces the cold run's whole Tail.
func TestTailSurvivesStoreEnvelope(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Runner{Store: st}
	w := bench.Workload{
		DS: "list", Scheme: "rcu", Threads: 4, KeyRange: 64,
		UpdatePct: 100, OpsPerThread: 300, Seed: 9, RecordLatency: true,
	}
	cold, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Tail == nil || cold.Tail.Pause.Count() == 0 {
		t.Fatal("cold rcu run recorded no reclamation pauses; workload too small to exercise the envelope")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm result (incl. Tail) diverges from cold")
	}

	sw := bench.ScenarioWorkload{
		DS: "list", Scheme: "hp", Threads: 4, KeyRange: 64, Seed: 9,
		RecordLatency: true,
		Scenario: scenario.Scenario{
			Name: "tail-envelope",
			Phases: []scenario.Phase{
				{Name: "churn", Ops: 200, Weights: scenario.Weights{Insert: 50, Delete: 50}},
				{Name: "read", Ops: 100, Weights: scenario.Weights{Read: 1}},
			},
		},
	}
	scold, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	swarm, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if scold.Tail == nil || scold.Phases[0].Tail == nil {
		t.Fatal("scenario cold run carries no tail records")
	}
	if !reflect.DeepEqual(scold, swarm) {
		t.Fatalf("warm scenario result (incl. per-phase Tails) diverges from cold")
	}
}
