package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"condaccess/internal/bench"
)

// trialW builds a cheap stationary workload distinguished only by seed.
func trialW(seed uint64) bench.Workload {
	return bench.Workload{
		DS: "list", Scheme: "ca", Threads: 1, KeyRange: 16,
		UpdatePct: 50, OpsPerThread: 30, Seed: seed,
	}
}

// TestStoreStatsString: the traffic line must say "no traffic" when the
// handle served no lookups — "0% warm" would read as a fully cold run to the
// CI greps — and keep the exact hit/miss format otherwise.
func TestStoreStatsString(t *testing.T) {
	cases := []struct {
		s    StoreStats
		want string
	}{
		{StoreStats{}, "store: no traffic"},
		{StoreStats{Puts: 3, Opens: 7}, "store: no traffic"}, // puts/opens alone are not lookups
		{StoreStats{Hits: 8}, "store: 8 hits, 0 misses (100% warm)"},
		{StoreStats{Misses: 8}, "store: 0 hits, 8 misses (0% warm)"},
		{StoreStats{Hits: 3, Misses: 1}, "store: 3 hits, 1 misses (75% warm)"},
		// The flush suffix appears only when flush traffic happened, so warm
		// runs (and their CI greps) keep the bare line.
		{StoreStats{Hits: 1, Misses: 7, Flushes: 2, BytesWritten: 4096},
			"store: 1 hits, 7 misses (12% warm), 2 flushes (4.0 KiB written)"},
		{StoreStats{Misses: 3, BytesWritten: 100}, "store: 0 hits, 3 misses (0% warm), 0 flushes (100 B written)"},
		{StoreStats{Misses: 2, Flushes: 1, BytesWritten: 3 << 20},
			"store: 0 hits, 2 misses (0% warm), 1 flushes (3.0 MiB written)"},
	}
	for _, tc := range cases {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.s, got, tc.want)
		}
	}
}

// TestTruncatedTailRecovers simulates a crash mid-flush: every segment loses
// its final byte. The truncated tail record must be ignored (not served, not
// fatal), its lookups must miss, re-running must heal the store in place,
// and Pack must drop the crash residue for good.
func TestTruncatedTailRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 6
	r := bench.Runner{Store: st}
	var want []bench.Result
	for seed := uint64(1); seed <= trials; seed++ {
		res, err := r.Run(trialW(seed))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop one byte off every segment: each loses exactly its tail record.
	segs, err := st.listSegments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	for _, seg := range segs {
		path := st.segmentPath(seg)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, info.Size()-1); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st2.SpecEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != trials-len(segs) {
		t.Fatalf("entries after truncation = %d, want %d (one lost per segment)", len(entries), trials-len(segs))
	}
	if _, problems, err := st2.Verify(); err != nil || len(problems) != len(segs) {
		t.Fatalf("verify: %d problems (err %v), want one truncated-tail report per segment", len(problems), err)
	}

	// Healing: re-running misses exactly the lost trials and re-appends them.
	r2 := bench.Runner{Store: st2}
	for seed := uint64(1); seed <= trials; seed++ {
		res, err := r2.Run(trialW(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want[seed-1]) {
			t.Fatalf("seed %d: healed result diverges from original", seed)
		}
	}
	stats := st2.Stats()
	if stats.Misses != uint64(len(segs)) || stats.Hits != trials-uint64(len(segs)) {
		t.Fatalf("heal traffic %+v, want %d misses / %d hits", stats, len(segs), trials-len(segs))
	}
	for seed := uint64(1); seed <= trials; seed++ {
		if _, ok := st2.LookupTrial(trialW(seed)); !ok {
			t.Fatalf("seed %d still missing after heal", seed)
		}
	}

	// Pack drops the garbage tails; the store verifies clean.
	if packed, _, err := st2.Pack(); err != nil || packed != trials {
		t.Fatalf("pack: %d entries (err %v), want %d", packed, err, trials)
	}
	sound, problems, err := st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if sound != trials || len(problems) != 0 {
		t.Fatalf("after pack: %d sound, %d problems, want %d/0", sound, len(problems), trials)
	}
}

// TestCorruptTailChecksumIgnored: a bit flipped in a segment's final record
// must fail the CRC — the scan stops there, the record's lookups miss, and
// re-running heals. The sidecar is removed first so the reopen takes the
// full-scan path the checksum protects.
func TestCorruptTailChecksumIgnored(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 3
	r := bench.Runner{Store: st}
	for seed := uint64(1); seed <= trials; seed++ {
		if _, err := r.Run(trialW(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := st.listSegments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (err %v)", segs, err)
	}
	path := st.segmentPath(segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // inside the last record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "segments", "index.json")); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st2.SpecEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != trials-1 {
		t.Fatalf("entries after corruption = %d, want %d", len(entries), trials-1)
	}
	_, problems, err := st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Reason, "tail") {
		t.Fatalf("verify problems = %+v, want one corrupt-tail report", problems)
	}

	r2 := bench.Runner{Store: st2}
	for seed := uint64(1); seed <= trials; seed++ {
		if _, err := r2.Run(trialW(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st2.Stats(); got.Misses != 1 || got.Hits != trials-1 {
		t.Fatalf("heal traffic %+v, want 1 miss / %d hits", got, trials-1)
	}
}

// TestConcurrentKeyedAppendsAndReads drives the striped write-back and the
// keyed lookup path from many goroutines at once — the parallel-sweep shape,
// checked under -race: writers must see their own unflushed puts, and a
// concurrent reader probing the same keyspace must never tear.
func TestConcurrentKeyedAppendsAndReads(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	spec := func(g, i int) []byte {
		b, err := json.Marshal(map[string]int{"worker": g, "trial": i})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent keyed reader over the whole keyspace
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for g := 0; g < workers; g++ {
				for i := 0; i < per; i++ {
					ps := &bench.PreparedSpec{Spec: spec(g, i)}
					if res, ok := st.LookupTrialSpec(ps); ok && res.Throughput != float64(g*per+i) {
						t.Errorf("worker %d trial %d: read tore: %+v", g, i, res)
						return
					}
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < workers; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < per; i++ {
				ps := &bench.PreparedSpec{Spec: spec(g, i)}
				want := bench.Result{Throughput: float64(g*per + i)}
				if err := st.StoreTrialSpec(ps, want); err != nil {
					t.Error(err)
					return
				}
				// The writing handle must see its own put immediately, even
				// while it is still buffered.
				if got, ok := st.LookupTrialSpec(ps); !ok || got.Throughput != want.Throughput {
					t.Errorf("worker %d trial %d: own put invisible (ok=%v)", g, i, ok)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(done)
	readers.Wait()

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Puts != workers*per {
		t.Fatalf("puts = %d, want %d", got.Puts, workers*per)
	}
}

// TestWarmPackedSweepOpensNoFiles is the perf acceptance shape: a 540-trial
// sweep re-run against a packed store must serve every trial from the index
// without opening a single file past the handful Open itself touched — and
// reproduce the cold run's table byte for byte.
func TestWarmPackedSweepOpensNoFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := bench.SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"}, Threads: []int{1, 2},
		Updates: []int{0, 50, 100}, KeyRange: 16, Ops: 20, Seed: 3, Trials: 45,
		Store: st,
	}
	const jobs = 2 * 2 * 3 * 45 // 540
	cold, err := bench.Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st2
	base := st2.Stats().Opens // sidecar + segments, paid once at Open
	warm, err := bench.Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats := st2.Stats()
	if stats.Hits != jobs || stats.Misses != 0 {
		t.Fatalf("warm traffic %+v, want %d pure hits", stats, jobs)
	}
	if stats.Opens != base {
		t.Fatalf("warm sweep opened %d files beyond the %d at Open; packed lookups must be pure ReadAt", stats.Opens-base, base)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm packed sweep diverges from cold")
	}
	for _, u := range cfg.Updates {
		if a, b := bench.FormatTable(cold, u), bench.FormatTable(warm, u); a != b {
			t.Fatalf("u=%d: warm table not byte-identical", u)
		}
	}
	if n := len(segmentsOn(t, dir)); n > writeStripes {
		t.Fatalf("cold 540-trial run left %d segments, want at most %d stripes", n, writeStripes)
	}
}

// segmentsOn lists segment files under dir.
func segmentsOn(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "segments", "*.pack"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRebuildIndexMatchesScan: RebuildIndex from segment bytes alone must
// reconstruct exactly the entries a fresh full scan sees.
func TestRebuildIndexMatchesScan(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const trials = 10
	r := bench.Runner{Store: st}
	for seed := uint64(1); seed <= trials; seed++ {
		if _, err := r.Run(trialW(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Poison the sidecar; RebuildIndex must not need it.
	side := filepath.Join(dir, "segments", "index.json")
	if err := os.WriteFile(side, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, segments, err := st2.RebuildIndex()
	if err != nil {
		t.Fatal(err)
	}
	if entries != trials || segments == 0 {
		t.Fatalf("rebuild: %d entries / %d segments, want %d entries", entries, segments, trials)
	}
	for seed := uint64(1); seed <= trials; seed++ {
		if _, ok := st2.LookupTrial(trialW(seed)); !ok {
			t.Fatalf("seed %d unreachable after rebuild", seed)
		}
	}
	// The rewritten sidecar must make the next Open cheap and complete.
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	es, err := st3.SpecEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != trials {
		t.Fatalf("after rebuild+reopen: %d entries, want %d", len(es), trials)
	}
}

// TestMixedLayoutLookupAndGC: a store holding both loose and packed entries
// must serve lookups from both, prefer the packed copy, and gc both layouts.
func TestMixedLayoutLookupAndGC(t *testing.T) {
	dir := t.TempDir()
	loose, err := OpenLoose(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Runner{Store: loose}
	if _, err := r.Run(trialW(1)); err != nil {
		t.Fatal(err)
	}

	packed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rp := bench.Runner{Store: packed}
	if _, ok := packed.LookupTrial(trialW(1)); !ok {
		t.Fatal("packed handle cannot read the loose entry")
	}
	if _, err := rp.Run(trialW(2)); err != nil {
		t.Fatal(err)
	}
	// A foreign-tag packed entry, to be collected.
	old, err := openTagged(dir, "0000deadbeef0000", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.StoreTrial(trialW(3), bench.Result{}); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	removed, kept, err := packed.GC(false)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || kept != 2 {
		t.Fatalf("gc removed %d kept %d, want 1/2 (foreign packed gone, loose+current kept)", removed, kept)
	}
	if _, ok := packed.LookupTrial(trialW(1)); !ok {
		t.Fatal("loose survivor lost after gc")
	}
	if _, ok := packed.LookupTrial(trialW(2)); !ok {
		t.Fatal("packed survivor lost after gc")
	}
	if err := packed.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLazySpecEntriesDoNotDecodeResults: SpecEntry must carry the raw result
// until asked — Throughput() partial-decodes one field, Decode() the rest.
func TestLazySpecEntriesDoNotDecodeResults(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := bench.Runner{Store: st}
	res, err := r.Run(trialW(1))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := st.SpecEntries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(entries))
	}
	e := entries[0]
	if e.Workload == nil || e.Seed() != 1 {
		t.Fatalf("spec not decoded: %+v", e)
	}
	if got := e.Throughput(); got != res.Throughput {
		t.Fatalf("lazy throughput %v, want %v", got, res.Throughput)
	}
	full, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*full.Result, res) {
		t.Fatal("Decode() diverges from the stored result")
	}
	// A scenario-shaped raw result must partial-decode the same way.
	if fmt.Sprintf("%.2f", e.Throughput()) != fmt.Sprintf("%.2f", res.Throughput) {
		t.Fatal("throughput unstable across repeated lazy decodes")
	}
}

// TestFlushCountersAccumulate pins the cumulative flush statistics the
// store summary line and the run manifests surface: every durable segment
// flush bumps Flushes and BytesWritten, the OnFlush hook sees the same
// totals, and the timing counters are live.
func TestFlushCountersAccumulate(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var hookFlushes, hookRecords, hookBytes int
	st.OnFlush = func(records, bytes int) {
		hookFlushes++
		hookRecords += records
		hookBytes += bytes
	}
	const trials = 5
	r := bench.Runner{Store: st}
	for seed := uint64(1); seed <= trials; seed++ {
		if _, err := r.Run(trialW(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Flushes == 0 || s.BytesWritten == 0 {
		t.Fatalf("flush counters empty after %d puts: %+v", trials, s)
	}
	if int(s.Flushes) != hookFlushes {
		t.Errorf("Flushes = %d, hook saw %d", s.Flushes, hookFlushes)
	}
	if hookRecords != trials {
		t.Errorf("hook records = %d, want %d (every put published once)", hookRecords, trials)
	}
	if s.BytesWritten != uint64(hookBytes) {
		t.Errorf("BytesWritten = %d, hook saw %d", s.BytesWritten, hookBytes)
	}
	if s.FlushNanos <= 0 || s.FsyncNanos <= 0 {
		t.Errorf("flush/fsync timings = %d/%d, want > 0", s.FlushNanos, s.FsyncNanos)
	}
	roll := s.Rollup()
	if roll.Flushes != s.Flushes || roll.BytesWritten != s.BytesWritten || roll.FsyncNanos != s.FsyncNanos {
		t.Errorf("Rollup diverges from Stats: %+v vs %+v", roll, s)
	}
}

// TestOversizedRecordRejectedAtWriteTime: frameRecord enforces the same
// length bound the scan side does. Without the write-side check, one
// oversized payload is silently framed, then poisons every later record in
// its segment on index rebuild (scans stop at the first bad frame). The put
// must fail loudly, leave no phantom entry in the pending overlay, and leave
// the segment cleanly scannable for the records around it.
func TestOversizedRecordRejectedAtWriteTime(t *testing.T) {
	old := maxRecordLen
	maxRecordLen = 4096
	t.Cleanup(func() { maxRecordLen = old })

	// frameRecord itself refuses the oversized payload.
	key := strings.Repeat("ab", 32)
	if _, err := frameRecord(nil, key, make([]byte, 8192)); err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("frameRecord(oversized) err = %v, want frame-limit error", err)
	}

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StoreTrial(trialW(1), bench.Result{Throughput: 1}); err != nil {
		t.Fatal(err)
	}
	big := trialW(2)
	big.DS = "list" + strings.Repeat("x", 8192)
	if err := st.StoreTrial(big, bench.Result{}); err == nil || !strings.Contains(err.Error(), "frame limit") {
		t.Fatalf("StoreTrial(oversized) err = %v, want frame-limit error", err)
	}
	if _, ok := st.LookupTrial(big); ok {
		t.Fatal("rejected oversized entry still served from the pending overlay")
	}
	if err := st.StoreTrial(trialW(3), bench.Result{Throughput: 3}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: both small records survive, the segment verifies clean end to
	// end (no poisoned tail), and the oversized spec is still a miss.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.LookupTrial(trialW(1)); !ok {
		t.Error("record before the rejected put is gone")
	}
	if _, ok := st2.LookupTrial(trialW(3)); !ok {
		t.Error("record after the rejected put is gone")
	}
	if _, ok := st2.LookupTrial(big); ok {
		t.Error("oversized entry present after reopen")
	}
	sound, problems, err := st2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if sound != 2 || len(problems) != 0 {
		t.Errorf("Verify = %d sound, %v problems; want 2 sound, none", sound, problems)
	}
}
