// Store merging: the pull side of the experiment farm. Sharded sweeps run
// each shard against a private store; Merge folds those shard stores into
// one, after which a warm re-run of the full sweep against the merged store
// executes zero simulator trials. Entries are content-addressed, so merging
// is pure set union with per-key dedup — two stores can never disagree about
// a key's value (same engine tag + same spec => same serialized result), and
// re-merging is idempotent.
package lab

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// MergeStats reports one Merge call's traffic.
type MergeStats struct {
	// Added counts entries copied into the destination; Skipped counts
	// source entries the destination already held (per-key dedup).
	Added, Skipped int
}

// Merge copies every sound entry of the src stores into dst, skipping keys
// dst already holds. Sources may be packed, loose, or mixed-layout; copied
// entries always land on dst's packed write path (the caller's Close makes
// them durable and persists the index sidecar).
//
// Engine-tag discipline mirrors SnapshotCells: a source that mixes engine
// versions is refused, and a source whose tag differs from the destination's
// entries (or from an earlier source, when the destination starts empty) is
// refused — merging across engine versions would build a store that every
// single-tag consumer (diff, inspect statistics) then rejects. Corrupt
// source entries are skipped, like every whole-store read; Verify on the
// source reports them.
func Merge(dst *Store, srcs ...*Store) (MergeStats, error) {
	var stats MergeStats
	dstTag, err := soleTag(dst)
	if err != nil {
		return stats, fmt.Errorf("lab: merge destination %s: %w", dst.Dir(), err)
	}
	for _, src := range srcs {
		srcTag, err := soleTag(src)
		if err != nil {
			return stats, fmt.Errorf("lab: merge source %s: %w", src.Dir(), err)
		}
		if srcTag == "" {
			continue // empty source
		}
		if dstTag != "" && srcTag != dstTag {
			return stats, fmt.Errorf("lab: merge source %s has engine tag %s, destination %s holds %s; one store per engine version (calab gc drops foreign entries)",
				src.Dir(), srcTag, dst.Dir(), dstTag)
		}
		dstTag = srcTag
		err = src.forEachPayload(func(key string, payload []byte) error {
			if dst.has(key) {
				stats.Skipped++
				return nil
			}
			if err := dst.putPayload(key, payload); err != nil {
				return err
			}
			stats.Added++
			return nil
		})
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// soleTag returns the single engine tag of every sound entry in s ("" for an
// empty store), or an error when entries from several engine versions
// coexist — the SnapshotCells refusal, reused by Merge.
func soleTag(s *Store) (string, error) {
	tags := map[string]int{}
	err := s.forEachPayload(func(key string, payload []byte) error {
		env, verr := verifyPayload(key, payload)
		if verr == nil {
			tags[env.Tag]++
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if len(tags) > 1 {
		return "", fmt.Errorf("mixes %d engine versions %v", len(tags), tags)
	}
	for tag := range tags {
		return tag, nil
	}
	return "", nil
}

// forEachPayload visits every sound entry's raw envelope payload across both
// layouts, packed index winners first, then loose files the index does not
// shadow — in deterministic (sorted key) order per layout. It flushes and
// refreshes first, so it sees every durable record. Corrupt entries are
// skipped.
func (s *Store) forEachPayload(fn func(key string, payload []byte) error) error {
	if err := s.Flush(); err != nil {
		return err
	}
	if err := s.refresh(); err != nil {
		return err
	}
	packed := map[string]bool{}
	for _, key := range s.indexKeys() {
		s.mu.RLock()
		loc, ok := s.index[key]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		payload, err := s.readRecord(loc)
		if err != nil {
			continue
		}
		if _, verr := verifyPayload(key, payload); verr != nil {
			continue
		}
		packed[key] = true
		if err := fn(key, payload); err != nil {
			return err
		}
	}
	return s.walk(func(path string) error {
		key := strings.TrimSuffix(filepath.Base(path), ".json")
		if packed[key] {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		s.opens.Add(1)
		payload := []byte(strings.TrimSpace(string(data)))
		if _, verr := verifyPayload(key, payload); verr != nil {
			return nil
		}
		return fn(key, payload)
	})
}

// has reports whether key is currently served by this handle: buffered in
// the pending overlay, indexed in a packed segment, or present as a loose
// file.
func (s *Store) has(key string) bool {
	s.mu.RLock()
	_, pending := s.pending[key]
	_, indexed := s.index[key]
	s.mu.RUnlock()
	if pending || indexed {
		return true
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// putPayload writes one envelope payload under its content key, through the
// handle's usual write path (packed append buffers, or a loose object file
// on an OpenLoose handle). Both putKey and Merge land here. A failed packed
// append drops the record from the pending overlay, so this handle cannot
// serve an entry that will never be durable.
func (s *Store) putPayload(key string, payload []byte) error {
	if s.loose {
		if err := s.putLoose(key, payload); err != nil {
			return err
		}
		s.puts.Add(1)
		return nil
	}
	s.mu.Lock()
	s.pending[key] = payload
	s.mu.Unlock()
	if err := s.writer(key).append(key, payload); err != nil {
		s.mu.Lock()
		delete(s.pending, key)
		s.mu.Unlock()
		return err
	}
	s.puts.Add(1)
	return nil
}

// Keys returns the content keys of every sound entry in the store, sorted.
func (s *Store) Keys() ([]string, error) {
	var keys []string
	err := s.forEachPayload(func(key string, _ []byte) error {
		keys = append(keys, key)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(keys)
	return keys, nil
}
