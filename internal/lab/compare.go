package lab

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"condaccess/internal/bench"
	"condaccess/internal/cache"
	"condaccess/internal/scenario"
	"condaccess/internal/smr"
)

// CellKey identifies one experiment cell: every spec coordinate that defines
// what was measured, excluding the seed — replicas of a cell differ only by
// seed, and the replication statistics summarize over them. Two stores
// produced by different engine versions (different tags, disjoint content
// addresses) still align on CellKey, which is what makes cross-run A/B
// comparison possible.
type CellKey struct {
	Kind      string // KindTrial or KindScenario
	DS        string
	Scheme    string
	Threads   int
	UpdatePct int // stationary trials
	KeyRange  uint64
	Ops       int // per thread; stationary trials
	Dist      string
	Scenario  string // scenario name; scenario trials

	// Variant fingerprints the remaining spec knobs that change what is
	// measured — buckets, check mode, op work, scheduler slack, SMR tuning,
	// cache geometry, and (for scenarios) the full scenario definition — so
	// ablation points (e.g. figures' assoc/smt/tuning grids, which vary only
	// the cache or SMR parameters) never pool as replicas of one cell. Empty
	// for the all-default configuration.
	Variant string
}

// String renders the cell compactly for tables.
func (k CellKey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s t=%d", k.DS, k.Scheme, k.Threads)
	if k.Kind == KindScenario {
		fmt.Fprintf(&b, " sc=%s", k.Scenario)
	} else {
		fmt.Fprintf(&b, " u=%d ops=%d", k.UpdatePct, k.Ops)
	}
	fmt.Fprintf(&b, " r=%d", k.KeyRange)
	if k.Dist != "" && k.Dist != bench.DistUniform {
		fmt.Fprintf(&b, " %s", k.Dist)
	}
	if k.Variant != "" {
		fmt.Fprintf(&b, " [%s]", k.Variant)
	}
	return b.String()
}

// variantOf renders the non-default spec knobs compactly and
// deterministically. The cache geometry and scenario definition are too
// large to print, so they contribute short content fingerprints: enough to
// separate and align cells, at the cost of a hash in the label.
func variantOf(buckets int, check bool, work, slack uint64, o smr.Options, p cache.Params, sc *scenario.Scenario) string {
	var parts []string
	if buckets != 0 {
		parts = append(parts, fmt.Sprintf("buckets=%d", buckets))
	}
	if check {
		parts = append(parts, "check")
	}
	if work != 0 {
		parts = append(parts, fmt.Sprintf("work=%d", work))
	}
	if slack != 0 {
		parts = append(parts, fmt.Sprintf("slack=%d", slack))
	}
	if o != (smr.Options{}) {
		parts = append(parts, fmt.Sprintf("smr=r%d/e%d", o.ReclaimEvery, o.EpochEvery))
	}
	if p != (cache.Params{}) {
		parts = append(parts, "cache="+fingerprint(p))
	}
	if sc != nil {
		parts = append(parts, "def="+fingerprint(*sc))
	}
	return strings.Join(parts, ",")
}

// fingerprint digests any printable value into 8 hex characters.
func fingerprint(v any) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%+v", v)
	return fmt.Sprintf("%08x", h.Sum32())
}

// less orders cells deterministically for reports.
func (k CellKey) less(o CellKey) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.DS != o.DS {
		return k.DS < o.DS
	}
	if k.Scenario != o.Scenario {
		return k.Scenario < o.Scenario
	}
	if k.UpdatePct != o.UpdatePct {
		return k.UpdatePct < o.UpdatePct
	}
	if k.Scheme != o.Scheme {
		return k.Scheme < o.Scheme
	}
	if k.Threads != o.Threads {
		return k.Threads < o.Threads
	}
	if k.KeyRange != o.KeyRange {
		return k.KeyRange < o.KeyRange
	}
	if k.Ops != o.Ops {
		return k.Ops < o.Ops
	}
	if k.Dist != o.Dist {
		return k.Dist < o.Dist
	}
	return k.Variant < o.Variant
}

// Cell is one experiment cell: its replicas' throughputs (ordered by seed,
// so the same replicas summarize identically regardless of store layout)
// and their replication statistics.
type Cell struct {
	Key         CellKey
	Seeds       []uint64
	Throughputs []float64
	Stats       bench.Summary
}

// normDist folds the two spellings of the default key distribution ("" and
// "uniform" run identical trials) into one, so the same experiment measured
// by tools with different defaulting conventions (cabench passes "uniform",
// figures leaves it empty) lands in — and aligns on — one cell. Store keys
// deliberately do NOT normalize: a hit must return the byte-exact result of
// the identical spec, embedded Workload spelling included.
func normDist(d string) string {
	if d == "" {
		return bench.DistUniform
	}
	return d
}

// cellKeyOf derives the cell coordinates of one entry.
func cellKeyOf(e SpecEntry) CellKey {
	if e.Kind == KindScenario {
		sw := e.Scenario
		return CellKey{
			Kind: KindScenario, DS: sw.DS, Scheme: sw.Scheme, Threads: sw.Threads,
			KeyRange: sw.KeyRange, Dist: normDist(sw.Dist), Scenario: sw.Scenario.Name,
			Variant: variantOf(bench.EffectiveBuckets(sw.DS, sw.Buckets), sw.Check, 0, sw.Slack, sw.SMR, sw.Cache, &sw.Scenario),
		}
	}
	w := e.Workload
	return CellKey{
		Kind: KindTrial, DS: w.DS, Scheme: w.Scheme, Threads: w.Threads,
		UpdatePct: w.UpdatePct, KeyRange: w.KeyRange, Ops: w.OpsPerThread, Dist: normDist(w.Dist),
		Variant: variantOf(bench.EffectiveBuckets(w.DS, w.Buckets), w.Check, w.OpWorkCycles, w.Slack, w.SMR, w.Cache, nil),
	}
}

// Cells groups entries into experiment cells and summarizes each, returning
// them in deterministic report order. It works on SpecEntry so cell grouping
// only ever decodes the spec half of each envelope; the result payload
// contributes exactly the throughput, extracted by a partial decode.
func Cells(entries []SpecEntry) []Cell {
	type replica struct {
		seed uint64
		tp   float64
	}
	groups := map[CellKey][]replica{}
	for _, e := range entries {
		groups[cellKeyOf(e)] = append(groups[cellKeyOf(e)],
			replica{seed: e.Seed(), tp: e.Throughput()})
	}
	cells := make([]Cell, 0, len(groups))
	for k, rs := range groups {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].seed != rs[j].seed {
				return rs[i].seed < rs[j].seed
			}
			return rs[i].tp < rs[j].tp
		})
		c := Cell{Key: k}
		for _, r := range rs {
			c.Seeds = append(c.Seeds, r.seed)
			c.Throughputs = append(c.Throughputs, r.tp)
		}
		c.Stats = bench.Summarize(c.Throughputs)
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Key.less(cells[j].Key) })
	return cells
}

// SnapshotCells loads one store's entries and groups them into cells for
// comparison. A store reused across engine versions without gc holds the
// same cells under several tags; pooling those as replicas would mix engine
// versions inside one snapshot's statistics, so a mixed store is refused —
// cross-version comparison means one single-tag store per side.
func SnapshotCells(st *Store) ([]Cell, error) {
	entries, err := st.SpecEntries()
	if err != nil {
		return nil, err
	}
	tags := map[string]int{}
	for _, e := range entries {
		tags[e.Tag]++
	}
	if len(tags) > 1 {
		return nil, fmt.Errorf("lab: store %s mixes %d engine versions %v; run calab gc (keeps the current engine's entries) or use one store per version",
			st.Dir(), len(tags), tags)
	}
	return Cells(entries), nil
}

// DiffRow is one aligned cell of a cross-run comparison: the replication
// statistics on each side, the speedup of B over A, and whether the
// difference is significant (the 95% confidence intervals do not overlap).
type DiffRow struct {
	Key         CellKey
	A, B        bench.Summary
	Speedup     float64 // B.Mean / A.Mean
	Significant bool
}

// Diff aligns the cells of two snapshots. Cells present on only one side
// are returned separately — a coverage change is a finding, not an error.
func Diff(a, b []Cell) (rows []DiffRow, onlyA, onlyB []CellKey) {
	am := make(map[CellKey]Cell, len(a))
	for _, c := range a {
		am[c.Key] = c
	}
	bm := make(map[CellKey]Cell, len(b))
	for _, c := range b {
		bm[c.Key] = c
	}
	for _, ca := range a {
		cb, ok := bm[ca.Key]
		if !ok {
			onlyA = append(onlyA, ca.Key)
			continue
		}
		row := DiffRow{Key: ca.Key, A: ca.Stats, B: cb.Stats}
		if ca.Stats.Mean != 0 {
			row.Speedup = cb.Stats.Mean / ca.Stats.Mean
		}
		row.Significant = !ca.Stats.Overlaps(cb.Stats)
		rows = append(rows, row)
	}
	for _, cb := range b {
		if _, ok := am[cb.Key]; !ok {
			onlyB = append(onlyB, cb.Key)
		}
	}
	return rows, onlyA, onlyB
}

// FormatCells renders a snapshot's cell table (calab inspect).
func FormatCells(cells []Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %2s %10s %8s %8s %10s %10s %10s\n",
		"cell", "n", "mean", "sd", "±95", "min", "median", "max")
	for _, c := range cells {
		s := c.Stats
		fmt.Fprintf(&b, "%-44s %2d %10.1f %8.1f %8.1f %10.1f %10.1f %10.1f\n",
			c.Key, s.Count, s.Mean, s.Stddev, s.CI95, s.Min, s.Median, s.Max)
	}
	return b.String()
}

// FormatDiff renders a cross-run comparison (calab diff). The significance
// column marks cells whose 95% confidence intervals are disjoint; "~" means
// the difference is within the replication noise (or a side has too few
// replicas to tell).
func FormatDiff(rows []DiffRow, onlyA, onlyB []CellKey) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %2s %10s %8s %2s %10s %8s %8s %3s\n",
		"cell", "nA", "meanA", "±95A", "nB", "meanB", "±95B", "speedup", "sig")
	for _, r := range rows {
		sig := "~"
		if r.Significant {
			sig = "*"
		}
		fmt.Fprintf(&b, "%-44s %2d %10.1f %8.1f %2d %10.1f %8.1f %7.3fx %3s\n",
			r.Key, r.A.Count, r.A.Mean, r.A.CI95, r.B.Count, r.B.Mean, r.B.CI95, r.Speedup, sig)
	}
	for _, k := range onlyA {
		fmt.Fprintf(&b, "%-44s only in A\n", k)
	}
	for _, k := range onlyB {
		fmt.Fprintf(&b, "%-44s only in B\n", k)
	}
	return b.String()
}
