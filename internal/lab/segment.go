// The packed store format. A loose store pays one open/read/parse per warm
// lookup and one temp-file + rename per put — O(trials) filesystem work on
// every re-run of a large sweep. The packed format amortizes both sides:
// entries append to a handful of segment files (segments/NNNN.pack) as
// length-prefixed, checksummed records, an in-memory index maps content key
// to (segment, offset, length) so a warm lookup is a map probe plus one
// ReadAt, and a sidecar index file persists the map so reopening a store
// never rescans segment bytes it already indexed.
//
// Durability is layered so nothing is ever trusted ahead of its bytes:
//
//   - Records become visible to other handles only after their segment
//     bytes are written and fsynced (one fsync per batched flush).
//   - The sidecar is advisory: written on Close (and by maintenance
//     operations), rebuilt by scanning segments when missing or stale.
//     Open scans only the tail bytes the sidecar does not cover.
//   - A crash mid-flush leaves a truncated or checksum-corrupt tail
//     record; scans stop at the first bad frame, so the record is ignored,
//     later lookups miss, and the write-through heals by re-appending.
//
// Segment files are never appended to by a later Open (each handle creates
// fresh segments), so a dead segment's garbage tail can never hide records
// written after it.
package lab

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record frame: [4-byte big-endian n][4-byte CRC32-C of key+payload]
// [32-byte binary content key][payload], where n = 32 + len(payload). The
// key rides in the frame so index rebuilds never parse JSON, and the CRC
// covers it so a torn write cannot alias one key's payload to another.
const (
	recHeaderLen = 8
	recKeyLen    = 32
)

// maxRecordLen bounds a frame's body size on both sides of the format: the
// scan side caps a corrupt length field before it can provoke a giant
// allocation, and the write side (frameRecord) refuses to produce a frame the
// scan side would reject — an oversized record silently written would poison
// every later record in its segment, because index rebuilds stop at the
// first bad frame. A variable (not a const) so tests can shrink the bound
// without allocating gigabytes.
var maxRecordLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recLoc locates one packed record: segment number, byte offset of the
// frame, and total frame length (header included).
type recLoc struct {
	seg int
	off int64
	n   int
}

// segmentName renders a segment number as its file name.
func segmentName(seg int) string { return fmt.Sprintf("%04d.pack", seg) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (int, bool) {
	base, ok := strings.CutSuffix(name, ".pack")
	if !ok {
		return 0, false
	}
	seg, err := strconv.Atoi(base)
	if err != nil || seg < 0 {
		return 0, false
	}
	return seg, true
}

func (s *Store) segmentsDir() string        { return filepath.Join(s.dir, "segments") }
func (s *Store) segmentPath(seg int) string { return filepath.Join(s.segmentsDir(), segmentName(seg)) }
func (s *Store) sidecarPath() string        { return filepath.Join(s.segmentsDir(), "index.json") }

// frameRecord appends one framed record for (key, payload) to dst. The key
// must be the 64-hex-digit content address.
func frameRecord(dst []byte, key string, payload []byte) ([]byte, error) {
	kb, err := hex.DecodeString(key)
	if err != nil || len(kb) != recKeyLen {
		return dst, fmt.Errorf("lab: malformed content key %q", key)
	}
	n := recKeyLen + len(payload)
	if n > maxRecordLen {
		return dst, fmt.Errorf("lab: record payload is %d bytes, over the %d-byte frame limit", len(payload), maxRecordLen-recKeyLen)
	}
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	crc := crc32.Update(0, crcTable, kb)
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, kb...)
	dst = append(dst, payload...)
	return dst, nil
}

// parseRecord validates one framed record and returns its key and payload.
// buf must hold exactly the frame (header included).
func parseRecord(buf []byte) (key string, payload []byte, err error) {
	if len(buf) < recHeaderLen+recKeyLen {
		return "", nil, errors.New("record shorter than its header")
	}
	n := int(binary.BigEndian.Uint32(buf[0:4]))
	if n != len(buf)-recHeaderLen {
		return "", nil, errors.New("record length does not match its frame")
	}
	if crc32.Checksum(buf[recHeaderLen:], crcTable) != binary.BigEndian.Uint32(buf[4:8]) {
		return "", nil, errors.New("record checksum mismatch")
	}
	return hex.EncodeToString(buf[recHeaderLen : recHeaderLen+recKeyLen]), buf[recHeaderLen+recKeyLen:], nil
}

// scanSegment reads framed records from r starting at byte offset from,
// calling visit for each clean record. It returns the offset one past the
// last clean record — the covered prefix — and stops silently at EOF, a
// truncated frame, or a checksum mismatch: anything past the first bad
// frame is unreachable garbage (a crashed flush's tail) until a repack.
func scanSegment(r io.Reader, from int64, visit func(key string, loc recLoc, payload []byte) error, seg int) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	off := from
	var hdr [recHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return off, nil // EOF or torn header: clean prefix ends here
		}
		n := int(binary.BigEndian.Uint32(hdr[0:4]))
		if n < recKeyLen || n > maxRecordLen {
			return off, nil
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			return off, nil // truncated record
		}
		frame := append(hdr[:], body...)
		key, payload, err := parseRecord(frame)
		if err != nil {
			return off, nil // checksum-corrupt record
		}
		loc := recLoc{seg: seg, off: off, n: recHeaderLen + n}
		if err := visit(key, loc, payload); err != nil {
			return off, err
		}
		off += int64(loc.n)
	}
}

// flush thresholds: a writer's buffer is flushed (one write + one fsync)
// when it holds this many records or bytes, whichever comes first, and on
// Flush/Close.
const (
	flushRecords = 256
	flushBytes   = 1 << 20
)

// segmentWriter is one append stripe: a buffer of framed records bound for
// one segment file. Puts are striped across a few writers by key hash so
// concurrent pool workers append without contending on one buffer; each
// flush is a single write + fsync on that writer's segment.
type segmentWriter struct {
	st *Store

	mu   sync.Mutex
	seg  int
	f    *os.File
	size int64 // durable (written + fsynced) bytes
	buf  []byte
	recs []pendingRec
}

// pendingRec is one buffered record's future index entry.
type pendingRec struct {
	key string
	loc recLoc
}

// append frames (key, payload) into the writer's buffer, creating the
// segment file on first use, and flushes when the batch thresholds hit.
func (w *segmentWriter) append(key string, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		f, seg, err := w.st.createSegment()
		if err != nil {
			return err
		}
		w.f, w.seg = f, seg
	}
	off := w.size + int64(len(w.buf))
	buf, err := frameRecord(w.buf, key, payload)
	if err != nil {
		return err
	}
	w.recs = append(w.recs, pendingRec{key: key, loc: recLoc{seg: w.seg, off: off, n: len(buf) - len(w.buf)}})
	w.buf = buf
	if len(w.recs) >= flushRecords || len(w.buf) >= flushBytes {
		return w.flushLocked()
	}
	return nil
}

// flush empties the writer's buffer: one write, one fsync, then the
// records are published to the store's in-memory index (and dropped from
// the pending overlay) — never before their bytes are durable.
func (w *segmentWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *segmentWriter) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	// Flush timing is recorded at this granularity — once per batch, never
	// per put — with the fsync share broken out: fsync latency is where a
	// slow disk shows up first.
	t0 := time.Now()
	if _, err := w.f.WriteAt(w.buf, w.size); err != nil {
		return fmt.Errorf("lab: appending segment %s: %w", segmentName(w.seg), err)
	}
	tSync := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("lab: syncing segment %s: %w", segmentName(w.seg), err)
	}
	st := w.st
	st.fsyncNanos.Add(int64(time.Since(tSync)))
	st.flushNanos.Add(int64(time.Since(t0)))
	st.flushes.Add(1)
	st.bytesWritten.Add(uint64(len(w.buf)))
	records, bytes := len(w.recs), len(w.buf)
	w.size += int64(len(w.buf))
	w.buf = w.buf[:0]
	st.publish(w.recs, w.seg, w.size)
	w.recs = w.recs[:0]
	if st.OnFlush != nil {
		st.OnFlush(records, bytes)
	}
	return nil
}

// sidecar is the on-disk form of the in-memory index. Entries map content
// key to [segment, offset, length]; Covered records how many bytes of each
// segment the entries describe, so Open scans only bytes past that prefix.
type sidecar struct {
	Version int                 `json:"version"`
	Covered map[string]int64    `json:"covered"`
	Entries map[string][3]int64 `json:"entries"`
}

// writeSidecar persists the current in-memory index atomically. Callers
// must hold no store locks.
func (s *Store) writeSidecar() error {
	s.mu.Lock()
	sc := sidecar{Version: 1, Covered: map[string]int64{}, Entries: make(map[string][3]int64, len(s.index))}
	for seg, cov := range s.covered {
		sc.Covered[strconv.Itoa(seg)] = cov
	}
	for key, loc := range s.index {
		sc.Entries[key] = [3]int64{int64(loc.seg), loc.off, int64(loc.n)}
	}
	s.dirty = false
	s.mu.Unlock()
	data, err := json.Marshal(sc)
	if err != nil {
		return fmt.Errorf("lab: encoding index sidecar: %w", err)
	}
	if err := os.MkdirAll(s.segmentsDir(), 0o755); err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	tmp, err := os.CreateTemp(s.segmentsDir(), ".index-*")
	if err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	s.opens.Add(1)
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
		if err == nil {
			return os.Rename(tmp.Name(), s.sidecarPath())
		}
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
	return fmt.Errorf("lab: writing index sidecar: %w", err)
}

// loadSidecar reads the sidecar into the in-memory index. A missing
// sidecar is fine (empty index, full scan follows); an unparsable one is
// discarded the same way — it is advisory.
func (s *Store) loadSidecar() {
	data, err := os.ReadFile(s.sidecarPath())
	if err != nil {
		return
	}
	s.opens.Add(1)
	var sc sidecar
	if json.Unmarshal(data, &sc) != nil || sc.Version != 1 {
		return
	}
	for segStr, cov := range sc.Covered {
		seg, err := strconv.Atoi(segStr)
		if err != nil || cov < 0 {
			continue
		}
		s.covered[seg] = cov
	}
	for key, e := range sc.Entries {
		s.index[key] = recLoc{seg: int(e[0]), off: e[1], n: int(e[2])}
	}
}

// publish moves flushed records into the index and advances the covered
// prefix of their segment.
func (s *Store) publish(recs []pendingRec, seg int, covered int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.index[r.key] = r.loc
		delete(s.pending, r.key)
	}
	if covered > s.covered[seg] {
		s.covered[seg] = covered
	}
	s.dirty = true
}

// createSegment creates a fresh segment file with the next free number.
// O_EXCL guards against another handle (or process) racing to the same
// number; losers retry on the next one.
func (s *Store) createSegment() (*os.File, int, error) {
	if err := os.MkdirAll(s.segmentsDir(), 0o755); err != nil {
		return nil, 0, fmt.Errorf("lab: %w", err)
	}
	for {
		s.mu.Lock()
		seg := s.nextSeg
		s.nextSeg++
		s.mu.Unlock()
		f, err := os.OpenFile(s.segmentPath(seg), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, os.ErrExist) {
			continue
		}
		if err != nil {
			return nil, 0, fmt.Errorf("lab: creating segment: %w", err)
		}
		s.opens.Add(1)
		s.mu.Lock()
		s.readers[seg] = f
		s.mu.Unlock()
		return f, seg, nil
	}
}

// writer picks the append stripe for key.
func (s *Store) writer(key string) *segmentWriter {
	// The key is hex of a SHA-256, so its first byte is already uniform.
	i := 0
	if len(key) > 0 {
		i = int(key[0]) % len(s.writers)
	}
	return s.writers[i]
}

// listSegments returns the numbers of every segment file on disk, sorted.
func (s *Store) listSegments() ([]int, error) {
	ents, err := os.ReadDir(s.segmentsDir())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lab: listing segments: %w", err)
	}
	var segs []int
	for _, e := range ents {
		if seg, ok := parseSegmentName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, seg)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// dropSegmentEntries removes every index entry located in seg. Caller
// holds s.mu.
func (s *Store) dropSegmentEntriesLocked(seg int) {
	for key, loc := range s.index {
		if loc.seg == seg {
			delete(s.index, key)
		}
	}
}

// refresh reconciles the in-memory index with the segments on disk:
// newly-appeared segment files are opened and scanned, and segments that
// grew past their covered prefix are scanned from there. Lookups never
// refresh (the point of the index is to avoid per-trial filesystem work);
// whole-store operations — Entries, Verify, GC, Pack — do, so they see
// every durable record, including ones another handle flushed.
func (s *Store) refresh() error {
	segs, err := s.listSegments()
	if err != nil {
		return err
	}
	for _, seg := range segs {
		s.mu.Lock()
		f := s.readers[seg]
		cov := s.covered[seg]
		s.mu.Unlock()
		if f == nil {
			f, err = os.Open(s.segmentPath(seg))
			if err != nil {
				return fmt.Errorf("lab: opening segment: %w", err)
			}
			s.opens.Add(1)
			s.mu.Lock()
			s.readers[seg] = f
			if seg >= s.nextSeg {
				s.nextSeg = seg + 1
			}
			s.mu.Unlock()
		}
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("lab: %w", err)
		}
		if st.Size() < cov {
			// The file shrank below its indexed prefix: the sidecar is from
			// another lineage of this directory. Distrust it for this segment
			// and rescan from the start.
			s.mu.Lock()
			s.dropSegmentEntriesLocked(seg)
			delete(s.covered, seg)
			s.dirty = true
			s.mu.Unlock()
			cov = 0
		}
		if st.Size() == cov {
			continue
		}
		end, err := scanSegment(io.NewSectionReader(f, cov, st.Size()-cov), cov, func(key string, loc recLoc, _ []byte) error {
			s.mu.Lock()
			s.index[key] = loc
			delete(s.pending, key)
			s.dirty = true
			s.mu.Unlock()
			return nil
		}, seg)
		if err != nil {
			return err
		}
		if end > cov {
			s.mu.Lock()
			if end > s.covered[seg] {
				s.covered[seg] = end
				s.dirty = true
			}
			s.mu.Unlock()
		}
	}
	// Entries whose segment vanished (another handle's gc/pack) can no
	// longer serve reads; drop them so lookups fall through cleanly.
	live := map[int]bool{}
	for _, seg := range segs {
		live[seg] = true
	}
	s.mu.Lock()
	for key, loc := range s.index {
		if !live[loc.seg] {
			delete(s.index, key)
			s.dirty = true
		}
	}
	for seg, f := range s.readers {
		if !live[seg] {
			f.Close()
			delete(s.readers, seg)
			delete(s.covered, seg)
		}
	}
	s.mu.Unlock()
	return nil
}

// readRecord fetches and validates one packed record: a single ReadAt plus
// an in-memory checksum check. The returned payload is the envelope JSON.
func (s *Store) readRecord(loc recLoc) ([]byte, error) {
	s.mu.RLock()
	f := s.readers[loc.seg]
	s.mu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("lab: segment %s not open", segmentName(loc.seg))
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("lab: reading record: %w", err)
	}
	_, payload, err := parseRecord(buf)
	if err != nil {
		return nil, err
	}
	return payload, nil
}

// Flush forces every buffered record onto disk (one fsync per non-empty
// stripe) and publishes it to the index. Lookups through this handle see
// buffered records even before a flush; other handles see them only after.
func (s *Store) Flush() error {
	for _, w := range s.writers {
		if err := w.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes buffered records, persists the index sidecar, and releases
// every segment file handle. The store must not be used afterwards.
// Closing is what makes a batched run's entries cheap to reopen — a store
// abandoned without Close loses only its unflushed tail and its sidecar
// currency, both of which the next Open repairs.
func (s *Store) Close() error {
	err := s.Flush()
	s.mu.Lock()
	dirty := s.dirty
	s.mu.Unlock()
	if err == nil && (dirty || s.sidecarMissing()) {
		err = s.writeSidecar()
	}
	s.mu.Lock()
	for seg, f := range s.readers {
		f.Close()
		delete(s.readers, seg)
	}
	s.mu.Unlock()
	return err
}

// sidecarMissing reports whether segments exist without a sidecar.
func (s *Store) sidecarMissing() bool {
	s.mu.Lock()
	n := len(s.index)
	s.mu.Unlock()
	if n == 0 {
		return false
	}
	_, err := os.Stat(s.sidecarPath())
	return err != nil
}

// RebuildIndex discards the in-memory index and the sidecar and rebuilds
// both by scanning every segment from its first byte — the recovery path
// for a missing, stale, or corrupt sidecar (calab index). It returns the
// number of indexed entries and scanned segments.
func (s *Store) RebuildIndex() (entries, segments int, err error) {
	if err := s.Flush(); err != nil {
		return 0, 0, err
	}
	segs, err := s.listSegments()
	if err != nil {
		return 0, 0, err
	}
	index := map[string]recLoc{}
	covered := map[int]int64{}
	for _, seg := range segs {
		f, err := os.Open(s.segmentPath(seg))
		if err != nil {
			return 0, 0, fmt.Errorf("lab: opening segment: %w", err)
		}
		s.opens.Add(1)
		end, err := scanSegment(f, 0, func(key string, loc recLoc, _ []byte) error {
			index[key] = loc
			return nil
		}, seg)
		f.Close()
		if err != nil {
			return 0, 0, err
		}
		covered[seg] = end
	}
	s.mu.Lock()
	s.index = index
	s.covered = covered
	s.dirty = true
	if len(segs) > 0 && segs[len(segs)-1] >= s.nextSeg {
		s.nextSeg = segs[len(segs)-1] + 1
	}
	s.mu.Unlock()
	if err := s.refresh(); err != nil { // reopen reader handles for new segments
		return 0, 0, err
	}
	if err := s.writeSidecar(); err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	entries = len(s.index)
	s.mu.Unlock()
	return entries, len(segs), nil
}

// packRec is one (key, envelope payload) pair bound for a compacted
// segment.
type packRec struct {
	key     string
	payload []byte
}

// compactSegments rewrites the store's packed layout: every current index
// winner plus the extra records are written to one fresh segment, every old
// segment file is removed, and the sidecar is rewritten. Superseded records
// (heals, overwrites) and crash-truncated tails vanish in the rewrite.
// Callers must have flushed and refreshed. Compaction assumes the usual
// maintenance contract: no other handle is writing the store concurrently.
func (s *Store) compactSegments(extra []packRec) error {
	recs := extra
	for _, key := range s.indexKeys() {
		s.mu.RLock()
		loc, ok := s.index[key]
		s.mu.RUnlock()
		if !ok {
			continue
		}
		payload, err := s.readRecord(loc)
		if err != nil {
			continue // unreadable record: dropped by the rewrite
		}
		recs = append(recs, packRec{key: key, payload: payload})
	}

	oldSegs, err := s.listSegments()
	if err != nil {
		return err
	}

	// Write the compacted segment (none if nothing survives).
	index := map[string]recLoc{}
	covered := map[int]int64{}
	newSeg := -1
	if len(recs) > 0 {
		f, seg, err := s.createSegment()
		if err != nil {
			return err
		}
		newSeg = seg
		var buf []byte
		for _, r := range recs {
			start := len(buf)
			buf, err = frameRecord(buf, r.key, r.payload)
			if err != nil {
				return err
			}
			index[r.key] = recLoc{seg: seg, off: int64(start), n: len(buf) - start}
		}
		if _, err := f.WriteAt(buf, 0); err != nil {
			return fmt.Errorf("lab: writing packed segment: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("lab: syncing packed segment: %w", err)
		}
		covered[seg] = int64(len(buf))
	}

	// Swap the index to the compacted layout, then remove the replaced
	// files. Writers pointed at removed segments are reset so their next
	// append opens a fresh segment.
	s.mu.Lock()
	s.index = index
	s.covered = covered
	for seg, f := range s.readers {
		if seg == newSeg {
			continue
		}
		f.Close()
		delete(s.readers, seg)
	}
	s.dirty = true
	s.mu.Unlock()
	for _, w := range s.writers {
		w.mu.Lock()
		if w.f != nil && w.seg != newSeg {
			w.f, w.size, w.seg = nil, 0, 0
		}
		w.mu.Unlock()
	}
	for _, seg := range oldSegs {
		if seg == newSeg {
			continue
		}
		if err := os.Remove(s.segmentPath(seg)); err != nil {
			return fmt.Errorf("lab: removing old segment: %w", err)
		}
	}
	return s.writeSidecar()
}

// Pack converts and compacts the store in place: every sound loose object
// is folded into the packed layout alongside the current packed records,
// loose files are removed, and the whole keyspace lands in one fresh
// segment behind a freshly written sidecar. A warm sweep over a packed
// store opens O(1) files however many trials it serves. It returns the
// number of packed entries and the number of loose files converted.
func (s *Store) Pack() (packed, loose int, err error) {
	if err := s.Flush(); err != nil {
		return 0, 0, err
	}
	if err := s.refresh(); err != nil {
		return 0, 0, err
	}

	// Loose entries whose key the index doesn't hold become extra records;
	// loose files the index shadows are dropped (the packed copy is newer).
	// Corrupt loose files stay where Verify can report them.
	var extras []packRec
	var loosePaths []string
	err = s.walk(func(path string) error {
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil
		}
		s.opens.Add(1)
		key := strings.TrimSuffix(filepath.Base(path), ".json")
		if _, verr := verifyPayload(key, data); verr != nil {
			return nil
		}
		loosePaths = append(loosePaths, path)
		s.mu.RLock()
		_, shadowed := s.index[key]
		s.mu.RUnlock()
		if !shadowed {
			extras = append(extras, packRec{key: key, payload: bytes.TrimSpace(data)})
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	if err := s.compactSegments(extras); err != nil {
		return 0, 0, err
	}
	for _, path := range loosePaths {
		if err := os.Remove(path); err != nil {
			return 0, 0, fmt.Errorf("lab: removing loose entry: %w", err)
		}
	}
	s.mu.RLock()
	packed = len(s.index)
	s.mu.RUnlock()
	return packed, len(loosePaths), nil
}
