package lab

import (
	"testing"

	"condaccess/internal/bench"
)

// benchSweepConfig is the store-benchmark grid: 540 trials (2 schemes x 2
// thread counts x 3 update mixes x 45 replicas) of a deliberately tiny
// simulated workload, so the store's filesystem work — not the simulator —
// dominates the measurement. BENCH_store.json records the interleaved A/B
// numbers of the packed layout against the loose one on this grid.
func benchSweepConfig(st bench.TrialStore) bench.SweepConfig {
	return bench.SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"}, Threads: []int{1, 2},
		Updates: []int{0, 50, 100}, KeyRange: 32, Ops: 40, Seed: 17, Trials: 45,
		Store: st,
	}
}

// benchSweepTrials is the grid's trial count.
const benchSweepTrials = 2 * 2 * 3 * 45

// openLayout opens dir with the layout under test: "packed" is the default
// segment write path, "loose" the historical file-per-entry one.
func openLayout(tb testing.TB, dir, layout string) *Store {
	tb.Helper()
	var st *Store
	var err error
	if layout == "loose" {
		st, err = OpenLoose(dir)
	} else {
		st, err = Open(dir)
	}
	if err != nil {
		tb.Fatal(err)
	}
	return st
}

// BenchmarkSweepWarm measures a fully warm re-run: open the store, serve all
// 540 trials from it, close. This is the case the packed layout exists for —
// loose pays one open/read/parse per trial, packed pays an index load at
// Open and a map probe + ReadAt per trial.
func BenchmarkSweepWarm(b *testing.B) {
	for _, layout := range []string{"packed", "loose"} {
		b.Run(layout, func(b *testing.B) {
			dir := b.TempDir()
			st := openLayout(b, dir, layout)
			if _, err := bench.Sweep(benchSweepConfig(st), nil); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st := openLayout(b, dir, layout)
				if _, err := bench.Sweep(benchSweepConfig(st), nil); err != nil {
					b.Fatal(err)
				}
				stats := st.Stats()
				if stats.Misses != 0 || stats.Hits != benchSweepTrials {
					b.Fatalf("warm run traffic %+v; the benchmark must not simulate", stats)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(stats.Opens), "opens/sweep")
				}
			}
		})
	}
}

// BenchmarkSweepCold measures the first run into an empty store: simulation
// plus the write path — 540 batched segment appends with a handful of fsyncs
// (packed) versus 540 temp-file + rename + per-file flushes (loose).
func BenchmarkSweepCold(b *testing.B) {
	for _, layout := range []string{"packed", "loose"} {
		b.Run(layout, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				b.StartTimer()
				st := openLayout(b, dir, layout)
				if _, err := bench.Sweep(benchSweepConfig(st), nil); err != nil {
					b.Fatal(err)
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
