// Package lab is the experiment lab: persistent, content-addressed storage
// of complete trial results, replication statistics over them, and cross-run
// comparison.
//
// Every simulated trial is a pure function of its spec (the full Workload or
// ScenarioWorkload) and the engine version, so the lab caches whole results
// the way a serving system caches whole responses: the Store keys each trial
// by a SHA-256 digest of its canonical serialized spec scoped by
// bench.EngineTag() (a digest of the golden checksum files that pin the
// engine's observable output — regenerating the goldens invalidates every
// stale entry automatically), and stores the trial's own serialized result
// as the value. Plugged into bench.Sweep / bench.RunMany /
// bench.Runner.RunScenario through the bench.TrialStore interface, a warm
// store makes repeat sweeps near-free: identical cells are never simulated
// twice, and the warm run's output is byte-for-byte the cold run's.
//
// On top of the store sit the analysis layers: Cells groups a store's
// entries into experiment cells (same coordinates, any seed) and summarizes
// each with bench.Summarize — mean, spread, and Student-t 95% confidence
// intervals over the replicas — and Diff aligns the cells of two store
// snapshots into a speedup/regression report whose significance flag is
// overlap of the two confidence intervals. cmd/calab exposes all of it
// (inspect, diff, gc, export, verify).
package lab
