// Package core implements Conditional Access, the paper's primary
// contribution: a small ISA extension that lets optimistic data structures
// reclaim memory immediately.
//
// Four instructions are provided (paper Section II-B):
//
//   - cread  addr  — load addr, tagging its cache line; fails (without
//     loading) if the core's accessRevokedBit is set.
//   - cwrite addr,v — store v to addr; fails if the accessRevokedBit is set
//     or addr's line is not currently tagged.
//   - untagOne addr — remove addr's line from the tag set.
//   - untagAll      — clear the tag set and the accessRevokedBit.
//
// The extension is implemented exactly as the paper's Section III sketches:
// one tag bit per L1 line and one accessRevokedBit per hardware thread, with
// no change to the coherence protocol. It subscribes to the cache model's
// invalidation events (remote invalidations, local evictions, and inclusive-
// L2 back-invalidations all revoke; M->S downgrades do not). Because the tag
// bits live on L1 lines, the tag set capacity is bounded by L1 residency:
// associativity evictions silently revoke, producing the spurious failures
// the paper discusses — and measures to be rare (reproduced by the
// associativity ablation benchmark).
//
// In "check" mode the extension additionally asserts the paper's safety
// results as executable invariants: a successful cread or cwrite must target
// a line that is live and whose allocation generation is unchanged since it
// was tagged (Theorem 6, use-after-free freedom; Theorem 7, ABA freedom).
package core

import (
	"fmt"

	"condaccess/internal/cache"
	"condaccess/internal/mem"
)

// Stats counts Conditional Access activity across all cores.
type Stats struct {
	CReads      uint64
	CReadFails  uint64
	CWrites     uint64
	CWriteFails uint64 // includes failures due to an untagged target line
	Untagged    uint64 // cwrite failures specifically due to an untagged line
	Revocations uint64 // accessRevokedBit transitions caused by invalidations
	SelfEvicts  uint64 // revocations caused by this core's own L1 evictions
	MaxTagSet   int    // high-water mark of any core's tag set
}

type tagEntry struct {
	line uint64
	gen  uint32
}

type coreState struct {
	tags    []tagEntry // small; linear scan beats a map at these sizes
	revoked bool
}

// Extension is the Conditional Access hardware extension for a simulated
// machine. Create it with New, wire it as the cache hierarchy's Listener,
// then Attach the hierarchy and heap.
type Extension struct {
	h       *cache.Hierarchy
	space   *mem.Space
	cores   []coreState
	stats   Stats
	latFlag uint64 // cached Params().LatFlagCheck: every instruction pays it

	// Check enables the executable safety invariants (Theorems 6 and 7).
	Check bool
}

// New creates the extension for nCores hardware threads. The returned value
// implements cache.Listener and must be registered with the hierarchy at
// construction; call Attach afterwards.
func New(nCores int) *Extension {
	return &Extension{cores: make([]coreState, nCores)}
}

// Attach connects the extension to the hierarchy and heap it observes.
func (e *Extension) Attach(h *cache.Hierarchy, space *mem.Space) {
	e.h = h
	e.space = space
	e.latFlag = h.Params().LatFlagCheck
}

// Reset clears every core's tag set and accessRevokedBit and zeroes the
// statistics, returning the extension to its post-New state (tag-slice
// capacity is kept).
func (e *Extension) Reset() {
	for i := range e.cores {
		e.cores[i].tags = e.cores[i].tags[:0]
		e.cores[i].revoked = false
	}
	e.stats = Stats{}
}

// Stats returns a copy of the accumulated statistics.
func (e *Extension) Stats() Stats { return e.stats }

// LineInvalidated implements cache.Listener: if the invalidated line is
// tagged at core, the core's accessRevokedBit is set and the tag discarded
// (the tag bit physically lives on the departing line).
func (e *Extension) LineInvalidated(core int, line uint64) {
	cs := &e.cores[core]
	for i := range cs.tags {
		if cs.tags[i].line == line {
			cs.tags[i] = cs.tags[len(cs.tags)-1]
			cs.tags = cs.tags[:len(cs.tags)-1]
			if !cs.revoked {
				cs.revoked = true
				e.stats.Revocations++
			}
			return
		}
	}
}

// Revoked reports core's accessRevokedBit.
func (e *Extension) Revoked(core int) bool { return e.cores[core].revoked }

// RevokeThread unconditionally sets core's accessRevokedBit and discards its
// tags. The simulator calls it on a context switch: the paper (Section III)
// has the OS revoke a switched-out thread rather than track invalidations on
// its behalf, which is what makes Conditional Access usable in multiuser
// systems.
func (e *Extension) RevokeThread(core int) {
	cs := &e.cores[core]
	cs.tags = cs.tags[:0]
	if !cs.revoked {
		cs.revoked = true
		e.stats.Revocations++
	}
}

// TagSetSize returns the current number of tagged lines at core.
func (e *Extension) TagSetSize(core int) int { return len(e.cores[core].tags) }

func (cs *coreState) findTag(line uint64) *tagEntry {
	for i := range cs.tags {
		if cs.tags[i].line == line {
			return &cs.tags[i]
		}
	}
	return nil
}

// CRead executes a cread by core at addr. On success it returns the loaded
// value, the access latency, and ok=true; on failure (accessRevokedBit set)
// it returns only the flag-check latency and ok=false, having performed no
// memory access.
func (e *Extension) CRead(core int, addr mem.Addr) (val uint64, lat uint64, ok bool) {
	cs := &e.cores[core]
	if cs.revoked {
		e.stats.CReadFails++
		return 0, e.latFlag, false
	}
	// The load may evict another tagged line of this core, setting the
	// revoked bit; per the paper's atomicity, this cread still succeeds (its
	// flag check happened first) and the next conditional access fails.
	lat = e.h.Read(core, addr) + e.latFlag
	line := mem.LineOf(addr)
	v, gen := e.space.ReadGen(addr)
	if t := cs.findTag(line); t != nil {
		if e.Check && t.gen != gen {
			panic(fmt.Sprintf("core: cread at %#x succeeded across reallocation (gen %d -> %d): Theorem 7 violated", addr, t.gen, gen))
		}
	} else {
		cs.tags = append(cs.tags, tagEntry{line: line, gen: gen})
		if len(cs.tags) > e.stats.MaxTagSet {
			e.stats.MaxTagSet = len(cs.tags)
		}
	}
	if e.Check && !e.space.Live(addr) {
		panic(fmt.Sprintf("core: cread at %#x succeeded on a freed line: Theorem 6 violated", addr))
	}
	e.stats.CReads++
	return v, lat, true
}

// CWrite executes a cwrite by core of v to addr. It fails — performing no
// memory access — if the accessRevokedBit is set or addr's line is not in
// the tag set (the paper requires a prior cread precisely to keep the
// high-latency fill out of the store path; see Section II-B).
func (e *Extension) CWrite(core int, addr mem.Addr, v uint64) (lat uint64, ok bool) {
	cs := &e.cores[core]
	if cs.revoked {
		e.stats.CWriteFails++
		return e.latFlag, false
	}
	t := cs.findTag(mem.LineOf(addr))
	if t == nil {
		e.stats.CWriteFails++
		e.stats.Untagged++
		return e.latFlag, false
	}
	gen := e.space.Gen(addr)
	if e.Check {
		if t.gen != gen {
			panic(fmt.Sprintf("core: cwrite at %#x succeeded across reallocation (gen %d -> %d): Theorem 7 violated", addr, t.gen, gen))
		}
		if !e.space.Live(addr) {
			panic(fmt.Sprintf("core: cwrite at %#x succeeded on a freed line: Theorem 6 violated", addr))
		}
	}
	// The line is tagged, hence still resident in this L1 (tags live on
	// lines): the write is at worst an S->M upgrade, never a fill.
	lat = e.h.Write(core, addr) + e.latFlag
	e.space.Write(addr, v)
	e.stats.CWrites++
	return lat, true
}

// UntagOne removes addr's line from core's tag set. It performs no memory
// access and cannot fail; untagging an untagged line is a no-op.
func (e *Extension) UntagOne(core int, addr mem.Addr) (lat uint64) {
	cs := &e.cores[core]
	line := mem.LineOf(addr)
	for i := range cs.tags {
		if cs.tags[i].line == line {
			cs.tags[i] = cs.tags[len(cs.tags)-1]
			cs.tags = cs.tags[:len(cs.tags)-1]
			break
		}
	}
	return e.latFlag
}

// UntagAll clears core's tag set and accessRevokedBit.
func (e *Extension) UntagAll(core int) (lat uint64) {
	cs := &e.cores[core]
	cs.tags = cs.tags[:0]
	cs.revoked = false
	return e.latFlag
}
