// Package core implements Conditional Access, the paper's primary
// contribution: a small ISA extension that lets optimistic data structures
// reclaim memory immediately.
//
// Four instructions are provided (paper Section II-B):
//
//   - cread  addr  — load addr, tagging its cache line; fails (without
//     loading) if the core's accessRevokedBit is set.
//   - cwrite addr,v — store v to addr; fails if the accessRevokedBit is set
//     or addr's line is not currently tagged.
//   - untagOne addr — remove addr's line from the tag set.
//   - untagAll      — clear the tag set and the accessRevokedBit.
//
// The extension is implemented exactly as the paper's Section III sketches:
// one tag bit per L1 line and one accessRevokedBit per hardware thread, with
// no change to the coherence protocol. It subscribes to the cache model's
// invalidation events (remote invalidations, local evictions, and inclusive-
// L2 back-invalidations all revoke; M->S downgrades do not). Because the tag
// bits live on L1 lines, the tag set capacity is bounded by L1 residency:
// associativity evictions silently revoke, producing the spurious failures
// the paper discusses — and measures to be rare (reproduced by the
// associativity ablation benchmark).
//
// In "check" mode the extension additionally asserts the paper's safety
// results as executable invariants: a successful cread or cwrite must target
// a line that is live and whose allocation generation is unchanged since it
// was tagged (Theorem 6, use-after-free freedom; Theorem 7, ABA freedom).
package core

import (
	"fmt"

	"condaccess/internal/cache"
	"condaccess/internal/mem"
)

// Stats counts Conditional Access activity across all cores.
type Stats struct {
	CReads      uint64
	CReadFails  uint64
	CWrites     uint64
	CWriteFails uint64 // includes failures due to an untagged target line
	Untagged    uint64 // cwrite failures specifically due to an untagged line
	Revocations uint64 // accessRevokedBit transitions caused by invalidations
	SelfEvicts  uint64 // revocations caused by this core's own L1 evictions
	MaxTagSet   int    // high-water mark of any core's tag set
}

// coreState is one hardware thread's tag set and accessRevokedBit. The tag
// set is a line-indexed era-stamped table rather than a list: line li is
// tagged iff stamp[li] == era. Every operation that touches it — the tag
// membership probe on each cread/cwrite, untagOne, and the LineInvalidated
// event the cache fires on every eviction — is O(1), and untagAll (once per
// data-structure operation) retires the whole set by bumping era, no
// clearing pass. The earlier representation, a slice scanned linearly, made
// each cread O(tag set): a tree traversal tagging d lines paid O(d²)
// membership probes per operation, which profiles showed as the simulator's
// single hottest non-cache component.
type coreState struct {
	// stamp[li] == era iff the line with index li is tagged. A stamp value of
	// 0 never matches (era starts at 1 and only grows), so fresh table growth
	// needs no initialization.
	stamp []uint64
	// gen[li] is the allocation generation recorded when li was tagged,
	// meaningful only while stamp[li] == era. The check-mode invariants
	// (Theorems 6 and 7) compare it against the line's current generation.
	gen     []uint32
	era     uint64
	count   int // live tag count: TagSetSize and the MaxTagSet high-water
	revoked bool
}

// tagged reports whether line index li is in the tag set.
func (cs *coreState) tagged(li uint64) bool {
	return li < uint64(len(cs.stamp)) && cs.stamp[li] == cs.era
}

// tag inserts line index li (not currently tagged) with generation g.
func (cs *coreState) tag(li uint64, g uint32) {
	if li >= uint64(len(cs.stamp)) {
		cs.growTo(li)
	}
	cs.stamp[li] = cs.era
	cs.gen[li] = g
	cs.count++
}

// untag removes line index li, which the caller has verified is tagged.
func (cs *coreState) untag(li uint64) {
	cs.stamp[li] = 0
	cs.count--
}

// untagAll empties the tag set: bumping era instantly invalidates every
// stamp. The tables are line-indexed, so nothing needs clearing.
func (cs *coreState) untagAll() {
	cs.era++
	cs.count = 0
}

// growTo extends the stamp/gen tables to cover line index li. Growth is
// amortized: the simulated heap only ever grows, so after warm-up this is
// never hit again.
func (cs *coreState) growTo(li uint64) {
	n := uint64(64)
	for n <= li {
		n *= 2
	}
	ns := make([]uint64, n)
	copy(ns, cs.stamp)
	ng := make([]uint32, n)
	copy(ng, cs.gen)
	cs.stamp = ns
	cs.gen = ng
}

// Extension is the Conditional Access hardware extension for a simulated
// machine. Create it with New, wire it as the cache hierarchy's Listener,
// then Attach the hierarchy and heap.
type Extension struct {
	h       *cache.Hierarchy
	space   *mem.Space
	cores   []coreState
	stats   Stats
	latFlag uint64 // cached Params().LatFlagCheck: every instruction pays it

	// Check enables the executable safety invariants (Theorems 6 and 7).
	Check bool
}

// New creates the extension for nCores hardware threads. The returned value
// implements cache.Listener and must be registered with the hierarchy at
// construction; call Attach afterwards.
func New(nCores int) *Extension {
	e := &Extension{cores: make([]coreState, nCores)}
	for i := range e.cores {
		e.cores[i].era = 1
	}
	return e
}

// Attach connects the extension to the hierarchy and heap it observes.
func (e *Extension) Attach(h *cache.Hierarchy, space *mem.Space) {
	e.h = h
	e.space = space
	e.latFlag = h.Params().LatFlagCheck
}

// Reset clears every core's tag set and accessRevokedBit and zeroes the
// statistics, returning the extension to its post-New state (the stamp-table
// capacity is kept; retiring the old tags is an era bump, not a clear).
func (e *Extension) Reset() {
	for i := range e.cores {
		e.cores[i].untagAll()
		e.cores[i].revoked = false
	}
	e.stats = Stats{}
}

// Stats returns a copy of the accumulated statistics.
func (e *Extension) Stats() Stats { return e.stats }

// LineInvalidated implements cache.Listener: if the invalidated line is
// tagged at core, the core's accessRevokedBit is set and the tag discarded
// (the tag bit physically lives on the departing line).
func (e *Extension) LineInvalidated(core int, line uint64) {
	cs := &e.cores[core]
	li := line / mem.LineBytes
	if !cs.tagged(li) {
		return
	}
	cs.untag(li)
	if !cs.revoked {
		cs.revoked = true
		e.stats.Revocations++
	}
}

// Revoked reports core's accessRevokedBit.
func (e *Extension) Revoked(core int) bool { return e.cores[core].revoked }

// RevokeThread unconditionally sets core's accessRevokedBit and discards its
// tags. The simulator calls it on a context switch: the paper (Section III)
// has the OS revoke a switched-out thread rather than track invalidations on
// its behalf, which is what makes Conditional Access usable in multiuser
// systems.
func (e *Extension) RevokeThread(core int) {
	cs := &e.cores[core]
	cs.untagAll()
	if !cs.revoked {
		cs.revoked = true
		e.stats.Revocations++
	}
}

// TagSetSize returns the current number of tagged lines at core.
func (e *Extension) TagSetSize(core int) int { return e.cores[core].count }

// CRead executes a cread by core at addr. On success it returns the loaded
// value, the access latency, and ok=true; on failure (accessRevokedBit set)
// it returns only the flag-check latency and ok=false, having performed no
// memory access.
func (e *Extension) CRead(core int, addr mem.Addr) (val uint64, lat uint64, ok bool) {
	cs := &e.cores[core]
	if cs.revoked {
		e.stats.CReadFails++
		return 0, e.latFlag, false
	}
	// The load may evict another tagged line of this core, setting the
	// revoked bit; per the paper's atomicity, this cread still succeeds (its
	// flag check happened first) and the next conditional access fails.
	lat = e.h.Read(core, addr) + e.latFlag
	li := addr / mem.LineBytes
	v, gen := e.space.ReadGen(addr)
	if cs.tagged(li) {
		if e.Check && cs.gen[li] != gen {
			panic(fmt.Sprintf("core: cread at %#x succeeded across reallocation (gen %d -> %d): Theorem 7 violated", addr, cs.gen[li], gen))
		}
	} else {
		cs.tag(li, gen)
		if cs.count > e.stats.MaxTagSet {
			e.stats.MaxTagSet = cs.count
		}
	}
	if e.Check && !e.space.Live(addr) {
		panic(fmt.Sprintf("core: cread at %#x succeeded on a freed line: Theorem 6 violated", addr))
	}
	e.stats.CReads++
	return v, lat, true
}

// CWrite executes a cwrite by core of v to addr. It fails — performing no
// memory access — if the accessRevokedBit is set or addr's line is not in
// the tag set (the paper requires a prior cread precisely to keep the
// high-latency fill out of the store path; see Section II-B).
func (e *Extension) CWrite(core int, addr mem.Addr, v uint64) (lat uint64, ok bool) {
	cs := &e.cores[core]
	if cs.revoked {
		e.stats.CWriteFails++
		return e.latFlag, false
	}
	li := addr / mem.LineBytes
	if !cs.tagged(li) {
		e.stats.CWriteFails++
		e.stats.Untagged++
		return e.latFlag, false
	}
	if e.Check {
		if gen := e.space.Gen(addr); cs.gen[li] != gen {
			panic(fmt.Sprintf("core: cwrite at %#x succeeded across reallocation (gen %d -> %d): Theorem 7 violated", addr, cs.gen[li], gen))
		}
		if !e.space.Live(addr) {
			panic(fmt.Sprintf("core: cwrite at %#x succeeded on a freed line: Theorem 6 violated", addr))
		}
	}
	// The line is tagged, hence still resident in this L1 (tags live on
	// lines): the write is at worst an S->M upgrade, never a fill.
	lat = e.h.Write(core, addr) + e.latFlag
	e.space.Write(addr, v)
	e.stats.CWrites++
	return lat, true
}

// UntagOne removes addr's line from core's tag set. It performs no memory
// access and cannot fail; untagging an untagged line is a no-op.
func (e *Extension) UntagOne(core int, addr mem.Addr) (lat uint64) {
	cs := &e.cores[core]
	if li := addr / mem.LineBytes; cs.tagged(li) {
		cs.untag(li)
	}
	return e.latFlag
}

// UntagAll clears core's tag set and accessRevokedBit.
func (e *Extension) UntagAll(core int) (lat uint64) {
	cs := &e.cores[core]
	cs.untagAll()
	cs.revoked = false
	return e.latFlag
}
