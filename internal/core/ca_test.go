package core

import (
	"testing"

	"condaccess/internal/cache"
	"condaccess/internal/mem"
)

// rig builds an extension over a small hierarchy and heap.
func rig(cores int) (*Extension, *mem.Space) {
	e := New(cores)
	p := cache.DefaultParams(cores)
	h := cache.New(p, e)
	s := mem.NewSpace()
	e.Attach(h, s)
	e.Check = true
	return e, s
}

func TestCReadTagsAndLoads(t *testing.T) {
	e, s := rig(2)
	a := s.AllocNode()
	s.Write(a, 77)
	v, _, ok := e.CRead(0, a)
	if !ok || v != 77 {
		t.Fatalf("cread = %d,%v, want 77,true", v, ok)
	}
	if e.TagSetSize(0) != 1 {
		t.Fatalf("tag set size = %d, want 1", e.TagSetSize(0))
	}
	// Re-cread of the same line must not grow the tag set.
	if _, _, ok := e.CRead(0, a+8); !ok {
		t.Fatal("second cread failed")
	}
	if e.TagSetSize(0) != 1 {
		t.Fatalf("tag set grew to %d on same-line cread", e.TagSetSize(0))
	}
}

func TestRemoteWriteRevokes(t *testing.T) {
	e, s := rig(2)
	a := s.AllocNode()
	if _, _, ok := e.CRead(0, a); !ok {
		t.Fatal("cread failed")
	}
	// Core 1 writes the tagged line: core 0 must be revoked.
	e.h.Write(1, a)
	s.Write(a, 1)
	if !e.Revoked(0) {
		t.Fatal("remote write did not revoke")
	}
	if _, _, ok := e.CRead(0, a); ok {
		t.Fatal("cread succeeded while revoked")
	}
	if _, ok := e.CWrite(0, a, 9); ok {
		t.Fatal("cwrite succeeded while revoked")
	}
	// untagAll clears the bit.
	e.UntagAll(0)
	if e.Revoked(0) {
		t.Fatal("untagAll did not clear revocation")
	}
	if _, _, ok := e.CRead(0, a); !ok {
		t.Fatal("cread failed after untagAll")
	}
}

func TestCWriteRequiresTag(t *testing.T) {
	e, s := rig(1)
	a := s.AllocNode()
	if _, ok := e.CWrite(0, a, 5); ok {
		t.Fatal("cwrite succeeded on an untagged line")
	}
	if e.Stats().Untagged != 1 {
		t.Fatalf("untagged counter = %d, want 1", e.Stats().Untagged)
	}
	if _, _, ok := e.CRead(0, a); !ok {
		t.Fatal("cread failed")
	}
	if _, ok := e.CWrite(0, a, 5); !ok {
		t.Fatal("cwrite failed on a tagged line")
	}
	if s.Read(a) != 5 {
		t.Fatal("cwrite did not store")
	}
}

func TestUntagOneStopsTracking(t *testing.T) {
	e, s := rig(2)
	a := s.AllocNode()
	b := s.AllocNode()
	e.CRead(0, a)
	e.CRead(0, b)
	e.UntagOne(0, a)
	if e.TagSetSize(0) != 1 {
		t.Fatalf("tag set = %d, want 1", e.TagSetSize(0))
	}
	// A write to the untagged line must NOT revoke.
	e.h.Write(1, a)
	if e.Revoked(0) {
		t.Fatal("untagged line still revokes")
	}
	// But the still-tagged line must.
	e.h.Write(1, b)
	if !e.Revoked(0) {
		t.Fatal("tagged line did not revoke")
	}
}

func TestSelfEvictionRevokes(t *testing.T) {
	e := New(1)
	p := cache.DefaultParams(1)
	p.L1Bytes = 2 * 64 * 2 // 2 sets, 2-way: tiny, to force conflict evictions
	p.L1Assoc = 2
	h := cache.New(p, e)
	s := mem.NewSpace()
	e.Attach(h, s)
	// Three lines mapping to the same set (stride = sets*64 = 128).
	var lines []mem.Addr
	for len(lines) < 3 {
		a := s.AllocInfra()
		if (a/64)%2 == 0 {
			lines = append(lines, a)
		}
	}
	if _, _, ok := e.CRead(0, lines[0]); !ok {
		t.Fatal("cread 0 failed")
	}
	if _, _, ok := e.CRead(0, lines[1]); !ok {
		t.Fatal("cread 1 failed")
	}
	// Third cread evicts a tagged line: the paper's spurious failure.
	if _, _, ok := e.CRead(0, lines[2]); !ok {
		t.Fatal("cread 2 failed (revocation should postdate its flag check)")
	}
	if !e.Revoked(0) {
		t.Fatal("associativity eviction did not revoke")
	}
	if e.Stats().SelfEvicts+e.Stats().Revocations == 0 {
		t.Fatal("revocation not counted")
	}
}

func TestABADetection(t *testing.T) {
	// Theorem 7 as a test: tag a line, free+reallocate it behind the
	// extension's back without any coherence event (impossible on real
	// hardware, constructible here), and verify the Check-mode cread panics
	// rather than succeeding across the reallocation.
	e, s := rig(2)
	a := s.AllocNode()
	if _, _, ok := e.CRead(0, a); !ok {
		t.Fatal("cread failed")
	}
	s.FreeNode(a) // rule violation: no store before free
	if got := s.AllocNode(); got != a {
		t.Fatalf("allocator did not reuse %#x", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cread across reallocation did not trip the Theorem 7 check")
		}
	}()
	e.CRead(0, a)
}

func TestTryLockSemantics(t *testing.T) {
	e, s := rig(2)
	node := s.AllocNode()
	lockAddr := node + 32
	acc0 := &testAccessor{e: e, s: s, core: 0}
	acc1 := &testAccessor{e: e, s: s, core: 1}
	// Precondition: tag the node first.
	if _, _, ok := e.CRead(0, node); !ok {
		t.Fatal("cread failed")
	}
	if !TryLock(acc0, lockAddr) {
		t.Fatal("trylock on free lock failed")
	}
	// A second acquirer sees the lock busy.
	if _, _, ok := e.CRead(1, node); !ok {
		t.Fatal("core 1 cread failed")
	}
	if TryLock(acc1, lockAddr) {
		t.Fatal("trylock acquired a held lock")
	}
	Unlock(acc0, lockAddr)
	// The unlock store revoked core 1; its next trylock fails on the cread,
	// and after untagAll+retag it succeeds.
	if TryLock(acc1, lockAddr) {
		t.Fatal("trylock succeeded while revoked")
	}
	e.UntagAll(1)
	if _, _, ok := e.CRead(1, node); !ok {
		t.Fatal("re-tag failed")
	}
	if !TryLock(acc1, lockAddr) {
		t.Fatal("trylock after unlock failed")
	}
}

// testAccessor adapts the extension to the Accessor interface for lock tests
// (the simulator's Ctx does this in production).
type testAccessor struct {
	e    *Extension
	s    *mem.Space
	core int
}

func (a *testAccessor) CRead(addr mem.Addr) (uint64, bool) {
	v, _, ok := a.e.CRead(a.core, addr)
	return v, ok
}

func (a *testAccessor) CWrite(addr mem.Addr, v uint64) bool {
	_, ok := a.e.CWrite(a.core, addr, v)
	return ok
}

func (a *testAccessor) Write(addr mem.Addr, v uint64) {
	a.e.h.Write(a.core, addr)
	a.s.Write(addr, v)
}
