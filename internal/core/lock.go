package core

import "condaccess/internal/mem"

// Accessor is the per-thread instruction interface the Conditional Access
// lock helpers are written against. The simulator's thread context
// (sim.Ctx) implements it.
type Accessor interface {
	// CRead executes a cread; ok=false means the access failed and the
	// operation must untagAll and restart.
	CRead(addr mem.Addr) (v uint64, ok bool)
	// CWrite executes a cwrite; ok=false means failure as above.
	CWrite(addr mem.Addr, v uint64) bool
	// Write is an ordinary store (used only where the paper permits:
	// inside critical sections and for unlock).
	Write(addr mem.Addr, v uint64)
}

// Lock field values.
const (
	Unlocked = 0
	Locked   = 1
)

// MaxSpuriousRetries bounds the consecutive restarts a Conditional Access
// operation will attempt before panicking with a diagnosis.
//
// Rationale: the tag set is physically bounded by L1 associativity (Section
// III). An operation that must hold k lines tagged simultaneously livelocks
// deterministically if those k lines collide in fewer than k ways of one
// set — retrying re-derives the same addresses and evicts the same tag
// forever. With the hand-over-hand untagOne discipline the structures here
// need at most 2 (lists) or 3 (external BST) simultaneous tags, so any
// associativity >= 4 cannot livelock; a direct-mapped L1 can, and would need
// the software fallback the paper sketches in Section IV ("facilitating
// progress"). Failing loudly with this explanation beats hanging the
// simulation.
const MaxSpuriousRetries = 1 << 20

// ErrLivelock formats the panic message for a retry-cap overflow.
func ErrLivelock(op string) string {
	return "core: " + op + " exceeded MaxSpuriousRetries: tag set likely " +
		"exceeds L1 associativity (direct-mapped caches need the paper's " +
		"software fallback; see Section IV, facilitating progress)"
}

// TryLock is the Conditional Access try-lock of the paper's Algorithm 2.
//
// Precondition: the node containing lockAddr has already been cread, so its
// line is tagged and any concurrent modification (including being freed and
// recycled) revokes access, failing the cwrite. TryLock returns false if the
// lock is busy or if either conditional access fails; in both cases the
// caller unlocks anything it holds, untags all, and retries its operation.
func TryLock(m Accessor, lockAddr mem.Addr) bool {
	v, ok := m.CRead(lockAddr)
	if !ok || v == Locked {
		return false
	}
	return m.CWrite(lockAddr, Locked)
}

// Unlock releases a lock acquired by TryLock using a plain store: a locked
// node cannot be concurrently mutated or freed by another thread, so the
// conditional check is unnecessary (paper Section IV-B, step 5).
func Unlock(m Accessor, lockAddr mem.Addr) {
	m.Write(lockAddr, Unlocked)
}
