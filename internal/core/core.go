package core
