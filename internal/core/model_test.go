package core

import (
	"testing"
	"testing/quick"

	"condaccess/internal/cache"
	"condaccess/internal/mem"
)

// TestExtensionMatchesArchitecturalModel drives random instruction sequences
// against the extension and an independent reference model of the paper's
// Section II-B specification. With a large L1 (no conflict evictions) the
// two must agree on every outcome: cread/cwrite success, the revoked bit,
// and tag-set contents.
func TestExtensionMatchesArchitecturalModel(t *testing.T) {
	type action struct {
		Op     uint8 // %5: cread, cwrite, untagOne, untagAll, remote write
		LineIx uint8 // %8: which of 8 fixed lines
	}
	f := func(actions []action) bool {
		e := New(2)
		h := cache.New(cache.DefaultParams(2), e) // 32K 8-way: no evictions here
		s := mem.NewSpace()
		e.Attach(h, s)
		e.Check = true

		lines := make([]mem.Addr, 8)
		for i := range lines {
			lines[i] = s.AllocInfra()
			s.Write(lines[i], uint64(i)*100)
		}

		// Reference model for core 0 (the paper's abstract state).
		tags := map[mem.Addr]bool{}
		revoked := false

		for i, a := range actions {
			addr := lines[a.LineIx%8]
			switch a.Op % 5 {
			case 0: // cread by core 0
				v, _, ok := e.CRead(0, addr)
				wantOK := !revoked
				if ok != wantOK {
					t.Logf("step %d: cread ok=%v, model %v", i, ok, wantOK)
					return false
				}
				if ok {
					tags[addr] = true
					if v != s.Read(addr) {
						t.Logf("step %d: cread value %d != heap %d", i, v, s.Read(addr))
						return false
					}
				}
			case 1: // cwrite by core 0
				_, ok := e.CWrite(0, addr, uint64(i))
				wantOK := !revoked && tags[addr]
				if ok != wantOK {
					t.Logf("step %d: cwrite ok=%v, model %v (revoked=%v tagged=%v)", i, ok, wantOK, revoked, tags[addr])
					return false
				}
				if ok && s.Read(addr) != uint64(i) {
					t.Logf("step %d: cwrite did not store", i)
					return false
				}
			case 2: // untagOne
				e.UntagOne(0, addr)
				delete(tags, addr)
			case 3: // untagAll
				e.UntagAll(0)
				tags = map[mem.Addr]bool{}
				revoked = false
			default: // remote write by core 1
				h.Write(1, addr)
				s.Write(addr, uint64(i)+1000)
				if tags[addr] {
					revoked = true
					delete(tags, addr) // the tag leaves with the line
				}
			}
			// Cross-check observable state after every step.
			if e.Revoked(0) != revoked {
				t.Logf("step %d: revoked=%v, model %v", i, e.Revoked(0), revoked)
				return false
			}
			if e.TagSetSize(0) != len(tags) {
				t.Logf("step %d: tagset size %d, model %d", i, e.TagSetSize(0), len(tags))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestRevocationMonotoneUntilUntagAll: once set, the accessRevokedBit stays
// set across any sequence of conditional accesses and untagOnes; only
// untagAll clears it (paper Section II-B).
func TestRevocationMonotoneUntilUntagAll(t *testing.T) {
	e, s := rig(2)
	a := s.AllocNode()
	b := s.AllocNode()
	e.CRead(0, a)
	e.h.Write(1, a) // revoke
	if !e.Revoked(0) {
		t.Fatal("not revoked")
	}
	// Nothing below may clear the bit.
	e.CRead(0, b)
	e.CWrite(0, b, 1)
	e.UntagOne(0, a)
	e.UntagOne(0, b)
	if !e.Revoked(0) {
		t.Fatal("revocation cleared by something other than untagAll")
	}
	e.UntagAll(0)
	if e.Revoked(0) {
		t.Fatal("untagAll did not clear revocation")
	}
}
