// Package mem implements the simulated heap used by the Conditional Access
// simulator.
//
// The paper's evaluation depends on memory reclamation being real: freed
// nodes must be reusable immediately (so ABA hazards actually occur) and
// use-after-free must be observable (so safe memory reclamation schemes can
// be validated). Go's garbage collector hides both, so the simulator runs
// all data-structure state in a simulated 64-bit address space.
//
// The space is organized in 64-byte lines, matching the simulated cache line
// size. Every data-structure node occupies exactly one line (the paper makes
// the same simplifying assumption in Section IV). Each line carries an
// allocation generation, which the simulator uses to detect use-after-free
// errors and to assert the paper's safety theorems (Theorems 6 and 7) as
// executable invariants.
package mem

import "fmt"

// Addr is a simulated byte address. Word accesses must be 8-byte aligned.
type Addr = uint64

const (
	// LineBytes is the simulated cache line size.
	LineBytes = 64
	// WordBytes is the machine word size.
	WordBytes = 8
	// WordsPerLine is the number of 64-bit words per line.
	WordsPerLine = LineBytes / WordBytes
	// PoisonWord is stored in every word of a freed line. Tests use it to
	// prove that no stale value ever flows into data-structure logic.
	PoisonWord = 0xDEADBEEFDEADBEEF
)

// line states.
const (
	lineReserved uint8 = iota // never allocated (line 0)
	lineLive
	lineFree
)

type lineMeta struct {
	gen   uint32
	state uint8
}

// Space is a simulated heap. It is not safe for concurrent use; the
// simulator serializes all accesses through its scheduler.
type Space struct {
	words []uint64
	lines []lineMeta

	// freeList holds indices of freed lines, LIFO so that addresses are
	// reused immediately (maximizing ABA pressure, as a real type-preserving
	// allocator would under churn).
	freeList []uint32
	nextLine uint32
	// limit is nextLine*LineBytes, kept in sync by carve and Reset: the
	// one-compare range check on the Read/Write/ReadGen fast paths, which
	// must stay within the inlining budget.
	limit Addr

	// checkUAF makes Read/Write panic when touching a freed line (see
	// SetCheckUAF). The benchmark harness enables it in validation runs;
	// callers that model deliberately unsafe probing use ReadAny.
	checkUAF bool

	stats Stats
}

// Stats counts allocator activity. NodeLive is the quantity plotted in the
// paper's Figure 3: nodes allocated but not yet freed.
type Stats struct {
	NodeAllocs uint64
	NodeFrees  uint64
	InfraLines uint64 // sentinel nodes, reservation arrays, globals
	PeakLive   uint64
}

// NodeLive returns the number of node lines currently allocated and not yet
// freed.
func (s Stats) NodeLive() uint64 { return s.NodeAllocs - s.NodeFrees }

// NewSpace creates an empty simulated heap. Address 0 is reserved so that 0
// can serve as the null pointer.
func NewSpace() *Space {
	s := &Space{nextLine: 1, limit: LineBytes}
	s.grow(64)
	s.lines[0].state = lineReserved
	return s
}

// Reset returns the space to its post-NewSpace state — empty heap, empty
// free list, zeroed statistics — while keeping the backing arrays, so a
// reused machine does not pay to re-grow its heap. Every word and line
// record that was ever carved is cleared; the next trial observes state
// bit-for-bit identical to a fresh space.
func (s *Space) Reset() {
	clear(s.words[:uint64(s.nextLine)*WordsPerLine])
	clear(s.lines[:s.nextLine])
	s.lines[0].state = lineReserved
	s.freeList = s.freeList[:0]
	s.nextLine = 1
	s.setLimit()
	s.stats = Stats{}
}

func (s *Space) grow(minLines uint32) {
	for uint32(len(s.lines)) < minLines {
		n := len(s.lines) * 2
		if n == 0 {
			n = 64
		}
		nw := make([]uint64, n*WordsPerLine)
		copy(nw, s.words)
		nl := make([]lineMeta, n)
		copy(nl, s.lines)
		s.words = nw
		s.lines = nl
	}
}

// LineOf returns the line-aligned base address containing a.
func LineOf(a Addr) Addr { return a &^ (LineBytes - 1) }

// lineIndex returns the line number containing a, panicking on addresses
// outside the space.
func (s *Space) lineIndex(a Addr) uint32 {
	li := uint32(a / LineBytes)
	if li >= s.nextLine {
		panic(fmt.Sprintf("mem: wild address %#x (heap has %d lines)", a, s.nextLine))
	}
	return li
}

// AllocInfra allocates a fresh line for simulator infrastructure: sentinel
// nodes, reclaimer reservation arrays, global epoch words. Infra lines are
// excluded from the Figure 3 footprint accounting and are never freed.
func (s *Space) AllocInfra() Addr {
	li := s.carve()
	s.stats.InfraLines++
	return Addr(li) * LineBytes
}

// AllocNode allocates one node line, reusing a freed line if available. The
// line's generation is advanced and its contents zeroed.
func (s *Space) AllocNode() Addr {
	var li uint32
	if n := len(s.freeList); n > 0 {
		li = s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		if s.lines[li].state != lineFree {
			panic("mem: corrupt free list")
		}
		s.lines[li].state = lineLive
		s.lines[li].gen++
		base := uint64(li) * WordsPerLine
		for i := uint64(0); i < WordsPerLine; i++ {
			s.words[base+i] = 0
		}
	} else {
		li = s.carve()
	}
	s.stats.NodeAllocs++
	if live := s.stats.NodeLive(); live > s.stats.PeakLive {
		s.stats.PeakLive = live
	}
	return Addr(li) * LineBytes
}

// carve takes a never-used line from the top of the heap.
func (s *Space) carve() uint32 {
	li := s.nextLine
	s.nextLine++
	s.setLimit()
	s.grow(s.nextLine)
	s.lines[li].state = lineLive
	s.lines[li].gen = 1
	return li
}

// FreeNode returns a node line to the allocator. The line is poisoned so any
// later unsafe read is detectable. Double frees panic: they are bugs in the
// reclamation scheme under test, not simulated program behaviour.
func (s *Space) FreeNode(a Addr) {
	if a == 0 {
		panic("mem: free of null")
	}
	if a%LineBytes != 0 {
		panic(fmt.Sprintf("mem: free of unaligned address %#x", a))
	}
	li := s.lineIndex(a)
	switch s.lines[li].state {
	case lineLive:
	case lineFree:
		panic(fmt.Sprintf("mem: double free of %#x", a))
	default:
		panic(fmt.Sprintf("mem: free of unallocated address %#x", a))
	}
	s.lines[li].state = lineFree
	base := uint64(li) * WordsPerLine
	for i := uint64(0); i < WordsPerLine; i++ {
		s.words[base+i] = PoisonWord
	}
	s.stats.NodeFrees++
	s.freeList = append(s.freeList, li)
}

// SetCheckUAF enables or disables use-after-free checking. With it on,
// Read/Write/ReadGen panic when touching a freed line. The flag is folded
// into limit (a checked space takes the out-of-line validation arm on every
// access), which keeps the hot-path predicate to two tests.
func (s *Space) SetCheckUAF(on bool) {
	s.checkUAF = on
	s.setLimit()
}

// CheckUAF reports whether use-after-free checking is enabled.
func (s *Space) CheckUAF() bool { return s.checkUAF }

// setLimit recomputes the fast-path bound after nextLine or checkUAF
// changes: zero under checkUAF so every access is fully validated.
func (s *Space) setLimit() {
	if s.checkUAF {
		s.limit = 0
	} else {
		s.limit = Addr(s.nextLine) * LineBytes
	}
}

// Read loads the word at a. With use-after-free checking on, reading a freed
// line panics.
//
// Read, Write, and ReadGen sit on every simulated memory access; their
// validity checks are shaped so the functions stay within the inlining
// budget, with everything but the in-bounds aligned fast path pushed out of
// line into checkSlow.
func (s *Space) Read(a Addr) uint64 {
	if a >= s.limit || a%WordBytes != 0 {
		s.checkSlowRead(a)
	}
	return s.words[a/WordBytes]
}

// Write stores v at a. With use-after-free checking on, writing a freed line
// panics.
func (s *Space) Write(a Addr, v uint64) {
	if a >= s.limit || a%WordBytes != 0 {
		s.checkSlowWrite(a)
	}
	s.words[a/WordBytes] = v
}

//go:noinline
func (s *Space) checkSlowRead(a Addr) { s.checkSlow(a, "read") }

//go:noinline
func (s *Space) checkSlowWrite(a Addr) { s.checkSlow(a, "write") }

// checkSlow is the out-of-line arm of the access validity check: it either
// panics with the exact diagnosis (unaligned / wild / use-after-free) or
// returns normally for a valid access under use-after-free checking, whose
// zeroed limit routes every access here.
func (s *Space) checkSlow(a Addr, op string) {
	if a%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned %s at %#x", op, a))
	}
	if a/LineBytes >= Addr(s.nextLine) {
		panic(fmt.Sprintf("mem: wild address %#x (heap has %d lines)", a, s.nextLine))
	}
	if s.checkUAF && s.lines[a/LineBytes].state != lineLive {
		panic(fmt.Sprintf("mem: use-after-free %s at %#x (gen %d)", op, a, s.lines[a/LineBytes].gen))
	}
}

// ReadGen loads the word at a and returns it together with the containing
// line's allocation generation — the pair the Conditional Access cread path
// needs on every tagged load. It is exactly Read followed by Gen, fused so
// the address is resolved once.
func (s *Space) ReadGen(a Addr) (uint64, uint32) {
	if a >= s.limit || a%WordBytes != 0 {
		s.checkSlowRead(a)
	}
	return s.words[a/WordBytes], s.lines[a/LineBytes].gen
}

// ReadAny loads a word regardless of allocation state. It models what real
// hardware would return on a use-after-free load and is used by tests and by
// diagnostics; the returned value may be PoisonWord.
func (s *Space) ReadAny(a Addr) uint64 {
	if a%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned read at %#x", a))
	}
	s.lineIndex(a)
	return s.words[a/WordBytes]
}

// Gen returns the allocation generation of the line containing a. The
// generation changes on every reallocation, letting the simulator distinguish
// "same address, same node" from "same address, recycled node".
func (s *Space) Gen(a Addr) uint32 { return s.lines[s.lineIndex(a)].gen }

// Live reports whether the line containing a is currently allocated.
func (s *Space) Live(a Addr) bool { return s.lines[s.lineIndex(a)].state == lineLive }

// Stats returns a copy of the allocator statistics.
func (s *Space) Stats() Stats { return s.stats }

// Lines returns the number of lines ever carved from the heap (the high-water
// mark of the simulated address space).
func (s *Space) Lines() int { return int(s.nextLine) }

// FreeListLen returns the number of lines currently in the free list.
func (s *Space) FreeListLen() int { return len(s.freeList) }

// Hash returns a cheap fingerprint of all live heap contents. The
// determinism tests use it to prove that two runs with the same seed produce
// bit-identical heaps.
func (s *Space) Hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for li := uint32(1); li < s.nextLine; li++ {
		if s.lines[li].state != lineLive {
			continue
		}
		h = (h ^ uint64(li)) * prime
		base := uint64(li) * WordsPerLine
		for i := uint64(0); i < WordsPerLine; i++ {
			h = (h ^ s.words[base+i]) * prime
		}
	}
	return h
}
