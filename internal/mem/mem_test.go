package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocNodeZeroesAndAligns(t *testing.T) {
	s := NewSpace()
	a := s.AllocNode()
	if a == 0 || a%LineBytes != 0 {
		t.Fatalf("bad node address %#x", a)
	}
	for i := Addr(0); i < LineBytes; i += WordBytes {
		if v := s.Read(a + i); v != 0 {
			t.Fatalf("fresh node word %d = %#x, want 0", i/8, v)
		}
	}
}

func TestFreeReuseLIFOAndGeneration(t *testing.T) {
	s := NewSpace()
	a := s.AllocNode()
	g1 := s.Gen(a)
	b := s.AllocNode()
	s.FreeNode(a)
	s.FreeNode(b)
	// LIFO: b comes back first, then a.
	if got := s.AllocNode(); got != b {
		t.Fatalf("reuse = %#x, want %#x (LIFO)", got, b)
	}
	if got := s.AllocNode(); got != a {
		t.Fatalf("second reuse = %#x, want %#x", got, a)
	}
	if g2 := s.Gen(a); g2 != g1+1 {
		t.Fatalf("generation = %d, want %d", g2, g1+1)
	}
}

func TestPoisonOnFree(t *testing.T) {
	s := NewSpace()
	a := s.AllocNode()
	s.Write(a, 12345)
	s.FreeNode(a)
	if v := s.ReadAny(a); v != PoisonWord {
		t.Fatalf("freed word = %#x, want poison", v)
	}
}

func TestUAFDetection(t *testing.T) {
	s := NewSpace()
	s.SetCheckUAF(true)
	a := s.AllocNode()
	s.FreeNode(a)
	mustPanic(t, "read-after-free", func() { s.Read(a) })
	mustPanic(t, "write-after-free", func() { s.Write(a, 1) })
}

func TestDoubleFreePanics(t *testing.T) {
	s := NewSpace()
	a := s.AllocNode()
	s.FreeNode(a)
	mustPanic(t, "double free", func() { s.FreeNode(a) })
	mustPanic(t, "free null", func() { s.FreeNode(0) })
	mustPanic(t, "free unaligned", func() { s.FreeNode(s.AllocNode() + 8) })
}

func TestInfraExcludedFromNodeStats(t *testing.T) {
	s := NewSpace()
	s.AllocInfra()
	s.AllocInfra()
	s.AllocNode()
	st := s.Stats()
	if st.NodeAllocs != 1 || st.InfraLines != 2 || st.NodeLive() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	s := NewSpace()
	a := s.AllocNode()
	mustPanic(t, "unaligned read", func() { s.Read(a + 3) })
	mustPanic(t, "unaligned write", func() { s.Write(a+5, 1) })
}

func TestWildAddressPanics(t *testing.T) {
	s := NewSpace()
	mustPanic(t, "wild read", func() { s.Read(1 << 40) })
}

func TestHashDetectsChanges(t *testing.T) {
	s := NewSpace()
	a := s.AllocNode()
	h1 := s.Hash()
	s.Write(a, 7)
	if s.Hash() == h1 {
		t.Fatal("hash unchanged after write")
	}
}

// TestAllocatorProperty drives random alloc/free/write sequences and checks
// the core allocator invariants: no two live lines overlap, live accounting
// matches, and data written to a live line persists until freed.
func TestAllocatorProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSpace()
		live := make(map[Addr]uint64) // addr -> expected word0
		var order []Addr
		for i, op := range ops {
			if op%3 != 0 || len(order) == 0 {
				a := s.AllocNode()
				if _, clash := live[a]; clash {
					t.Logf("line %#x allocated twice while live", a)
					return false
				}
				v := uint64(i)*2654435761 + 1
				s.Write(a, v)
				live[a] = v
				order = append(order, a)
			} else {
				idx := int(op/3) % len(order)
				a := order[idx]
				if got := s.Read(a); got != live[a] {
					t.Logf("line %#x = %#x, want %#x", a, got, live[a])
					return false
				}
				s.FreeNode(a)
				delete(live, a)
				order = append(order[:idx], order[idx+1:]...)
			}
			if s.Stats().NodeLive() != uint64(len(live)) {
				t.Logf("live accounting drift: %d vs %d", s.Stats().NodeLive(), len(live))
				return false
			}
		}
		for a, v := range live {
			if s.Read(a) != v {
				t.Logf("surviving line %#x corrupted", a)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}
