package scenario

import "fmt"

// rnd is a small self-contained splitmix64 generator, so Random depends on
// nothing and a seed means the same scenario everywhere (tests, fuzzers,
// CI) forever.
type rnd struct{ s uint64 }

func (r *rnd) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rnd) intn(n int) int { return int(r.next() % uint64(n)) }

// Random returns a valid random scenario derived deterministically from
// seed: 1–4 ops-bounded phases with random weight tables, key-range
// windows, hotspot shifts, distributions, and intensity profiles, and
// (half the time) a role table with a catch-all. It is the seed source for
// the cross-scheme differential fuzz suites: every returned scenario passes
// Validate (pinned by TestRandomScenariosValid), runs on any thread count
// (role tables stay within MinThreads 2), and is ops-bounded so the op
// count per thread is schedule-independent.
func Random(seed uint64) Scenario {
	r := &rnd{s: seed}
	r.next() // decorrelate small seeds
	sc := Scenario{Name: fmt.Sprintf("random-%d", seed)}

	nPhases := 1 + r.intn(4)
	for p := 0; p < nPhases; p++ {
		ph := Phase{
			Name: fmt.Sprintf("p%d", p),
			Ops:  30 + r.intn(120),
		}
		for ph.Weights.Total() == 0 {
			ph.Weights = Weights{Insert: r.intn(8), Delete: r.intn(8), Read: r.intn(8)}
		}
		switch r.intn(3) {
		case 0:
			ph.Dist = "uniform"
		case 1:
			ph.Dist = "zipf"
		}
		if r.intn(2) == 0 {
			ph.KeyRange = uint64(8 + r.intn(56)) // a window inside any binding range
		}
		ph.KeyShift = float64(r.intn(4)) / 8 // 0, .125, .25, .375
		switch r.intn(4) {
		case 0:
			ph.Profile = Profile{Kind: ProfileConstant, Work: uint64(r.intn(40))}
		case 1:
			ph.Profile = Profile{Kind: ProfileRamp, From: uint64(1 + r.intn(30)), To: uint64(1 + r.intn(30))}
		case 2:
			period := 2 + r.intn(20)
			ph.Profile = Profile{Kind: ProfileBurst, Period: period, Len: r.intn(period + 1), BurstWork: uint64(1 + r.intn(100))}
		case 3:
			steps := make([]Step, 1+r.intn(3))
			for i := range steps {
				steps[i] = Step{Ops: 1 + r.intn(40), Work: uint64(1 + r.intn(50))}
			}
			ph.Profile = Profile{Kind: ProfilePiecewise, Steps: steps}
		}
		sc.Phases = append(sc.Phases, ph)
	}

	if r.intn(2) == 0 {
		// One fixed role plus a catch-all: runs on any binding with >= 2
		// threads, the differential suites' floor.
		w := Weights{Insert: r.intn(4), Delete: r.intn(4), Read: 1 + r.intn(8)}
		sc.Roles = []Role{
			{Name: "fixed", Count: 1, Weights: &w},
			{Name: "rest"},
		}
	}
	return sc
}
