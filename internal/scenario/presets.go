package scenario

import (
	"fmt"
	"sort"
)

// Preset scenario names. Each models a workload family the stationary
// harness cannot express; all are thread-count agnostic (role tables use a
// catch-all) and scale their durations with the binding's ops budget.
const (
	PresetReadBurst    = "read-burst"
	PresetHotspotShift = "hotspot-shift"
	PresetChurnDrain   = "churn-drain"
	PresetRampUp       = "ramp-up"
	PresetMixedRole    = "mixed-role"
)

// Presets returns the built-in scenarios, keyed by name.
//
//   - read-burst: a read-mostly steady state interrupted by a write burst
//     with bursty think time, then a cooldown — where batch reclaimers
//     accumulate garbage fastest right when latency matters.
//   - hotspot-shift: three zipfian phases whose hot set rotates by a third
//     of the key range each phase, so caches and reclaimers keep re-warming.
//   - churn-drain: 100% updates, with a piecewise think-time schedule that
//     accelerates mid-phase, followed by a delete-heavy drain that empties
//     the structure — the footprint stress case.
//   - ramp-up: think time ramps from lazy to saturating over the phase, the
//     inhomogeneous-intensity (ramping arrival rate) case, then holds.
//   - mixed-role: 2 dedicated writers and 1 insert/delete churner against a
//     reader majority — threads are not interchangeable.
func Presets() map[string]Scenario {
	return map[string]Scenario{
		PresetReadBurst: {
			Name: PresetReadBurst,
			Phases: []Phase{
				{Name: "read-mostly", Ops: 500, Weights: Weights{Insert: 5, Delete: 5, Read: 90}},
				{Name: "write-burst", Ops: 250, Weights: Weights{Insert: 45, Delete: 45, Read: 10},
					Profile: Profile{Kind: ProfileBurst, Period: 50, Len: 20, Work: 40, BurstWork: 2}},
				{Name: "cooldown", Ops: 250, Weights: Weights{Insert: 5, Delete: 5, Read: 90}},
			},
		},
		PresetHotspotShift: {
			Name: PresetHotspotShift,
			Phases: []Phase{
				{Name: "hot-low", Ops: 300, Dist: "zipf", Weights: Weights{Insert: 15, Delete: 15, Read: 70}},
				{Name: "hot-mid", Ops: 300, Dist: "zipf", KeyShift: 1.0 / 3,
					Weights: Weights{Insert: 15, Delete: 15, Read: 70}},
				{Name: "hot-high", Ops: 300, Dist: "zipf", KeyShift: 2.0 / 3,
					Weights: Weights{Insert: 15, Delete: 15, Read: 70}},
			},
		},
		PresetChurnDrain: {
			Name: PresetChurnDrain,
			Phases: []Phase{
				{Name: "churn", Ops: 500, Weights: Weights{Insert: 50, Delete: 50},
					Profile: Profile{Kind: ProfilePiecewise, Steps: []Step{
						{Ops: 200, Work: 30}, {Ops: 200, Work: 5}, {Ops: 100, Work: 30},
					}}},
				{Name: "drain", Ops: 400, Weights: Weights{Insert: 5, Delete: 75, Read: 20}},
			},
		},
		PresetRampUp: {
			Name: PresetRampUp,
			Phases: []Phase{
				{Name: "ramp", Ops: 600, Weights: Weights{Insert: 25, Delete: 25, Read: 50},
					Profile: Profile{Kind: ProfileRamp, From: 120, To: 5}},
				{Name: "saturated", Ops: 300, Weights: Weights{Insert: 25, Delete: 25, Read: 50},
					Profile: Profile{Kind: ProfileConstant, Work: 5}},
			},
		},
		PresetMixedRole: {
			Name: PresetMixedRole,
			Roles: []Role{
				{Name: "writer", Count: 2, Weights: &Weights{Insert: 45, Delete: 45, Read: 10}},
				{Name: "churner", Count: 1, Weights: &Weights{Insert: 50, Delete: 50}},
				{Name: "reader", Count: 0, Weights: &Weights{Read: 100}},
			},
			Phases: []Phase{
				{Name: "steady", Ops: 500, Weights: Weights{Insert: 10, Delete: 10, Read: 80}},
				{Name: "contended", Ops: 400, Dist: "zipf", Weights: Weights{Insert: 10, Delete: 10, Read: 80}},
			},
		},
	}
}

// PresetNames returns the preset names in sorted order.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the named built-in scenario.
func Preset(name string) (Scenario, error) {
	s, ok := Presets()[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown preset %q (have %v)", name, PresetNames())
	}
	return s, nil
}
