// Package scenario declares phased, role-based, time-varying workloads for
// the benchmark harness. The paper's evaluation runs one stationary mix —
// identical threads, one insert/delete/contains split, one key distribution,
// from prefill to exit — but batch-based reclamation's pathologies (the
// paper's own tail-latency critique of epoch/IBR batching) show up under
// non-stationary load: bursts, phase changes, shifting hotspots, drains.
//
// A Scenario is purely declarative: an ordered list of Phases, each with a
// duration (operations per thread or simulated cycles), an explicit
// per-operation weight table (replacing the rigid UpdatePct/2 split), a key
// distribution + range window, and an optional intensity Profile that
// modulates per-op think time over the phase (constant, ramp, burst, or
// piecewise-rate "inhomogeneous" schedules in the spirit of inhomogeneous
// Poisson workload generators). Roles partition the thread population —
// e.g. 6 readers / 2 writers / 1 churner — so threads are no longer
// interchangeable.
//
// The type is JSON-serializable (cmd/cascenario loads scenario files), and
// package bench compiles it into per-thread op streams executed on the
// deterministic simulator; given the same scenario, binding, and seed, a run
// is bit-for-bit reproducible like every other trial.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// Weights is a per-operation weight table. An operation is drawn with
// probability weight/total. For sets the slots are insert/delete/contains;
// for stacks push/pop/peek; for queues enqueue/dequeue/front-peek.
type Weights struct {
	Insert int `json:"insert"`
	Delete int `json:"delete"`
	Read   int `json:"read"`
}

// Total returns the weight sum.
func (w Weights) Total() int { return w.Insert + w.Delete + w.Read }

func (w Weights) validate(where string) error {
	if w.Insert < 0 || w.Delete < 0 || w.Read < 0 {
		return fmt.Errorf("scenario: %s: negative weight %+v", where, w)
	}
	if w.Total() == 0 {
		return fmt.Errorf("scenario: %s: weight table sums to zero", where)
	}
	return nil
}

// Profile kinds. The profile shapes per-op think time (local work cycles
// charged before each operation) across a phase, so operation *intensity*
// varies over simulated time: less think time means a higher arrival rate.
const (
	ProfileConstant  = "constant"
	ProfileRamp      = "ramp"
	ProfileBurst     = "burst"
	ProfilePiecewise = "piecewise"
)

// Step is one segment of a piecewise intensity profile: Ops operations at
// Work think-time cycles each. The last step extends to the end of the
// phase.
type Step struct {
	Ops  int    `json:"ops"`
	Work uint64 `json:"work"`
}

// Profile is a time-varying think-time schedule. The zero value is a
// constant profile at the harness default work.
type Profile struct {
	// Kind is one of the Profile* constants; empty means ProfileConstant.
	Kind string `json:"kind,omitempty"`
	// Work is the base think time in cycles; 0 means the harness default.
	Work uint64 `json:"work,omitempty"`
	// From and To are the ramp endpoints (ProfileRamp); 0 means the harness
	// default. Think time is interpolated linearly over the phase, so a
	// From > To ramp models intensity ramping *up*.
	From uint64 `json:"from,omitempty"`
	To   uint64 `json:"to,omitempty"`
	// Period and Len shape ProfileBurst: each period of Period ops starts
	// with Len ops at BurstWork think time, the rest run at Work.
	Period    int    `json:"period,omitempty"`
	Len       int    `json:"len,omitempty"`
	BurstWork uint64 `json:"burstWork,omitempty"`
	// Steps is the ProfilePiecewise schedule.
	Steps []Step `json:"steps,omitempty"`
}

func (p Profile) validate(where string) error {
	switch p.Kind {
	case "", ProfileConstant, ProfileRamp:
		return nil
	case ProfileBurst:
		if p.Period <= 0 {
			return fmt.Errorf("scenario: %s: burst profile needs period > 0", where)
		}
		if p.Len < 0 || p.Len > p.Period {
			return fmt.Errorf("scenario: %s: burst len %d out of [0,%d]", where, p.Len, p.Period)
		}
		return nil
	case ProfilePiecewise:
		if len(p.Steps) == 0 {
			return fmt.Errorf("scenario: %s: piecewise profile needs steps", where)
		}
		for i, s := range p.Steps {
			if s.Ops <= 0 && i != len(p.Steps)-1 {
				return fmt.Errorf("scenario: %s: piecewise step %d needs ops > 0", where, i)
			}
		}
		return nil
	default:
		return fmt.Errorf("scenario: %s: unknown profile kind %q", where, p.Kind)
	}
}

// Phase is one stage of a scenario. Exactly one of Ops and Cycles must be
// positive: Ops runs every thread for that many operations; Cycles runs
// every thread until its core clock has advanced that many simulated cycles
// past its phase entry. Phases are separated by a global barrier (no thread
// enters phase k+1 before all threads finish phase k), which is what makes
// per-phase accounting exact.
type Phase struct {
	Name string `json:"name"`
	// Ops is the phase duration in operations per thread.
	Ops int `json:"ops,omitempty"`
	// Cycles is the phase duration in simulated cycles per thread.
	Cycles uint64 `json:"cycles,omitempty"`
	// Weights is the phase's default op mix; roles may override it.
	Weights Weights `json:"weights"`
	// Dist names the key distribution ("uniform", "zipf"); empty inherits
	// the binding's default.
	Dist string `json:"dist,omitempty"`
	// KeyRange restricts this phase to [1, KeyRange]; 0 inherits the
	// binding's range.
	KeyRange uint64 `json:"keyRange,omitempty"`
	// KeyShift rotates drawn keys by this fraction of the key range
	// (mod range), so a skewed distribution's hot set moves between phases —
	// the shifting-hotspot scenario. Must be in [0,1).
	KeyShift float64 `json:"keyShift,omitempty"`
	// Profile modulates per-op think time across the phase.
	Profile Profile `json:"profile,omitempty"`
}

// Role assigns a behavior to a block of threads. Threads take roles in
// declaration order: the first Count threads get the first role, and so on.
// At most one role may have Count 0, meaning "all remaining threads".
type Role struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Weights overrides every phase's weight table for this role's threads;
	// nil keeps the phase mix.
	Weights *Weights `json:"weights,omitempty"`
}

// Scenario is an ordered list of phases executed by a population of
// role-tagged threads.
type Scenario struct {
	Name   string  `json:"name"`
	Phases []Phase `json:"phases"`
	// Roles partitions the thread population; empty means all threads run
	// the phase mixes (one uniform role).
	Roles []Role `json:"roles,omitempty"`
}

// Validate checks the scenario's internal consistency. Binding-dependent
// checks (role counts vs thread count, key ranges vs the bound range,
// distribution names) happen when the harness compiles the scenario.
func (s *Scenario) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", s.Name)
	}
	for i, ph := range s.Phases {
		where := fmt.Sprintf("phase %d (%s)", i, ph.Name)
		if (ph.Ops > 0) == (ph.Cycles > 0) {
			return fmt.Errorf("scenario: %s: exactly one of ops and cycles must be positive", where)
		}
		if ph.Ops < 0 {
			return fmt.Errorf("scenario: %s: negative ops", where)
		}
		if ph.KeyShift < 0 || ph.KeyShift >= 1 {
			return fmt.Errorf("scenario: %s: key shift %v out of [0,1)", where, ph.KeyShift)
		}
		if err := ph.Weights.validate(where); err != nil {
			return err
		}
		if err := ph.Profile.validate(where); err != nil {
			return err
		}
	}
	rest := 0
	for i, r := range s.Roles {
		where := fmt.Sprintf("role %d (%s)", i, r.Name)
		if r.Count < 0 {
			return fmt.Errorf("scenario: %s: negative count", where)
		}
		if r.Count == 0 {
			if rest++; rest > 1 {
				return fmt.Errorf("scenario: %s: more than one catch-all (count 0) role", where)
			}
		}
		if r.Weights != nil {
			if err := r.Weights.validate(where); err != nil {
				return err
			}
		}
	}
	return nil
}

// MinThreads returns the smallest thread count the role table can be
// spread over: the sum of fixed role counts, plus one per catch-all role.
// A scenario with no roles runs on any thread count (returns 1).
func (s *Scenario) MinThreads() int {
	n := 0
	for _, r := range s.Roles {
		if r.Count == 0 {
			n++
		} else {
			n += r.Count
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// TotalOpsHint returns the per-thread operation count when every phase is
// ops-bounded, and ok=false when any phase is cycle-bounded (so the count
// depends on the run).
func (s *Scenario) TotalOpsHint() (n int, ok bool) {
	ok = true
	for _, ph := range s.Phases {
		if ph.Ops <= 0 {
			ok = false
			continue
		}
		n += ph.Ops
	}
	return n, ok
}

// Parse decodes and validates a scenario from JSON bytes. It is the parse
// half of Load, exposed so callers (and the fuzz harness) can feed scenarios
// from any source: Parse(b) succeeding guarantees the scenario is valid and
// that re-marshaling it yields bytes Parse accepts again with an identical
// result (pinned by FuzzLoadScenario).
func Parse(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing: %w", err)
	}
	// Canonicalize empty-but-present lists ("roles":[]) to absent: the two
	// spellings mean the same scenario, and omitempty would otherwise turn
	// one into the other across a marshal round trip (found by
	// FuzzLoadScenario).
	if len(s.Roles) == 0 {
		s.Roles = nil
	}
	for i := range s.Phases {
		if len(s.Phases[i].Profile.Steps) == 0 {
			s.Phases[i].Profile.Steps = nil
		}
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// Load reads a scenario from a JSON file and validates it. An unnamed
// scenario takes the file path as its name.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		// Parse errors already carry the "scenario:" prefix; add the path.
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}
