package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzLoadScenario fuzzes the scenario file format's parse→validate→
// re-marshal pipeline: any bytes Parse accepts must describe a scenario
// that (a) passes Validate — Parse's contract — and (b) survives a
// marshal/re-parse round trip unchanged, so a scenario file a tool echoes
// back (calab export, a preset dump, a hand edit) still means the same
// workload. Seeded with every built-in preset, so the corpus starts from
// realistic shapes (roles, bursts, piecewise profiles) rather than noise.
func FuzzLoadScenario(f *testing.F) {
	for _, name := range PresetNames() {
		sc, err := Preset(name)
		if err != nil {
			f.Fatal(err)
		}
		b, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"name":"x","phases":[{"name":"p","ops":1,"weights":{"read":1}}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // invalid inputs must be rejected, not crash — done
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a scenario Validate rejects: %v", err)
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-marshal of parsed scenario failed: %v", err)
		}
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of re-marshaled scenario failed: %v\nbytes: %s", err, out)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the scenario:\n in: %+v\nout: %+v\nbytes: %s", s, s2, out)
		}
	})
}

// TestRandomScenariosValid pins Random's contract: deterministic in the
// seed, always valid, always ops-bounded, runnable on two threads, and
// stable through the canonical JSON round trip.
func TestRandomScenariosValid(t *testing.T) {
	distinct := false
	for seed := uint64(0); seed < 500; seed++ {
		sc := Random(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if min := sc.MinThreads(); min > 2 {
			t.Fatalf("seed %d: MinThreads %d > 2", seed, min)
		}
		if _, ok := sc.TotalOpsHint(); !ok {
			t.Fatalf("seed %d: not ops-bounded", seed)
		}
		if !reflect.DeepEqual(sc, Random(seed)) {
			t.Fatalf("seed %d: Random not deterministic", seed)
		}
		b, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(sc, back) {
			t.Fatalf("seed %d: JSON round trip changed the scenario", seed)
		}
		if !reflect.DeepEqual(sc.Phases, Random(seed+1).Phases) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all 500 seeds produced identical phase lists")
	}
}
