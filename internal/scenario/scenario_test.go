package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func valid() Scenario {
	return Scenario{
		Name: "t",
		Phases: []Phase{
			{Name: "a", Ops: 10, Weights: Weights{Insert: 1, Delete: 1, Read: 2}},
			{Name: "b", Cycles: 5000, Weights: Weights{Read: 1}},
		},
		Roles: []Role{
			{Name: "w", Count: 2, Weights: &Weights{Insert: 1, Delete: 1}},
			{Name: "r", Count: 0},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	s := valid()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s: %v", p.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Scenario){
		"no phases":          func(s *Scenario) { s.Phases = nil },
		"ops and cycles":     func(s *Scenario) { s.Phases[0].Cycles = 100 },
		"neither duration":   func(s *Scenario) { s.Phases[0].Ops = 0 },
		"negative ops":       func(s *Scenario) { s.Phases[0].Ops = -1; s.Phases[0].Cycles = 100 },
		"negative weight":    func(s *Scenario) { s.Phases[0].Weights.Insert = -1 },
		"zero-sum weights":   func(s *Scenario) { s.Phases[0].Weights = Weights{} },
		"key shift too big":  func(s *Scenario) { s.Phases[0].KeyShift = 1 },
		"key shift negative": func(s *Scenario) { s.Phases[0].KeyShift = -0.1 },
		"bad profile kind":   func(s *Scenario) { s.Phases[0].Profile.Kind = "poisson" },
		"burst no period":    func(s *Scenario) { s.Phases[0].Profile = Profile{Kind: ProfileBurst} },
		"burst len > period": func(s *Scenario) { s.Phases[0].Profile = Profile{Kind: ProfileBurst, Period: 4, Len: 5} },
		"piecewise no steps": func(s *Scenario) { s.Phases[0].Profile = Profile{Kind: ProfilePiecewise} },
		"piecewise zero-ops mid-step": func(s *Scenario) {
			s.Phases[0].Profile = Profile{Kind: ProfilePiecewise, Steps: []Step{{Ops: 0, Work: 5}, {Ops: 5, Work: 1}}}
		},
		"negative role count": func(s *Scenario) { s.Roles[0].Count = -2 },
		"two catch-alls":      func(s *Scenario) { s.Roles[0].Count = 0 },
		"bad role weights":    func(s *Scenario) { s.Roles[0].Weights = &Weights{} },
	}
	for name, mutate := range cases {
		s := valid()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMinThreads(t *testing.T) {
	s := valid()
	if got := s.MinThreads(); got != 3 { // 2 writers + 1 for the catch-all
		t.Errorf("MinThreads = %d, want 3", got)
	}
	s.Roles = nil
	if got := s.MinThreads(); got != 1 {
		t.Errorf("no roles: MinThreads = %d, want 1", got)
	}
	for name, p := range Presets() {
		if p.MinThreads() > 4 {
			t.Errorf("preset %s needs %d threads; presets should fit small machines", name, p.MinThreads())
		}
	}
}

func TestTotalOpsHint(t *testing.T) {
	s := valid()
	if n, ok := s.TotalOpsHint(); ok || n != 10 {
		t.Errorf("cycle-bounded phase: hint = %d,%v; want 10,false", n, ok)
	}
	s.Phases[1] = Phase{Name: "b", Ops: 7, Weights: Weights{Read: 1}}
	if n, ok := s.TotalOpsHint(); !ok || n != 17 {
		t.Errorf("hint = %d,%v; want 17,true", n, ok)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := valid()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the scenario:\n%+v\n%+v", s, back)
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	data, err := json.Marshal(valid())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t" || len(s.Phases) != 2 {
		t.Fatalf("loaded %+v", s)
	}

	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"name":"x","phases":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("structurally invalid scenario accepted")
	}
}

func TestPresetLookup(t *testing.T) {
	names := PresetNames()
	if len(names) < 4 {
		t.Fatalf("only %d presets", len(names))
	}
	for _, n := range names {
		if _, err := Preset(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}
