package sim

import (
	"condaccess/internal/mem"
	"condaccess/internal/trace"
)

// Ctx is a simulated thread's execution context. All shared-memory accesses,
// Conditional Access instructions, fences, allocation, and local work go
// through it so that every action is charged simulated cycles and serialized
// by the scheduler. A Ctx is only valid inside the body passed to
// Machine.Spawn, for the duration of that body's Run phase: the record lives
// in the machine's thread slab and is reused by later phases.
//
// Ctx implements core.Accessor, so the Conditional Access try-lock helpers
// (core.TryLock, core.Unlock) work directly on it.
type Ctx struct {
	th    *thread
	m     *Machine
	clock *uint64 // &m.clocks[th.c]: charge is the hottest path in the simulator
	limit uint64  // run-until quantum limit; the event loop rewrites it before every resume
	// suspend transfers control back to the event loop at a quantum expiry
	// (the iter.Pull yield function of this thread's coroutine). Nil on the
	// single-thread fast path, where the limit is unbounded and yield is
	// unreachable.
	suspend func(struct{}) bool
	rng     RNG    // embedded so per-phase context setup allocates nothing
	zeroRun uint64 // consecutive zero-cycle charges (watchdog)

	// Pause-attribution state (BeginPause/EndPause): cycles this thread has
	// spent inside reclamation-pause brackets, so the harness can attribute
	// an operation's latency to an absorbed scan/free pass.
	pauseDepth int
	pauseMark  uint64
	pauseTotal uint64

	// retryCount counts this thread's own operation restarts (CountRetry).
	// The data structures also keep per-structure totals, but those are
	// shared across threads: a per-op delta of a shared counter would tag
	// an operation as retried whenever any concurrent thread restarted
	// inside its window, so attribution reads this thread-local counter.
	retryCount uint64
}

// reset rewinds this context for a fresh thread body — the per-phase
// initialization newCtx used to allocate, now a field reset of the slab
// record. The workload RNG is reseeded in place to the stream ThreadRNG
// derives for the thread's machine-wide spawn index.
func (c *Ctx) reset(t *thread, limit uint64) {
	c.th = t
	c.m = t.m
	c.clock = &t.m.clocks[t.c]
	c.limit = limit
	c.suspend = nil
	c.rng.seed(threadSeed(t.m.cfg.Seed, t.id))
	c.zeroRun = 0
	c.pauseDepth = 0
	c.pauseMark = 0
	c.pauseTotal = 0
	c.retryCount = 0
}

// zeroChargeLimit bounds consecutive zero-latency operations. A simulated
// thread that loops without advancing its clock would never yield and would
// silently wedge the whole machine; failing loudly points at the zero-cost
// loop instead.
const zeroChargeLimit = 1 << 26

// charge advances this core's clock by lat cycles and hands off to the next
// runnable thread if the quantum is exhausted. It runs after the access has
// taken effect, so accesses are atomic at their issue time. The body is
// shaped to stay within the inlining budget of every Ctx memory operation:
// the common case (nonzero charge, quantum not exhausted) is three
// instructions, and everything else lives in chargeSlow.
func (c *Ctx) charge(lat uint64) {
	*c.clock += lat
	if lat != 0 && *c.clock <= c.limit {
		c.zeroRun = 0
	} else {
		c.chargeSlow(lat)
	}
}

// chargeSlow handles the zero-latency watchdog and the quantum-expiry
// handoff.
func (c *Ctx) chargeSlow(lat uint64) {
	if lat == 0 {
		if c.zeroRun++; c.zeroRun > zeroChargeLimit {
			panic("sim: thread looped >2^26 times without consuming simulated time")
		}
	} else {
		c.zeroRun = 0
	}
	if *c.clock > c.limit {
		c.yield()
	}
}

// yield is the quantum-expiry slow path: suspend this thread's coroutine,
// transferring control back to the event loop (Machine.loop), which picks
// the next runnable thread and transfers into it. By the time a later pick
// resumes this thread, the loop has already written its fresh run-until
// limit into c.limit. A false return means the loop is unwinding (a peer's
// body panicked): raise the stop sentinel so this body's stack unwinds
// through the coroutine wrapper.
func (c *Ctx) yield() {
	if !c.suspend(struct{}{}) {
		panic(stopToken{})
	}
}

// ThreadID returns this thread's spawn index within its Run phase's core
// assignment (equal to its core number).
func (c *Ctx) ThreadID() int { return c.th.c }

// Rand returns this thread's deterministic workload RNG.
func (c *Ctx) Rand() *RNG { return &c.rng }

// Clock returns this core's current cycle count.
func (c *Ctx) Clock() uint64 { return *c.clock }

// Machine returns the machine this context runs on.
func (c *Ctx) Machine() *Machine { return c.m }

// Read performs an ordinary load.
func (c *Ctx) Read(a mem.Addr) uint64 {
	lat := c.m.Hier.Read(c.th.c, a)
	v := c.m.Space.Read(a)
	c.charge(lat)
	return v
}

// Write performs an ordinary store.
func (c *Ctx) Write(a mem.Addr, v uint64) {
	lat := c.m.Hier.Write(c.th.c, a)
	c.m.Space.Write(a, v)
	c.charge(lat)
}

// CAS performs an atomic compare-and-swap, returning true on success. Like
// hardware cmpxchg, it acquires the line exclusively whether or not the
// comparison succeeds.
func (c *Ctx) CAS(a mem.Addr, old, new uint64) bool {
	lat := c.m.Hier.Write(c.th.c, a)
	cur := c.m.Space.Read(a)
	ok := cur == old
	if ok {
		c.m.Space.Write(a, new)
	}
	c.charge(lat + 1)
	return ok
}

// FetchAdd atomically adds d to the word at a and returns the previous value.
func (c *Ctx) FetchAdd(a mem.Addr, d uint64) uint64 {
	lat := c.m.Hier.Write(c.th.c, a)
	v := c.m.Space.Read(a)
	c.m.Space.Write(a, v+d)
	c.charge(lat + 1)
	return v
}

// CRead executes the Conditional Access cread instruction: on success it
// returns the loaded value with the line tagged; ok=false means the
// accessRevokedBit was set and no load occurred — the operation must
// UntagAll and restart.
func (c *Ctx) CRead(a mem.Addr) (v uint64, ok bool) {
	v, lat, ok := c.m.Ext.CRead(c.th.c, a)
	c.charge(lat)
	return v, ok
}

// CWrite executes the cwrite instruction: the store happens only if the
// accessRevokedBit is clear and a's line is tagged (i.e. previously cread).
func (c *Ctx) CWrite(a mem.Addr, v uint64) bool {
	lat, ok := c.m.Ext.CWrite(c.th.c, a, v)
	c.charge(lat)
	return ok
}

// chargeZero is the zero-latency charge: the clock does not move, so the
// quantum cannot expire and only the watchdog needs feeding. Small enough to
// inline where charge's general body would not.
func (c *Ctx) chargeZero() {
	if c.zeroRun++; c.zeroRun > zeroChargeLimit {
		panic("sim: thread looped >2^26 times without consuming simulated time")
	}
}

// UntagOne removes a's line from this thread's tag set.
//
// Untag latency is LatFlagCheck, which is zero in the default latency model;
// a zero charge can never exhaust a quantum, so the frequent zero case feeds
// the watchdog inline instead of paying the full charge path.
func (c *Ctx) UntagOne(a mem.Addr) {
	if lat := c.m.Ext.UntagOne(c.th.c, a); lat != 0 {
		c.charge(lat)
	} else {
		c.chargeZero()
	}
}

// UntagAll clears the tag set and the accessRevokedBit. Zero charges are
// handled as in UntagOne.
func (c *Ctx) UntagAll() {
	if lat := c.m.Ext.UntagAll(c.th.c); lat != 0 {
		c.charge(lat)
	} else {
		c.chargeZero()
	}
}

// Revoked reports this thread's accessRevokedBit (diagnostic; real code
// learns of revocation through failing conditional accesses).
func (c *Ctx) Revoked() bool { return c.m.Ext.Revoked(c.th.c) }

// Fence models a full memory fence / store buffer drain. The reservation-
// based reclamation schemes (hp, he, ibr) pay one per protected read; this
// is the per-read overhead the paper attributes their slowness to.
func (c *Ctx) Fence() { c.charge(c.m.latFence) }

// Work charges n cycles of local computation.
func (c *Ctx) Work(n uint64) { c.charge(n) }

// BeginPause opens a pause bracket: until the matching EndPause, every cycle
// charged to this thread counts as pause time. The reclamation schemes
// bracket their scan/free passes with it, which is how the harness knows an
// operation's latency was spent absorbing a batch free rather than doing
// useful work — the paper's tail-latency critique made attributable.
// Brackets nest; only the outermost pair measures. Purely observational:
// no cycles are charged and simulated behavior is unchanged.
func (c *Ctx) BeginPause() {
	if c.pauseDepth == 0 {
		c.pauseMark = *c.clock
		if s := c.m.trace; s != nil {
			s.PauseBegin(c.th.c, *c.clock)
		}
	}
	c.pauseDepth++
}

// EndPause closes the innermost pause bracket.
func (c *Ctx) EndPause() {
	if c.pauseDepth == 0 {
		panic("sim: EndPause without BeginPause")
	}
	if c.pauseDepth--; c.pauseDepth == 0 {
		c.pauseTotal += *c.clock - c.pauseMark
		if s := c.m.trace; s != nil {
			s.PauseEnd(c.th.c, *c.clock)
		}
	}
}

// PauseCycles returns the cycles this thread has spent inside closed pause
// brackets. The harness samples it before and after each operation; a
// nonzero delta means the operation absorbed a reclamation pause of exactly
// that many cycles.
func (c *Ctx) PauseCycles() uint64 { return c.pauseTotal }

// CountRetry records one operation restart by this thread (a failed
// conditional access or a validation failure forcing the operation back to
// the top). The data structures call it wherever they bump their own
// Retries counters. Purely observational: no cycles are charged.
func (c *Ctx) CountRetry() {
	c.retryCount++
	if s := c.m.trace; s != nil {
		s.Retry(c.th.c, *c.clock)
	}
}

// TraceScan records one reclamation scan's outcome — scheme name, nodes
// freed, nodes still pinned by peers — on the machine's event sink. The
// reclaimers call it at the end of each scan pass, inside the pause bracket,
// so the instant lands inside the pause slice it explains. No-op when
// tracing is off.
func (c *Ctx) TraceScan(scheme string, freed, kept int) {
	if s := c.m.trace; s != nil {
		s.Scan(c.th.c, *c.clock, scheme, freed, kept)
	}
}

// Trace returns the machine's attached event sink — nil when tracing is
// off, which is itself a valid (no-op) sink value. The harness uses it to
// emit op begin/end events without threading a sink through every call.
func (c *Ctx) Trace() *trace.Sink { return c.m.trace }

// RetryCount returns how many times this thread's operations have
// restarted. Like PauseCycles, the harness deltas it around each operation
// to attribute that operation's latency.
func (c *Ctx) RetryCount() uint64 { return c.retryCount }

// PreemptCycles is the modeled cost of an OS context switch.
const PreemptCycles = 2000

// Preempt models an OS context switch of this thread: the paper's Section
// III has the OS set the switched-out thread's accessRevokedBit instead of
// tracking invalidations on its behalf, so the thread's next conditional
// access fails and its operation restarts. Charges PreemptCycles.
func (c *Ctx) Preempt() {
	c.m.Ext.RevokeThread(c.th.c)
	c.charge(PreemptCycles)
}

// AllocNode allocates a 64-byte node from the simulated heap.
func (c *Ctx) AllocNode() mem.Addr {
	a := c.m.Space.AllocNode()
	c.charge(c.m.cfg.AllocCycles)
	return a
}

// Free returns a node to the simulated heap. The paper's reclaimer rule —
// a thread must write to a node before freeing it — is the caller's
// responsibility and is validated in Check mode.
func (c *Ctx) Free(a mem.Addr) {
	c.m.Space.FreeNode(a)
	c.charge(c.m.cfg.FreeCycles)
}
