package sim

import (
	"testing"
	"testing/quick"

	"condaccess/internal/mem"
)

func TestSingleThreadRunsToCompletion(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 1})
	done := false
	m.Spawn(func(c *Ctx) {
		a := c.AllocNode()
		c.Write(a, 42)
		if c.Read(a) != 42 {
			t.Error("write/read mismatch")
		}
		done = true
	})
	m.Run()
	if !done || m.MaxClock() == 0 {
		t.Fatalf("done=%v clock=%d", done, m.MaxClock())
	}
}

func TestSchedulerInterleavesByClock(t *testing.T) {
	// Two threads increment a shared counter; the serialized simulator must
	// never lose an update even without atomics.
	m := New(Config{Cores: 2, Seed: 2, Slack: 50})
	ctr := m.Space.AllocInfra()
	for i := 0; i < 2; i++ {
		m.Spawn(func(c *Ctx) {
			for j := 0; j < 1000; j++ {
				c.FetchAdd(ctr, 1)
			}
		})
	}
	m.Run()
	if v := m.Space.Read(ctr); v != 2000 {
		t.Fatalf("counter = %d, want 2000", v)
	}
}

func TestCASSemantics(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 3})
	m.Spawn(func(c *Ctx) {
		a := c.AllocNode()
		c.Write(a, 10)
		if c.CAS(a, 11, 12) {
			t.Error("CAS with wrong expected succeeded")
		}
		if !c.CAS(a, 10, 12) {
			t.Error("CAS with right expected failed")
		}
		if c.Read(a) != 12 {
			t.Error("CAS did not store")
		}
	})
	m.Run()
}

func TestClocksAdvanceIndependently(t *testing.T) {
	m := New(Config{Cores: 2, Seed: 4})
	m.Spawn(func(c *Ctx) { c.Work(100) })
	m.Spawn(func(c *Ctx) { c.Work(10000) })
	m.Run()
	if m.Clock(0) >= m.Clock(1) {
		t.Fatalf("clocks = %d, %d; thread 1 did 100x the work", m.Clock(0), m.Clock(1))
	}
	if m.MaxClock() != m.Clock(1) {
		t.Fatal("MaxClock is not the maximum")
	}
}

func TestResetClocksBetweenPhases(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 5})
	m.Spawn(func(c *Ctx) { c.Work(500) })
	m.Run()
	m.ResetClocks()
	if m.MaxClock() != 0 {
		t.Fatal("clocks survived reset")
	}
	m.Spawn(func(c *Ctx) { c.Work(7) })
	m.Run()
	if m.MaxClock() != 7 {
		t.Fatalf("clock = %d, want 7", m.MaxClock())
	}
}

func TestSpawnOverCoresPanics(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 6})
	m.Spawn(func(c *Ctx) {})
	defer func() {
		if recover() == nil {
			t.Fatal("overspawn accepted")
		}
	}()
	m.Spawn(func(c *Ctx) {})
}

func TestCheckModeCatchesUAF(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 7, Check: true})
	var recovered any
	m.Spawn(func(c *Ctx) {
		defer func() { recovered = recover() }()
		a := c.AllocNode()
		c.Free(a)
		c.Read(a) // must panic
	})
	m.Run()
	if recovered == nil {
		t.Fatal("use-after-free not caught")
	}
}

func TestConditionalAccessThroughCtx(t *testing.T) {
	m := New(Config{Cores: 2, Seed: 8, Check: true})
	a := m.Space.AllocInfra()
	stage := make(chan struct{}, 1)
	_ = stage
	// Thread 0 tags a; thread 1 writes it; thread 0's next cread fails.
	// Coordination is via simulated memory (a flag word) since simulated
	// threads may not use Go channels.
	flag := m.Space.AllocInfra()
	m.Spawn(func(c *Ctx) {
		if _, ok := c.CRead(a); !ok {
			t.Error("initial cread failed")
		}
		c.Write(flag, 1) // signal thread 1
		for c.Read(flag) != 2 {
			c.Work(10)
		}
		if _, ok := c.CRead(a); ok {
			t.Error("cread succeeded after remote write")
		}
		c.UntagAll()
		if _, ok := c.CRead(a); !ok {
			t.Error("cread failed after untagAll")
		}
	})
	m.Spawn(func(c *Ctx) {
		for c.Read(flag) != 1 {
			c.Work(10)
		}
		c.Write(a, 99)
		c.Write(flag, 2)
	})
	m.Run()
}

func TestRNGDeterminismAndRange(t *testing.T) {
	r1 := NewRNG(42)
	r2 := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if r.Uint64n(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zeros")
	}
}

func TestAllocFreeChargesCycles(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 9})
	m.Spawn(func(c *Ctx) {
		before := c.Clock()
		a := c.AllocNode()
		c.Free(a)
		if c.Clock()-before != DefaultAllocCycles+DefaultFreeCycles {
			t.Errorf("alloc+free cost = %d", c.Clock()-before)
		}
	})
	m.Run()
}

func TestResetReproducesFreshMachine(t *testing.T) {
	workload := func(m *Machine) uint64 {
		ctr := m.Space.AllocInfra()
		for i := 0; i < 4; i++ {
			m.Spawn(func(c *Ctx) {
				rng := c.Rand()
				for j := 0; j < 300; j++ {
					switch rng.Intn(3) {
					case 0:
						a := c.AllocNode()
						c.Write(a, rng.Uint64())
						c.Free(a)
					case 1:
						c.FetchAdd(ctr, 1)
					default:
						c.Read(ctr)
					}
				}
			})
		}
		m.Run()
		return m.MaxClock() ^ m.Space.Hash()
	}
	cfg := Config{Cores: 4, Seed: 11, Slack: 100}
	fresh := workload(New(cfg))
	m := New(Config{Cores: 4, Seed: 999, Slack: 35})
	workload(m) // dirty the heap, caches, extension, clocks
	if !m.Reset(cfg) {
		t.Fatal("Reset rejected a matching geometry")
	}
	if got := workload(m); got != fresh {
		t.Fatalf("reset machine diverged: %#x != fresh %#x", got, fresh)
	}
	if m.Reset(Config{Cores: 8, Seed: 11}) {
		t.Fatal("Reset accepted a different core count")
	}
}

func TestManyThreadsDeterministic(t *testing.T) {
	run := func() uint64 {
		m := New(Config{Cores: 16, Seed: 10, Slack: 100})
		ctr := m.Space.AllocInfra()
		for i := 0; i < 16; i++ {
			m.Spawn(func(c *Ctx) {
				rng := c.Rand()
				var a mem.Addr
				for j := 0; j < 200; j++ {
					switch rng.Intn(3) {
					case 0:
						a = c.AllocNode()
						c.Write(a, rng.Uint64())
						c.Free(a)
					case 1:
						c.FetchAdd(ctr, 1)
					default:
						c.Read(ctr)
					}
				}
			})
		}
		m.Run()
		return m.MaxClock() ^ m.Space.Hash()
	}
	if run() != run() {
		t.Fatal("16-thread run is nondeterministic")
	}
}

// TestPauseBrackets: BeginPause/EndPause attribute exactly the cycles
// charged inside the outermost bracket, nest correctly, survive quantum
// handoffs (only the bracketing thread's own clock counts), and are purely
// observational.
func TestPauseBrackets(t *testing.T) {
	m := New(Config{Cores: 2, Seed: 1})
	var pauses [2]uint64
	for i := 0; i < 2; i++ {
		m.Spawn(func(c *Ctx) {
			id := c.ThreadID()
			c.Work(10)
			if got := c.PauseCycles(); got != 0 {
				t.Errorf("thread %d: pause cycles %d before any bracket", id, got)
			}
			c.BeginPause()
			c.Work(300) // crosses quantum boundaries: peers run in between
			c.BeginPause()
			c.Work(40) // nested bracket must not double-count
			c.EndPause()
			c.Work(60)
			c.EndPause()
			c.Work(5)
			pauses[id] = c.PauseCycles()
		})
	}
	m.Run()
	for id, got := range pauses {
		if got != 400 {
			t.Errorf("thread %d: pause cycles %d, want 400", id, got)
		}
	}

	// Unmatched EndPause is a bug in the bracketing code and must fail loudly.
	m2 := New(Config{Cores: 1, Seed: 1})
	m2.Spawn(func(c *Ctx) {
		defer func() {
			if recover() == nil {
				t.Error("unmatched EndPause did not panic")
			}
		}()
		c.EndPause()
	})
	m2.Run()
}

// TestRetryCounting: CountRetry/RetryCount are thread-local — one thread's
// restarts are invisible to another's counter.
func TestRetryCounting(t *testing.T) {
	m := New(Config{Cores: 2, Seed: 1})
	var got [2]uint64
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn(func(c *Ctx) {
			for j := 0; j <= i*3; j++ {
				c.CountRetry()
				c.Work(50)
			}
			got[c.ThreadID()] = c.RetryCount()
		})
	}
	m.Run()
	if got[0] != 1 || got[1] != 4 {
		t.Fatalf("retry counts %v, want [1 4] (thread-local)", got)
	}
}
