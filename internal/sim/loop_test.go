package sim

// Event-loop invariant tests for the channel-free core: the slack-window
// bound, the live-list tie-break under swap-removal, the single-thread fast
// path, and the allocation bounds the coroutine engine promises.

import (
	"reflect"
	"testing"
)

// TestSlackWindowBound pins the scheduling discipline from inside the
// running bodies: after every charge, the running thread's clock may exceed
// the smallest clock among the other live threads by at most Slack. (At pick
// time the limit is second-smallest-clock + Slack; other clocks are frozen
// while this thread runs, and a resumed thread holds the global minimum, so
// the bound must hold at every observation point.)
func TestSlackWindowBound(t *testing.T) {
	const cores, slack = 4, 25
	m := New(Config{Cores: cores, Seed: 1, Slack: slack})
	finished := make([]bool, cores)
	for i := 0; i < cores; i++ {
		i := i
		step := uint64(i + 1)
		steps := 400 / (i + 1)
		m.Spawn(func(c *Ctx) {
			for s := 0; s < steps; s++ {
				c.Work(step)
				own := c.Clock()
				minOther, any := ^uint64(0), false
				for j := 0; j < cores; j++ {
					if j == i || finished[j] {
						continue
					}
					any = true
					if cj := m.Clock(j); cj < minOther {
						minOther = cj
					}
				}
				if any && own > minOther+slack {
					t.Errorf("thread %d ran to clock %d with another live thread at %d (slack %d)",
						i, own, minOther, slack)
				}
			}
			finished[i] = true
		})
	}
	m.Run()
}

// refSchedule is an independent straight-line model of the event loop's
// contract for bodies of the shape "n steps of Work(w)": min-clock pick with
// ties broken by live-list order, run-until limit of second-smallest clock
// plus slack (unbounded once alone), yield after the charge that exceeds the
// limit, and swap-removal of finished threads. It returns the in-body step
// trace (thread id per step, in execution order) and the final clocks.
func refSchedule(ws []uint64, ns []int, slack uint64) ([]int, []uint64) {
	n := len(ws)
	clocks := make([]uint64, n)
	rem := append([]int(nil), ns...)
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	var trace []int
	pick := func() (int, uint64) {
		mi := 0
		min := clocks[live[0]]
		second := ^uint64(0)
		for i := 1; i < len(live); i++ {
			if c := clocks[live[i]]; c < min {
				second, min, mi = min, c, i
			} else if c < second {
				second = c
			}
		}
		if len(live) == 1 {
			return 0, ^uint64(0)
		}
		return mi, second + slack
	}
	for len(live) > 0 {
		li, limit := pick()
		id := live[li]
		finished := false
		for {
			if rem[id] == 0 {
				finished = true
				break
			}
			trace = append(trace, id)
			rem[id]--
			clocks[id] += ws[id]
			if clocks[id] > limit {
				break
			}
		}
		if finished {
			last := len(live) - 1
			live[li] = live[last]
			live = live[:last]
		}
	}
	return trace, clocks
}

// TestTieBreakUnderSwapRemoval pins the pick order against the reference
// model, including the historical perturbation: removing a finished thread
// swaps the last live entry into its slot, which reorders later tie-breaks.
// Threads 0 and 1 advance in lockstep (permanent ties), and distinct finish
// times exercise several swap-removals.
func TestTieBreakUnderSwapRemoval(t *testing.T) {
	ws := []uint64{3, 3, 5, 2}
	ns := []int{120, 120, 70, 150}
	const slack = 30

	m := New(Config{Cores: len(ws), Seed: 1, Slack: slack})
	var trace []int
	for i := range ws {
		i := i
		m.Spawn(func(c *Ctx) {
			for s := 0; s < ns[i]; s++ {
				trace = append(trace, i)
				c.Work(ws[i])
			}
		})
	}
	m.Run()

	wantTrace, wantClocks := refSchedule(ws, ns, slack)
	if !reflect.DeepEqual(trace, wantTrace) {
		for i := range wantTrace {
			if i >= len(trace) || trace[i] != wantTrace[i] {
				t.Fatalf("step %d: got thread %v, reference model says %d", i, trace[i:min(i+8, len(trace))], wantTrace[i])
			}
		}
		t.Fatalf("trace length %d, reference model has %d", len(trace), len(wantTrace))
	}
	for i, want := range wantClocks {
		if got := m.Clock(i); got != want {
			t.Errorf("core %d final clock %d, reference model says %d", i, got, want)
		}
	}
}

// TestSingleThreadFastPath: a lone thread runs inline on the calling
// goroutine with no coroutine materialized (resume/stop/suspend all nil) and,
// once the machine is warm, a whole spawn+run phase allocates nothing.
func TestSingleThreadFastPath(t *testing.T) {
	m := New(Config{Cores: 1, Seed: 1})
	checked := false
	m.Spawn(func(c *Ctx) {
		if c.suspend != nil || c.th.resume != nil || c.th.stop != nil {
			t.Error("single-thread fast path materialized a coroutine")
		}
		// Far past any quantum: a lone thread's limit is unbounded.
		c.Work(100 * DefaultSlack)
		checked = true
	})
	m.Run()
	if !checked {
		t.Fatal("body did not run")
	}

	body := func(c *Ctx) {
		for i := 0; i < 64; i++ {
			c.Work(5)
		}
	}
	m.Spawn(body)
	m.Run() // warm the phase machinery
	if avg := testing.AllocsPerRun(100, func() {
		m.Spawn(body)
		m.Run()
	}); avg != 0 {
		t.Errorf("single-thread phase allocates %v per run after warm-up, want 0", avg)
	}
}

// TestQuantumSwitchAllocationFree bounds the per-quantum cost of the
// coroutine engine: a phase's allocation count must not depend on how many
// quantum switches it performs (the switches themselves are two coroutine
// transfers, no channels, no allocation), and the fixed per-phase overhead
// (iter.Pull coroutine per thread) stays small.
func TestQuantumSwitchAllocationFree(t *testing.T) {
	const cores = 4
	m := New(Config{Cores: cores, Seed: 1, Slack: 20})
	phaseAllocs := func(steps int) float64 {
		body := func(c *Ctx) {
			for s := 0; s < steps; s++ {
				c.Work(3)
			}
		}
		return testing.AllocsPerRun(10, func() {
			for i := 0; i < cores; i++ {
				m.Spawn(body)
			}
			m.Run()
		})
	}
	short := phaseAllocs(50)  // a handful of quanta per thread
	long := phaseAllocs(5000) // ~100x the quantum switches
	if long > short {
		t.Errorf("allocations grow with quantum switches: %v at 50 steps, %v at 5000", short, long)
	}
	// iter.Pull costs ~12 allocations per coroutine (the coro, its closures,
	// and the pulled-value cells); pin a ceiling so the fixed overhead cannot
	// quietly grow.
	if short > 16*cores {
		t.Errorf("per-phase overhead %v allocations for %d threads, want <= %d", short, cores, 16*cores)
	}
}
