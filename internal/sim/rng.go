package sim

// RNG is a small, fast, self-contained xorshift64* generator. The simulator
// avoids math/rand so that results are bit-reproducible regardless of Go
// version, and because workload generation sits on the simulation hot path.
type RNG struct{ s uint64 }

// NewRNG seeds a generator; a zero seed is remapped to a fixed constant
// (xorshift has a zero fixed point).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed)
	return r
}

// seed (re)initializes the generator in place, with NewRNG's zero-seed
// remapping. The simulator reseeds the RNG embedded in each reused thread
// context this way instead of allocating a fresh generator per phase.
func (r *RNG) seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r.s = seed
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	s := r.s
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	r.s = s
	return s * 0x2545F4914F6CDD1D
}

// ThreadRNG returns the deterministic workload RNG a thread with the given
// machine-wide spawn index executes under (the generator Ctx.Rand exposes).
// Harnesses that must carry a thread's random stream across several Run
// phases — the scenario engine runs one Run phase per workload phase —
// construct the stream once with this instead of re-deriving it per phase.
func ThreadRNG(seed uint64, spawnIndex int) *RNG {
	return NewRNG(threadSeed(seed, spawnIndex))
}

// threadSeed derives the per-thread seed ThreadRNG has always used; split
// out so the in-place context reset seeds the identical stream.
func threadSeed(seed uint64, spawnIndex int) uint64 {
	return seed + uint64(spawnIndex)*0x9E3779B97F4A7C15 + 1
}

// Uint64n returns a value uniform in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n(0)")
	}
	return r.Uint64() % n
}

// Intn returns a value uniform in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int { return int(r.Uint64n(uint64(n))) }
