// Package sim is the deterministic multicore simulator the reproduction runs
// on — the stand-in for the paper's Graphite.
//
// Each simulated thread is a goroutine pinned to a simulated core with its
// own cycle clock. Scheduling is conservative and peer-to-peer, in the
// spirit of Graphite's "lax" synchronization: exactly one thread executes at
// a time, and when its quantum expires it selects the runnable thread with
// the smallest clock itself and hands execution to it directly — there is no
// central scheduler goroutine. A thread may run until its clock passes the
// next-smallest clock plus a slack window. Because exactly one thread
// executes between handoffs, every simulated memory access is atomic, the
// memory model is sequentially consistent, and — because scheduling depends
// only on clocks and per-thread seeds — every run is bit-for-bit
// reproducible.
//
// Simulated time comes from the cache model: every access returns a latency
// (package cache) charged to the issuing core. Conditional Access
// instructions are provided by the extension in package core.
package sim

import (
	"fmt"

	"condaccess/internal/cache"
	"condaccess/internal/core"
	"condaccess/internal/mem"
)

// Config describes a simulated machine.
type Config struct {
	// Cores is the number of simulated cores (= maximum concurrent threads).
	Cores int
	// Cache overrides the hierarchy parameters; zero value means
	// cache.DefaultParams(Cores).
	Cache cache.Params
	// Slack is the scheduling quantum in cycles: a thread may run until its
	// clock exceeds the next runnable thread's clock by Slack. Zero means
	// DefaultSlack. Smaller values interleave more finely (and run slower).
	Slack uint64
	// Seed derives every thread's workload RNG.
	Seed uint64
	// Check enables the executable safety invariants: use-after-free
	// detection on every access and the Conditional Access generation checks
	// (the paper's Theorems 6 and 7).
	Check bool
	// AllocCycles and FreeCycles model allocator cost. Zero means defaults.
	AllocCycles uint64
	FreeCycles  uint64
}

// Default scheduling and allocator costs.
const (
	DefaultSlack       = 200
	DefaultAllocCycles = 30
	DefaultFreeCycles  = 20
)

func (c Config) withDefaults() Config {
	if c.Cache.Cores == 0 {
		c.Cache = cache.DefaultParams(c.Cores)
	}
	if c.Cache.Cores != c.Cores {
		panic("sim: cache params core count mismatch")
	}
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.AllocCycles == 0 {
		c.AllocCycles = DefaultAllocCycles
	}
	if c.FreeCycles == 0 {
		c.FreeCycles = DefaultFreeCycles
	}
	return c
}

// Machine is a simulated multicore. Build one with New, add threads with
// Spawn, and execute them to completion with Run. A machine can run several
// phases (e.g. a single-threaded prefill followed by the measured workload);
// heap and cache state persist across phases. Reset rewinds a machine to its
// post-New state so sweeps can reuse one machine's allocations across trials.
type Machine struct {
	cfg      Config
	Space    *mem.Space
	Hier     *cache.Hierarchy
	Ext      *core.Extension
	clocks   []uint64
	latFence uint64 // cached Hier latency: Ctx.Fence is on the hot path

	threads []*thread
	spawned int

	// Scheduler state. live holds the runnable threads; its order carries the
	// historical tie-break (spawn order, perturbed by swap-removal of finished
	// threads), liveC mirrors it with just the core ids so the per-quantum
	// min-clock scan touches two flat arrays and no thread pointers, and pos
	// indexes it by core so a finishing thread removes itself in O(1). done
	// carries the last thread's completion to Run.
	live  []*thread
	liveC []int32
	pos   []int
	done  chan struct{}
}

type thread struct {
	id   int
	c    int // core
	m    *Machine
	body func(*Ctx)

	// resume both wakes the thread and carries its next run-until limit.
	// Exactly one thread executes at a time, so each send has exactly one
	// blocked receiver: the previous holder hands the execution token
	// directly to the next with a single channel operation — on one P this
	// is the runtime's direct-handoff fast path (the receiver is placed in
	// runnext), with no scheduler round-trip in between.
	resume chan uint64
}

// handoff passes the execution token to t with its next run-until limit.
// Only the current token holder (or Run, starting the phase) may call it.
func (t *thread) handoff(limit uint64) {
	t.resume <- limit
}

// await blocks until this thread receives the execution token and returns
// the accompanying run-until limit.
func (t *thread) await() uint64 {
	return <-t.resume
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic("sim: cores must be in [1,64]")
	}
	m := &Machine{cfg: cfg}
	m.Space = mem.NewSpace()
	m.Space.CheckUAF = cfg.Check
	m.Ext = core.New(cfg.Cores)
	m.Ext.Check = cfg.Check
	m.Hier = cache.New(cfg.Cache, m.Ext)
	m.Ext.Attach(m.Hier, m.Space)
	m.clocks = make([]uint64, cfg.Cores)
	m.latFence = cfg.Cache.LatFence
	m.live = make([]*thread, 0, cfg.Cores)
	m.liveC = make([]int32, 0, cfg.Cores)
	m.pos = make([]int, cfg.Cores)
	m.done = make(chan struct{}, 1)
	return m
}

// Config returns the machine's configuration (with defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// Reset rewinds the machine to its post-New state for cfg — clocks zeroed,
// heap empty, caches cold, extension cleared, all statistics zero — reusing
// every allocation. It reports false (leaving the machine untouched) when
// cfg needs a different geometry, in which case the caller must build a new
// machine. A reset machine is indistinguishable from a fresh one: trial
// results are bit-for-bit identical either way.
func (m *Machine) Reset(cfg Config) bool {
	cfg = cfg.withDefaults()
	if cfg.Cores != m.cfg.Cores || cfg.Cache != m.cfg.Cache {
		return false
	}
	if len(m.threads) != 0 {
		panic("sim: Reset with threads pending")
	}
	m.cfg = cfg
	m.Space.Reset()
	m.Space.CheckUAF = cfg.Check
	m.Hier.Reset()
	m.Ext.Reset()
	m.Ext.Check = cfg.Check
	for i := range m.clocks {
		m.clocks[i] = 0
	}
	m.spawned = 0
	return true
}

// Spawn adds a thread for the next Run phase. Threads are assigned to cores
// in spawn order; spawning more threads than cores panics (the paper runs
// one thread per dedicated core).
func (m *Machine) Spawn(body func(*Ctx)) {
	if len(m.threads) >= m.cfg.Cores {
		panic("sim: more threads than cores")
	}
	t := &thread{
		id:     m.spawned,
		c:      len(m.threads),
		m:      m,
		body:   body,
		resume: make(chan uint64),
	}
	m.spawned++
	m.threads = append(m.threads, t)
}

// Run executes all spawned threads to completion, then clears the thread
// list so another phase can be spawned.
//
// With one thread (e.g. the prefill phase) the body runs to completion
// inline on the calling goroutine: a lone thread can never exhaust a
// quantum, so no goroutine or channel is needed. With several, each thread
// gets a goroutine and execution is a single token passed peer-to-peer: the
// running thread yields by picking the next runnable thread (min clock) and
// resuming it directly, and a finishing thread removes itself and hands off
// the same way. Run only blocks until the last thread signals completion.
func (m *Machine) Run() {
	if len(m.threads) == 0 {
		return
	}
	if len(m.threads) == 1 {
		t := m.threads[0]
		t.body(newCtx(t, ^uint64(0)))
		m.threads = m.threads[:0]
		return
	}
	m.live = append(m.live[:0], m.threads...)
	m.liveC = m.liveC[:0]
	for i, t := range m.live {
		m.liveC = append(m.liveC, int32(t.c))
		m.pos[t.c] = i
	}
	for _, t := range m.threads {
		go t.main()
	}
	next, limit := m.pickNext()
	next.handoff(limit)
	<-m.done
	m.threads = m.threads[:0]
}

// pickNext selects the runnable thread with the smallest clock — ties broken
// by live-list order, exactly as the historical central scheduler's scan did
// — and computes its run-until limit (second-smallest clock plus slack) in
// the same single pass. Threads are at most 64, so a linear scan beats a
// heap here.
func (m *Machine) pickNext() (*thread, uint64) {
	liveC := m.liveC
	clocks := m.clocks
	mi := 0
	minClock := clocks[liveC[0]]
	second := ^uint64(0)
	for i := 1; i < len(liveC); i++ {
		c := clocks[liveC[i]]
		if c < minClock {
			second = minClock
			minClock = c
			mi = i
		} else if c < second {
			second = c
		}
	}
	if len(liveC) == 1 {
		return m.live[0], ^uint64(0)
	}
	return m.live[mi], second + m.cfg.Slack
}

// finish removes t from the live set and hands the execution token to the
// next runnable thread, or signals Run when t was the last. Runs on t's
// goroutine, immediately before it exits.
func (m *Machine) finish(t *thread) {
	i := m.pos[t.c]
	last := len(m.live) - 1
	moved := m.live[last]
	m.live[i] = moved
	m.liveC[i] = m.liveC[last]
	m.pos[moved.c] = i
	m.live = m.live[:last]
	m.liveC = m.liveC[:last]
	if last == 0 {
		m.done <- struct{}{}
		return
	}
	next, limit := m.pickNext()
	next.handoff(limit)
}

func (t *thread) main() {
	t.body(newCtx(t, t.await()))
	t.m.finish(t)
}

// Clock returns core c's cycle counter.
func (m *Machine) Clock(c int) uint64 { return m.clocks[c] }

// MaxClock returns the largest core clock — the simulated wall time.
func (m *Machine) MaxClock() uint64 {
	var max uint64
	for _, c := range m.clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// ResetClocks zeroes all core clocks. The harness calls it between the
// prefill phase and the measured phase.
func (m *Machine) ResetClocks() {
	if len(m.threads) != 0 {
		panic("sim: ResetClocks with threads pending")
	}
	for i := range m.clocks {
		m.clocks[i] = 0
	}
}

// String summarizes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("sim.Machine{cores:%d l1:%dKB/%d-way l2:%dKB/%d-way slack:%d}",
		m.cfg.Cores, m.cfg.Cache.L1Bytes>>10, m.cfg.Cache.L1Assoc,
		m.cfg.Cache.L2Bytes>>10, m.cfg.Cache.L2Assoc, m.cfg.Slack)
}
