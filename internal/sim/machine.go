// Package sim is the deterministic multicore simulator the reproduction runs
// on — the stand-in for the paper's Graphite.
//
// Each simulated thread is a coroutine pinned to a simulated core with its
// own cycle clock, and the whole machine executes on the single goroutine
// that calls Machine.Run. Scheduling is conservative, in the spirit of
// Graphite's "lax" synchronization: exactly one thread executes at a time,
// and when its quantum expires it suspends back into the event loop, which
// selects the runnable thread with the smallest clock and resumes it — a
// pair of coroutine transfers, with no channels, no goroutine park/unpark,
// and no runtime scheduler on the critical path. A thread may run until its
// clock passes the next-smallest clock plus a slack window. Because exactly
// one thread executes between transfers, every simulated memory access is
// atomic, the memory model is sequentially consistent, and — because
// scheduling depends only on clocks and per-thread seeds — every run is
// bit-for-bit reproducible.
//
// Simulated time comes from the cache model: every access returns a latency
// (package cache) charged to the issuing core. Conditional Access
// instructions are provided by the extension in package core.
package sim

import (
	"fmt"
	"iter"

	"condaccess/internal/cache"
	"condaccess/internal/core"
	"condaccess/internal/mem"
	"condaccess/internal/trace"
)

// Config describes a simulated machine.
type Config struct {
	// Cores is the number of simulated cores (= maximum concurrent threads).
	Cores int
	// Cache overrides the hierarchy parameters; zero value means
	// cache.DefaultParams(Cores).
	Cache cache.Params
	// Slack is the scheduling quantum in cycles: a thread may run until its
	// clock exceeds the next runnable thread's clock by Slack. Zero means
	// DefaultSlack. Smaller values interleave more finely (and run slower).
	Slack uint64
	// Seed derives every thread's workload RNG.
	Seed uint64
	// Check enables the executable safety invariants: use-after-free
	// detection on every access and the Conditional Access generation checks
	// (the paper's Theorems 6 and 7).
	Check bool
	// AllocCycles and FreeCycles model allocator cost. Zero means defaults.
	AllocCycles uint64
	FreeCycles  uint64
}

// Default scheduling and allocator costs.
const (
	DefaultSlack       = 200
	DefaultAllocCycles = 30
	DefaultFreeCycles  = 20
)

func (c Config) withDefaults() Config {
	if c.Cache.Cores == 0 {
		c.Cache = cache.DefaultParams(c.Cores)
	}
	if c.Cache.Cores != c.Cores {
		panic("sim: cache params core count mismatch")
	}
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.AllocCycles == 0 {
		c.AllocCycles = DefaultAllocCycles
	}
	if c.FreeCycles == 0 {
		c.FreeCycles = DefaultFreeCycles
	}
	return c
}

// Machine is a simulated multicore. Build one with New, add threads with
// Spawn, and execute them to completion with Run. A machine can run several
// phases (e.g. a single-threaded prefill followed by the measured workload);
// heap and cache state persist across phases. Reset rewinds a machine to its
// post-New state so sweeps can reuse one machine's allocations across trials.
type Machine struct {
	cfg      Config
	Space    *mem.Space
	Hier     *cache.Hierarchy
	Ext      *core.Extension
	clocks   []uint64
	latFence uint64 // cached Hier latency: Ctx.Fence is on the hot path

	threads []*thread
	spawned int

	// Scheduler state. live holds the runnable threads; its order carries the
	// historical tie-break (spawn order, perturbed by swap-removal of finished
	// threads), liveC mirrors it with just the core ids so the per-quantum
	// min-clock scan touches two flat arrays and no thread pointers, and pos
	// indexes it by core so the loop removes a finishing thread in O(1).
	live  []*thread
	liveC []int32
	pos   []int

	// slab is the per-thread scheduler-state arena: one thread record (with
	// its embedded Ctx) per core, allocated once in New and recycled across
	// every Run phase and Reset, so steady-state spawning allocates nothing.
	// Thread i of a phase is always &slab[i] — cores are assigned in spawn
	// order, so the record's identity is the core.
	slab []thread

	// trace is the attached event sink, nil when tracing is off. Every
	// producer guards with one nil check, so the off path costs a single
	// predictable branch.
	trace *trace.Sink
}

// thread is one simulated thread's scheduler record. Its lifetime is a
// single Run phase, but the record itself lives in the machine's slab and is
// reused; only the coroutine (resume/stop) is per-phase.
type thread struct {
	id   int
	c    int // core
	m    *Machine
	body func(*Ctx)

	// resume continues this thread's coroutine until its next quantum expiry
	// (second value true) or until the body returns (false); stop unwinds a
	// suspended body. Both are nil on the single-thread fast path, which
	// never materializes a coroutine. Only the event loop calls them.
	resume func() (struct{}, bool)
	stop   func()

	// ctx is the thread's execution context, embedded so per-phase context
	// setup is a field reset, not an allocation. The event loop writes
	// ctx.limit before every resume; the body reads it inside charge.
	ctx Ctx
}

// stopToken is the sentinel Ctx.yield panics with when the event loop
// abandons a suspended thread (a peer's body panicked): it unwinds the
// body's stack and is recovered by the coroutine wrapper, so stop() returns
// cleanly instead of leaking a suspended coroutine.
type stopToken struct{}

// start materializes the thread's coroutine. The body does not begin
// executing until the event loop's first resume.
func (t *thread) start() {
	t.ctx.reset(t, 0)
	t.resume, t.stop = iter.Pull(t.run)
}

// run is the coroutine body: the thread's imperative code runs inside it,
// suspended at every quantum expiry by Ctx.yield and continued by the event
// loop's resume. A stopToken unwind (loop abandoning the thread) is
// recovered here; any other panic propagates through resume to Run's caller.
func (t *thread) run(yield func(struct{}) bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stopToken); !ok {
				panic(r)
			}
		}
	}()
	t.ctx.suspend = yield
	t.body(&t.ctx)
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic("sim: cores must be in [1,64]")
	}
	m := &Machine{cfg: cfg}
	m.Space = mem.NewSpace()
	m.Space.SetCheckUAF(cfg.Check)
	m.Ext = core.New(cfg.Cores)
	m.Ext.Check = cfg.Check
	m.Hier = cache.New(cfg.Cache, m.Ext)
	m.Ext.Attach(m.Hier, m.Space)
	m.clocks = make([]uint64, cfg.Cores)
	m.latFence = cfg.Cache.LatFence
	m.live = make([]*thread, 0, cfg.Cores)
	m.liveC = make([]int32, 0, cfg.Cores)
	m.pos = make([]int, cfg.Cores)
	m.slab = make([]thread, cfg.Cores)
	m.threads = make([]*thread, 0, cfg.Cores)
	return m
}

// Config returns the machine's configuration (with defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// Reset rewinds the machine to its post-New state for cfg — clocks zeroed,
// heap empty, caches cold, extension cleared, all statistics zero — reusing
// every allocation (including the thread-record slab). It reports false
// (leaving the machine untouched) when cfg needs a different geometry, in
// which case the caller must build a new machine. A reset machine is
// indistinguishable from a fresh one: trial results are bit-for-bit
// identical either way.
func (m *Machine) Reset(cfg Config) bool {
	cfg = cfg.withDefaults()
	if cfg.Cores != m.cfg.Cores || cfg.Cache != m.cfg.Cache {
		return false
	}
	if len(m.threads) != 0 {
		panic("sim: Reset with threads pending")
	}
	m.cfg = cfg
	m.Space.Reset()
	m.Space.SetCheckUAF(cfg.Check)
	m.Hier.Reset()
	m.Ext.Reset()
	m.Ext.Check = cfg.Check
	for i := range m.clocks {
		m.clocks[i] = 0
	}
	m.spawned = 0
	return true
}

// Spawn adds a thread for the next Run phase. Threads are assigned to cores
// in spawn order; spawning more threads than cores panics (the paper runs
// one thread per dedicated core). The thread record comes from the
// machine's slab, so steady-state spawning allocates nothing.
func (m *Machine) Spawn(body func(*Ctx)) {
	if len(m.threads) >= m.cfg.Cores {
		panic("sim: more threads than cores")
	}
	t := &m.slab[len(m.threads)]
	t.id = m.spawned
	t.c = len(m.threads)
	t.m = m
	t.body = body
	m.spawned++
	m.threads = append(m.threads, t)
}

// Run executes all spawned threads to completion, then clears the thread
// list so another phase can be spawned. The entire phase — every thread body
// and every scheduling decision — runs on the calling goroutine.
//
// With one thread (e.g. the prefill phase) the body runs to completion
// inline: a lone thread can never exhaust a quantum, so not even a coroutine
// is needed. With several, each thread body becomes a resumable coroutine
// (iter.Pull) and the event loop alternates pick-next with a direct
// coroutine transfer into the chosen thread. A panic inside any thread body
// propagates to Run's caller after the remaining suspended bodies have been
// unwound.
func (m *Machine) Run() {
	if len(m.threads) == 0 {
		return
	}
	if len(m.threads) == 1 {
		t := m.threads[0]
		t.ctx.reset(t, ^uint64(0))
		if m.trace != nil {
			m.trace.ThreadBegin(t.c, m.clocks[t.c])
		}
		t.body(&t.ctx)
		if m.trace != nil {
			m.trace.ThreadEnd(t.c, m.clocks[t.c])
		}
		m.release()
		return
	}
	m.live = append(m.live[:0], m.threads...)
	m.liveC = m.liveC[:0]
	for i, t := range m.live {
		m.liveC = append(m.liveC, int32(t.c))
		m.pos[t.c] = i
	}
	for _, t := range m.live {
		t.start()
	}
	if m.trace != nil {
		for _, t := range m.live {
			m.trace.ThreadBegin(t.c, m.clocks[t.c])
		}
	}
	defer m.unwind()
	m.loop()
	m.release()
}

// loop is the event loop: repeatedly select the runnable thread with the
// smallest clock and transfer execution into it. A resume returns either
// because the thread's quantum expired (it stays runnable, suspended at its
// yield) or because its body finished (remove it, exactly as the historical
// finish() did — swap-removal keeps the tie-break perturbation the goldens
// pin). The pick sequence is identical to the retired handoff engine's:
// pickNext is the same function over the same live-list state at every
// decision point.
func (m *Machine) loop() {
	t, limit := m.pickNext()
	for {
		t.ctx.limit = limit
		if _, running := t.resume(); running {
			t, limit = m.pickNext()
			continue
		}
		if m.trace != nil {
			m.trace.ThreadEnd(t.c, m.clocks[t.c])
		}
		i := m.pos[t.c]
		last := len(m.live) - 1
		moved := m.live[last]
		m.live[i] = moved
		m.liveC[i] = m.liveC[last]
		m.pos[moved.c] = i
		m.live = m.live[:last]
		m.liveC = m.liveC[:last]
		if last == 0 {
			return
		}
		t, limit = m.pickNext()
	}
}

// pickNext selects the runnable thread with the smallest clock — ties broken
// by live-list order, exactly as the historical central scheduler's scan did
// — and computes its run-until limit (second-smallest clock plus slack) in
// the same single pass. Threads are at most 64, so a linear scan beats a
// heap here.
func (m *Machine) pickNext() (*thread, uint64) {
	liveC := m.liveC
	clocks := m.clocks
	mi := 0
	minClock := clocks[liveC[0]]
	second := ^uint64(0)
	for i := 1; i < len(liveC); i++ {
		c := clocks[liveC[i]]
		if c < minClock {
			second = minClock
			minClock = c
			mi = i
		} else if c < second {
			second = c
		}
	}
	if len(liveC) == 1 {
		return m.live[0], ^uint64(0)
	}
	return m.live[mi], second + m.cfg.Slack
}

// release recycles the phase's thread records back into the slab: the
// per-phase references (body closure, coroutine funcs) are dropped so they
// can be collected, and the thread list is cleared for the next phase.
func (m *Machine) release() {
	for _, t := range m.threads {
		t.body = nil
		t.resume = nil
		t.stop = nil
		t.ctx.suspend = nil
	}
	m.threads = m.threads[:0]
}

// unwind runs deferred in Run. On a normal return the live set is empty and
// this is a no-op. When a thread body panics, the panic propagates through
// the event loop with the other threads still suspended mid-body; stopping
// each one resumes it with a false yield, which Ctx.yield turns into a
// stopToken unwind, so no coroutine outlives the Run that started it. (The
// panicked thread's own stop is a completed iterator's no-op.)
func (m *Machine) unwind() {
	for _, t := range m.live {
		if t.stop != nil {
			t.stop()
		}
	}
	m.live = m.live[:0]
	m.liveC = m.liveC[:0]
}

// Clock returns core c's cycle counter.
func (m *Machine) Clock(c int) uint64 { return m.clocks[c] }

// MaxClock returns the largest core clock — the simulated wall time.
func (m *Machine) MaxClock() uint64 {
	var max uint64
	for _, c := range m.clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// ResetClocks zeroes all core clocks. The harness calls it between the
// prefill phase and the measured phase.
func (m *Machine) ResetClocks() {
	if len(m.threads) != 0 {
		panic("sim: ResetClocks with threads pending")
	}
	for i := range m.clocks {
		m.clocks[i] = 0
	}
}

// SetTrace attaches an event sink to the machine (nil detaches). Tracing is
// strictly observational: it reads clocks the simulation already maintains
// and never charges a cycle, so a traced run's results are bit-for-bit
// identical to an untraced one. The harness attaches the sink after prefill
// (once clocks are reset) so trace timestamps share the measured run's axis.
func (m *Machine) SetTrace(s *trace.Sink) { m.trace = s }

// String summarizes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("sim.Machine{cores:%d l1:%dKB/%d-way l2:%dKB/%d-way slack:%d}",
		m.cfg.Cores, m.cfg.Cache.L1Bytes>>10, m.cfg.Cache.L1Assoc,
		m.cfg.Cache.L2Bytes>>10, m.cfg.Cache.L2Assoc, m.cfg.Slack)
}
