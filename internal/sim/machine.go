// Package sim is the deterministic multicore simulator the reproduction runs
// on — the stand-in for the paper's Graphite.
//
// Each simulated thread is a goroutine pinned to a simulated core with its
// own cycle clock. A conservative scheduler always resumes the runnable
// thread with the smallest clock and lets it run until its clock passes the
// next-smallest clock plus a slack window (Graphite's "lax" peer-to-peer
// synchronization uses the same idea). Exactly one thread executes between
// handshakes, so every simulated memory access is atomic, the memory model
// is sequentially consistent, and — because scheduling depends only on
// clocks and per-thread seeds — every run is bit-for-bit reproducible.
//
// Simulated time comes from the cache model: every access returns a latency
// (package cache) charged to the issuing core. Conditional Access
// instructions are provided by the extension in package core.
package sim

import (
	"fmt"

	"condaccess/internal/cache"
	"condaccess/internal/core"
	"condaccess/internal/mem"
)

// Config describes a simulated machine.
type Config struct {
	// Cores is the number of simulated cores (= maximum concurrent threads).
	Cores int
	// Cache overrides the hierarchy parameters; zero value means
	// cache.DefaultParams(Cores).
	Cache cache.Params
	// Slack is the scheduling quantum in cycles: a thread may run until its
	// clock exceeds the next runnable thread's clock by Slack. Zero means
	// DefaultSlack. Smaller values interleave more finely (and run slower).
	Slack uint64
	// Seed derives every thread's workload RNG.
	Seed uint64
	// Check enables the executable safety invariants: use-after-free
	// detection on every access and the Conditional Access generation checks
	// (the paper's Theorems 6 and 7).
	Check bool
	// AllocCycles and FreeCycles model allocator cost. Zero means defaults.
	AllocCycles uint64
	FreeCycles  uint64
}

// Default scheduling and allocator costs.
const (
	DefaultSlack       = 200
	DefaultAllocCycles = 30
	DefaultFreeCycles  = 20
)

func (c Config) withDefaults() Config {
	if c.Cache.Cores == 0 {
		c.Cache = cache.DefaultParams(c.Cores)
	}
	if c.Cache.Cores != c.Cores {
		panic("sim: cache params core count mismatch")
	}
	if c.Slack == 0 {
		c.Slack = DefaultSlack
	}
	if c.AllocCycles == 0 {
		c.AllocCycles = DefaultAllocCycles
	}
	if c.FreeCycles == 0 {
		c.FreeCycles = DefaultFreeCycles
	}
	return c
}

// Machine is a simulated multicore. Build one with New, add threads with
// Spawn, and execute them to completion with Run. A machine can run several
// phases (e.g. a single-threaded prefill followed by the measured workload);
// heap and cache state persist across phases.
type Machine struct {
	cfg    Config
	Space  *mem.Space
	Hier   *cache.Hierarchy
	Ext    *core.Extension
	clocks []uint64

	threads []*thread
	spawned int
}

type thread struct {
	id   int
	c    int // core
	m    *Machine
	body func(*Ctx)

	resume chan uint64 // scheduler -> thread: run-until limit
	yield  chan bool   // thread -> scheduler: true = finished
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if cfg.Cores <= 0 || cfg.Cores > 64 {
		panic("sim: cores must be in [1,64]")
	}
	m := &Machine{cfg: cfg}
	m.Space = mem.NewSpace()
	m.Space.CheckUAF = cfg.Check
	m.Ext = core.New(cfg.Cores)
	m.Ext.Check = cfg.Check
	m.Hier = cache.New(cfg.Cache, m.Ext)
	m.Ext.Attach(m.Hier, m.Space)
	m.clocks = make([]uint64, cfg.Cores)
	return m
}

// Config returns the machine's configuration (with defaults applied).
func (m *Machine) Config() Config { return m.cfg }

// Spawn adds a thread for the next Run phase. Threads are assigned to cores
// in spawn order; spawning more threads than cores panics (the paper runs
// one thread per dedicated core).
func (m *Machine) Spawn(body func(*Ctx)) {
	if len(m.threads) >= m.cfg.Cores {
		panic("sim: more threads than cores")
	}
	t := &thread{
		id:     m.spawned,
		c:      len(m.threads),
		m:      m,
		body:   body,
		resume: make(chan uint64),
		yield:  make(chan bool),
	}
	m.spawned++
	m.threads = append(m.threads, t)
}

// Run executes all spawned threads to completion under the conservative
// min-clock scheduler, then clears the thread list so another phase can be
// spawned.
func (m *Machine) Run() {
	for _, t := range m.threads {
		go t.main()
	}
	// Simple ordered list as a priority queue; thread counts are <= 64 so a
	// linear scan is faster than container/heap here.
	live := append([]*thread(nil), m.threads...)
	for len(live) > 0 {
		// Find min clock (ties broken by core id via scan order).
		mi := 0
		for i := 1; i < len(live); i++ {
			if m.clocks[live[i].c] < m.clocks[live[mi].c] {
				mi = i
			}
		}
		t := live[mi]
		limit := ^uint64(0)
		if len(live) > 1 {
			second := ^uint64(0)
			for i, o := range live {
				if i != mi && m.clocks[o.c] < second {
					second = m.clocks[o.c]
				}
			}
			limit = second + m.cfg.Slack
		}
		t.resume <- limit
		if done := <-t.yield; done {
			live[mi] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	m.threads = m.threads[:0]
}

func (t *thread) main() {
	limit := <-t.resume
	ctx := &Ctx{
		th:    t,
		m:     t.m,
		limit: limit,
		rng:   NewRNG(t.m.cfg.Seed + uint64(t.id)*0x9E3779B97F4A7C15 + 1),
	}
	t.body(ctx)
	t.yield <- true
}

// Clock returns core c's cycle counter.
func (m *Machine) Clock(c int) uint64 { return m.clocks[c] }

// MaxClock returns the largest core clock — the simulated wall time.
func (m *Machine) MaxClock() uint64 {
	var max uint64
	for _, c := range m.clocks {
		if c > max {
			max = c
		}
	}
	return max
}

// ResetClocks zeroes all core clocks. The harness calls it between the
// prefill phase and the measured phase.
func (m *Machine) ResetClocks() {
	if len(m.threads) != 0 {
		panic("sim: ResetClocks with threads pending")
	}
	for i := range m.clocks {
		m.clocks[i] = 0
	}
}

// String summarizes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("sim.Machine{cores:%d l1:%dKB/%d-way l2:%dKB/%d-way slack:%d}",
		m.cfg.Cores, m.cfg.Cache.L1Bytes>>10, m.cfg.Cache.L1Assoc,
		m.cfg.Cache.L2Bytes>>10, m.cfg.Cache.L2Assoc, m.cfg.Slack)
}
