package bench

import (
	"reflect"
	"strings"
	"testing"

	"condaccess/internal/scenario"
	"condaccess/internal/smr"
	"condaccess/internal/trace"
)

// timelineScenario is the tracing tests' shared cell: churn-drain under a
// batching reclaimer, so the trace carries pause and scan events and the
// timeline carries nonzero pause cycles.
func timelineScenario(t *testing.T) ScenarioWorkload {
	t.Helper()
	sc, err := scenario.Preset(scenario.PresetChurnDrain)
	if err != nil {
		t.Fatal(err)
	}
	return ScenarioWorkload{
		DS: "list", Scheme: "rcu", Threads: 4, KeyRange: 128, Seed: 7,
		SMR:      smr.Options{ReclaimEvery: 30},
		Scenario: sc,
	}
}

// TestTracingObservational is the tentpole's acceptance property: attaching
// a trace sink (and recording timelines) must not perturb the simulation.
// The golden fingerprint of a traced run equals the untraced one, on both
// the stationary and scenario paths.
func TestTracingObservational(t *testing.T) {
	w := goldenWorkload("list", "rcu")
	base, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	traced := Runner{Trace: &trace.Sink{}}
	wt := w
	wt.RecordTimeline = true
	res, err := traced.Run(wt)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	if res.Timeline == nil {
		t.Fatal("RecordTimeline run returned no timeline")
	}
	res.W.RecordTimeline = false // the spec field differs by design; results must not
	if goldenSum(base) != goldenSum(res) {
		t.Errorf("tracing perturbed the simulation:\nbase   %+v\ntraced %+v", base, res)
	}

	sw := timelineScenario(t)
	var plain Runner
	sbase, err := plain.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	swt := sw
	swt.RecordTimeline = true
	stress := Runner{Trace: &trace.Sink{}}
	sres, err := stress.RunScenario(swt)
	if err != nil {
		t.Fatal(err)
	}
	if goldenSum(sbase.Result) != goldenSum(sres.Result) {
		t.Error("scenario tracing perturbed the simulation")
	}
}

// TestTraceDeterministicBytes: two identical traced runs must render
// byte-identical trace files — the determinism the CI smoke step cmp-checks
// end to end.
func TestTraceDeterministicBytes(t *testing.T) {
	render := func() string {
		r := Runner{Trace: &trace.Sink{}}
		if _, err := r.RunScenario(timelineScenario(t)); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := r.Trace.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("two identical runs rendered different trace bytes")
	}
	if !strings.Contains(a, `"cat":"smr"`) {
		t.Error("rcu trace carries no reclamation events")
	}
	if !strings.Contains(a, `"cat":"phase"`) {
		t.Error("scenario trace carries no phase slices")
	}
}

// TestTimelineMatchesTotals cross-checks the timeline against the result's
// independently-counted aggregates: per-phase window sums equal the phase's
// op count, the trial timeline equals the merged phases, and pause cycles
// agree exactly with the tail histogram's pause sum (both use the same
// per-op delta attribution).
func TestTimelineMatchesTotals(t *testing.T) {
	sw := timelineScenario(t)
	sw.RecordTimeline = true
	sw.RecordTail = true
	var r Runner
	res, err := r.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("no trial timeline")
	}
	merged := &trace.Timeline{Window: res.Timeline.Window}
	for _, seg := range res.Phases {
		if seg.Timeline == nil {
			t.Fatalf("phase %s has no timeline", seg.Name)
		}
		if got, want := seg.Timeline.TotalOps(), uint64(seg.Ops); got != want {
			t.Errorf("phase %s timeline ops %d, segment counted %d", seg.Name, got, want)
		}
		var pause uint64
		for _, row := range seg.Timeline.Rows() {
			pause += row.Pause
		}
		if want := seg.Tail.Pause.Sum(); pause != want {
			t.Errorf("phase %s timeline pause cycles %d, tail histogram %d", seg.Name, pause, want)
		}
		merged.Merge(seg.Timeline)
	}
	if got, want := res.Timeline.TotalOps(), uint64(res.Ops); got != want {
		t.Errorf("trial timeline ops %d, result counted %d", got, want)
	}
	if !reflect.DeepEqual(merged, res.Timeline) {
		t.Error("trial timeline is not the merge of the phase timelines")
	}
	var pause uint64
	for _, row := range res.Timeline.Rows() {
		pause += row.Pause
	}
	if pause == 0 {
		t.Error("batching reclaimer recorded zero pause cycles")
	}
	if want := res.Tail.Pause.Sum(); pause != want {
		t.Errorf("trial timeline pause cycles %d, tail histogram %d", pause, want)
	}
}

// TestTimelineOffByDefault: a spec that doesn't ask for a timeline gets nil
// everywhere — no silent always-on cost.
func TestTimelineOffByDefault(t *testing.T) {
	res, err := Run(goldenWorkload("list", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline != nil {
		t.Error("stationary result has a timeline without RecordTimeline")
	}
	var r Runner
	sres, err := r.RunScenario(timelineScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	if sres.Timeline != nil {
		t.Error("scenario result has a timeline without RecordTimeline")
	}
	for _, seg := range sres.Phases {
		if seg.Timeline != nil {
			t.Errorf("phase %s has a timeline without RecordTimeline", seg.Name)
		}
	}
}

// TestStaleTimelineStoreHitReSimulates is staleTail's analogue for the
// timeline: a warm hit without one cannot serve a timeline-recording spec.
func TestStaleTimelineStoreHitReSimulates(t *testing.T) {
	mem := newMemStore()
	w := goldenWorkload("list", "rcu")
	w.RecordTimeline = true
	r := Runner{Store: mem}
	if _, err := r.Run(w); err != nil {
		t.Fatal(err)
	}
	stored := mem.trials[specKey(TrialSpecBytes(w))]
	stored.Timeline = nil
	mem.trials[specKey(TrialSpecBytes(w))] = stored

	r = Runner{Store: mem}
	res, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("stale hit was returned instead of re-simulated")
	}
	if got := mem.trials[specKey(TrialSpecBytes(w))]; got.Timeline == nil {
		t.Error("re-simulation did not overwrite the stale entry")
	}

	// A spec without timeline recording keys separately and keeps hitting
	// its own (timeline-less) entry: staleTimeline must not demand a
	// timeline nobody asked for.
	w2 := w
	w2.RecordTimeline = false
	if _, err := r.Run(w2); err != nil { // cold fill of w2's key
		t.Fatal(err)
	}
	puts := mem.puts
	if _, err := r.Run(w2); err != nil {
		t.Fatal(err)
	}
	if mem.puts != puts {
		t.Error("timeline-less spec re-simulated a servable entry")
	}
}

// TestSweepTimelineMerge: a sweep point's timeline is the window-by-window
// merge of its trials, and every trial's ops are accounted for.
func TestSweepTimelineMerge(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"rcu"}, Threads: []int{2},
		Updates: []int{100}, KeyRange: 64, Ops: 150, Seed: 3, Trials: 2,
		RecordTimeline: true, TimelineWindow: 8192,
	}
	points, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	tl := points[0].Timeline
	if tl == nil {
		t.Fatal("sweep point has no timeline")
	}
	if tl.Window != 8192 {
		t.Errorf("window %d, want the configured 8192", tl.Window)
	}
	want := uint64(cfg.Trials * 2 * cfg.Ops) // trials x threads x ops/thread
	if got := tl.TotalOps(); got != want {
		t.Errorf("merged timeline ops %d, want %d", got, want)
	}
}

// TestSweepTraceRequiresSequential: sharing one sink across workers would
// interleave trials nondeterministically, so Sweep refuses it up front.
func TestSweepTraceRequiresSequential(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{1},
		Updates: []int{0}, KeyRange: 64, Ops: 50, Seed: 1,
		Workers: 2, Trace: &trace.Sink{},
	}
	if _, err := Sweep(cfg, nil); err == nil {
		t.Fatal("Sweep accepted a shared trace sink with workers > 1")
	}
}

// TestTimelineWindowValidation: explicit windows below MinWindow are
// rejected on both the stationary and scenario paths.
func TestTimelineWindowValidation(t *testing.T) {
	w := goldenWorkload("list", "ca")
	w.TimelineWindow = 100
	if _, err := Run(w); err == nil {
		t.Error("Run accepted a sub-minimum timeline window")
	}
	sw := timelineScenario(t)
	sw.TimelineWindow = 100
	var r Runner
	if _, err := r.RunScenario(sw); err == nil {
		t.Error("RunScenario accepted a sub-minimum timeline window")
	}
}
