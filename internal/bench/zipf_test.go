package bench

import (
	"slices"
	"testing"
	"testing/quick"

	"condaccess/internal/sim"
)

func TestUniformCoversRange(t *testing.T) {
	g, err := newKeygen(DistUniform, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := g.Next(rng)
		if k < 1 || k > 10 {
			t.Fatalf("key %d out of [1,10]", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d/10 keys drawn", len(seen))
	}
}

func TestZipfInRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := sim.NewRNG(seed)
		kr := uint64(n%1000) + 2
		g := newZipfGen(kr, ZipfTheta)
		for i := 0; i < 200; i++ {
			if k := g.Next(rng); k < 1 || k > kr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	g := newZipfGen(1000, ZipfTheta)
	rng := sim.NewRNG(42)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	// The hottest key of a theta-0.99 zipfian over 1000 keys should absorb
	// well over 5% of draws; uniform would give 0.1%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/draws < 0.05 {
		t.Fatalf("hottest key got %.2f%%, expected >5%% (not skewed?)", 100*float64(max)/draws)
	}
	// But the tail must still be covered.
	if len(counts) < 500 {
		t.Fatalf("only %d distinct keys in 200k draws", len(counts))
	}
}

// TestZipfDeterministicAcrossRuns: the generator must be a pure function of
// (params, rng stream) — independently constructed generators fed equally
// seeded RNGs produce the identical key sequence, which is what makes
// zipfian trials (and their goldens) reproducible.
func TestZipfDeterministicAcrossRuns(t *testing.T) {
	const n, draws = 777, 2000
	g1 := newZipfGen(n, ZipfTheta)
	g2 := newZipfGen(n, ZipfTheta)
	r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < draws; i++ {
		a, b := g1.Next(r1), g2.Next(r2)
		if a != b {
			t.Fatalf("draw %d: %d != %d — generator not deterministic", i, a, b)
		}
	}
	// A differently seeded stream must diverge (the draws depend on the RNG,
	// not on hidden generator state).
	r3 := sim.NewRNG(10)
	same := 0
	r1b := sim.NewRNG(9)
	for i := 0; i < draws; i++ {
		if g1.Next(r1b) == g2.Next(r3) {
			same++
		}
	}
	if same == draws {
		t.Fatal("different seeds produced the identical sequence")
	}
}

// TestZipfHotKeyMass: for theta 0.99 over 1000 keys, the 10 hottest keys
// analytically absorb ~39% of the draws (H_{10,theta}/H_{1000,theta});
// check the empirical mass lands in a generous band around it, and that the
// scatter hash keeps those hot keys from being range neighbors.
func TestZipfHotKeyMass(t *testing.T) {
	const n, draws = 1000, 200000
	g := newZipfGen(n, ZipfTheta)
	rng := sim.NewRNG(12345)
	counts := map[uint64]int{}
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	type kc struct {
		k uint64
		c int
	}
	var all []kc
	for k, c := range counts {
		all = append(all, kc{k, c})
	}
	slices.SortFunc(all, func(a, b kc) int { return b.c - a.c })
	top10 := 0
	for _, e := range all[:10] {
		top10 += e.c
	}
	mass := float64(top10) / draws
	if mass < 0.30 || mass > 0.50 {
		t.Errorf("top-10 mass = %.3f, want ~0.39 (in [0.30, 0.50])", mass)
	}
	// Scattered hot keys: the two hottest ranks must not be adjacent keys.
	if d := int64(all[0].k) - int64(all[1].k); d == 1 || d == -1 {
		t.Errorf("two hottest keys %d and %d are neighbors — rank scatter broken", all[0].k, all[1].k)
	}
}

func TestUnknownDistRejected(t *testing.T) {
	if _, err := newKeygen("pareto", 10); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := Run(Workload{
		DS: "list", Scheme: "ca", Threads: 1, KeyRange: 8,
		OpsPerThread: 1, Dist: "pareto",
	}); err == nil {
		t.Fatal("Run accepted unknown distribution")
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	res, err := Run(Workload{
		DS: "list", Scheme: "ca",
		Threads: 4, KeyRange: 128, UpdatePct: 50,
		OpsPerThread: 300, Seed: 5, Check: true, Dist: DistZipf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("implausible: %+v", res)
	}
}

func TestLatencyRecording(t *testing.T) {
	res, err := Run(Workload{
		DS: "list", Scheme: "rcu",
		Threads: 4, KeyRange: 128, UpdatePct: 100,
		OpsPerThread: 400, Seed: 6, Check: true, RecordLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Latency
	if l.Samples != 1600 {
		t.Fatalf("samples = %d, want 1600", l.Samples)
	}
	if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
		t.Fatalf("percentiles not monotone: %+v", l)
	}
	if l.P50 == 0 || l.MeanCycles <= 0 {
		t.Fatalf("degenerate latency stats: %+v", l)
	}
}

func TestHMListInHarness(t *testing.T) {
	for _, scheme := range []string{"ca", "rcu", "hp"} {
		res, err := Run(Workload{
			DS: "hmlist", Scheme: scheme,
			Threads: 4, KeyRange: 64, UpdatePct: 50,
			OpsPerThread: 200, Seed: 7, Check: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%s: implausible result", scheme)
		}
	}
}
