package bench

import (
	"testing"
	"testing/quick"

	"condaccess/internal/sim"
)

func TestUniformCoversRange(t *testing.T) {
	g, err := newKeygen(DistUniform, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	seen := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		k := g.Next(rng)
		if k < 1 || k > 10 {
			t.Fatalf("key %d out of [1,10]", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d/10 keys drawn", len(seen))
	}
}

func TestZipfInRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		rng := sim.NewRNG(seed)
		kr := uint64(n%1000) + 2
		g := newZipfGen(kr, ZipfTheta)
		for i := 0; i < 200; i++ {
			if k := g.Next(rng); k < 1 || k > kr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	g := newZipfGen(1000, ZipfTheta)
	rng := sim.NewRNG(42)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[g.Next(rng)]++
	}
	// The hottest key of a theta-0.99 zipfian over 1000 keys should absorb
	// well over 5% of draws; uniform would give 0.1%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/draws < 0.05 {
		t.Fatalf("hottest key got %.2f%%, expected >5%% (not skewed?)", 100*float64(max)/draws)
	}
	// But the tail must still be covered.
	if len(counts) < 500 {
		t.Fatalf("only %d distinct keys in 200k draws", len(counts))
	}
}

func TestUnknownDistRejected(t *testing.T) {
	if _, err := newKeygen("pareto", 10); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	if _, err := Run(Workload{
		DS: "list", Scheme: "ca", Threads: 1, KeyRange: 8,
		OpsPerThread: 1, Dist: "pareto",
	}); err == nil {
		t.Fatal("Run accepted unknown distribution")
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	res, err := Run(Workload{
		DS: "list", Scheme: "ca",
		Threads: 4, KeyRange: 128, UpdatePct: 50,
		OpsPerThread: 300, Seed: 5, Check: true, Dist: DistZipf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("implausible: %+v", res)
	}
}

func TestLatencyRecording(t *testing.T) {
	res, err := Run(Workload{
		DS: "list", Scheme: "rcu",
		Threads: 4, KeyRange: 128, UpdatePct: 100,
		OpsPerThread: 400, Seed: 6, Check: true, RecordLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := res.Latency
	if l.Samples != 1600 {
		t.Fatalf("samples = %d, want 1600", l.Samples)
	}
	if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
		t.Fatalf("percentiles not monotone: %+v", l)
	}
	if l.P50 == 0 || l.MeanCycles <= 0 {
		t.Fatalf("degenerate latency stats: %+v", l)
	}
}

func TestHMListInHarness(t *testing.T) {
	for _, scheme := range []string{"ca", "rcu", "hp"} {
		res, err := Run(Workload{
			DS: "hmlist", Scheme: scheme,
			Threads: 4, KeyRange: 64, UpdatePct: 50,
			OpsPerThread: 200, Seed: 7, Check: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%s: implausible result", scheme)
		}
	}
}
