package bench

import (
	"math"
	"slices"
)

// Summary is the replication statistics of one measured quantity over a
// point's trials: the spread the paper's "mean of 3 trials" methodology
// measures but does not report. Mean is computed by summing in trial order
// and dividing — exactly the arithmetic the harness has always used for
// SweepPoint.Throughput — so a point's Throughput and its Stats.Mean are the
// same float64 bit for bit.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	// Stddev is the sample standard deviation (n-1 denominator); zero when
	// Count < 2.
	Stddev float64
	// CI95 is the half-width of the 95% confidence interval for the mean,
	// using the Student-t critical value for Count-1 degrees of freedom
	// (the right distribution at the paper's 3-trial replication count,
	// where the normal approximation is badly anticonservative); zero when
	// Count < 2.
	CI95 float64
}

// Summarize computes replication statistics over xs (one value per trial,
// in trial order).
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s := Summary{Count: n, Mean: sum / float64(n)}
	sorted := slices.Clone(xs)
	slices.Sort(sorted)
	s.Min, s.Max = sorted[0], sorted[n-1]
	if n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	if n < 2 {
		return s
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Stddev = math.Sqrt(ss / float64(n-1))
	s.CI95 = tCrit95(n-1) * s.Stddev / math.Sqrt(float64(n))
	return s
}

// Overlaps reports whether the 95% confidence intervals of s and o overlap.
// Non-overlap is the conservative significance flag the cross-run comparison
// uses: if the intervals are disjoint, the difference is significant at well
// beyond the 5% level. Either side having fewer than 2 trials (no interval)
// counts as overlapping — no spread, no significance claim.
func (s Summary) Overlaps(o Summary) bool {
	if s.Count < 2 || o.Count < 2 {
		return true
	}
	return s.Mean-s.CI95 <= o.Mean+o.CI95 && o.Mean-o.CI95 <= s.Mean+s.CI95
}

// tTable95 holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom.
var tTable95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom, stepping down through the standard table anchors above df=30.
func tCrit95(df int) float64 {
	switch {
	case df <= 0:
		return 0
	case df <= 30:
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
