package bench

import (
	"strings"
	"testing"
)

// TestPaperShapeHolds is the reproduction's regression guard: the
// qualitative orderings of the paper's evaluation, asserted at reduced scale
// so the suite stays fast. If a refactor of the cache model, the schemes, or
// the structures flips one of these, this test names the broken claim.
func TestPaperShapeHolds(t *testing.T) {
	run := func(scheme string, updates int) Result {
		t.Helper()
		res, err := Run(Workload{
			DS: "list", Scheme: scheme,
			Threads: 8, KeyRange: 500, UpdatePct: updates,
			OpsPerThread: 600, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	t.Run("readonly ordering", func(t *testing.T) {
		none, ca, rcu, hp := run("none", 0), run("ca", 0), run("rcu", 0), run("hp", 0)
		if !(none.Throughput > ca.Throughput) {
			t.Errorf("read-only: none (%.0f) should beat ca (%.0f)", none.Throughput, ca.Throughput)
		}
		if !(rcu.Throughput > ca.Throughput) {
			t.Errorf("read-only: rcu (%.0f) should beat ca (%.0f)", rcu.Throughput, ca.Throughput)
		}
		if !(ca.Throughput > 2*hp.Throughput) {
			t.Errorf("read-only: ca (%.0f) should dominate hp (%.0f)", ca.Throughput, hp.Throughput)
		}
	})

	t.Run("high-update crossover", func(t *testing.T) {
		// The paper's crossover — CA overtaking the epoch schemes — happens
		// at high thread counts; at moderate ones the claim is "closer to or
		// faster than" (Section V). Assert both regimes.
		runAt := func(scheme string, threads int) Result {
			t.Helper()
			res, err := Run(Workload{
				DS: "list", Scheme: scheme,
				Threads: threads, KeyRange: 1000, UpdatePct: 100,
				OpsPerThread: 600, Seed: 31,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ca8, rcu8 := run("ca", 100), run("rcu", 100)
		if ca8.Throughput < 0.8*rcu8.Throughput {
			t.Errorf("8 threads: ca (%.0f) should be close to rcu (%.0f)", ca8.Throughput, rcu8.Throughput)
		}
		ca16, rcu16, qsbr16, hp16 := runAt("ca", 16), runAt("rcu", 16), runAt("qsbr", 16), runAt("hp", 16)
		if !(ca16.Throughput > rcu16.Throughput) {
			t.Errorf("16 threads, 100%% updates: ca (%.0f) should beat rcu (%.0f)", ca16.Throughput, rcu16.Throughput)
		}
		if !(ca16.Throughput > qsbr16.Throughput) {
			t.Errorf("16 threads, 100%% updates: ca (%.0f) should beat qsbr (%.0f)", ca16.Throughput, qsbr16.Throughput)
		}
		if !(ca16.Throughput > 2*hp16.Throughput) {
			t.Errorf("16 threads, 100%% updates: ca (%.0f) should dominate hp (%.0f)", ca16.Throughput, hp16.Throughput)
		}
	})

	t.Run("footprint ordering", func(t *testing.T) {
		ca, rcu, none := run("ca", 100), run("rcu", 100), run("none", 100)
		if ca.Mem.PeakLive >= rcu.Mem.PeakLive {
			t.Errorf("ca peak (%d) should be below rcu peak (%d)", ca.Mem.PeakLive, rcu.Mem.PeakLive)
		}
		if rcu.Mem.PeakLive >= none.Mem.PeakLive {
			t.Errorf("rcu peak (%d) should be below none peak (%d)", rcu.Mem.PeakLive, none.Mem.PeakLive)
		}
		// CA's peak must sit near the live set (prefill size), the paper's
		// Figure 3 headline. Allow 25% slack for in-flight allocations.
		if float64(ca.Mem.PeakLive) > 1.25*float64(ca.PrefillSize) {
			t.Errorf("ca peak %d strays from live set %d", ca.Mem.PeakLive, ca.PrefillSize)
		}
	})

	t.Run("ca tagset stays minimal", func(t *testing.T) {
		ca := run("ca", 100)
		if ca.CA.MaxTagSet > 3 {
			t.Errorf("list tag set reached %d lines; hand-over-hand should bound it at 2-3", ca.CA.MaxTagSet)
		}
	})
}

func TestFormatTable(t *testing.T) {
	points := []SweepPoint{
		{Scheme: "ca", Threads: 1, UpdatePct: 0, Throughput: 100},
		{Scheme: "ca", Threads: 8, UpdatePct: 0, Throughput: 700},
		{Scheme: "rcu", Threads: 1, UpdatePct: 0, Throughput: 90},
		{Scheme: "rcu", Threads: 8, UpdatePct: 0, Throughput: 650},
		{Scheme: "ca", Threads: 1, UpdatePct: 100, Throughput: 55}, // other panel
	}
	out := FormatTable(points, 0)
	for _, want := range []string{"t=1", "t=8", "ca", "rcu", "700.0", "650.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "55.0") {
		t.Errorf("table leaked a point from another update rate:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, "list", []SweepPoint{
		{Scheme: "ca", Threads: 4, UpdatePct: 10, Throughput: 123.456, Retries: 7, LiveNodes: 99},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "ds,scheme,threads,update_pct,ops_per_mcyc,retries,live_nodes\n") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "list,ca,4,10,123.46,7,99") {
		t.Fatalf("bad row: %q", got)
	}
}

func TestSweepRunsCrossProduct(t *testing.T) {
	points, err := Sweep(SweepConfig{
		DS: "stack", Schemes: []string{"ca", "none"},
		Threads: []int{1, 2}, Updates: []int{0, 100},
		KeyRange: 32, Ops: 50, Seed: 9, Trials: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d, want 2*2*2 = 8", len(points))
	}
	for _, p := range points {
		if p.Throughput <= 0 {
			t.Fatalf("zero throughput point: %+v", p)
		}
	}
}
