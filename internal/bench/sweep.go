package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"condaccess/internal/cache"
)

// SweepConfig describes a cross-product experiment: one data structure, a
// set of schemes, thread counts, and update rates — i.e. one paper figure
// panel per (update rate), one curve per scheme, one point per thread count.
type SweepConfig struct {
	DS       string
	Schemes  []string
	Threads  []int
	Updates  []int
	KeyRange uint64
	Ops      int // per thread
	Buckets  int // hash only
	Seed     uint64
	Check    bool
	Trials   int // >=1; throughput is averaged (paper: 3 trials)

	// Workers bounds the OS-thread fan-out of trial execution. 1 (or 0)
	// keeps the original sequential path; higher values run independent
	// trials on a GOMAXPROCS-capped worker pool (pool.go). Either way the
	// returned points, the report order, and any error are identical.
	Workers int

	// Cache overrides the simulated cache geometry for every trial; the
	// zero value keeps the per-thread-count defaults.
	Cache cache.Params

	// Dist selects the key distribution (default uniform).
	Dist string
	// RecordLatency fills each point's Result.Latency.
	RecordLatency bool
}

// SweepPoint is one measured point of a sweep.
type SweepPoint struct {
	Scheme     string
	Threads    int
	UpdatePct  int
	Throughput float64 // mean over trials, ops per million cycles
	Retries    uint64  // from the last trial
	LiveNodes  uint64  // from the last trial
	Result     Result  // last trial's full result
}

// pointSpec is one cell of the sweep cross product.
type pointSpec struct {
	Scheme    string
	Threads   int
	UpdatePct int
}

// expand flattens the cross product in the canonical sweep order — update
// rate outermost, then scheme, then thread count — the order the sequential
// loop has always used and the order parallel results are merged back into.
func expand(cfg SweepConfig) []pointSpec {
	specs := make([]pointSpec, 0, len(cfg.Updates)*len(cfg.Schemes)*len(cfg.Threads))
	for _, u := range cfg.Updates {
		for _, scheme := range cfg.Schemes {
			for _, th := range cfg.Threads {
				specs = append(specs, pointSpec{Scheme: scheme, Threads: th, UpdatePct: u})
			}
		}
	}
	return specs
}

// trialWorkload builds one trial of one point. Both execution paths
// construct trials here, so a trial's seed — and therefore its simulated
// result — cannot depend on which path or worker runs it.
func trialWorkload(cfg SweepConfig, s pointSpec, trial int) Workload {
	return Workload{
		DS: cfg.DS, Scheme: s.Scheme,
		Threads: s.Threads, KeyRange: cfg.KeyRange, UpdatePct: s.UpdatePct,
		OpsPerThread: cfg.Ops, Buckets: cfg.Buckets,
		Seed:          cfg.Seed + uint64(trial)*1000003,
		Check:         cfg.Check,
		Cache:         cfg.Cache,
		Dist:          cfg.Dist,
		RecordLatency: cfg.RecordLatency,
	}
}

// mergePoint folds a point's trial results (in trial order, so float
// summation order is fixed) into its SweepPoint.
func mergePoint(s pointSpec, trials []Result) SweepPoint {
	var sum float64
	for _, r := range trials {
		sum += r.Throughput
	}
	last := trials[len(trials)-1]
	return SweepPoint{
		Scheme: s.Scheme, Threads: s.Threads, UpdatePct: s.UpdatePct,
		Throughput: sum / float64(len(trials)),
		Retries:    last.Retries,
		LiveNodes:  last.Mem.NodeLive(),
		Result:     last,
	}
}

// pointError wraps a trial failure with its sweep coordinates.
func pointError(cfg SweepConfig, s pointSpec, err error) error {
	return fmt.Errorf("sweep %s/%s t=%d u=%d: %w", cfg.DS, s.Scheme, s.Threads, s.UpdatePct, err)
}

// Sweep runs the full cross product. report (may be nil) is called after
// each point, always in sweep order.
func Sweep(cfg SweepConfig, report func(SweepPoint)) ([]SweepPoint, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	specs := expand(cfg)
	if cfg.Workers > 1 {
		return sweepParallel(cfg, specs, report)
	}
	var points []SweepPoint
	var runner Runner // reuses one machine per geometry across the sweep
	for _, s := range specs {
		trials := make([]Result, cfg.Trials)
		for trial := range trials {
			res, err := runner.Run(trialWorkload(cfg, s, trial))
			if err != nil {
				return nil, pointError(cfg, s, err)
			}
			trials[trial] = res
		}
		p := mergePoint(s, trials)
		points = append(points, p)
		if report != nil {
			report(p)
		}
	}
	return points, nil
}

// WriteCSV emits a sweep as long-form CSV.
func WriteCSV(w io.Writer, ds string, points []SweepPoint) error {
	if _, err := fmt.Fprintln(w, "ds,scheme,threads,update_pct,ops_per_mcyc,retries,live_nodes"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.2f,%d,%d\n",
			ds, p.Scheme, p.Threads, p.UpdatePct, p.Throughput, p.Retries, p.LiveNodes); err != nil {
			return err
		}
	}
	return nil
}

// FormatTable renders one panel (a fixed update rate) as the paper's figure
// series: rows = schemes, columns = thread counts, cells = throughput.
func FormatTable(points []SweepPoint, updatePct int) string {
	threadSet := map[int]bool{}
	schemeOrder := []string{}
	seen := map[string]bool{}
	cells := map[string]map[int]float64{}
	for _, p := range points {
		if p.UpdatePct != updatePct {
			continue
		}
		threadSet[p.Threads] = true
		if !seen[p.Scheme] {
			seen[p.Scheme] = true
			schemeOrder = append(schemeOrder, p.Scheme)
			cells[p.Scheme] = map[int]float64{}
		}
		cells[p.Scheme][p.Threads] = p.Throughput
	}
	var threads []int
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Ints(threads)

	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "scheme")
	for _, th := range threads {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("t=%d", th))
	}
	b.WriteByte('\n')
	for _, s := range schemeOrder {
		fmt.Fprintf(&b, "%-6s", s)
		for _, th := range threads {
			fmt.Fprintf(&b, " %9.1f", cells[s][th])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
