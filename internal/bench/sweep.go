package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SweepConfig describes a cross-product experiment: one data structure, a
// set of schemes, thread counts, and update rates — i.e. one paper figure
// panel per (update rate), one curve per scheme, one point per thread count.
type SweepConfig struct {
	DS       string
	Schemes  []string
	Threads  []int
	Updates  []int
	KeyRange uint64
	Ops      int // per thread
	Buckets  int // hash only
	Seed     uint64
	Check    bool
	Trials   int // >=1; throughput is averaged (paper: 3 trials)

	// Dist selects the key distribution (default uniform).
	Dist string
	// RecordLatency fills each point's Result.Latency.
	RecordLatency bool
}

// SweepPoint is one measured point of a sweep.
type SweepPoint struct {
	Scheme     string
	Threads    int
	UpdatePct  int
	Throughput float64 // mean over trials, ops per million cycles
	Retries    uint64  // from the last trial
	LiveNodes  uint64  // from the last trial
	Result     Result  // last trial's full result
}

// Sweep runs the full cross product. report (may be nil) is called after
// each point, for progress output.
func Sweep(cfg SweepConfig, report func(SweepPoint)) ([]SweepPoint, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	var points []SweepPoint
	for _, u := range cfg.Updates {
		for _, scheme := range cfg.Schemes {
			for _, th := range cfg.Threads {
				var sum float64
				var last Result
				for trial := 0; trial < cfg.Trials; trial++ {
					res, err := Run(Workload{
						DS: cfg.DS, Scheme: scheme,
						Threads: th, KeyRange: cfg.KeyRange, UpdatePct: u,
						OpsPerThread: cfg.Ops, Buckets: cfg.Buckets,
						Seed:          cfg.Seed + uint64(trial)*1000003,
						Check:         cfg.Check,
						Dist:          cfg.Dist,
						RecordLatency: cfg.RecordLatency,
					})
					if err != nil {
						return nil, fmt.Errorf("sweep %s/%s t=%d u=%d: %w", cfg.DS, scheme, th, u, err)
					}
					sum += res.Throughput
					last = res
				}
				p := SweepPoint{
					Scheme: scheme, Threads: th, UpdatePct: u,
					Throughput: sum / float64(cfg.Trials),
					Retries:    last.Retries,
					LiveNodes:  last.Mem.NodeLive(),
					Result:     last,
				}
				points = append(points, p)
				if report != nil {
					report(p)
				}
			}
		}
	}
	return points, nil
}

// WriteCSV emits a sweep as long-form CSV.
func WriteCSV(w io.Writer, ds string, points []SweepPoint) error {
	if _, err := fmt.Fprintln(w, "ds,scheme,threads,update_pct,ops_per_mcyc,retries,live_nodes"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.2f,%d,%d\n",
			ds, p.Scheme, p.Threads, p.UpdatePct, p.Throughput, p.Retries, p.LiveNodes); err != nil {
			return err
		}
	}
	return nil
}

// FormatTable renders one panel (a fixed update rate) as the paper's figure
// series: rows = schemes, columns = thread counts, cells = throughput.
func FormatTable(points []SweepPoint, updatePct int) string {
	threadSet := map[int]bool{}
	schemeOrder := []string{}
	seen := map[string]bool{}
	cells := map[string]map[int]float64{}
	for _, p := range points {
		if p.UpdatePct != updatePct {
			continue
		}
		threadSet[p.Threads] = true
		if !seen[p.Scheme] {
			seen[p.Scheme] = true
			schemeOrder = append(schemeOrder, p.Scheme)
			cells[p.Scheme] = map[int]float64{}
		}
		cells[p.Scheme][p.Threads] = p.Throughput
	}
	var threads []int
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Ints(threads)

	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "scheme")
	for _, th := range threads {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("t=%d", th))
	}
	b.WriteByte('\n')
	for _, s := range schemeOrder {
		fmt.Fprintf(&b, "%-6s", s)
		for _, th := range threads {
			fmt.Fprintf(&b, " %9.1f", cells[s][th])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
