package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"condaccess/internal/cache"
	"condaccess/internal/latency"
	"condaccess/internal/obs"
	"condaccess/internal/trace"
)

// SweepConfig describes a cross-product experiment: one data structure, a
// set of schemes, thread counts, and update rates — i.e. one paper figure
// panel per (update rate), one curve per scheme, one point per thread count.
type SweepConfig struct {
	DS       string
	Schemes  []string
	Threads  []int
	Updates  []int
	KeyRange uint64
	Ops      int // per thread
	Buckets  int // hash only
	Seed     uint64
	Check    bool
	Trials   int // >=1; throughput is averaged (paper: 3 trials)

	// Workers bounds the OS-thread fan-out of trial execution. 1 (or 0)
	// keeps the original sequential path; higher values run independent
	// trials on a GOMAXPROCS-capped worker pool (pool.go). Either way the
	// returned points, the report order, and any error are identical.
	Workers int

	// Cache overrides the simulated cache geometry for every trial; the
	// zero value keeps the per-thread-count defaults.
	Cache cache.Params

	// Dist selects the key distribution (default uniform).
	Dist string
	// RecordLatency fills each point's Result.Latency (and Tail).
	RecordLatency bool
	// RecordTail fills each point's Result.Tail alone (O(buckets), no
	// exact-sort slices); see Workload.RecordTail.
	RecordTail bool
	// RecordTimeline fills each trial's Result.Timeline and each point's
	// merged SweepPoint.Timeline; see Workload.RecordTimeline.
	RecordTimeline bool
	// TimelineWindow overrides the timeline window size in cycles.
	TimelineWindow uint64

	// Store, when non-nil, caches complete trial results by content-addressed
	// spec (read-through/write-through, on both execution paths): re-running
	// a sweep against a warm store executes zero simulator trials and
	// reproduces the cold run's output byte for byte. Excluded from JSON:
	// the handle is runtime wiring, not part of the sweep's specification
	// (manifests record the spec).
	Store TrialStore `json:"-"`

	// Obs, when non-nil, receives the sweep's out-of-band instrumentation:
	// one declared point per cross-product cell, per-trial phase spans
	// committed by whichever worker ran the trial, and point start/done
	// marks emitted from the in-order reporting loop (so point events stay
	// sequential even under the pool). Observation changes no point, no
	// report, and no error.
	Obs *obs.Rec `json:"-"`

	// Trace, when non-nil, receives the full event stream of every
	// simulated trial, one trace process track per trial, in sweep order.
	// Requires the sequential path (Workers <= 1): a sink shared across
	// pool workers would interleave events nondeterministically, so
	// validateSweep rejects the combination. Excluded from JSON like Store.
	Trace *trace.Sink `json:"-"`
}

// SweepPoint is one measured point of a sweep.
type SweepPoint struct {
	Scheme     string
	Threads    int
	UpdatePct  int
	Throughput float64 // mean over trials, ops per million cycles
	Retries    uint64  // from the last trial
	LiveNodes  uint64  // from the last trial
	Result     Result  // last trial's full result

	// Stats summarizes throughput over the point's trials (Stats.Mean ==
	// Throughput); the spread fields are zero when Trials is 1.
	Stats Summary

	// Tail summarizes per-op latency over every trial of the point merged
	// into one histogram (bucket counts add exactly, so this is the
	// distribution a single Trials-times-longer run would have recorded).
	// Zero unless RecordLatency or RecordTail is set.
	Tail latency.Summary

	// Timeline merges the point's per-trial timelines window by window
	// (trials share the measured cycle axis, so window i aggregates every
	// trial's window i). Nil unless RecordTimeline is set.
	Timeline *trace.Timeline
}

// pointSpec is one cell of the sweep cross product.
type pointSpec struct {
	Scheme    string
	Threads   int
	UpdatePct int
}

// expand flattens the cross product in the canonical sweep order — update
// rate outermost, then scheme, then thread count — the order the sequential
// loop has always used and the order parallel results are merged back into.
func expand(cfg SweepConfig) []pointSpec {
	specs := make([]pointSpec, 0, len(cfg.Updates)*len(cfg.Schemes)*len(cfg.Threads))
	for _, u := range cfg.Updates {
		for _, scheme := range cfg.Schemes {
			for _, th := range cfg.Threads {
				specs = append(specs, pointSpec{Scheme: scheme, Threads: th, UpdatePct: u})
			}
		}
	}
	return specs
}

// trialWorkload builds one trial of one point. Both execution paths
// construct trials here, so a trial's seed — and therefore its simulated
// result — cannot depend on which path or worker runs it.
func trialWorkload(cfg SweepConfig, s pointSpec, trial int) Workload {
	return Workload{
		DS: cfg.DS, Scheme: s.Scheme,
		Threads: s.Threads, KeyRange: cfg.KeyRange, UpdatePct: s.UpdatePct,
		OpsPerThread: cfg.Ops, Buckets: cfg.Buckets,
		Seed:           cfg.Seed + uint64(trial)*1000003,
		Check:          cfg.Check,
		Cache:          cfg.Cache,
		Dist:           cfg.Dist,
		RecordLatency:  cfg.RecordLatency,
		RecordTail:     cfg.RecordTail,
		RecordTimeline: cfg.RecordTimeline,
		TimelineWindow: cfg.TimelineWindow,
	}
}

// mergePoint folds a point's trial results (in trial order, so float
// summation order is fixed — Summarize sums the same way the historical
// mean did) into its SweepPoint.
func mergePoint(s pointSpec, trials []Result) SweepPoint {
	xs := make([]float64, len(trials))
	for i, r := range trials {
		xs[i] = r.Throughput
	}
	stats := Summarize(xs)
	// Merge the trials' total-latency histograms (in trial order; merging is
	// order-independent, see the latency package's associativity tests) so
	// the point's tail percentiles cover every recorded op, not just the
	// last trial's.
	var merged latency.Hist
	for _, r := range trials {
		if r.Tail != nil {
			merged.Merge(&r.Tail.Total)
		}
	}
	var tl *trace.Timeline
	for _, r := range trials {
		if r.Timeline != nil {
			if tl == nil {
				tl = &trace.Timeline{Window: r.Timeline.Window}
			}
			tl.Merge(r.Timeline)
		}
	}
	last := trials[len(trials)-1]
	return SweepPoint{
		Scheme: s.Scheme, Threads: s.Threads, UpdatePct: s.UpdatePct,
		Throughput: stats.Mean,
		Retries:    last.Retries,
		LiveNodes:  last.Mem.NodeLive(),
		Result:     last,
		Stats:      stats,
		Tail:       merged.Summary(),
		Timeline:   tl,
	}
}

// pointLabel renders a point's manifest/event label from its coordinates,
// matching pointError's spelling of the same cell.
func pointLabel(ds string, s pointSpec) string {
	return fmt.Sprintf("%s/%s t=%d u=%d", ds, s.Scheme, s.Threads, s.UpdatePct)
}

// declarePoints registers the sweep's cross product with the run recorder,
// returning the base point index (0 when unobserved).
func declarePoints(cfg SweepConfig, specs []pointSpec) int {
	if cfg.Obs == nil {
		return 0
	}
	labels := make([]string, len(specs))
	for i, s := range specs {
		labels[i] = pointLabel(cfg.DS, s)
	}
	return cfg.Obs.AddPoints(labels, cfg.Trials)
}

// pointError wraps a trial failure with its sweep coordinates.
func pointError(cfg SweepConfig, s pointSpec, err error) error {
	return fmt.Errorf("sweep %s/%s t=%d u=%d: %w", cfg.DS, s.Scheme, s.Threads, s.UpdatePct, err)
}

// validateSweep rejects malformed sweep configurations up front, before any
// trial runs: a sweep with no schemes, threads, or updates used to return
// silently empty output, and negative counts fell through to whatever the
// execution path made of them. Per-workload fields (structure, scheme,
// distribution names) are still validated per trial, where the error carries
// the sweep coordinates.
func validateSweep(cfg SweepConfig) error {
	if cfg.Trials < 1 {
		return fmt.Errorf("bench: sweep trials %d, need at least 1", cfg.Trials)
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("bench: sweep workers %d must be non-negative", cfg.Workers)
	}
	if len(cfg.Schemes) == 0 {
		return fmt.Errorf("bench: sweep has no schemes")
	}
	if len(cfg.Threads) == 0 {
		return fmt.Errorf("bench: sweep has no thread counts")
	}
	if len(cfg.Updates) == 0 {
		return fmt.Errorf("bench: sweep has no update rates")
	}
	if cfg.Trace != nil && cfg.Workers > 1 {
		return fmt.Errorf("bench: sweep tracing requires workers <= 1 (a sink shared across %d workers would record nondeterministically)", cfg.Workers)
	}
	return nil
}

// Sweep runs the full cross product. report (may be nil) is called after
// each point, always in sweep order. A zero Trials means 1, like every other
// zero-valued default in the config; all other malformed values are
// rejected up front.
func Sweep(cfg SweepConfig, report func(SweepPoint)) ([]SweepPoint, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 1
	}
	if err := validateSweep(cfg); err != nil {
		return nil, err
	}
	specs := expand(cfg)
	base := declarePoints(cfg, specs)
	if cfg.Workers > 1 {
		return sweepParallel(cfg, specs, base, report)
	}
	var points []SweepPoint
	// reuses one machine per geometry across the sweep
	runner := Runner{Store: cfg.Store, Obs: cfg.Obs.Worker(0), Trace: cfg.Trace}
	for si, s := range specs {
		cfg.Obs.PointStart(base + si)
		trials := make([]Result, cfg.Trials)
		for trial := range trials {
			res, err := runner.Run(trialWorkload(cfg, s, trial))
			if err != nil {
				runner.Obs.Abandon()
				return nil, pointError(cfg, s, err)
			}
			runner.Obs.Commit(base + si)
			trials[trial] = res
		}
		p := mergePoint(s, trials)
		points = append(points, p)
		cfg.Obs.PointDone(base + si)
		if report != nil {
			report(p)
		}
	}
	return points, nil
}

// multiTrial reports whether any point carries replication spread (Trials >
// 1), which is what switches the table and CSV renderers into their
// statistics layout.
func multiTrial(points []SweepPoint) bool {
	for _, p := range points {
		if p.Stats.Count > 1 {
			return true
		}
	}
	return false
}

// WriteCSV emits a sweep as long-form CSV. Single-trial sweeps keep the
// historical columns byte for byte; multi-trial sweeps append the
// replication statistics (trial count, stddev, 95% CI half-width, min, max,
// median of throughput).
func WriteCSV(w io.Writer, ds string, points []SweepPoint) error {
	stats := multiTrial(points)
	header := "ds,scheme,threads,update_pct,ops_per_mcyc,retries,live_nodes"
	if stats {
		header += ",trials,stddev,ci95,min,max,median"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%.2f,%d,%d",
			ds, p.Scheme, p.Threads, p.UpdatePct, p.Throughput, p.Retries, p.LiveNodes); err != nil {
			return err
		}
		if stats {
			if _, err := fmt.Fprintf(w, ",%d,%.2f,%.2f,%.2f,%.2f,%.2f",
				p.Stats.Count, p.Stats.Stddev, p.Stats.CI95, p.Stats.Min, p.Stats.Max, p.Stats.Median); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// FormatTable renders one panel (a fixed update rate) as the paper's figure
// series: rows = schemes, columns = thread counts, cells = throughput. When
// the points carry replication spread (Trials > 1), each thread column gains
// stddev ("sd") and 95% CI half-width ("±95") columns; single-trial panels
// keep the historical layout byte for byte.
func FormatTable(points []SweepPoint, updatePct int) string {
	threadSet := map[int]bool{}
	schemeOrder := []string{}
	seen := map[string]bool{}
	cells := map[string]map[int]Summary{}
	stats := false
	for _, p := range points {
		if p.UpdatePct != updatePct {
			continue
		}
		threadSet[p.Threads] = true
		if !seen[p.Scheme] {
			seen[p.Scheme] = true
			schemeOrder = append(schemeOrder, p.Scheme)
			cells[p.Scheme] = map[int]Summary{}
		}
		s := p.Stats
		if s.Count == 0 {
			// Hand-built points (tests, external tools) may carry only a
			// throughput; render them under the single-trial layout.
			s = Summary{Count: 1, Mean: p.Throughput}
		}
		if s.Count > 1 {
			stats = true
		}
		cells[p.Scheme][p.Threads] = s
	}
	var threads []int
	for th := range threadSet {
		threads = append(threads, th)
	}
	sort.Ints(threads)

	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "scheme")
	for _, th := range threads {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("t=%d", th))
		if stats {
			fmt.Fprintf(&b, " %8s %8s", "sd", "±95")
		}
	}
	b.WriteByte('\n')
	for _, s := range schemeOrder {
		fmt.Fprintf(&b, "%-6s", s)
		for _, th := range threads {
			cell := cells[s][th]
			fmt.Fprintf(&b, " %9.1f", cell.Mean)
			if stats {
				fmt.Fprintf(&b, " %8.1f %8.1f", cell.Stddev, cell.CI95)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
