// Sweep sharding: the planning side of the experiment farm. A sweep is a
// flat list of fully deterministic, independent trials (pool.go), so it can
// be split across worker processes by partitioning that list. The partition
// is a stable modulo assignment over the canonical job order — job j belongs
// to shard j mod N — so shard membership depends only on (config, N), never
// on timing: any subset of shards can be re-run later and heal the grid via
// warm store hits.
package bench

import "fmt"

// ShardWorkloads expands cfg into its flat job list — the same
// (point, trial) order both sweep execution paths use — and returns the
// workloads of jobs assigned to shard (0-based) out of `of`. Every job lands
// in exactly one shard; concatenating all shards' lists, interleaved by job
// index, reproduces the full sweep. Execution knobs (Workers, Store, Obs,
// Trace) do not affect the partition.
func ShardWorkloads(cfg SweepConfig, shard, of int) ([]Workload, error) {
	if cfg.Trials == 0 {
		cfg.Trials = 1
	}
	if err := validateSweep(cfg); err != nil {
		return nil, err
	}
	if of < 1 {
		return nil, fmt.Errorf("bench: shard count %d, need at least 1", of)
	}
	if shard < 0 || shard >= of {
		return nil, fmt.Errorf("bench: shard %d out of range [0,%d)", shard, of)
	}
	specs := expand(cfg)
	var ws []Workload
	job := 0
	for _, s := range specs {
		for trial := 0; trial < cfg.Trials; trial++ {
			if job%of == shard {
				ws = append(ws, trialWorkload(cfg, s, trial))
			}
			job++
		}
	}
	return ws, nil
}
