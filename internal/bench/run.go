package bench

import (
	"fmt"
	"sort"

	"condaccess/internal/cache"
	"condaccess/internal/sim"
)

// Run executes one trial: build, prefill to 50%, reset clocks, run the
// measured mixed workload, and collect every statistic the experiments
// report.
func Run(w Workload) (Result, error) {
	if err := validate(&w); err != nil {
		return Result{}, err
	}
	cfg := sim.Config{
		Cores: w.Threads,
		Seed:  w.Seed,
		Check: w.Check,
		Slack: w.Slack,
	}
	if w.Cache.Cores != 0 {
		if w.Cache.Cores != w.Threads {
			return Result{}, fmt.Errorf("bench: cache params cores %d != threads %d", w.Cache.Cores, w.Threads)
		}
		cfg.Cache = w.Cache
	}
	m := sim.New(cfg)
	b, err := build(m, w)
	if err != nil {
		return Result{}, err
	}

	res := Result{W: w}
	res.PrefillSize = prefill(m, w, b)
	m.ResetClocks()

	// Measured phase.
	opWork := w.OpWorkCycles
	if opWork == 0 {
		opWork = DefaultOpWork
	}
	gen, err := newKeygen(w.Dist, w.KeyRange)
	if err != nil {
		return Result{}, err
	}
	totalOps := 0 // serialized by the simulator: safe plain counter
	sample := func() {
		if w.FootprintEvery > 0 && totalOps%w.FootprintEvery == 0 {
			res.Footprint = append(res.Footprint, FootprintSample{
				AfterOps: totalOps,
				Live:     m.Space.Stats().NodeLive(),
			})
		}
	}
	var lats [][]uint64
	if w.RecordLatency {
		lats = make([][]uint64, w.Threads)
	}
	for i := 0; i < w.Threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			id := c.ThreadID()
			rng := c.Rand()
			for j := 0; j < w.OpsPerThread; j++ {
				c.Work(opWork)
				start := c.Clock()
				doOp(c, w, b, gen, rng)
				if lats != nil {
					lats[id] = append(lats[id], c.Clock()-start)
				}
				totalOps++
				sample()
			}
		})
	}
	m.Run()
	if lats != nil {
		var all []uint64
		for _, l := range lats {
			all = append(all, l...)
		}
		res.Latency = computeLatency(all)
	}

	res.Ops = uint64(w.Threads) * uint64(w.OpsPerThread)
	res.Cycles = m.MaxClock()
	if res.Cycles > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.Cycles) / 1e6)
	}
	res.Retries = b.retries()
	res.Cache = m.Hier.Stats()
	res.CA = m.Ext.Stats()
	if b.rec != nil {
		res.SMR = b.rec.Stats()
	}
	res.Mem = m.Space.Stats()
	return res, nil
}

func validate(w *Workload) error {
	if w.Threads <= 0 || w.Threads > 64 {
		return fmt.Errorf("bench: threads %d out of [1,64]", w.Threads)
	}
	if w.KeyRange == 0 {
		return fmt.Errorf("bench: key range must be positive")
	}
	if w.UpdatePct < 0 || w.UpdatePct > 100 {
		return fmt.Errorf("bench: update pct %d out of [0,100]", w.UpdatePct)
	}
	if w.OpsPerThread <= 0 {
		return fmt.Errorf("bench: ops per thread must be positive")
	}
	known := false
	for _, s := range Structures() {
		if s == w.DS {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("bench: unknown structure %q", w.DS)
	}
	return nil
}

// doOp executes one randomly chosen operation. For sets: UpdatePct/2 each of
// insert and delete, rest contains. For the stack (and queue) the paper's
// mix maps to push/pop(/peek): equal insert/delete probabilities keep the
// size stable.
func doOp(c *sim.Ctx, w Workload, b built, gen keygen, rng *sim.RNG) {
	p := int(rng.Uint64n(100))
	key := gen.Next(rng)
	switch {
	case b.set != nil:
		switch {
		case p < w.UpdatePct/2:
			b.set.Insert(c, key)
		case p < w.UpdatePct:
			b.set.Delete(c, key)
		default:
			b.set.Contains(c, key)
		}
	case b.stk != nil:
		switch {
		case p < w.UpdatePct/2:
			b.stk.Push(c, key)
		case p < w.UpdatePct:
			b.stk.Pop(c)
		default:
			b.stk.Peek(c)
		}
	default:
		switch {
		case p < w.UpdatePct/2:
			b.que.Enqueue(c, key)
		case p < w.UpdatePct:
			b.que.Dequeue(c)
		default:
			// Queues have no read-only op; a dequeue+enqueue pair keeps the
			// size stable for the "read" share.
			if v, ok := b.que.Dequeue(c); ok {
				b.que.Enqueue(c, v)
			}
		}
	}
}

// prefill brings the structure to 50% occupancy using thread 0, returning
// the number of elements inserted. Sets insert random keys until half the
// key range is present; stacks and queues get KeyRange/2 elements.
func prefill(m *sim.Machine, w Workload, b built) int {
	target := int(w.KeyRange / 2)
	if target == 0 {
		target = 1
	}
	n := 0
	m.Spawn(func(c *sim.Ctx) {
		rng := sim.NewRNG(w.Seed ^ 0xA5A5A5A5)
		switch {
		case b.set != nil:
			for n < target {
				if b.set.Insert(c, rng.Uint64n(w.KeyRange)+1) {
					n++
				}
			}
		case b.stk != nil:
			for ; n < target; n++ {
				b.stk.Push(c, rng.Uint64n(w.KeyRange)+1)
			}
		default:
			for ; n < target; n++ {
				b.que.Enqueue(c, rng.Uint64n(w.KeyRange)+1)
			}
		}
	})
	m.Run()
	return n
}

// DefaultCache re-exports the default cache geometry for tools that sweep
// cache parameters.
func DefaultCache(cores int) cache.Params { return cache.DefaultParams(cores) }

// computeLatency sorts the collected latencies and extracts percentiles.
func computeLatency(all []uint64) LatencyStats {
	if len(all) == 0 {
		return LatencyStats{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) uint64 { return all[int(p*float64(len(all)-1))] }
	var sum float64
	for _, v := range all {
		sum += float64(v)
	}
	return LatencyStats{
		Samples: len(all),
		P50:     q(0.50), P90: q(0.90),
		P99: q(0.99), P999: q(0.999),
		Max:        all[len(all)-1],
		MeanCycles: sum / float64(len(all)),
	}
}
