package bench

import (
	"fmt"
	"sort"

	"condaccess/internal/cache"
	"condaccess/internal/sim"
)

// Runner executes trials on reusable simulated machines. Building a machine
// allocates the simulated heap, both cache levels, and the extension state;
// a Runner keeps one machine per distinct geometry (thread count × cache
// params) and rewinds it with sim.Machine.Reset between trials instead of
// rebuilding, so a sweep's dominant allocation cost is paid once per
// geometry rather than once per trial. A reset machine is bit-for-bit
// equivalent to a fresh one, so results are identical either way. A Runner
// is not safe for concurrent use; parallel sweeps give each worker its own.
type Runner struct {
	machines map[cache.Params]*sim.Machine
}

// Run executes one trial: build, prefill to 50%, reset clocks, run the
// measured mixed workload, and collect every statistic the experiments
// report. It is equivalent to the package-level Run but may reuse a machine
// from an earlier trial with the same geometry.
func (r *Runner) Run(w Workload) (Result, error) {
	if err := validate(&w); err != nil {
		return Result{}, err
	}
	cfg := sim.Config{
		Cores: w.Threads,
		Seed:  w.Seed,
		Check: w.Check,
		Slack: w.Slack,
	}
	if w.Cache.Cores != 0 {
		if w.Cache.Cores != w.Threads {
			return Result{}, fmt.Errorf("bench: cache params cores %d != threads %d", w.Cache.Cores, w.Threads)
		}
		if err := w.Cache.Check(); err != nil {
			return Result{}, err
		}
		cfg.Cache = w.Cache
	}
	m := r.acquire(cfg)
	b, err := build(m, w)
	if err != nil {
		return Result{}, err
	}

	res := Result{W: w}
	res.PrefillSize = prefill(m, w, b)
	m.ResetClocks()

	// Measured phase.
	opWork := w.OpWorkCycles
	if opWork == 0 {
		opWork = DefaultOpWork
	}
	gen, err := newKeygen(w.Dist, w.KeyRange)
	if err != nil {
		return Result{}, err
	}
	totalOps := 0 // serialized by the simulator: safe plain counter
	sample := func() {
		if w.FootprintEvery > 0 && totalOps%w.FootprintEvery == 0 {
			res.Footprint = append(res.Footprint, FootprintSample{
				AfterOps: totalOps,
				Live:     m.Space.Stats().NodeLive(),
			})
		}
	}
	var lats [][]uint64
	if w.RecordLatency {
		lats = make([][]uint64, w.Threads)
	}
	for i := 0; i < w.Threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			id := c.ThreadID()
			rng := c.Rand()
			for j := 0; j < w.OpsPerThread; j++ {
				c.Work(opWork)
				start := c.Clock()
				doOp(c, w, b, gen, rng)
				if lats != nil {
					lats[id] = append(lats[id], c.Clock()-start)
				}
				totalOps++
				sample()
			}
		})
	}
	m.Run()
	if lats != nil {
		var all []uint64
		for _, l := range lats {
			all = append(all, l...)
		}
		res.Latency = computeLatency(all)
	}

	res.Ops = uint64(w.Threads) * uint64(w.OpsPerThread)
	res.Cycles = m.MaxClock()
	if res.Cycles > 0 {
		res.Throughput = float64(res.Ops) / (float64(res.Cycles) / 1e6)
	}
	res.Retries = b.retries()
	res.Cache = m.Hier.Stats()
	res.CA = m.Ext.Stats()
	if b.rec != nil {
		res.SMR = b.rec.Stats()
	}
	res.Mem = m.Space.Stats()
	return res, nil
}

// maxRunnerMachines bounds how many fully-built machines one Runner keeps.
// A machine's simulated heap grows to its largest trial's footprint, and a
// wide sweep can cross many geometries (one per thread count), so an
// unbounded cache would multiply peak memory by workers × geometries.
const maxRunnerMachines = 4

// acquire returns a machine for cfg, resetting a cached one when its
// geometry matches and building (and caching) a fresh one otherwise. When
// the cache would exceed maxRunnerMachines it is dropped wholesale — crude
// but deterministic, and sweeps revisit geometries often enough that the
// amortization survives.
func (r *Runner) acquire(cfg sim.Config) *sim.Machine {
	key := cfg.Cache
	if key.Cores == 0 {
		key = cache.DefaultParams(cfg.Cores)
	}
	if m := r.machines[key]; m != nil && m.Reset(cfg) {
		return m
	}
	m := sim.New(cfg)
	if r.machines == nil {
		r.machines = make(map[cache.Params]*sim.Machine)
	} else if len(r.machines) >= maxRunnerMachines {
		clear(r.machines)
	}
	r.machines[key] = m
	return m
}

// Run executes one trial on a fresh machine. Sweeps use a Runner to reuse
// machines across trials; the results are identical.
func Run(w Workload) (Result, error) {
	var r Runner
	return r.Run(w)
}

func validate(w *Workload) error {
	if w.Threads <= 0 || w.Threads > 64 {
		return fmt.Errorf("bench: threads %d out of [1,64]", w.Threads)
	}
	if w.KeyRange == 0 {
		return fmt.Errorf("bench: key range must be positive")
	}
	if w.UpdatePct < 0 || w.UpdatePct > 100 {
		return fmt.Errorf("bench: update pct %d out of [0,100]", w.UpdatePct)
	}
	if w.OpsPerThread <= 0 {
		return fmt.Errorf("bench: ops per thread must be positive")
	}
	known := false
	for _, s := range Structures() {
		if s == w.DS {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("bench: unknown structure %q", w.DS)
	}
	return nil
}

// doOp executes one randomly chosen operation. For sets: UpdatePct/2 each of
// insert and delete, rest contains. For the stack (and queue) the paper's
// mix maps to push/pop(/peek): equal insert/delete probabilities keep the
// size stable.
func doOp(c *sim.Ctx, w Workload, b built, gen keygen, rng *sim.RNG) {
	p := int(rng.Uint64n(100))
	key := gen.Next(rng)
	switch {
	case b.set != nil:
		switch {
		case p < w.UpdatePct/2:
			b.set.Insert(c, key)
		case p < w.UpdatePct:
			b.set.Delete(c, key)
		default:
			b.set.Contains(c, key)
		}
	case b.stk != nil:
		switch {
		case p < w.UpdatePct/2:
			b.stk.Push(c, key)
		case p < w.UpdatePct:
			b.stk.Pop(c)
		default:
			b.stk.Peek(c)
		}
	default:
		switch {
		case p < w.UpdatePct/2:
			b.que.Enqueue(c, key)
		case p < w.UpdatePct:
			b.que.Dequeue(c)
		default:
			// Queues have no read-only op; a dequeue+enqueue pair keeps the
			// size stable for the "read" share.
			if v, ok := b.que.Dequeue(c); ok {
				b.que.Enqueue(c, v)
			}
		}
	}
}

// prefill brings the structure to 50% occupancy using thread 0, returning
// the number of elements inserted. Sets insert random keys until half the
// key range is present; stacks and queues get KeyRange/2 elements.
func prefill(m *sim.Machine, w Workload, b built) int {
	target := int(w.KeyRange / 2)
	if target == 0 {
		target = 1
	}
	n := 0
	m.Spawn(func(c *sim.Ctx) {
		rng := sim.NewRNG(w.Seed ^ 0xA5A5A5A5)
		switch {
		case b.set != nil:
			for n < target {
				if b.set.Insert(c, rng.Uint64n(w.KeyRange)+1) {
					n++
				}
			}
		case b.stk != nil:
			for ; n < target; n++ {
				b.stk.Push(c, rng.Uint64n(w.KeyRange)+1)
			}
		default:
			for ; n < target; n++ {
				b.que.Enqueue(c, rng.Uint64n(w.KeyRange)+1)
			}
		}
	})
	m.Run()
	return n
}

// DefaultCache re-exports the default cache geometry for tools that sweep
// cache parameters.
func DefaultCache(cores int) cache.Params { return cache.DefaultParams(cores) }

// computeLatency sorts the collected latencies and extracts percentiles.
func computeLatency(all []uint64) LatencyStats {
	if len(all) == 0 {
		return LatencyStats{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) uint64 { return all[int(p*float64(len(all)-1))] }
	var sum float64
	for _, v := range all {
		sum += float64(v)
	}
	return LatencyStats{
		Samples: len(all),
		P50:     q(0.50), P90: q(0.90),
		P99: q(0.99), P999: q(0.999),
		Max:        all[len(all)-1],
		MeanCycles: sum / float64(len(all)),
	}
}
