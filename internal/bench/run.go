package bench

import (
	"fmt"
	"slices"

	"condaccess/internal/cache"
	"condaccess/internal/latency"
	"condaccess/internal/obs"
	"condaccess/internal/scenario"
	"condaccess/internal/sim"
	"condaccess/internal/trace"
)

// Runner executes trials on reusable simulated machines. Building a machine
// allocates the simulated heap, both cache levels, and the extension state;
// a Runner keeps one machine per distinct geometry (thread count × cache
// params) and rewinds it with sim.Machine.Reset between trials instead of
// rebuilding, so a sweep's dominant allocation cost is paid once per
// geometry rather than once per trial. A reset machine is bit-for-bit
// equivalent to a fresh one, so results are identical either way. A Runner
// is not safe for concurrent use; parallel sweeps give each worker its own.
type Runner struct {
	machines map[cache.Params]*sim.Machine

	// Store, when non-nil, is consulted before every trial and updated after
	// every simulated one (read-through/write-through): a hit returns the
	// cached complete result and skips simulation entirely. Sweeps propagate
	// SweepConfig.Store here on every execution path.
	Store TrialStore

	// Obs, when non-nil, receives this Runner's per-trial phase spans
	// (prepare, store lookup, simulate, store write) and warm-hit marks.
	// Recording is strictly out-of-band — it never changes a result, a
	// store key, or an error — and a nil recorder costs nothing: every
	// method is a nil-receiver no-op. The Runner records spans only; the
	// owner of the trial loop calls Obs.Commit (or Obs.Abandon on error)
	// after each Run/RunScenario, naming the sweep point the trial
	// belongs to.
	Obs *obs.WorkerRec

	// Trace, when non-nil, receives every simulated trial's full event
	// stream: the Runner opens a trial track on it and attaches it to the
	// machine for the measured run (after prefill, once the clocks are
	// reset, so trace timestamps share the measured cycle axis). Strictly
	// observational — results are bit-for-bit identical with or without it
	// — and warm store hits emit no events (nothing was simulated). Like
	// the Runner itself, a shared sink is not safe for concurrent use.
	Trace *trace.Sink
}

// Run executes one trial: build, prefill to 50%, reset clocks, run the
// measured mixed workload, and collect every statistic the experiments
// report. It is equivalent to the package-level Run but may reuse a machine
// from an earlier trial with the same geometry.
//
// The stationary Workload is executed by lowering it onto the scenario
// engine (RunScenario) as the canonical single-phase, uniform-role,
// constant-intensity scenario. The lowering is bit-for-bit: the compiled
// program reproduces the historical engine's exact draw and charge sequence,
// which testdata/golden.json pins.
func (r *Runner) Run(w Workload) (Result, error) {
	t0 := r.Obs.Start(obs.PhasePrepare)
	if err := validate(&w); err != nil {
		return Result{}, err
	}
	// The spec is canonicalized once here; a keyed store memoizes the
	// derived content key on ps across the lookup and the write-through,
	// so a miss never marshals or hashes the spec a second time.
	ks, ps := r.keyedStore(func() ([]byte, error) { return TrialSpecBytes(w) })
	r.Obs.End(obs.PhasePrepare, t0)
	if r.Store != nil {
		var res Result
		var ok bool
		t0 = r.Obs.Start(obs.PhaseLookup)
		if ks != nil {
			res, ok = ks.LookupTrialSpec(ps)
		} else {
			res, ok = r.Store.LookupTrial(w)
		}
		r.Obs.End(obs.PhaseLookup, t0)
		if ok && !staleTail(w.RecordLatency || w.RecordTail, res.Tail) &&
			!staleTimeline(w.RecordTimeline, res.Timeline) {
			r.Obs.Warm()
			return res, nil
		}
	}
	t0 = r.Obs.Start(obs.PhaseSimulate)
	sres, err := r.runScenario(lowerWorkload(w))
	r.Obs.End(obs.PhaseSimulate, t0)
	if err != nil {
		return Result{}, err
	}
	res := sres.Result
	res.W = w
	if r.Store != nil {
		t0 = r.Obs.Start(obs.PhaseStore)
		if ks != nil {
			err = ks.StoreTrialSpec(ps, res)
		} else {
			err = r.Store.StoreTrial(w, res)
		}
		r.Obs.End(obs.PhaseStore, t0)
		if err != nil {
			return Result{}, fmt.Errorf("bench: storing trial result: %w", err)
		}
	}
	return res, nil
}

// keyedStore resolves the Runner's store to its keyed fast path: when the
// store implements KeyedTrialStore and the spec marshals cleanly, it
// returns the keyed handle with the spec prepared once. Otherwise (plain
// store, or a marshal failure that the classic methods will surface) both
// returns are nil and callers take the unkeyed path.
func (r *Runner) keyedStore(marshal func() ([]byte, error)) (KeyedTrialStore, *PreparedSpec) {
	ks, ok := r.Store.(KeyedTrialStore)
	if !ok {
		return nil, nil
	}
	spec, err := marshal()
	if err != nil {
		return nil, nil
	}
	return ks, &PreparedSpec{Spec: spec}
}

// lowerWorkload expresses a stationary Workload as a scenario: one phase of
// OpsPerThread ops, the UpdatePct/2 split as an explicit weight table over
// 100 (insert U/2, delete U-U/2, read 100-U — integer division included),
// a constant think-time profile, no roles, and the queue's historical
// dequeue+enqueue read pair.
func lowerWorkload(w Workload) ScenarioWorkload {
	u := w.UpdatePct
	return ScenarioWorkload{
		DS: w.DS, Scheme: w.Scheme,
		Threads: w.Threads, KeyRange: w.KeyRange, Buckets: w.Buckets,
		Seed: w.Seed, Check: w.Check,
		SMR: w.SMR, Cache: w.Cache, Slack: w.Slack,
		Dist: w.Dist, FootprintEvery: w.FootprintEvery,
		RecordLatency: w.RecordLatency, RecordTail: w.RecordTail,
		RecordTimeline: w.RecordTimeline, TimelineWindow: w.TimelineWindow,
		Scenario: scenario.Scenario{
			Name: "stationary",
			Phases: []scenario.Phase{{
				Name:    "measured",
				Ops:     w.OpsPerThread,
				Weights: scenario.Weights{Insert: u / 2, Delete: u - u/2, Read: 100 - u},
				Profile: scenario.Profile{Work: w.OpWorkCycles},
			}},
		},
		legacyQueueRead: true,
	}
}

// maxRunnerMachines bounds how many fully-built machines one Runner keeps.
// A machine's simulated heap grows to its largest trial's footprint, and a
// wide sweep can cross many geometries (one per thread count), so an
// unbounded cache would multiply peak memory by workers × geometries.
const maxRunnerMachines = 4

// acquire returns a machine for cfg, resetting a cached one when its
// geometry matches and building (and caching) a fresh one otherwise. When
// the cache would exceed maxRunnerMachines it is dropped wholesale — crude
// but deterministic, and sweeps revisit geometries often enough that the
// amortization survives.
func (r *Runner) acquire(cfg sim.Config) *sim.Machine {
	key := cfg.Cache
	if key.Cores == 0 {
		key = cache.DefaultParams(cfg.Cores)
	}
	if m := r.machines[key]; m != nil && m.Reset(cfg) {
		return m
	}
	m := sim.New(cfg)
	if r.machines == nil {
		r.machines = make(map[cache.Params]*sim.Machine)
	} else if len(r.machines) >= maxRunnerMachines {
		clear(r.machines)
	}
	r.machines[key] = m
	return m
}

// staleTail reports whether a store hit predates the tail-histogram fields:
// the spec asks for tail recording but the stored result has none (written
// by an older binary — the engine tag only tracks golden-pinned simulator
// output, not the result shape). Such hits are treated as misses and
// re-simulated, which also overwrites the stale entry.
func staleTail(wantTail bool, tail *latency.Tail) bool {
	return wantTail && tail == nil
}

// staleTimeline is staleTail's analogue for the windowed timeline: a hit
// written before timelines existed (or by a spec that didn't record one)
// cannot serve a timeline-recording spec, so it is re-simulated in place.
func staleTimeline(want bool, tl *trace.Timeline) bool {
	return want && tl == nil
}

// Run executes one trial on a fresh machine. Sweeps use a Runner to reuse
// machines across trials; the results are identical.
func Run(w Workload) (Result, error) {
	var r Runner
	return r.Run(w)
}

// validate rejects malformed workloads up front — including the fields
// (distribution, scheme, buckets) that historically failed later, mid-build
// or after the prefill had already run.
func validate(w *Workload) error {
	if w.Threads <= 0 || w.Threads > 64 {
		return fmt.Errorf("bench: threads %d out of [1,64]", w.Threads)
	}
	if w.KeyRange == 0 {
		return fmt.Errorf("bench: key range must be positive")
	}
	if w.UpdatePct < 0 || w.UpdatePct > 100 {
		return fmt.Errorf("bench: update pct %d out of [0,100]", w.UpdatePct)
	}
	if w.OpsPerThread <= 0 {
		return fmt.Errorf("bench: ops per thread must be positive")
	}
	if w.Buckets < 0 {
		return fmt.Errorf("bench: buckets %d must be non-negative", w.Buckets)
	}
	if err := validTimelineWindow(w.TimelineWindow); err != nil {
		return err
	}
	if err := validDist(w.Dist); err != nil {
		return err
	}
	if err := validDS(w.DS); err != nil {
		return err
	}
	return validScheme(w.Scheme)
}

func validTimelineWindow(w uint64) error {
	if w != 0 && w < trace.MinWindow {
		return fmt.Errorf("bench: timeline window %d below minimum %d cycles", w, trace.MinWindow)
	}
	return nil
}

func validDS(ds string) error {
	if slices.Contains(Structures(), ds) {
		return nil
	}
	return fmt.Errorf("bench: unknown structure %q", ds)
}

func validScheme(scheme string) error {
	if slices.Contains(Schemes(), scheme) {
		return nil
	}
	return fmt.Errorf("bench: unknown scheme %q", scheme)
}

func validDist(dist string) error {
	switch dist {
	case "", DistUniform, DistZipf:
		return nil
	}
	return fmt.Errorf("bench: unknown key distribution %q", dist)
}

// prefill brings the structure to 50% occupancy using thread 0, returning
// the number of elements inserted. Sets insert random keys until half the
// key range is present; stacks and queues get KeyRange/2 elements.
func prefill(m *sim.Machine, w Workload, b built) int {
	target := int(w.KeyRange / 2)
	if target == 0 {
		target = 1
	}
	n := 0
	m.Spawn(func(c *sim.Ctx) {
		rng := sim.NewRNG(w.Seed ^ 0xA5A5A5A5)
		switch {
		case b.set != nil:
			for n < target {
				if b.set.Insert(c, rng.Uint64n(w.KeyRange)+1) {
					n++
				}
			}
		case b.stk != nil:
			for ; n < target; n++ {
				b.stk.Push(c, rng.Uint64n(w.KeyRange)+1)
			}
		default:
			for ; n < target; n++ {
				b.que.Enqueue(c, rng.Uint64n(w.KeyRange)+1)
			}
		}
	})
	m.Run()
	return n
}

// DefaultCache re-exports the default cache geometry for tools that sweep
// cache parameters.
func DefaultCache(cores int) cache.Params { return cache.DefaultParams(cores) }

// computeLatency sorts the collected latencies and extracts percentiles.
func computeLatency(all []uint64) LatencyStats {
	if len(all) == 0 {
		return LatencyStats{}
	}
	slices.Sort(all)
	q := func(p float64) uint64 { return all[int(p*float64(len(all)-1))] }
	var sum float64
	for _, v := range all {
		sum += float64(v)
	}
	return LatencyStats{
		Samples: len(all),
		P50:     q(0.50), P90: q(0.90),
		P99: q(0.99), P999: q(0.999),
		Max:        all[len(all)-1],
		MeanCycles: sum / float64(len(all)),
	}
}
