package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"condaccess/internal/obs"
)

// TestManifestAccountsWallClock is the observability acceptance test: a
// sequential sweep's manifest must account for where the wall-clock went —
// span sums bounded by elapsed time, trial counts matching the sweep
// exactly, labels matching the points — and a warm re-run over the same
// store must show simulation time collapsing to zero with the store lookup
// as the remaining cost.
func TestManifestAccountsWallClock(t *testing.T) {
	st := &keyedMemStore{memStore: newMemStore()}
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"},
		Threads: []int{2}, Updates: []int{100},
		KeyRange: 64, Ops: 120, Seed: 7, Trials: 2, Workers: 1,
		Store: st,
	}

	cold := obs.New(obs.Config{Tool: "test"})
	cfg.Obs = cold
	start := time.Now()
	points, err := Sweep(cfg, nil)
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	m := cold.Manifest()

	wantTrials := len(cfg.Schemes) * len(cfg.Threads) * len(cfg.Updates) * cfg.Trials
	if m.TrialsPlanned != wantTrials || m.TrialsDone != wantTrials {
		t.Errorf("trials planned/done = %d/%d, want %d", m.TrialsPlanned, m.TrialsDone, wantTrials)
	}
	if m.WarmHits != 0 {
		t.Errorf("cold run WarmHits = %d, want 0", m.WarmHits)
	}
	if total := m.Total(); total <= 0 || total > int64(wall) {
		t.Errorf("span total = %v not in (0, wall=%v]", time.Duration(total), wall)
	}
	if m.SimulateNanos <= 0 {
		t.Errorf("cold run SimulateNanos = %d, want > 0", m.SimulateNanos)
	}
	if len(m.Points) != len(points) {
		t.Fatalf("%d manifest points, %d sweep points", len(m.Points), len(points))
	}
	for i, p := range points {
		mp := m.Points[i]
		want := pointLabel(cfg.DS, pointSpec{Scheme: p.Scheme, Threads: p.Threads, UpdatePct: p.UpdatePct})
		if mp.Label != want {
			t.Errorf("point %d label = %q, want %q", i, mp.Label, want)
		}
		if mp.Trials != cfg.Trials {
			t.Errorf("point %q trials = %d, want %d", mp.Label, mp.Trials, cfg.Trials)
		}
	}

	// Warm re-run: every cell hits the store, so simulation vanishes and the
	// lookup span is what remains.
	warm := obs.New(obs.Config{Tool: "test"})
	cfg.Obs = warm
	if _, err := Sweep(cfg, nil); err != nil {
		t.Fatal(err)
	}
	wm := warm.Manifest()
	if wm.WarmHits != wantTrials || wm.TrialsDone != wantTrials {
		t.Errorf("warm run hits/done = %d/%d, want all %d warm", wm.WarmHits, wm.TrialsDone, wantTrials)
	}
	if wm.SimulateNanos != 0 {
		t.Errorf("warm run SimulateNanos = %v, want 0", time.Duration(wm.SimulateNanos))
	}
	if wm.LookupNanos <= 0 {
		t.Errorf("warm run LookupNanos = %d, want > 0", wm.LookupNanos)
	}
}

// TestParallelSweepObserved checks the pool path: a parallel sweep's
// manifest carries the same trial counts and per-point rollups as the work
// it did, with spans conserved across workers.
func TestParallelSweepObserved(t *testing.T) {
	rec := obs.New(obs.Config{Tool: "test"})
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "ibr"},
		Threads: []int{1, 2}, Updates: []int{100},
		KeyRange: 64, Ops: 100, Seed: 3, Trials: 2, Workers: 4,
		Obs: rec,
	}
	points, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := rec.Manifest()
	wantTrials := len(points) * cfg.Trials
	if m.TrialsDone != wantTrials {
		t.Errorf("TrialsDone = %d, want %d", m.TrialsDone, wantTrials)
	}
	var pointTrials int
	var pointSpans, workerSpans int64
	for _, p := range m.Points {
		pointTrials += p.Trials
		pointSpans += p.Total()
	}
	for _, w := range m.Workers {
		workerSpans += w.Total()
	}
	if pointTrials != wantTrials {
		t.Errorf("sum of point trials = %d, want %d", pointTrials, wantTrials)
	}
	if pointSpans != workerSpans || workerSpans != m.Total() {
		t.Errorf("span conservation: points %d, workers %d, total %d", pointSpans, workerSpans, m.Total())
	}
}

// failingStore wraps the in-memory store with a write path that always
// fails, simulating a full or broken disk under the sweep pool.
type failingStore struct{ inner *memStore }

func (f failingStore) LookupTrial(w Workload) (Result, bool) { return f.inner.LookupTrial(w) }
func (f failingStore) StoreTrial(w Workload, res Result) error {
	return errors.New("disk full")
}
func (f failingStore) LookupScenario(sw ScenarioWorkload) (ScenarioResult, bool) {
	return f.inner.LookupScenario(sw)
}
func (f failingStore) StoreScenario(sw ScenarioWorkload, res ScenarioResult) error {
	return errors.New("disk full")
}

// TestPoolErrorPathKeepsObsConsistent injects a failing TrialStore under a
// parallel sweep and checks the observability contract on the error path:
// the error propagates, point events stay strictly sequential, and Close
// still writes one complete manifest (atomic temp+rename — no residue, no
// truncation) with the run error recorded.
func TestPoolErrorPathKeepsObsConsistent(t *testing.T) {
	dir := t.TempDir()
	var events bytes.Buffer
	rec := obs.New(obs.Config{Tool: "test", ManifestDir: dir, Events: &events})
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu", "ibr"},
		Threads: []int{1, 2}, Updates: []int{100},
		KeyRange: 64, Ops: 80, Seed: 5, Trials: 1, Workers: 4,
		Store: failingStore{inner: newMemStore()},
		Obs:   rec,
	}
	_, err := Sweep(cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Sweep error = %v, want the injected store failure", err)
	}
	if cerr := rec.Close(err); cerr != nil {
		t.Fatal(cerr)
	}

	// Events: point_start/point_done must be a strictly sequential prefix
	// even though pool workers finish out of order and the run died early.
	type ev struct {
		Ev    string `json:"ev"`
		Point *int   `json:"point"`
	}
	next, open := 0, -1
	for _, line := range strings.Split(strings.TrimSpace(events.String()), "\n") {
		var e ev
		if uerr := json.Unmarshal([]byte(line), &e); uerr != nil {
			t.Fatalf("unparsable event %q: %v", line, uerr)
		}
		switch e.Ev {
		case "point_start":
			if open != -1 || e.Point == nil || *e.Point != next {
				t.Fatalf("point_start out of order: got %v while open=%d next=%d", e.Point, open, next)
			}
			open = next
		case "point_done":
			if e.Point == nil || *e.Point != open {
				t.Fatalf("point_done %v does not match open point %d", e.Point, open)
			}
			open, next = -1, next+1
		}
	}

	// Manifest: exactly one complete file, no .manifest-* temp residue, the
	// error recorded.
	ents, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(ents) != 1 || !strings.HasSuffix(ents[0].Name(), ".json") {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("manifest dir = %v, want exactly one .json", names)
	}
	m, merr := obs.ReadManifest(obs.ManifestPath(dir, rec.RunID()))
	if merr != nil {
		t.Fatal(merr)
	}
	if !strings.Contains(m.Error, "disk full") {
		t.Errorf("manifest Error = %q, want the injected failure", m.Error)
	}
	if m.TrialsDone >= m.TrialsPlanned {
		t.Errorf("trials done/planned = %d/%d: a failed run must fall short of plan",
			m.TrialsDone, m.TrialsPlanned)
	}
}

// TestRunManyObservedCountsPoints pins the RunMany wrapper: one point per
// workload, committed in input order.
func TestRunManyObservedCountsPoints(t *testing.T) {
	rec := obs.New(obs.Config{Tool: "test"})
	ws := []Workload{
		{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 64, UpdatePct: 100, OpsPerThread: 80, Seed: 1},
		{DS: "list", Scheme: "rcu", Threads: 2, KeyRange: 64, UpdatePct: 100, OpsPerThread: 80, Seed: 1},
	}
	if _, err := RunManyObserved(ws, 2, nil, rec); err != nil {
		t.Fatal(err)
	}
	m := rec.Manifest()
	if m.TrialsDone != 2 || len(m.Points) != 2 {
		t.Fatalf("done=%d points=%d, want 2/2", m.TrialsDone, len(m.Points))
	}
	for i, p := range m.Points {
		if p.Trials != 1 {
			t.Errorf("point %d trials = %d, want 1", i, p.Trials)
		}
		if want := pointLabel(ws[i].DS, pointSpec{Scheme: ws[i].Scheme, Threads: ws[i].Threads, UpdatePct: ws[i].UpdatePct}); p.Label != want {
			t.Errorf("point %d label = %q, want %q", i, p.Label, want)
		}
	}
}
