package bench

import (
	"fmt"

	"condaccess/internal/cache"
	"condaccess/internal/latency"
	"condaccess/internal/obs"
	"condaccess/internal/scenario"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
	"condaccess/internal/trace"
)

// ScenarioWorkload binds a declarative scenario to a data structure, a
// reclamation scheme, and a machine geometry. The scenario supplies the
// shape of the load (phases, roles, op mixes, intensity profiles); the
// binding supplies everything the simulator needs to host it. The zero
// fields default exactly as Workload's do.
type ScenarioWorkload struct {
	DS     string
	Scheme string

	Threads  int
	KeyRange uint64 // default key window for phases that don't set one
	Buckets  int    // hash only; 0 means hashtable.DefaultBuckets

	Seed  uint64
	Check bool

	SMR   smr.Options
	Cache cache.Params
	Slack uint64

	// Dist is the default key distribution for phases that don't name one.
	Dist string

	FootprintEvery int
	RecordLatency  bool
	// RecordTail fills the Tail histograms without the exact-sort slices;
	// see Workload.RecordTail.
	RecordTail bool `json:",omitempty"`

	// RecordTimeline and TimelineWindow fill the per-phase and trial
	// timelines; see Workload.RecordTimeline. Both omitempty so
	// pre-existing store keys are untouched.
	RecordTimeline bool   `json:",omitempty"`
	TimelineWindow uint64 `json:",omitempty"`

	Scenario scenario.Scenario

	// legacyQueueRead keeps the queue's read share as the historical
	// dequeue+enqueue pair instead of the real Peek. Only the Workload
	// lowering sets it, so the pre-scenario goldens stay reachable
	// bit-for-bit; declarative scenarios get the genuine front read.
	legacyQueueRead bool
}

// PhaseSegment is one phase's slice of a scenario trial: operation count,
// the phase's wall-clock window, and the deltas of every cumulative counter
// over that window. Phases are separated by a global barrier (each phase is
// its own sim Run), so the windows partition the measured run exactly:
// segment Ops/Cycles/Retries/Cache sum to the trial totals (Retries and
// Cache on top of the prefill segment's share).
type PhaseSegment struct {
	Name       string
	Ops        uint64      // operations completed in this phase (all threads)
	Cycles     uint64      // wall-clock window: max core clock advance
	Throughput float64     // ops per million cycles within the window
	Retries    uint64      // operation restarts within the window
	Cache      cache.Stats // cache-event deltas within the window
	LiveNodes  uint64      // allocated-not-freed nodes at phase end
	// Latency holds this phase's own percentiles when RecordLatency is set.
	Latency LatencyStats
	// Tail holds this phase's own tail-latency record (per-kind and
	// per-attribution histograms) when RecordLatency is set. Phase tails
	// merge exactly into the trial's Result.Tail.
	Tail *latency.Tail `json:",omitempty"`
	// Timeline holds this phase's windowed sim-time metrics when
	// RecordTimeline is set. Phases share the trial's cycle axis (clocks
	// are not reset between phases), so a later phase's series carries
	// zero windows for the earlier phases' span, and phase timelines merge
	// exactly into the trial's Result.Timeline.
	Timeline *trace.Timeline `json:",omitempty"`
}

// ScenarioResult is a scenario trial: the familiar whole-trial Result plus
// the per-phase breakdown. Result's totals keep their legacy meaning
// (Retries and Cache accumulate from the prefill on), so the prefill's share
// is reported as its own segment: Result = Prefill + sum(Phases) for every
// delta field, while Ops and Cycles (which legacy accounting already scoped
// to the measured run) sum over Phases alone.
type ScenarioResult struct {
	Result
	ScenarioName string
	Prefill      PhaseSegment
	Phases       []PhaseSegment
}

// workFn is a compiled intensity profile: per-op think-time cycles as a
// function of the op index within the phase and the fraction of the phase
// already elapsed (op fraction for ops-bounded phases, cycle fraction for
// cycle-bounded ones).
type workFn func(j int, frac float64) uint64

// segProg is one phase compiled for one role: integer thresholds over the
// weight total (p < insLim: insert; p < delLim: delete; else read), the
// phase's key generator and window, and the think-time schedule. The
// canonical Workload lowering compiles to exactly the draws and charges the
// stationary engine made, which is what keeps the goldens bit-for-bit.
type segProg struct {
	name      string
	ops       int
	cycles    uint64
	insLim    uint64
	delLim    uint64
	total     uint64
	gen       keygen
	keyOffset uint64
	keyRange  uint64
	work      workFn
	queuePair bool
}

// scenarioPlan is a compiled scenario: one program per (phase, role), plus
// the thread-to-role assignment.
type scenarioPlan struct {
	progs  [][]segProg // [phase][role]
	roleOf []int       // [thread] -> role index
}

// validateScenarioWorkload checks the binding the way validate checks a
// Workload; scenario-structural checks live in scenario.Validate and the
// binding-dependent ones in compileScenario.
func validateScenarioWorkload(sw *ScenarioWorkload) error {
	if sw.Threads <= 0 || sw.Threads > 64 {
		return fmt.Errorf("bench: threads %d out of [1,64]", sw.Threads)
	}
	if sw.KeyRange == 0 {
		return fmt.Errorf("bench: key range must be positive")
	}
	if sw.Buckets < 0 {
		return fmt.Errorf("bench: buckets %d must be non-negative", sw.Buckets)
	}
	if err := validTimelineWindow(sw.TimelineWindow); err != nil {
		return err
	}
	if err := validDist(sw.Dist); err != nil {
		return err
	}
	if err := validDS(sw.DS); err != nil {
		return err
	}
	return validScheme(sw.Scheme)
}

// compileScenario resolves defaults, checks the scenario against the
// binding, and compiles every (phase, role) program.
func compileScenario(sw ScenarioWorkload) (scenarioPlan, error) {
	sc := &sw.Scenario
	if err := sc.Validate(); err != nil {
		return scenarioPlan{}, err
	}

	// Thread-to-role assignment: roles take threads in declaration order,
	// a catch-all (Count 0) role absorbing the remainder.
	roles := sc.Roles
	if len(roles) == 0 {
		roles = []scenario.Role{{Name: "uniform"}}
	}
	fixed := 0
	catchAll := -1
	for i, r := range roles {
		if r.Count == 0 {
			catchAll = i
		}
		fixed += r.Count
	}
	if min := sc.MinThreads(); len(sc.Roles) > 0 && sw.Threads < min {
		// A catch-all role must get at least one thread: silently running
		// e.g. mixed-role with zero readers would mislabel the results.
		return scenarioPlan{}, fmt.Errorf("bench: scenario %q needs at least %d threads (role table), binding has %d",
			sc.Name, min, sw.Threads)
	}
	if catchAll < 0 && fixed != sw.Threads {
		return scenarioPlan{}, fmt.Errorf("bench: scenario %q role counts total %d, binding has %d threads",
			sc.Name, fixed, sw.Threads)
	}
	roleOf := make([]int, 0, sw.Threads)
	for i, r := range roles {
		n := r.Count
		if i == catchAll {
			n = sw.Threads - fixed
		}
		for t := 0; t < n; t++ {
			roleOf = append(roleOf, i)
		}
	}

	progs := make([][]segProg, len(sc.Phases))
	for pi, ph := range sc.Phases {
		dist := ph.Dist
		if dist == "" {
			dist = sw.Dist
		}
		kr := ph.KeyRange
		if kr == 0 {
			kr = sw.KeyRange
		}
		gen, err := newKeygen(dist, kr)
		if err != nil {
			return scenarioPlan{}, fmt.Errorf("bench: scenario %q phase %d: %w", sc.Name, pi, err)
		}
		work, err := compileProfile(ph.Profile)
		if err != nil {
			return scenarioPlan{}, fmt.Errorf("bench: scenario %q phase %d: %w", sc.Name, pi, err)
		}
		progs[pi] = make([]segProg, len(roles))
		for ri, role := range roles {
			w := ph.Weights
			if role.Weights != nil {
				w = *role.Weights
			}
			progs[pi][ri] = segProg{
				name:      ph.Name,
				ops:       ph.Ops,
				cycles:    ph.Cycles,
				insLim:    uint64(w.Insert),
				delLim:    uint64(w.Insert + w.Delete),
				total:     uint64(w.Total()),
				gen:       gen,
				keyOffset: uint64(ph.KeyShift * float64(kr)),
				keyRange:  kr,
				work:      work,
				queuePair: sw.legacyQueueRead,
			}
		}
	}
	return scenarioPlan{progs: progs, roleOf: roleOf}, nil
}

// compileProfile turns a declarative intensity profile into a workFn. A
// zero Work (or ramp endpoint, or burst height) means DefaultOpWork, the
// same defaulting Workload.OpWorkCycles has always had.
func compileProfile(p scenario.Profile) (workFn, error) {
	def := func(v uint64) uint64 {
		if v == 0 {
			return DefaultOpWork
		}
		return v
	}
	base := def(p.Work)
	switch p.Kind {
	case "", scenario.ProfileConstant:
		return func(int, float64) uint64 { return base }, nil
	case scenario.ProfileRamp:
		f0, f1 := float64(def(p.From)), float64(def(p.To))
		return func(_ int, frac float64) uint64 { return uint64(f0 + (f1-f0)*frac) }, nil
	case scenario.ProfileBurst:
		burst := def(p.BurstWork)
		period, ln := p.Period, p.Len
		return func(j int, _ float64) uint64 {
			if j%period < ln {
				return burst
			}
			return base
		}, nil
	case scenario.ProfilePiecewise:
		bounds := make([]int, len(p.Steps))
		works := make([]uint64, len(p.Steps))
		sum := 0
		for i, s := range p.Steps {
			sum += s.Ops
			bounds[i] = sum
			works[i] = def(s.Work)
		}
		last := works[len(works)-1]
		return func(j int, _ float64) uint64 {
			for i, b := range bounds {
				if j < b {
					return works[i]
				}
			}
			return last
		}, nil
	default:
		return nil, fmt.Errorf("bench: unknown profile kind %q", p.Kind)
	}
}

// RunScenario executes one scenario trial: build, prefill to 50%, reset
// clocks, then one sim Run phase per scenario phase — the Run boundary is
// the inter-phase barrier, so per-phase counter deltas are exact. Each
// thread's workload RNG stream is created once and carried across phases
// (phases continue the stream; they do not replay it).
//
// With a Store attached, the trial is read-through/write-through cached
// under the scenario's canonical spec: a warm call returns the cold call's
// exact serialized result without simulating. (The stationary Workload path
// keys on the Workload itself in Run and calls runScenario directly, so one
// trial is never cached under two keys.)
func (r *Runner) RunScenario(sw ScenarioWorkload) (ScenarioResult, error) {
	// As in Run: canonicalize the spec once and let a keyed store carry
	// the derived content key from the lookup into the write-through.
	// Phase spans are recorded at this level only (runScenario is also
	// Run's engine, which would double-count the simulate span).
	t0 := r.Obs.Start(obs.PhasePrepare)
	ks, ps := r.keyedStore(func() ([]byte, error) { return ScenarioSpecBytes(sw) })
	r.Obs.End(obs.PhasePrepare, t0)
	if r.Store != nil {
		var sres ScenarioResult
		var ok bool
		t0 = r.Obs.Start(obs.PhaseLookup)
		if ks != nil {
			sres, ok = ks.LookupScenarioSpec(ps)
		} else {
			sres, ok = r.Store.LookupScenario(sw)
		}
		r.Obs.End(obs.PhaseLookup, t0)
		if ok && !staleTail(sw.RecordLatency || sw.RecordTail, sres.Tail) &&
			!staleTimeline(sw.RecordTimeline, sres.Timeline) {
			r.Obs.Warm()
			return sres, nil
		}
	}
	t0 = r.Obs.Start(obs.PhaseSimulate)
	sres, err := r.runScenario(sw)
	r.Obs.End(obs.PhaseSimulate, t0)
	if err != nil {
		return ScenarioResult{}, err
	}
	if r.Store != nil {
		t0 = r.Obs.Start(obs.PhaseStore)
		if ks != nil {
			err = ks.StoreScenarioSpec(ps, sres)
		} else {
			err = r.Store.StoreScenario(sw, sres)
		}
		r.Obs.End(obs.PhaseStore, t0)
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("bench: storing scenario result: %w", err)
		}
	}
	return sres, nil
}

// runScenario is the uncached scenario engine behind RunScenario.
func (r *Runner) runScenario(sw ScenarioWorkload) (ScenarioResult, error) {
	if err := validateScenarioWorkload(&sw); err != nil {
		return ScenarioResult{}, err
	}
	plan, err := compileScenario(sw)
	if err != nil {
		return ScenarioResult{}, err
	}
	cfg := sim.Config{
		Cores: sw.Threads,
		Seed:  sw.Seed,
		Check: sw.Check,
		Slack: sw.Slack,
	}
	if sw.Cache.Cores != 0 {
		if sw.Cache.Cores != sw.Threads {
			return ScenarioResult{}, fmt.Errorf("bench: cache params cores %d != threads %d", sw.Cache.Cores, sw.Threads)
		}
		if err := sw.Cache.Check(); err != nil {
			return ScenarioResult{}, err
		}
		cfg.Cache = sw.Cache
	}
	m := r.acquire(cfg)

	// wv is the binding rephrased as a Workload for the shared build and
	// prefill paths (and for Result.W, so Result.String and downstream
	// reporting keep working; the per-phase fields stay zero).
	wv := Workload{
		DS: sw.DS, Scheme: sw.Scheme,
		Threads: sw.Threads, KeyRange: sw.KeyRange, Buckets: sw.Buckets,
		Seed: sw.Seed, Check: sw.Check,
		SMR: sw.SMR, Cache: sw.Cache, Slack: sw.Slack,
		Dist: sw.Dist, FootprintEvery: sw.FootprintEvery,
		RecordLatency: sw.RecordLatency, RecordTail: sw.RecordTail,
		RecordTimeline: sw.RecordTimeline, TimelineWindow: sw.TimelineWindow,
	}
	b, err := build(m, wv)
	if err != nil {
		return ScenarioResult{}, err
	}

	sres := ScenarioResult{ScenarioName: sw.Scenario.Name}
	sres.W = wv
	sres.PrefillSize = prefill(m, wv, b)
	sres.Prefill = PhaseSegment{
		Name:      "prefill",
		Ops:       uint64(sres.PrefillSize),
		Cycles:    m.MaxClock(),
		Retries:   b.retries(),
		Cache:     m.Hier.Stats(),
		LiveNodes: m.Space.Stats().NodeLive(),
	}
	m.ResetClocks()

	// Attach the event sink only now — after build and prefill, with the
	// clocks reset — so trace timestamps live on the measured run's cycle
	// axis (the same axis the timeline and tail recorders use), and detach
	// it before the machine returns to the Runner's cache, error or not.
	if r.Trace != nil {
		r.Trace.BeginTrial(fmt.Sprintf("%s %s/%s t=%d seed=%d",
			sw.Scenario.Name, sw.DS, sw.Scheme, sw.Threads, sw.Seed))
		m.SetTrace(r.Trace)
		defer m.SetTrace(nil)
	}

	// Per-thread RNG streams. The prefill consumed machine spawn index 0,
	// so the measured threads run under spawn indices 1..Threads — the
	// seeding the stationary engine has always had (pinned by the goldens).
	rngs := make([]*sim.RNG, sw.Threads)
	for i := range rngs {
		rngs[i] = sim.ThreadRNG(sw.Seed, 1+i)
	}

	totalOps := 0 // serialized by the simulator: safe plain counter
	sample := func() {
		if sw.FootprintEvery > 0 && totalOps%sw.FootprintEvery == 0 {
			sres.Footprint = append(sres.Footprint, FootprintSample{
				AfterOps: totalOps,
				Live:     m.Space.Stats().NodeLive(),
			})
		}
	}

	var allLats []uint64
	// Per-thread tail recorders, reused across phases (Reset keeps the
	// bucket allocations): recording is O(buckets) memory for the whole
	// trial, while the exact-sort slices (RecordLatency only — a
	// RecordTail-only run never allocates them) are O(ops).
	var tails []latency.Tail
	var trialTail *latency.Tail
	if sw.RecordLatency || sw.RecordTail {
		tails = make([]latency.Tail, sw.Threads)
		trialTail = &latency.Tail{}
	}
	// Per-thread timeline recorders, reused across phases exactly like the
	// tail recorders: O(windows) memory however long the trial runs.
	var tlines []trace.Timeline
	var trialTline *trace.Timeline
	if sw.RecordTimeline {
		win := trace.ResolveWindow(sw.TimelineWindow)
		tlines = make([]trace.Timeline, sw.Threads)
		for i := range tlines {
			tlines[i].Window = win
		}
		trialTline = &trace.Timeline{Window: win}
	}
	baseOps := 0
	baseClock := uint64(0)
	baseRetries := sres.Prefill.Retries
	baseCache := sres.Prefill.Cache
	for pi := range plan.progs {
		var lats [][]uint64
		if sw.RecordLatency {
			lats = make([][]uint64, sw.Threads)
			for i := range lats {
				// Ops-bounded phases know their sample count up front; the
				// hot loop must not grow the slice.
				lats[i] = make([]uint64, 0, plan.progs[pi][plan.roleOf[i]].ops)
			}
		}
		for i := 0; i < sw.Threads; i++ {
			prog := &plan.progs[pi][plan.roleOf[i]]
			rng := rngs[i]
			var lat *[]uint64
			var tail *latency.Tail
			var tline *trace.Timeline
			if lats != nil {
				lat = &lats[i]
			}
			if tails != nil {
				tail = &tails[i]
			}
			if tlines != nil {
				tline = &tlines[i]
			}
			m.Spawn(func(c *sim.Ctx) {
				runSegment(c, b, prog, rng, lat, tail, tline, &totalOps, sample)
			})
		}
		m.Run()

		endClock := m.MaxClock()
		endRetries := b.retries()
		endCache := m.Hier.Stats()
		seg := PhaseSegment{
			Name:      plan.progs[pi][0].name,
			Ops:       uint64(totalOps - baseOps),
			Cycles:    endClock - baseClock,
			Retries:   endRetries - baseRetries,
			Cache:     subCacheStats(endCache, baseCache),
			LiveNodes: m.Space.Stats().NodeLive(),
		}
		if seg.Cycles > 0 {
			seg.Throughput = float64(seg.Ops) / (float64(seg.Cycles) / 1e6)
		}
		if lats != nil {
			var phaseAll []uint64
			for _, l := range lats {
				phaseAll = append(phaseAll, l...)
			}
			seg.Latency = computeLatency(phaseAll)
			allLats = append(allLats, phaseAll...)
		}
		if tails != nil {
			// Merge the per-thread recorders (in thread order, so merges are
			// deterministic) into this phase's tail, fold that into the
			// trial tail, and reset the recorders for the next phase.
			seg.Tail = &latency.Tail{}
			for i := range tails {
				seg.Tail.Merge(&tails[i])
				tails[i].Reset()
			}
			trialTail.Merge(seg.Tail)
		}
		if tlines != nil {
			// Same shape for the timelines: thread-order merge into the
			// phase series, fold into the trial series, reset for reuse.
			seg.Timeline = &trace.Timeline{Window: trialTline.Window}
			for i := range tlines {
				seg.Timeline.Merge(&tlines[i])
				tlines[i].Reset()
			}
			trialTline.Merge(seg.Timeline)
		}
		if r.Trace != nil {
			r.Trace.Phase(plan.progs[pi][0].name, baseClock, endClock)
		}
		sres.Phases = append(sres.Phases, seg)
		baseOps, baseClock, baseRetries, baseCache = totalOps, endClock, endRetries, endCache
	}

	if sw.RecordLatency {
		sres.Latency = computeLatency(allLats)
	}
	sres.Tail = trialTail      // nil unless tail recording was on
	sres.Timeline = trialTline // nil unless timeline recording was on
	sres.Ops = uint64(totalOps)
	sres.Cycles = m.MaxClock()
	if sres.Cycles > 0 {
		sres.Throughput = float64(sres.Ops) / (float64(sres.Cycles) / 1e6)
	}
	sres.Retries = b.retries()
	sres.Cache = m.Hier.Stats()
	sres.CA = m.Ext.Stats()
	if b.rec != nil {
		sres.SMR = b.rec.Stats()
	}
	sres.Mem = m.Space.Stats()
	return sres, nil
}

// RunScenario executes one scenario trial on a fresh machine.
func RunScenario(sw ScenarioWorkload) (ScenarioResult, error) {
	var r Runner
	return r.RunScenario(sw)
}

// runSegment is one thread's execution of one phase: think, op, account —
// the same charge-and-draw sequence per op the stationary engine made, with
// the phase program supplying thresholds, keys, and think time. Recording
// (the exact-sort slice and the tail histograms) is host-side bookkeeping
// between simulated operations: it charges no cycles, so recorded and
// unrecorded runs are bit-for-bit identical in simulated behavior.
func runSegment(c *sim.Ctx, b built, prog *segProg, rng *sim.RNG, lat *[]uint64, tail *latency.Tail, tline *trace.Timeline, totalOps *int, sample func()) {
	if prog.ops > 0 {
		span := float64(prog.ops)
		for j := 0; j < prog.ops; j++ {
			c.Work(prog.work(j, float64(j)/span))
			measuredOp(c, b, prog, rng, lat, tail, tline)
			*totalOps++
			sample()
		}
		return
	}
	phaseStart := c.Clock()
	span := float64(prog.cycles)
	for j := 0; ; j++ {
		elapsed := c.Clock() - phaseStart
		if elapsed >= prog.cycles {
			return
		}
		c.Work(prog.work(j, float64(elapsed)/span))
		measuredOp(c, b, prog, rng, lat, tail, tline)
		*totalOps++
		sample()
	}
}

// measuredOp executes one operation, recording its latency sample (exact
// slice) and its tail classification (kind × attribution histograms) when
// recording is on. Attribution deltas the executing thread's own
// pause-cycle and retry counters (sim.Ctx.PauseCycles/RetryCount — the
// shared per-structure Retries total would blame this op for any
// concurrent thread's restart) around the op: an op that absorbed a
// reclamation scan is tagged reclaim (and the pause span itself is
// recorded), else an op that restarted at least once is tagged retry, else
// useful — so the attribution counts partition the op count exactly, like
// the kind counts do.
func measuredOp(c *sim.Ctx, b built, prog *segProg, rng *sim.RNG, lat *[]uint64, tail *latency.Tail, tline *trace.Timeline) {
	sink := c.Trace()
	record := tail != nil || tline != nil || sink != nil
	var pause0, retries0 uint64
	if record {
		pause0, retries0 = c.PauseCycles(), c.RetryCount()
	}
	start := c.Clock()
	kind := progOp(c, b, prog, rng)
	if lat != nil {
		*lat = append(*lat, c.Clock()-start)
	}
	if record {
		end := c.Clock()
		dp := c.PauseCycles() - pause0
		dr := c.RetryCount() - retries0
		attr := latency.AttrUseful
		if dp != 0 {
			attr = latency.AttrReclaim
		} else if dr != 0 {
			attr = latency.AttrRetry
		}
		if tail != nil {
			if dp != 0 {
				tail.RecordPause(dp)
			}
			tail.Record(kind, attr, end-start)
		}
		if tline != nil {
			tline.RecordOp(end, kind, dr, dp)
		}
		sink.Op(c.ThreadID(), kind, attr, start, end)
	}
}

// progOp draws and executes one operation under a phase program, returning
// the op's kind tag for the tail recorder. The weight thresholds generalize
// the historical UpdatePct/2 split: lowering a Workload yields insLim=U/2,
// delLim=U, total=100 — the identical draw and dispatch. For sets the ops
// are insert/delete/contains; for the stack push/pop/peek; for the queue
// enqueue/dequeue/peek (or the historical dequeue+enqueue pair when the
// program says so).
func progOp(c *sim.Ctx, b built, prog *segProg, rng *sim.RNG) latency.Kind {
	p := rng.Uint64n(prog.total)
	key := prog.gen.Next(rng)
	if prog.keyOffset != 0 {
		// Rotate the drawn key within the phase window so a skewed
		// distribution's hot set lands elsewhere (shifting hotspot).
		key = (key-1+prog.keyOffset)%prog.keyRange + 1
	}
	switch {
	case b.set != nil:
		switch {
		case p < prog.insLim:
			b.set.Insert(c, key)
			return latency.KindInsert
		case p < prog.delLim:
			b.set.Delete(c, key)
			return latency.KindDelete
		default:
			b.set.Contains(c, key)
			return latency.KindRead
		}
	case b.stk != nil:
		switch {
		case p < prog.insLim:
			b.stk.Push(c, key)
			return latency.KindInsert
		case p < prog.delLim:
			b.stk.Pop(c)
			return latency.KindDelete
		default:
			b.stk.Peek(c)
			return latency.KindRead
		}
	default:
		switch {
		case p < prog.insLim:
			b.que.Enqueue(c, key)
			return latency.KindInsert
		case p < prog.delLim:
			b.que.Dequeue(c)
			return latency.KindDelete
		default:
			if prog.queuePair {
				// The historical "read": a dequeue+enqueue pair keeping the
				// size stable. Reachable only through the Workload lowering,
				// where the goldens pin it.
				if v, ok := b.que.Dequeue(c); ok {
					b.que.Enqueue(c, v)
				}
			} else {
				b.que.Peek(c)
			}
			return latency.KindRead
		}
	}
}

// MeasuredCache returns the cache-event deltas of the measured run alone —
// the trial totals minus the prefill segment's share, i.e. the quantity the
// per-phase segments sum to.
func (r ScenarioResult) MeasuredCache() cache.Stats {
	return subCacheStats(r.Cache, r.Prefill.Cache)
}

// subCacheStats returns the componentwise difference a-b of two cumulative
// cache counters.
func subCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		L1Hits:        a.L1Hits - b.L1Hits,
		L1Misses:      a.L1Misses - b.L1Misses,
		L2Hits:        a.L2Hits - b.L2Hits,
		L2Misses:      a.L2Misses - b.L2Misses,
		Invalidations: a.Invalidations - b.Invalidations,
		RemoteFwds:    a.RemoteFwds - b.RemoteFwds,
		Upgrades:      a.Upgrades - b.Upgrades,
		L1Evictions:   a.L1Evictions - b.L1Evictions,
		BackInvals:    a.BackInvals - b.BackInvals,
	}
}
