package bench

import (
	"fmt"
	"testing"

	"condaccess/internal/cache"
	"condaccess/internal/scenario"
)

// scenarioBinding is the canonical small binding the scenario tests run
// presets under.
func scenarioBinding(ds, scheme string, sc scenario.Scenario) ScenarioWorkload {
	return ScenarioWorkload{
		DS: ds, Scheme: scheme,
		Threads: 8, KeyRange: 256, Buckets: 32,
		Seed: 42, Check: true,
		RecordLatency: true, FootprintEvery: 500,
		Scenario: sc,
	}
}

func addCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		L1Hits:        a.L1Hits + b.L1Hits,
		L1Misses:      a.L1Misses + b.L1Misses,
		L2Hits:        a.L2Hits + b.L2Hits,
		L2Misses:      a.L2Misses + b.L2Misses,
		Invalidations: a.Invalidations + b.Invalidations,
		RemoteFwds:    a.RemoteFwds + b.RemoteFwds,
		Upgrades:      a.Upgrades + b.Upgrades,
		L1Evictions:   a.L1Evictions + b.L1Evictions,
		BackInvals:    a.BackInvals + b.BackInvals,
	}
}

// TestScenarioSegmentsSumToTotals is the phase-boundary accounting
// invariant: phases partition the measured run, so segment ops, cycle
// windows, retries, and cache-event deltas must reassemble the trial
// totals exactly (retries and cache on top of the prefill segment, whose
// activity legacy totals have always included).
func TestScenarioSegmentsSumToTotals(t *testing.T) {
	for name, sc := range scenario.Presets() {
		for _, scheme := range []string{"ca", "rcu"} {
			t.Run(name+"/"+scheme, func(t *testing.T) {
				res, err := RunScenario(scenarioBinding("list", scheme, sc))
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Phases) != len(sc.Phases) {
					t.Fatalf("%d segments for %d phases", len(res.Phases), len(sc.Phases))
				}
				var ops, cycles uint64
				retries := res.Prefill.Retries
				cacheSum := res.Prefill.Cache
				for _, seg := range res.Phases {
					ops += seg.Ops
					cycles += seg.Cycles
					retries += seg.Retries
					cacheSum = addCacheStats(cacheSum, seg.Cache)
				}
				if ops != res.Ops {
					t.Errorf("segment ops sum %d != total %d", ops, res.Ops)
				}
				if cycles != res.Cycles {
					t.Errorf("segment cycle sum %d != total %d", cycles, res.Cycles)
				}
				if retries != res.Retries {
					t.Errorf("prefill+segment retries %d != total %d", retries, res.Retries)
				}
				if cacheSum != res.Cache {
					t.Errorf("prefill+segment cache deltas %+v != total %+v", cacheSum, res.Cache)
				}
				if got := addCacheStats(res.Prefill.Cache, res.MeasuredCache()); got != res.Cache {
					t.Errorf("MeasuredCache + prefill %+v != total %+v", got, res.Cache)
				}
				last := res.Phases[len(res.Phases)-1]
				if last.LiveNodes != res.Mem.NodeLive() {
					t.Errorf("last segment live %d != final live %d", last.LiveNodes, res.Mem.NodeLive())
				}
				if res.Latency.Samples != int(res.Ops) {
					t.Errorf("latency samples %d != ops %d", res.Latency.Samples, res.Ops)
				}
				for _, seg := range res.Phases {
					if seg.Latency.Samples != int(seg.Ops) {
						t.Errorf("%s: phase latency samples %d != phase ops %d", seg.Name, seg.Latency.Samples, seg.Ops)
					}
				}
			})
		}
	}
}

// TestScenarioDeterminism: the same binding must reproduce the identical
// full result, phases included.
func TestScenarioDeterminism(t *testing.T) {
	sc, err := scenario.Preset(scenario.PresetReadBurst)
	if err != nil {
		t.Fatal(err)
	}
	sw := scenarioBinding("bst", "hp", sc)
	a, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("nondeterministic scenario result:\n%+v\n%+v", a, b)
	}
}

// TestScenarioRoles: a reader-only role population must not allocate or
// free a single node after the prefill.
func TestScenarioRoles(t *testing.T) {
	sw := scenarioBinding("list", "ca", scenario.Scenario{
		Name: "readers",
		Roles: []scenario.Role{
			{Name: "reader", Count: 0, Weights: &scenario.Weights{Read: 1}},
		},
		Phases: []scenario.Phase{
			{Name: "p1", Ops: 200, Weights: scenario.Weights{Insert: 50, Delete: 50}},
			{Name: "p2", Ops: 200, Weights: scenario.Weights{Insert: 50, Delete: 50}},
		},
	})
	res, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 8*400 {
		t.Fatalf("ops = %d, want %d", res.Ops, 8*400)
	}
	// The role table overrides the write-heavy phase mix for every thread.
	for _, seg := range res.Phases {
		if seg.LiveNodes != res.Prefill.LiveNodes {
			t.Errorf("%s: readers changed the live set: %d -> %d", seg.Name, res.Prefill.LiveNodes, seg.LiveNodes)
		}
	}
	if res.Mem.NodeAllocs != res.Prefill.LiveNodes {
		t.Errorf("readers allocated: %d allocs for %d prefill nodes", res.Mem.NodeAllocs, res.Prefill.LiveNodes)
	}
}

// TestScenarioMixedRolePartition: fixed-count roles plus a catch-all split
// the population in declaration order; a wrong-sized role table is
// rejected.
func TestScenarioMixedRolePartition(t *testing.T) {
	sc, err := scenario.Preset(scenario.PresetMixedRole)
	if err != nil {
		t.Fatal(err)
	}
	sw := scenarioBinding("hash", "ibr", sc)
	if _, err := RunScenario(sw); err != nil {
		t.Fatal(err)
	}

	sw.Threads = 2 // fewer than the fixed role counts (2 writers + 1 churner)
	if _, err := RunScenario(sw); err == nil {
		t.Error("role table larger than thread count accepted")
	}

	sw.Threads = 3 // fixed counts fit, but the catch-all readers would get 0
	if _, err := RunScenario(sw); err == nil {
		t.Error("catch-all role with zero threads accepted")
	}

	noCatchAll := scenario.Scenario{
		Name:   "exact",
		Roles:  []scenario.Role{{Name: "w", Count: 3, Weights: &scenario.Weights{Insert: 1, Delete: 1}}},
		Phases: []scenario.Phase{{Name: "p", Ops: 50, Weights: scenario.Weights{Read: 1}}},
	}
	sw = scenarioBinding("list", "ca", noCatchAll)
	sw.Threads = 3
	if _, err := RunScenario(sw); err != nil {
		t.Errorf("exact role table rejected: %v", err)
	}
	sw.Threads = 4
	if _, err := RunScenario(sw); err == nil {
		t.Error("role table smaller than thread count (no catch-all) accepted")
	}
}

// TestScenarioCycleBoundedPhase: a cycle-duration phase runs each thread
// until its clock advances past the budget, and the accounting invariants
// hold without a fixed op count.
func TestScenarioCycleBoundedPhase(t *testing.T) {
	const budget = 40000
	sw := scenarioBinding("list", "ca", scenario.Scenario{
		Name: "windowed",
		Phases: []scenario.Phase{
			{Name: "warm", Ops: 100, Weights: scenario.Weights{Insert: 25, Delete: 25, Read: 50}},
			{Name: "window", Cycles: budget, Weights: scenario.Weights{Insert: 25, Delete: 25, Read: 50}},
		},
	})
	res, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	win := res.Phases[1]
	if win.Ops == 0 {
		t.Fatal("cycle-bounded phase ran no ops")
	}
	if win.Cycles < budget {
		t.Errorf("window %d cycles, budget %d", win.Cycles, budget)
	}
	// Every thread stops soon after its budget elapses, so the wall window
	// cannot be a large multiple of it.
	if win.Cycles > 3*budget {
		t.Errorf("window %d cycles for a %d budget — runaway phase", win.Cycles, budget)
	}
	if res.Ops != uint64(8*100)+win.Ops {
		t.Errorf("ops %d != warm %d + window %d", res.Ops, 8*100, win.Ops)
	}
}

// TestScenarioIntensityProfiles: lower think time must yield more ops per
// cycle. Two single-phase scenarios differing only in constant work, and a
// ramp whose second half is faster than its first.
func TestScenarioIntensityProfiles(t *testing.T) {
	one := func(p scenario.Profile) PhaseSegment {
		t.Helper()
		sw := scenarioBinding("list", "ca", scenario.Scenario{
			Name: "prof",
			Phases: []scenario.Phase{
				{Name: "p", Ops: 400, Weights: scenario.Weights{Insert: 10, Delete: 10, Read: 80}, Profile: p},
			},
		})
		res, err := RunScenario(sw)
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases[0]
	}
	slow := one(scenario.Profile{Kind: scenario.ProfileConstant, Work: 200})
	fast := one(scenario.Profile{Kind: scenario.ProfileConstant, Work: 5})
	if fast.Throughput <= slow.Throughput {
		t.Errorf("think time 5 (%.1f ops/Mcyc) not faster than 200 (%.1f)", fast.Throughput, slow.Throughput)
	}

	ramp := one(scenario.Profile{Kind: scenario.ProfileRamp, From: 200, To: 5})
	if ramp.Throughput <= slow.Throughput || ramp.Throughput >= fast.Throughput {
		t.Errorf("ramp throughput %.1f not between constant endpoints %.1f and %.1f",
			ramp.Throughput, slow.Throughput, fast.Throughput)
	}

	burst := one(scenario.Profile{Kind: scenario.ProfileBurst, Period: 40, Len: 20, Work: 200, BurstWork: 5})
	if burst.Throughput <= slow.Throughput || burst.Throughput >= fast.Throughput {
		t.Errorf("burst throughput %.1f not between constant endpoints %.1f and %.1f",
			burst.Throughput, slow.Throughput, fast.Throughput)
	}

	pw := one(scenario.Profile{Kind: scenario.ProfilePiecewise, Steps: []scenario.Step{
		{Ops: 200, Work: 200}, {Ops: 200, Work: 5},
	}})
	if pw.Throughput <= slow.Throughput || pw.Throughput >= fast.Throughput {
		t.Errorf("piecewise throughput %.1f not between constant endpoints %.1f and %.1f",
			pw.Throughput, slow.Throughput, fast.Throughput)
	}
}

// TestScenarioKeyShift: a shifted phase draws keys from a rotated window —
// same count, still in [1, range].
func TestScenarioKeyShift(t *testing.T) {
	sc, err := scenario.Preset(scenario.PresetHotspotShift)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"ca", "he"} {
		res, err := RunScenario(scenarioBinding("bst", scheme, sc))
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops == 0 || res.Throughput <= 0 {
			t.Fatalf("%s: implausible result %+v", scheme, res.Result)
		}
	}
}

// TestScenarioQueuePeek: declarative scenarios use the queue's real Peek
// for the read share (no writes), so a read-only phase cannot change the
// queue's length — unlike the historical dequeue+enqueue pair, which kept
// length stable but wrote on every "read".
func TestScenarioQueuePeek(t *testing.T) {
	sw := scenarioBinding("queue", "ca", scenario.Scenario{
		Name: "peeker",
		Phases: []scenario.Phase{
			{Name: "reads", Ops: 300, Weights: scenario.Weights{Read: 1}},
		},
	})
	res, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.NodeAllocs != uint64(res.PrefillSize)+1 { // +1: the M&S dummy
		t.Errorf("peek allocated: %d allocs for prefill %d", res.Mem.NodeAllocs, res.PrefillSize)
	}
	if live := res.Mem.NodeLive(); live != uint64(res.PrefillSize)+1 {
		t.Errorf("peek changed queue length: live %d, prefill %d", live, res.PrefillSize)
	}
}

// TestScenarioRejectsBadBindings: binding-level validation mirrors the
// Workload checks and surfaces scenario/binding mismatches before any
// simulation work.
func TestScenarioRejectsBadBindings(t *testing.T) {
	sc, err := scenario.Preset(scenario.PresetRampUp)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*ScenarioWorkload){
		"threads":        func(sw *ScenarioWorkload) { sw.Threads = 0 },
		"key range":      func(sw *ScenarioWorkload) { sw.KeyRange = 0 },
		"buckets":        func(sw *ScenarioWorkload) { sw.Buckets = -1 },
		"dist":           func(sw *ScenarioWorkload) { sw.Dist = "pareto" },
		"ds":             func(sw *ScenarioWorkload) { sw.DS = "wat" },
		"scheme":         func(sw *ScenarioWorkload) { sw.Scheme = "wat" },
		"phase dist":     func(sw *ScenarioWorkload) { sw.Scenario.Phases[0].Dist = "pareto" },
		"empty scenario": func(sw *ScenarioWorkload) { sw.Scenario.Phases = nil },
		"cache cores":    func(sw *ScenarioWorkload) { sw.Cache = DefaultCache(4) },
	}
	for name, mutate := range mutations {
		sw := scenarioBinding("list", "ca", sc)
		mutate(&sw)
		if _, err := RunScenario(sw); err == nil {
			t.Errorf("%s: bad binding accepted", name)
		}
	}
}

// TestLoweredScenarioMatchesDirectScenario: running the canonical lowering
// through the public scenario entry point reproduces Run exactly (the
// golden suite separately pins Run against the pre-scenario engine).
func TestLoweredScenarioMatchesDirectScenario(t *testing.T) {
	w := goldenWorkload("queue", "rcu")
	direct, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := RunScenario(lowerWorkload(w))
	if err != nil {
		t.Fatal(err)
	}
	res := sres.Result
	res.W = w
	if goldenSum(direct) != goldenSum(res) {
		t.Fatalf("lowered scenario diverged from Run:\n%+v\n%+v", direct, res)
	}
}
