package bench

import (
	"bytes"
	"sync"
	"testing"
)

func TestEngineTagIsStable(t *testing.T) {
	a, b := EngineTag(), EngineTag()
	if a != b {
		t.Fatalf("engine tag not deterministic: %q vs %q", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("engine tag %q has length %d, want 16", a, len(a))
	}
}

func TestTrialSpecBytesCanonical(t *testing.T) {
	w := goldenWorkload("list", "ca")
	a, err := TrialSpecBytes(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrialSpecBytes(w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same workload serialized differently twice")
	}
	w.Seed++
	c, err := TrialSpecBytes(w)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("seed change invisible in the canonical spec")
	}
}

// TestScenarioSpecCarriesLegacyFlag: the Workload lowering's historical
// queue-read pair changes the executed op stream, so the canonical scenario
// spec must distinguish a lowered workload from the identical declarative
// scenario.
func TestScenarioSpecCarriesLegacyFlag(t *testing.T) {
	lowered := lowerWorkload(goldenWorkload("queue", "ca"))
	if !lowered.Spec().LegacyQueueRead {
		t.Fatal("lowered workload spec lost the legacy queue-read flag")
	}
	declarative := lowered
	declarative.legacyQueueRead = false
	a, err := ScenarioSpecBytes(lowered)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScenarioSpecBytes(declarative)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("legacy flag invisible in the canonical spec: lowered and declarative trials would collide")
	}
}

func TestEffectiveBuckets(t *testing.T) {
	for _, tc := range []struct {
		ds      string
		in, out int
	}{
		{"list", 128, 0}, // inert outside the hash table
		{"list", 0, 0},
		{"bst", 64, 0},
		{"hash", 0, 128}, // unset means the default geometry
		{"hash", 128, 128},
		{"hash", 64, 64},
	} {
		if got := EffectiveBuckets(tc.ds, tc.in); got != tc.out {
			t.Errorf("EffectiveBuckets(%s, %d) = %d, want %d", tc.ds, tc.in, got, tc.out)
		}
	}
}

// memStore is an in-memory TrialStore for harness-side integration tests.
type memStore struct {
	mu        sync.Mutex
	trials    map[string]Result
	scenarios map[string]ScenarioResult
	puts      int
}

func newMemStore() *memStore {
	return &memStore{trials: map[string]Result{}, scenarios: map[string]ScenarioResult{}}
}

func (m *memStore) LookupTrial(w Workload) (Result, bool) {
	spec, _ := TrialSpecBytes(w)
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.trials[string(spec)]
	return res, ok
}

func (m *memStore) StoreTrial(w Workload, res Result) error {
	spec, _ := TrialSpecBytes(w)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trials[string(spec)] = res
	m.puts++
	return nil
}

func (m *memStore) LookupScenario(sw ScenarioWorkload) (ScenarioResult, bool) {
	spec, _ := ScenarioSpecBytes(sw)
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.scenarios[string(spec)]
	return res, ok
}

func (m *memStore) StoreScenario(sw ScenarioWorkload, res ScenarioResult) error {
	spec, _ := ScenarioSpecBytes(sw)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scenarios[string(spec)] = res
	m.puts++
	return nil
}

// keyedMemStore wraps memStore with the KeyedTrialStore fast path,
// instrumented to observe how the Runner drives it: it memoizes a synthetic
// key on the PreparedSpec at lookup and records the key it sees again at
// store time.
type keyedMemStore struct {
	*memStore
	keyedLookups, keyedStores int
	classicCalls              int
	storeSawKey               string
}

func (m *keyedMemStore) LookupTrial(w Workload) (Result, bool) {
	m.classicCalls++
	return m.memStore.LookupTrial(w)
}

func (m *keyedMemStore) StoreTrial(w Workload, res Result) error {
	m.classicCalls++
	return m.memStore.StoreTrial(w, res)
}

func (m *keyedMemStore) LookupTrialSpec(ps *PreparedSpec) (Result, bool) {
	m.keyedLookups++
	if ps.Key == "" {
		ps.Key = "memo:" + string(ps.Spec[:16])
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.trials[string(ps.Spec)]
	return res, ok
}

func (m *keyedMemStore) StoreTrialSpec(ps *PreparedSpec, res Result) error {
	m.keyedStores++
	m.storeSawKey = ps.Key
	m.mu.Lock()
	defer m.mu.Unlock()
	m.trials[string(ps.Spec)] = res
	m.puts++
	return nil
}

func (m *keyedMemStore) LookupScenarioSpec(ps *PreparedSpec) (ScenarioResult, bool) {
	m.keyedLookups++
	if ps.Key == "" {
		ps.Key = "memo:" + string(ps.Spec[:16])
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	res, ok := m.scenarios[string(ps.Spec)]
	return res, ok
}

func (m *keyedMemStore) StoreScenarioSpec(ps *PreparedSpec, res ScenarioResult) error {
	m.keyedStores++
	m.storeSawKey = ps.Key
	m.mu.Lock()
	defer m.mu.Unlock()
	m.scenarios[string(ps.Spec)] = res
	m.puts++
	return nil
}

// TestKeyedFastPathMemoizesAcrossLookupAndStore: a store implementing
// KeyedTrialStore must get the keyed calls — never the classic ones — and
// the key it memoized on the PreparedSpec at lookup must arrive intact at
// the write-through, on both the stationary and scenario paths.
func TestKeyedFastPathMemoizesAcrossLookupAndStore(t *testing.T) {
	st := &keyedMemStore{memStore: newMemStore()}
	r := Runner{Store: st}
	if _, err := r.Run(goldenWorkload("list", "ca")); err != nil {
		t.Fatal(err)
	}
	if st.classicCalls != 0 {
		t.Fatalf("keyed store received %d classic TrialStore calls", st.classicCalls)
	}
	if st.keyedLookups != 1 || st.keyedStores != 1 {
		t.Fatalf("keyed traffic %d lookups / %d stores, want 1/1", st.keyedLookups, st.keyedStores)
	}
	if st.storeSawKey == "" || !bytes.HasPrefix([]byte(st.storeSawKey), []byte("memo:")) {
		t.Fatalf("write-through saw key %q; the lookup's memo was lost", st.storeSawKey)
	}

	// Warm re-run: pure keyed lookup, no store, no re-memoization surprises.
	if _, err := r.Run(goldenWorkload("list", "ca")); err != nil {
		t.Fatal(err)
	}
	if st.keyedLookups != 2 || st.keyedStores != 1 {
		t.Fatalf("warm keyed traffic %d lookups / %d stores, want 2/1", st.keyedLookups, st.keyedStores)
	}

	// Scenario path mirrors the stationary one.
	st.storeSawKey = ""
	if _, err := r.RunScenario(lowerWorkload(goldenWorkload("queue", "ca"))); err != nil {
		t.Fatal(err)
	}
	if st.classicCalls != 0 {
		t.Fatalf("scenario path fell back to classic calls (%d)", st.classicCalls)
	}
	if st.storeSawKey == "" {
		t.Fatal("scenario write-through lost the lookup's key memo")
	}
}

// TestRunDoesNotDoubleCache: the stationary path keys on the Workload alone;
// it must not also record the lowered scenario under a second key.
func TestRunDoesNotDoubleCache(t *testing.T) {
	st := newMemStore()
	r := Runner{Store: st}
	if _, err := r.Run(goldenWorkload("list", "ca")); err != nil {
		t.Fatal(err)
	}
	if st.puts != 1 || len(st.trials) != 1 || len(st.scenarios) != 0 {
		t.Fatalf("one trial produced %d puts (%d trial / %d scenario entries), want exactly 1 trial entry",
			st.puts, len(st.trials), len(st.scenarios))
	}
}

// TestSweepStoreHitSkipsSimulation: a poisoned store entry must be returned
// verbatim — proof the simulator never ran for a warm cell.
func TestSweepStoreHitSkipsSimulation(t *testing.T) {
	st := newMemStore()
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{50},
		KeyRange: 32, Ops: 40, Seed: 1, Store: st,
	}
	cold, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Poison the cached result; a warm sweep must return the poison.
	w := trialWorkload(cfg, pointSpec{Scheme: "ca", Threads: 2, UpdatePct: 50}, 0)
	poisoned, _ := st.LookupTrial(w)
	poisoned.Throughput = 123456789
	if err := st.StoreTrial(w, poisoned); err != nil {
		t.Fatal(err)
	}
	warm, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].Throughput != 123456789 {
		t.Fatalf("warm sweep re-simulated instead of serving the store: throughput %v (cold %v)",
			warm[0].Throughput, cold[0].Throughput)
	}
}
