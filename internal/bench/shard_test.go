package bench

import (
	"reflect"
	"testing"
)

func shardCfg() SweepConfig {
	return SweepConfig{
		DS: "list", Schemes: []string{"ca", "lock"}, Threads: []int{1, 2, 4},
		Updates: []int{10, 100}, KeyRange: 64, Ops: 30, Seed: 5, Trials: 3,
	}
}

// flatJobs reproduces the canonical job order by sharding 1-of-1.
func flatJobs(t *testing.T, cfg SweepConfig) []Workload {
	t.Helper()
	ws, err := ShardWorkloads(cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// TestShardWorkloadsPartition: every job lands in exactly one shard, and
// interleaving the shards by job index reproduces the canonical flat order.
func TestShardWorkloadsPartition(t *testing.T) {
	cfg := shardCfg()
	all := flatJobs(t, cfg)
	want := len(cfg.Schemes) * len(cfg.Threads) * len(cfg.Updates) * cfg.Trials
	if len(all) != want {
		t.Fatalf("flat job list has %d entries, want %d", len(all), want)
	}
	for _, of := range []int{2, 3, 5, len(all), len(all) + 7} {
		shards := make([][]Workload, of)
		total := 0
		for i := range shards {
			ws, err := ShardWorkloads(cfg, i, of)
			if err != nil {
				t.Fatal(err)
			}
			shards[i] = ws
			total += len(ws)
		}
		if total != len(all) {
			t.Fatalf("of=%d: shards hold %d jobs total, want %d", of, total, len(all))
		}
		// Re-interleave: job j came from shard j%of, position j/of.
		for j, w := range all {
			got := shards[j%of][j/of]
			if !reflect.DeepEqual(got, w) {
				t.Fatalf("of=%d job %d: shard copy %+v differs from flat order %+v", of, j, got, w)
			}
		}
	}
}

// TestShardWorkloadsMatchSweepOrder: the flat job list is exactly the
// (point, trial) order the sweep paths execute — update rate outermost, then
// scheme, then threads, trials innermost, with the sweep's seed derivation.
func TestShardWorkloadsMatchSweepOrder(t *testing.T) {
	cfg := shardCfg()
	all := flatJobs(t, cfg)
	i := 0
	for _, u := range cfg.Updates {
		for _, scheme := range cfg.Schemes {
			for _, th := range cfg.Threads {
				for trial := 0; trial < cfg.Trials; trial++ {
					w := all[i]
					if w.Scheme != scheme || w.Threads != th || w.UpdatePct != u {
						t.Fatalf("job %d is %s t=%d u=%d, want %s t=%d u=%d",
							i, w.Scheme, w.Threads, w.UpdatePct, scheme, th, u)
					}
					if wantSeed := cfg.Seed + uint64(trial)*1000003; w.Seed != wantSeed {
						t.Fatalf("job %d seed %d, want %d", i, w.Seed, wantSeed)
					}
					i++
				}
			}
		}
	}
}

// TestShardWorkloadsValidation: malformed configs and out-of-range shard
// coordinates are rejected up front.
func TestShardWorkloadsValidation(t *testing.T) {
	cfg := shardCfg()
	for _, tc := range []struct{ shard, of int }{{0, 0}, {-1, 2}, {2, 2}, {5, 2}} {
		if _, err := ShardWorkloads(cfg, tc.shard, tc.of); err == nil {
			t.Errorf("shard %d/%d accepted", tc.shard, tc.of)
		}
	}
	bad := cfg
	bad.Schemes = nil
	if _, err := ShardWorkloads(bad, 0, 2); err == nil {
		t.Error("config without schemes accepted")
	}
	bad = cfg
	bad.Trials = -1
	if _, err := ShardWorkloads(bad, 0, 2); err == nil {
		t.Error("negative trials accepted")
	}
}
