package bench

import (
	"testing"

	"condaccess/internal/scenario"
)

// The engine-level cross-scheme differential suite: random scenarios
// (scenario.Random — random phases, weights, roles, distributions,
// profiles) run through the full RunScenario pipeline under every
// reclamation scheme, with the safety checker on. The op stream is drawn
// from per-thread RNGs that do not depend on the scheme, so a long list of
// quantities must agree exactly across schemes — prefill size, op counts
// per phase, and the per-kind op mix — while each scheme's own result must
// satisfy the accounting invariants (phase segments partition the trial,
// tail partitions match op counts). Any disagreement is a structure,
// reclamation, or accounting bug, caught without an oracle: the
// implementations check each other. Structure-level final-state equality is
// covered by the companion suite in internal/ds.

// diffSchemes is the full scheme matrix: conditional access plus every
// reclamation baseline.
func diffSchemes() []string { return Schemes() }

// runDifferentialScenario executes one random scenario under every scheme
// on ds and cross-checks the results. Returns the per-scheme results for
// further checks.
func runDifferentialScenario(t *testing.T, ds string, seed uint64) {
	t.Helper()
	sc := scenario.Random(seed)
	wantOps, ok := sc.TotalOpsHint()
	if !ok {
		t.Fatalf("seed %d: random scenario not ops-bounded", seed)
	}
	const threads = 3
	var runner Runner
	var ref ScenarioResult
	for i, scheme := range diffSchemes() {
		sw := ScenarioWorkload{
			DS: ds, Scheme: scheme,
			Threads: threads, KeyRange: 96,
			Seed: seed, Check: true,
			RecordLatency: true,
			Scenario:      sc,
		}
		res, err := runner.RunScenario(sw)
		if err != nil {
			t.Fatalf("seed %d %s/%s: %v", seed, ds, scheme, err)
		}

		// Per-scheme invariants: phases partition the trial exactly.
		if res.Ops != uint64(threads*wantOps) {
			t.Errorf("seed %d %s/%s: %d ops, want %d", seed, ds, scheme, res.Ops, threads*wantOps)
		}
		var sumOps, sumCycles, sumRetries uint64
		for _, seg := range res.Phases {
			sumOps += seg.Ops
			sumCycles += seg.Cycles
			sumRetries += seg.Retries
		}
		if sumOps != res.Ops {
			t.Errorf("seed %d %s/%s: phase ops sum %d != total %d", seed, ds, scheme, sumOps, res.Ops)
		}
		if sumCycles != res.Cycles {
			t.Errorf("seed %d %s/%s: phase cycles sum %d != total %d", seed, ds, scheme, sumCycles, res.Cycles)
		}
		if sumRetries != res.Retries-res.Prefill.Retries {
			t.Errorf("seed %d %s/%s: phase retries sum %d != measured total %d",
				seed, ds, scheme, sumRetries, res.Retries-res.Prefill.Retries)
		}
		requireTailConsistent(t, "seed "+res.ScenarioName+" "+ds+"/"+scheme, res.Tail, res.Latency, res.Ops)

		if i == 0 {
			ref = res
			continue
		}
		// Cross-scheme agreements: everything the scheme cannot legally
		// influence.
		refScheme := diffSchemes()[0]
		if res.PrefillSize != ref.PrefillSize {
			t.Errorf("seed %d %s: prefill %d under %s vs %d under %s",
				seed, ds, res.PrefillSize, scheme, ref.PrefillSize, refScheme)
		}
		if len(res.Phases) != len(ref.Phases) {
			t.Fatalf("seed %d %s: %d phases under %s vs %d under %s",
				seed, ds, len(res.Phases), scheme, len(ref.Phases), refScheme)
		}
		for pi := range res.Phases {
			if res.Phases[pi].Ops != ref.Phases[pi].Ops {
				t.Errorf("seed %d %s phase %d: %d ops under %s vs %d under %s",
					seed, ds, pi, res.Phases[pi].Ops, scheme, ref.Phases[pi].Ops, refScheme)
			}
		}
		// The op mix is drawn from scheme-independent per-thread streams:
		// the kind partition must agree exactly.
		for name, pair := range map[string][2]uint64{
			"insert": {res.Tail.Insert.Count(), ref.Tail.Insert.Count()},
			"delete": {res.Tail.Delete.Count(), ref.Tail.Delete.Count()},
			"read":   {res.Tail.Read.Count(), ref.Tail.Read.Count()},
		} {
			if pair[0] != pair[1] {
				t.Errorf("seed %d %s: %s count %d under %s vs %d under %s — op stream diverged",
					seed, ds, name, pair[0], scheme, pair[1], refScheme)
			}
		}
	}
}

// TestScenarioDifferentialQuick is the seeded quick mode the CI fuzz step
// runs: a fixed spread of random scenarios over the structures that stress
// traversal, rebalancing-free trees, and bucket dispersal.
func TestScenarioDifferentialQuick(t *testing.T) {
	for _, tc := range []struct {
		ds    string
		seeds []uint64
	}{
		{"list", []uint64{1, 2, 3, 4}},
		{"bst", []uint64{5, 6}},
		{"hash", []uint64{7, 8}},
		{"hmlist", []uint64{9, 10}},
	} {
		tc := tc
		t.Run(tc.ds, func(t *testing.T) {
			t.Parallel()
			for _, seed := range tc.seeds {
				runDifferentialScenario(t, tc.ds, seed)
			}
		})
	}
}

// FuzzScenarioDifferential lets the fuzzer drive the generator seed (and
// structure choice) beyond the quick mode's fixed spread.
func FuzzScenarioDifferential(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(42), uint8(1))
	f.Add(uint64(7), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, dsSel uint8) {
		ds := []string{"list", "bst", "hash", "hmlist"}[int(dsSel)%4]
		runDifferentialScenario(t, ds, seed)
	})
}
