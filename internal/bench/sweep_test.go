package bench

import (
	"runtime"
	"strings"
	"testing"
)

// TestSweepErrorPaths covers the ways a sweep configuration can fail, on
// both execution paths: the error must carry the sweep coordinates and no
// points may be returned.
func TestSweepErrorPaths(t *testing.T) {
	base := SweepConfig{
		Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{50},
		KeyRange: 32, Ops: 40, Seed: 1,
	}
	cases := []struct {
		name    string
		mutate  func(*SweepConfig)
		wantSub string
	}{
		{"invalid ds", func(c *SweepConfig) { c.DS = "nosuchds" }, "unknown structure"},
		{"invalid scheme", func(c *SweepConfig) { c.DS = "list"; c.Schemes = []string{"nosuchscheme"} }, "unknown scheme"},
		{"zero threads", func(c *SweepConfig) { c.DS = "list"; c.Threads = []int{0} }, "threads"},
		{"mismatched cache cores", func(c *SweepConfig) {
			c.DS = "list"
			c.Cache = DefaultCache(8) // threads is 2
		}, "cache params cores"},
	}
	for _, tc := range cases {
		tc := tc
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			t.Run(tc.name, func(t *testing.T) {
				cfg := base
				tc.mutate(&cfg)
				cfg.Workers = workers
				points, err := Sweep(cfg, nil)
				if err == nil {
					t.Fatalf("workers=%d: config accepted, want error", workers)
				}
				if points != nil {
					t.Fatalf("workers=%d: got points alongside error", workers)
				}
				if !strings.Contains(err.Error(), tc.wantSub) {
					t.Fatalf("workers=%d: error %q does not mention %q", workers, err, tc.wantSub)
				}
				if !strings.Contains(err.Error(), "sweep ") {
					t.Fatalf("workers=%d: error %q lacks sweep coordinates", workers, err)
				}
			})
		}
	}
}

// TestSweepConfigValidation: structurally malformed sweeps — empty axes
// (which used to return silently empty output), negative trials or workers —
// must be rejected up front with a clear error, before any trial runs.
func TestSweepConfigValidation(t *testing.T) {
	base := SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{50},
		KeyRange: 32, Ops: 40, Seed: 1,
	}
	cases := []struct {
		name    string
		mutate  func(*SweepConfig)
		wantSub string
	}{
		{"negative trials", func(c *SweepConfig) { c.Trials = -1 }, "trials"},
		{"negative workers", func(c *SweepConfig) { c.Workers = -2 }, "workers"},
		{"no schemes", func(c *SweepConfig) { c.Schemes = nil }, "no schemes"},
		{"no threads", func(c *SweepConfig) { c.Threads = nil }, "no thread counts"},
		{"no updates", func(c *SweepConfig) { c.Updates = nil }, "no update rates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			points, err := Sweep(cfg, nil)
			if err == nil {
				t.Fatal("malformed sweep accepted")
			}
			if points != nil {
				t.Fatal("got points alongside error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestSweepZeroTrialsDefaultsToOne: Trials: 0 is the config's zero-value
// default and must behave exactly like Trials: 1 rather than producing no
// points or dividing by zero (negative trial counts are rejected).
func TestSweepZeroTrialsDefaultsToOne(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{1, 2}, Updates: []int{50},
		KeyRange: 32, Ops: 40, Seed: 1,
	}
	zero, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trials = 1
	one, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero) != len(one) || len(zero) != 2 {
		t.Fatalf("point counts: zero-trials %d, one-trial %d, want 2", len(zero), len(one))
	}
	for i := range zero {
		if zero[i].Throughput != one[i].Throughput {
			t.Fatalf("point %d: zero-trials throughput %f != one-trial %f", i, zero[i].Throughput, one[i].Throughput)
		}
	}
}

// TestSweepCacheOverride: a cache geometry whose core count matches the
// swept thread count must be applied, not silently dropped.
func TestSweepCacheOverride(t *testing.T) {
	p := DefaultCache(2)
	p.L1Assoc = 2
	points, err := Sweep(SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{100},
		KeyRange: 32, Ops: 60, Seed: 1, Cache: p,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := points[0].Result.W.Cache.L1Assoc; got != 2 {
		t.Fatalf("cache override not applied: L1Assoc = %d, want 2", got)
	}
}
