package bench

import (
	"fmt"
	"testing"

	"condaccess/internal/trace"
)

// benchTrialWorkload is the paper-default single trial for one structure ×
// scheme cell: 8 threads, 100% updates, 3000 ops/thread, the per-structure
// key ranges cabench defaults to. The bst/ca cell is the repo's headline
// single-trial benchmark (BENCH_simcore.json tracks it).
func benchTrialWorkload(ds, scheme string) Workload {
	kr := uint64(1000)
	if ds == "bst" {
		kr = 10000
	}
	return Workload{
		DS: ds, Scheme: scheme,
		Threads: 8, KeyRange: kr, UpdatePct: 100,
		OpsPerThread: 3000, Buckets: 128,
		Seed: 1,
	}
}

// BenchmarkTrial measures single-trial wall-clock time over the structure ×
// scheme matrix. One iteration is one complete trial: machine construction
// (or reuse), prefill to 50%, and the measured phase. ns/op is host time per
// simulated trial — the quantity the execution-core refactors optimize.
func BenchmarkTrial(b *testing.B) {
	for _, ds := range Structures() {
		for _, scheme := range []string{"ca", "rcu", "hp"} {
			b.Run(fmt.Sprintf("%s/%s", ds, scheme), func(b *testing.B) {
				w := benchTrialWorkload(ds, scheme)
				var r Runner // machine reuse across iterations, as in a sweep
				for i := 0; i < b.N; i++ {
					if _, err := r.Run(w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTrialTraced is BenchmarkTrial's A/B guard for the tracing and
// timeline hooks: the same headline cells with a live event sink and
// timeline recording. Comparing against BenchmarkTrial bounds what tracing
// costs when it is on; the off path's cost (a nil check per hook) is what
// keeps the two BenchmarkTrial numbers themselves stable across this
// feature's introduction.
func BenchmarkTrialTraced(b *testing.B) {
	for _, ds := range []string{"list", "bst"} {
		for _, scheme := range []string{"ca", "rcu"} {
			b.Run(fmt.Sprintf("%s/%s", ds, scheme), func(b *testing.B) {
				w := benchTrialWorkload(ds, scheme)
				w.RecordTimeline = true
				r := Runner{Trace: &trace.Sink{}}
				for i := 0; i < b.N; i++ {
					r.Trace.Reset() // bound sink growth; keeps allocations
					if _, err := r.Run(w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
