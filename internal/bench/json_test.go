package bench

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// The store persists complete results as JSON, so every field of Result and
// ScenarioResult must survive an encode/decode round trip exactly. The
// fixtures below are built reflectively — every exported field in the whole
// value graph is set to a distinct non-zero value — so a future field that
// fails to serialize (unexported, tagged away, lossy type) breaks this test
// the moment it is added rather than silently truncating stored results.

// fill sets every settable field of v to a distinct non-zero value.
func fill(v reflect.Value, n *int) {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*n++
		v.SetInt(int64(*n))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*n++
		v.SetUint(uint64(*n))
	case reflect.Float32, reflect.Float64:
		*n++
		v.SetFloat(float64(*n) + 0.5)
	case reflect.String:
		*n++
		v.SetString(fmt.Sprintf("s%d", *n))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < s.Len(); i++ {
			fill(s.Index(i), n)
		}
		v.Set(s)
	case reflect.Ptr:
		p := reflect.New(v.Type().Elem())
		fill(p.Elem(), n)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fill(f, n)
			}
		}
	default:
		panic(fmt.Sprintf("fill: unhandled kind %v — teach the round-trip test about it", v.Kind()))
	}
}

// assertNoZeroLeaves fails if any exported leaf of v is a zero value — i.e.
// if fill missed something, which would hollow out the round-trip coverage.
func assertNoZeroLeaves(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				assertNoZeroLeaves(t, v.Field(i), path+"."+v.Type().Field(i).Name)
			}
		}
	case reflect.Slice:
		if v.Len() == 0 {
			t.Errorf("%s: empty slice in fixture", path)
		}
		for i := 0; i < v.Len(); i++ {
			assertNoZeroLeaves(t, v.Index(i), fmt.Sprintf("%s[%d]", path, i))
		}
	case reflect.Ptr:
		if v.IsNil() {
			t.Errorf("%s: nil pointer in fixture", path)
			return
		}
		assertNoZeroLeaves(t, v.Elem(), path)
	default:
		if v.IsZero() {
			t.Errorf("%s: zero value in fixture", path)
		}
	}
}

func roundTrip[T any](t *testing.T, in T) {
	t.Helper()
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out T
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost information:\n in: %+v\nout: %+v", in, out)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	var res Result
	n := 0
	fill(reflect.ValueOf(&res).Elem(), &n)
	assertNoZeroLeaves(t, reflect.ValueOf(res), "Result")
	roundTrip(t, res)
}

func TestScenarioResultJSONRoundTrip(t *testing.T) {
	var sres ScenarioResult
	n := 0
	fill(reflect.ValueOf(&sres).Elem(), &n)
	assertNoZeroLeaves(t, reflect.ValueOf(sres), "ScenarioResult")
	roundTrip(t, sres)
}

// TestRealResultJSONRoundTrip round-trips genuine engine output — including
// the footprint series and latency percentiles a synthetic fixture might
// shape differently — for both the stationary and scenario paths.
func TestRealResultJSONRoundTrip(t *testing.T) {
	res, err := Run(goldenWorkload("list", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, res)

	cells := scenarioGoldenCells()
	sres, err := RunScenario(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, sres)
}
