package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"condaccess/internal/scenario"
)

// The scenario golden suite pins the scenario engine's observable output
// the way testdata/golden.json pins the stationary path: every preset ×
// scheme cell's full ScenarioResult — per-phase segments included — is
// fingerprinted against testdata/golden_scenario.json. Regenerate
// deliberately with:
//
//	go test ./internal/bench -run TestScenarioGoldenResults -update-scenario-golden
var updateScenarioGolden = flag.Bool("update-scenario-golden", false,
	"rewrite testdata/golden_scenario.json from the current engine")

// scenarioGoldenCells spans every preset across the three reclamation
// families, on the structures that stress them differently: the lazy list
// (long traversals) for all presets, plus the queue (Peek read path) and
// BST cells.
func scenarioGoldenCells() []ScenarioWorkload {
	var cells []ScenarioWorkload
	for _, name := range scenario.PresetNames() {
		sc, err := scenario.Preset(name)
		if err != nil {
			panic(err)
		}
		for _, scheme := range []string{"ca", "hp", "rcu"} {
			cells = append(cells, scenarioBinding("list", scheme, sc))
		}
	}
	rb, _ := scenario.Preset(scenario.PresetReadBurst)
	cd, _ := scenario.Preset(scenario.PresetChurnDrain)
	cells = append(cells,
		scenarioBinding("queue", "ca", rb),
		scenarioBinding("queue", "rcu", rb),
		scenarioBinding("bst", "ca", cd),
		scenarioBinding("bst", "rcu", cd),
	)
	return cells
}

func scenarioCellKey(sw ScenarioWorkload) string {
	return fmt.Sprintf("%s/%s/%s", sw.Scenario.Name, sw.DS, sw.Scheme)
}

// scenarioGoldenSum fingerprints every field of a ScenarioResult, segments
// included — except the tail histograms, which postdate the pinned files
// (see goldenSum; TestTailMatchesExactOnGoldens pins them against the
// exact-sort percentiles that are fingerprinted here).
func scenarioGoldenSum(res ScenarioResult) uint64 {
	res.Tail = nil
	res.Timeline = nil
	res.Phases = append([]PhaseSegment(nil), res.Phases...)
	for i := range res.Phases {
		res.Phases[i].Tail = nil
		res.Phases[i].Timeline = nil
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", res)
	return h.Sum64()
}

func TestScenarioGoldenResults(t *testing.T) {
	sums := map[string]string{}
	var runner Runner
	for _, sw := range scenarioGoldenCells() {
		res, err := runner.RunScenario(sw)
		if err != nil {
			t.Fatalf("%s: %v", scenarioCellKey(sw), err)
		}
		sums[scenarioCellKey(sw)] = fmt.Sprintf("%016x", scenarioGoldenSum(res))
	}

	path := filepath.Join("testdata", "golden_scenario.json")
	if *updateScenarioGolden {
		data, err := json.MarshalIndent(sums, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d scenario golden sums to %s", len(sums), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading scenario golden file (run with -update-scenario-golden to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(sums) {
		t.Errorf("golden file has %d entries, matrix has %d", len(want), len(sums))
	}
	for key, sum := range sums {
		if want[key] == "" {
			t.Errorf("%s: no golden entry", key)
			continue
		}
		if sum != want[key] {
			t.Errorf("%s: result checksum %s != golden %s — scenario engine output changed", key, sum, want[key])
		}
	}
}

// TestScenarioGoldenRunnerReuse: a reused machine must produce the same
// scenario results as fresh ones (the sweep-pool precondition).
func TestScenarioGoldenRunnerReuse(t *testing.T) {
	sc, err := scenario.Preset(scenario.PresetChurnDrain)
	if err != nil {
		t.Fatal(err)
	}
	sw := scenarioBinding("list", "ibr", sc)
	var runner Runner
	first, err := runner.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	second, err := runner.RunScenario(sw) // machine reused via Reset
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := scenarioGoldenSum(first), scenarioGoldenSum(second), scenarioGoldenSum(fresh)
	if a != b || a != c {
		t.Fatalf("runner reuse changed scenario output: %x %x %x", a, b, c)
	}
}
