// The trial-store contract. A sweep is a cross product of fully
// deterministic trials, so a trial's complete serialized Result is a pure
// function of its spec and the engine version — the classic serving-cache
// shape. This file defines the pluggable store interface the execution paths
// consult (the on-disk implementation lives in internal/lab), the canonical
// serialized spec forms that content-addressed keys are derived from, and
// the engine tag that scopes keys to one pinned engine output.

package bench

import (
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"

	"condaccess/internal/ds/hashtable"
)

// TrialStore is a read-through/write-through cache of complete trial
// results, consulted by Runner.Run and Runner.RunScenario before any
// simulation happens. A hit must return exactly the Result a cold run would
// produce (the stored value is the cold run's own serialized output —
// including the tail-latency histograms when the spec records latency), so
// warm and cold sweeps are byte-identical. Implementations must be safe for
// concurrent use: the parallel sweep path shares one store across workers.
//
// Results gained the Tail histograms (and scan-pause attribution) after the
// PR 4 envelope format shipped; entries written by older binaries decode
// with a nil Tail, and the engine tag only tracks golden-pinned simulator
// output. The Runner therefore treats a hit with a nil Tail as a miss
// whenever the spec asks for tail recording (staleTail): the trial is
// re-simulated and the entry overwritten, so stale stores heal in place.
type TrialStore interface {
	// LookupTrial returns the cached result of the stationary trial w.
	LookupTrial(w Workload) (Result, bool)
	// StoreTrial records the result of the stationary trial w.
	StoreTrial(w Workload, res Result) error
	// LookupScenario returns the cached result of the scenario trial sw.
	LookupScenario(sw ScenarioWorkload) (ScenarioResult, bool)
	// StoreScenario records the result of the scenario trial sw.
	StoreScenario(sw ScenarioWorkload, res ScenarioResult) error
}

// PreparedSpec carries one trial's canonical serialized spec, marshaled
// once per trial by the Runner, plus a memo slot for the store-derived
// content key. A keyed store fills Key on the first lookup and reuses it in
// the write-through after a miss, so a cold trial costs one spec marshal
// and one key derivation instead of two of each.
type PreparedSpec struct {
	Spec []byte
	// Key is the store's memoized content address for Spec (opaque to the
	// harness; the lab store caches SHA-256(tag, kind, spec) here). Empty
	// until a keyed store operation fills it.
	Key string
}

// KeyedTrialStore is the optional fast path of TrialStore. Stores that
// implement it receive the canonical spec bytes the Runner already
// marshaled — with the content key memoized across the lookup/store pair —
// instead of re-deriving both per call. The Runner type-asserts for it on
// every store access and falls back to the plain TrialStore methods, so
// existing implementations keep working unchanged.
type KeyedTrialStore interface {
	TrialStore
	// LookupTrialSpec returns the cached result of the stationary trial
	// whose canonical spec is ps.Spec, memoizing the derived key on ps.
	LookupTrialSpec(ps *PreparedSpec) (Result, bool)
	// StoreTrialSpec records res under ps (reusing ps.Key when set).
	StoreTrialSpec(ps *PreparedSpec, res Result) error
	// LookupScenarioSpec and StoreScenarioSpec are the scenario-trial
	// analogues over ScenarioSpecBytes.
	LookupScenarioSpec(ps *PreparedSpec) (ScenarioResult, bool)
	StoreScenarioSpec(ps *PreparedSpec, res ScenarioResult) error
}

// goldenPins embeds the golden checksum files that pin the engine's
// observable output, so the engine tag below tracks them automatically.
//
//go:embed testdata/golden.json testdata/golden_scenario.json
var goldenPins embed.FS

// EngineTag fingerprints the engine version a cached result was produced
// by: a digest of the embedded golden checksum files. The goldens pin every
// observable bit of the simulator's output, and any deliberate engine change
// regenerates them (-update-golden), so regenerating the goldens
// automatically invalidates every stale store entry — no hand-maintained
// version constant to forget.
func EngineTag() string {
	h := sha256.New()
	for _, name := range []string{"testdata/golden.json", "testdata/golden_scenario.json"} {
		b, err := goldenPins.ReadFile(name)
		if err != nil {
			// Unreachable: embed fails the build if the files are missing.
			panic(err)
		}
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// EffectiveBuckets resolves the bucket count that actually shapes a trial:
// zero for every structure but the hash table (the field is inert there),
// and the hash table's default when unset. Cell grouping uses this so
// tools that pass an explicit 128 and tools that pass 0 align.
func EffectiveBuckets(ds string, buckets int) int {
	if ds != "hash" {
		return 0
	}
	if buckets == 0 {
		return hashtable.DefaultBuckets
	}
	return buckets
}

// TrialSpecBytes returns the canonical serialized form of a stationary trial
// spec: the JSON encoding of the full Workload (every field participates in
// the content address — seed, check mode, cache geometry, SMR tuning, all of
// it). Go's encoder emits struct fields in declaration order, so the bytes
// are deterministic.
func TrialSpecBytes(w Workload) ([]byte, error) { return json.Marshal(w) }

// ScenarioSpec is the exported canonical form of a ScenarioWorkload: the
// binding and scenario plus the internal legacy-queue-read flag, which
// changes the executed op stream (the Workload lowering's dequeue+enqueue
// read pair) and therefore must participate in the content address.
type ScenarioSpec struct {
	ScenarioWorkload
	LegacyQueueRead bool `json:"legacyQueueRead"`
}

// Spec returns sw's canonical exported form.
func (sw ScenarioWorkload) Spec() ScenarioSpec {
	return ScenarioSpec{ScenarioWorkload: sw, LegacyQueueRead: sw.legacyQueueRead}
}

// ScenarioSpecBytes returns the canonical serialized form of a scenario
// trial spec, analogous to TrialSpecBytes.
func ScenarioSpecBytes(sw ScenarioWorkload) ([]byte, error) { return json.Marshal(sw.Spec()) }
