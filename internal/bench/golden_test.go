package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

// The golden-checksum suite pins the simulator's observable output. Each
// canonical workload's full Result — throughput, cycle count, cache/CA/SMR
// stats, memory accounting, footprint series, latency percentiles — is
// fingerprinted and compared against testdata/golden.json, which was
// generated with the pre-handoff execution engine (PR 2). Any change to
// scheduling order, cache bookkeeping, or allocator behaviour shows up here
// as a checksum mismatch, so refactors of the execution core can prove they
// are bit-for-bit output-preserving. Regenerate deliberately with:
//
//	go test ./internal/bench -run TestGoldenResults -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current engine")

// goldenSchemes spans the three reclamation families: conditional access,
// pointer-reservation (hp), and epoch/quiescence batching (rcu).
var goldenSchemes = []string{"ca", "hp", "rcu"}

// goldenWorkload is the canonical small trial for one structure/scheme cell:
// big enough to exercise prefill, contention, reclamation, and eviction, and
// small enough that the whole matrix runs in well under a second.
func goldenWorkload(ds, scheme string) Workload {
	return Workload{
		DS: ds, Scheme: scheme,
		Threads: 4, KeyRange: 400, UpdatePct: 50,
		OpsPerThread: 250, Buckets: 32,
		Seed:           42,
		FootprintEvery: 100,
		RecordLatency:  true,
	}
}

// goldenSum fingerprints every field of a Result (including the embedded
// workload, so a drifting default would also be caught) except the tail
// histogram, which postdates the pinned files: it is a pointer (its %+v
// rendering is a nondeterministic address) and its agreement with the
// pinned exact-sort percentiles is pinned by TestTailMatchesExactOnGoldens
// instead.
func goldenSum(res Result) uint64 {
	res.Tail = nil
	res.Timeline = nil
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", res)
	return h.Sum64()
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "golden.json")
}

func TestGoldenResults(t *testing.T) {
	sums := map[string]string{}
	for _, ds := range Structures() {
		for _, scheme := range goldenSchemes {
			res, err := Run(goldenWorkload(ds, scheme))
			if err != nil {
				t.Fatalf("%s/%s: %v", ds, scheme, err)
			}
			sums[ds+"/"+scheme] = fmt.Sprintf("%016x", goldenSum(res))
		}
	}

	path := goldenPath(t)
	if *updateGolden {
		data, err := json.MarshalIndent(sums, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden sums to %s", len(sums), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update-golden to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(sums) {
		t.Errorf("golden file has %d entries, matrix has %d", len(want), len(sums))
	}
	for key, sum := range sums {
		if want[key] == "" {
			t.Errorf("%s: no golden entry", key)
			continue
		}
		if sum != want[key] {
			t.Errorf("%s: result checksum %s != golden %s — engine output changed", key, sum, want[key])
		}
	}
}

// TestGoldenSumDiscriminates guards the fingerprint itself: materially
// different workloads must not collide, and the same workload must reproduce
// exactly.
func TestGoldenSumDiscriminates(t *testing.T) {
	a, err := Run(goldenWorkload("list", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(goldenWorkload("list", "ca"))
	if err != nil {
		t.Fatal(err)
	}
	if goldenSum(a) != goldenSum(b) {
		t.Fatal("identical workloads produced different checksums")
	}
	w := goldenWorkload("list", "ca")
	w.Seed++
	c, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if goldenSum(a) == goldenSum(c) {
		t.Fatal("different seeds collided; checksum is not discriminating")
	}
}
