package bench

import (
	"fmt"
	"testing"
)

// TestRunnerReuseBitIdentical proves the machine-reuse path: a Runner that
// has already executed trials (so its machine's heap, caches, and extension
// are warm and then reset) must produce results byte-identical to fresh
// machines, across scheme changes, seed changes, and repeated geometries.
func TestRunnerReuseBitIdentical(t *testing.T) {
	ws := []Workload{
		goldenWorkload("list", "ca"),
		goldenWorkload("list", "hp"),   // same geometry, different scheme
		goldenWorkload("bst", "ca"),    // different structure, same geometry
		goldenWorkload("list", "ca"),   // exact repeat after reuse
		goldenWorkload("hash", "rcu"),  // map-keyed machine reuse again
		goldenWorkload("stack", "hp"),  // reservation scheme on reused heap
		goldenWorkload("queue", "rcu"), // and once more
	}
	ws[1].Seed += 7

	var r Runner
	for i, w := range ws {
		reused, err := r.Run(w)
		if err != nil {
			t.Fatalf("reused run %d: %v", i, err)
		}
		fresh, err := Run(w)
		if err != nil {
			t.Fatalf("fresh run %d: %v", i, err)
		}
		if fmt.Sprintf("%+v", reused) != fmt.Sprintf("%+v", fresh) {
			t.Errorf("run %d (%s/%s): reused machine diverged from fresh machine", i, w.DS, w.Scheme)
		}
	}
}

// TestRunnerReuseDifferentGeometries checks that a Runner keeps distinct
// machines per geometry rather than resetting across incompatible configs.
func TestRunnerReuseDifferentGeometries(t *testing.T) {
	var r Runner
	for _, threads := range []int{2, 4, 2, 4} {
		w := goldenWorkload("list", "ca")
		w.Threads = threads
		reused, err := r.Run(w)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := Run(w)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", reused) != fmt.Sprintf("%+v", fresh) {
			t.Errorf("threads=%d: reused machine diverged from fresh machine", threads)
		}
	}
}
