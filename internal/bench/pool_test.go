package bench

import (
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// TestParallelSweepMatchesSequential is the determinism regression guard for
// the worker pool: a sweep run with Workers: N must reproduce the sequential
// path exactly — same points (deep-equal, including the embedded full
// Results), same report order, and byte-identical CSV output.
func TestParallelSweepMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		cfg  SweepConfig
	}{
		{"list-ca-ibr", SweepConfig{
			DS: "list", Schemes: []string{"ca", "ibr"},
			Threads: []int{1, 2, 4}, Updates: []int{0, 100},
			KeyRange: 64, Ops: 120, Seed: 11, Trials: 2,
		}},
		{"bst-hp-rcu", SweepConfig{
			DS: "bst", Schemes: []string{"hp", "rcu"},
			Threads: []int{2, 4}, Updates: []int{50},
			KeyRange: 128, Ops: 120, Seed: 23, Trials: 3, RecordLatency: true,
		}},
		{"hash-none-qsbr", SweepConfig{
			DS: "hash", Schemes: []string{"none", "qsbr"},
			Threads: []int{1, 3}, Updates: []int{10},
			KeyRange: 64, Ops: 100, Buckets: 16, Seed: 5, Trials: 1, Check: true,
		}},
	}
	workerCounts := []int{2, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.cfg
			seq.Workers = 1
			var seqOrder []SweepPoint
			seqPoints, err := Sweep(seq, func(p SweepPoint) { seqOrder = append(seqOrder, p) })
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range workerCounts {
				par := tc.cfg
				par.Workers = w
				var parOrder []SweepPoint
				parPoints, err := Sweep(par, func(p SweepPoint) { parOrder = append(parOrder, p) })
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(seqPoints, parPoints) {
					t.Fatalf("workers=%d: points diverge from sequential\nseq: %+v\npar: %+v", w, seqPoints, parPoints)
				}
				if !reflect.DeepEqual(seqOrder, parOrder) {
					t.Fatalf("workers=%d: report order diverges from sequential", w)
				}
				var seqCSV, parCSV strings.Builder
				if err := WriteCSV(&seqCSV, tc.cfg.DS, seqPoints); err != nil {
					t.Fatal(err)
				}
				if err := WriteCSV(&parCSV, tc.cfg.DS, parPoints); err != nil {
					t.Fatal(err)
				}
				if seqCSV.String() != parCSV.String() {
					t.Fatalf("workers=%d: CSV output not byte-identical", w)
				}
			}
		})
	}
}

// TestParallelSweepErrorMatchesSequential checks the pool reports the same
// (first-in-sweep-order) error as the sequential loop, after reporting the
// same prefix of good points.
func TestParallelSweepErrorMatchesSequential(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "nosuchscheme"},
		Threads: []int{1, 2}, Updates: []int{50},
		KeyRange: 32, Ops: 40, Seed: 3,
	}
	seq := cfg
	seq.Workers = 1
	var seqReported int
	_, seqErr := Sweep(seq, func(SweepPoint) { seqReported++ })
	if seqErr == nil {
		t.Fatal("sequential sweep accepted a bogus scheme")
	}
	par := cfg
	par.Workers = 4
	var parReported int
	points, parErr := Sweep(par, func(SweepPoint) { parReported++ })
	if parErr == nil {
		t.Fatal("parallel sweep accepted a bogus scheme")
	}
	if points != nil {
		t.Fatalf("parallel sweep returned points alongside error: %v", points)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("errors diverge:\nseq: %v\npar: %v", seqErr, parErr)
	}
	if seqReported != parReported {
		t.Fatalf("reported prefix diverges: seq %d, par %d", seqReported, parReported)
	}
}

// TestRunMany checks order preservation and error propagation of the
// exported workload-list runner.
func TestRunMany(t *testing.T) {
	ws := []Workload{
		{DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, UpdatePct: 50, OpsPerThread: 60, Seed: 1},
		{DS: "stack", Scheme: "none", Threads: 1, KeyRange: 32, UpdatePct: 100, OpsPerThread: 60, Seed: 2},
		{DS: "queue", Scheme: "ibr", Threads: 3, KeyRange: 32, UpdatePct: 100, OpsPerThread: 60, Seed: 3},
	}
	seq, err := RunMany(ws, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(ws, len(ws), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("RunMany parallel results diverge from sequential")
	}
	for i, r := range par {
		if r.W.DS != ws[i].DS {
			t.Fatalf("result %d is for %q, want %q (order not preserved)", i, r.W.DS, ws[i].DS)
		}
	}
	ws[1].DS = "nosuchds"
	if _, err := RunMany(ws, len(ws), nil); err == nil {
		t.Fatal("RunMany swallowed a workload error")
	}
}

func TestPoolWorkersClamp(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ req, jobs, want int }{
		{0, 10, 1},
		{-3, 10, 1},
		{1, 10, 1},
		{max + 7, 10, min(max, 10)},
		{2, 1, 1},
		{4, 0, 0},
	} {
		if got := poolWorkers(tc.req, tc.jobs); got != tc.want {
			t.Errorf("poolWorkers(%d, %d) = %d, want %d", tc.req, tc.jobs, got, tc.want)
		}
	}
}

// BenchmarkSweep measures the wall-clock effect of the worker pool on a
// multi-point sweep (the acceptance criterion's "measurably faster").
func BenchmarkSweep(b *testing.B) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu", "hp"},
		Threads: []int{2, 4, 8}, Updates: []int{0, 100},
		KeyRange: 256, Ops: 400, Seed: 7, Trials: 2,
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(map[bool]string{true: "sequential", false: "parallel"}[w == 1], func(b *testing.B) {
			c := cfg
			c.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := Sweep(c, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestPooledStaleStoreHitHeals: a store written by a pre-tail binary (every
// entry has a nil Tail) must heal under a parallel tail-recording sweep
// exactly as under a sequential one — pool workers treat each stale hit as a
// miss, re-simulate on their own Runner, and overwrite the entry — and the
// returned points match a storeless sequential sweep deep-equal.
func TestPooledStaleStoreHitHeals(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"},
		Threads: []int{2, 4}, Updates: []int{10},
		KeyRange: 64, Ops: 120, Seed: 11, Trials: 2,
		RecordTail: true,
	}

	// Reference: storeless sequential sweep.
	ref := cfg
	ref.Workers = 1
	want, err := Sweep(ref, nil)
	if err != nil {
		t.Fatal(err)
	}

	// staleStore populates a memStore as a pre-tail binary would have: run
	// the sweep against it, then strip every stored Tail.
	staleStore := func() *memStore {
		mem := newMemStore()
		seed := cfg
		seed.Workers = 1
		seed.Store = mem
		if _, err := Sweep(seed, nil); err != nil {
			t.Fatal(err)
		}
		for k, r := range mem.trials {
			r.Tail = nil
			mem.trials[k] = r
		}
		return mem
	}

	seqMem, parMem := staleStore(), staleStore()
	heal := func(mem *memStore, workers int) []SweepPoint {
		run := cfg
		run.Workers = workers
		run.Store = mem
		points, err := Sweep(run, nil)
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	seqPoints := heal(seqMem, 1)
	parPoints := heal(parMem, runtime.GOMAXPROCS(0)+2)

	if !reflect.DeepEqual(parPoints, want) {
		t.Error("pooled sweep over a stale store diverges from the storeless sequential sweep")
	}
	if !reflect.DeepEqual(seqPoints, want) {
		t.Error("sequential sweep over a stale store diverges from the storeless sweep")
	}
	for k, r := range parMem.trials {
		if r.Tail == nil {
			t.Errorf("entry %q not healed by the pooled sweep", k)
		}
	}
	if !reflect.DeepEqual(seqMem.trials, parMem.trials) {
		t.Error("pooled healing left different store contents than sequential healing")
	}
}
