// Parallel sweep execution. A sweep is a cross product of fully independent,
// fully deterministic simulated trials (each bench.Run builds its own
// sim.Machine, heap, and caches, and the simulator's schedule depends only on
// seeds), so trials can fan out across real OS threads freely. A trial's
// simulation runs entirely on the worker goroutine that claimed it — the
// sim core is channel-free and spawns no goroutines of its own — so the
// pool's goroutine count is exactly the worker count, independent of the
// simulated thread count, and a worker's Runner (with its reused machines)
// is only ever touched by that one goroutine. The scheduler here expands a
// SweepConfig into a flat job list — one job per (point, trial) — hands jobs
// to a GOMAXPROCS-bounded worker pool, and merges results back in sweep
// order, so the returned points, the report callback sequence, and any error
// are byte-identical to the sequential path.

package bench

import (
	"runtime"
	"sync"
	"sync/atomic"

	"condaccess/internal/obs"
)

// poolWorkers clamps a requested worker count to [1, GOMAXPROCS] and to the
// number of jobs available.
func poolWorkers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = 1
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// startPool launches workers goroutines that claim job indices [0, n) from a
// shared counter and run them. run receives the worker's index alongside the
// job's, so each worker can keep private reusable state (its Runner). If
// abort is non-nil, workers stop claiming new jobs once it is set. The
// returned function blocks until all workers exit.
func startPool(n, workers int, abort *atomic.Bool, run func(worker, i int)) (wait func()) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || (abort != nil && abort.Load()) {
					return
				}
				run(worker, i)
			}
		}(w)
	}
	return wg.Wait
}

// sweepParallel executes an expanded sweep on a worker pool. Results land in
// per-point slots indexed by (point, trial); the main goroutine walks points
// in sweep order, blocking on each point's completion, so merged points and
// progress reports stream in exactly the sequential order while later points
// are still being measured. On the first failed point (trials checked in
// trial order, matching the sequential loop's first-error semantics) the pool
// is aborted and the same wrapped error is returned.
func sweepParallel(cfg SweepConfig, specs []pointSpec, base int, report func(SweepPoint)) ([]SweepPoint, error) {
	type job struct{ point, trial int }
	jobs := make([]job, 0, len(specs)*cfg.Trials)
	for p := range specs {
		for t := 0; t < cfg.Trials; t++ {
			jobs = append(jobs, job{p, t})
		}
	}
	results := make([][]Result, len(specs))
	errs := make([][]error, len(specs))
	remaining := make([]atomic.Int32, len(specs))
	done := make([]chan struct{}, len(specs))
	for i := range specs {
		results[i] = make([]Result, cfg.Trials)
		errs[i] = make([]error, cfg.Trials)
		remaining[i].Store(int32(cfg.Trials))
		done[i] = make(chan struct{})
	}

	var abort atomic.Bool
	workers := poolWorkers(cfg.Workers, len(jobs))
	runners := make([]Runner, workers) // one reusable machine set per worker
	for i := range runners {
		runners[i].Store = cfg.Store // shared store; implementations are concurrency-safe
		runners[i].Obs = cfg.Obs.Worker(i)
	}
	wait := startPool(len(jobs), workers, &abort, func(worker, i int) {
		j := jobs[i]
		results[j.point][j.trial], errs[j.point][j.trial] = runners[worker].Run(trialWorkload(cfg, specs[j.point], j.trial))
		// Trial commits happen here, on the worker, as trials finish (any
		// order); the sequential point_start/point_done marks below come
		// from the in-order merge loop only.
		if errs[j.point][j.trial] != nil {
			runners[worker].Obs.Abandon()
		} else {
			runners[worker].Obs.Commit(base + j.point)
		}
		if remaining[j.point].Add(-1) == 0 {
			close(done[j.point])
		}
	})
	defer wait()

	var points []SweepPoint
	for i, s := range specs {
		cfg.Obs.PointStart(base + i)
		<-done[i]
		for trial := 0; trial < cfg.Trials; trial++ {
			if err := errs[i][trial]; err != nil {
				abort.Store(true)
				return nil, pointError(cfg, s, err)
			}
		}
		p := mergePoint(s, results[i])
		points = append(points, p)
		cfg.Obs.PointDone(base + i)
		if report != nil {
			report(p)
		}
	}
	return points, nil
}

// RunMany executes independent workloads on a worker pool of at most workers
// OS threads (clamped to GOMAXPROCS; <=1 runs sequentially) and returns their
// results in input order. On failure it stops claiming further workloads and
// returns the earliest-indexed error among those that ran. store (may be
// nil) caches trial results across invocations, like SweepConfig.Store.
func RunMany(ws []Workload, workers int, store TrialStore) ([]Result, error) {
	return RunManyObserved(ws, workers, store, nil)
}

// RunManyObserved is RunMany with out-of-band instrumentation: each
// workload is declared as one single-trial point on rec (nil for none) and
// its spans are committed by whichever worker ran it; point_done marks are
// emitted in input order after the pool drains.
func RunManyObserved(ws []Workload, workers int, store TrialStore, rec *obs.Rec) ([]Result, error) {
	base := 0
	if rec != nil {
		labels := make([]string, len(ws))
		for i, w := range ws {
			labels[i] = pointLabel(w.DS, pointSpec{Scheme: w.Scheme, Threads: w.Threads, UpdatePct: w.UpdatePct})
		}
		base = rec.AddPoints(labels, 1)
	}
	results := make([]Result, len(ws))
	errs := make([]error, len(ws))
	var abort atomic.Bool
	nw := poolWorkers(workers, len(ws))
	runners := make([]Runner, nw)
	for i := range runners {
		runners[i].Store = store
		runners[i].Obs = rec.Worker(i)
	}
	startPool(len(ws), nw, &abort, func(worker, i int) {
		results[i], errs[i] = runners[worker].Run(ws[i])
		if errs[i] != nil {
			runners[worker].Obs.Abandon()
			abort.Store(true)
		} else {
			runners[worker].Obs.Commit(base + i)
		}
	})()
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		rec.PointDone(base + i)
	}
	return results, nil
}
