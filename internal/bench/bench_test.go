package bench

import "testing"

func TestRunAllPairsSmoke(t *testing.T) {
	for _, ds := range Structures() {
		for _, scheme := range Schemes() {
			t.Run(ds+"/"+scheme, func(t *testing.T) {
				res, err := Run(Workload{
					DS: ds, Scheme: scheme,
					Threads: 4, KeyRange: 64, UpdatePct: 50,
					OpsPerThread: 200, Seed: 42, Check: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Ops != 800 || res.Cycles == 0 || res.Throughput <= 0 {
					t.Fatalf("implausible result: %+v", res)
				}
			})
		}
	}
}

func TestRunRejectsBadWorkloads(t *testing.T) {
	bad := []Workload{
		{DS: "list", Scheme: "ca", Threads: 0, KeyRange: 10, OpsPerThread: 1},
		{DS: "list", Scheme: "ca", Threads: 1, KeyRange: 0, OpsPerThread: 1},
		{DS: "list", Scheme: "ca", Threads: 1, KeyRange: 10, OpsPerThread: 0},
		{DS: "list", Scheme: "ca", Threads: 1, KeyRange: 10, OpsPerThread: 1, UpdatePct: 150},
		{DS: "wat", Scheme: "ca", Threads: 1, KeyRange: 10, OpsPerThread: 1},
		{DS: "list", Scheme: "wat", Threads: 1, KeyRange: 10, OpsPerThread: 1},
	}
	for i, w := range bad {
		if _, err := Run(w); err == nil {
			t.Errorf("workload %d accepted, want error", i)
		}
	}
}

func TestFootprintSampling(t *testing.T) {
	res, err := Run(Workload{
		DS: "list", Scheme: "ca",
		Threads: 2, KeyRange: 64, UpdatePct: 100,
		OpsPerThread: 500, Seed: 7, Check: true, FootprintEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Footprint) < 5 {
		t.Fatalf("footprint samples = %d, want >= 5", len(res.Footprint))
	}
	// CA keeps the footprint at the live set: every sample should be within
	// a small band around the 50% prefill size.
	for _, s := range res.Footprint {
		if s.Live > uint64(res.PrefillSize)*2 {
			t.Fatalf("CA footprint ballooned: %d live after %d ops (prefill %d)",
				s.Live, s.AfterOps, res.PrefillSize)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	w := Workload{
		DS: "bst", Scheme: "ibr",
		Threads: 4, KeyRange: 128, UpdatePct: 20,
		OpsPerThread: 300, Seed: 99, Check: true,
	}
	r1, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Retries != r2.Retries || r1.Mem != r2.Mem {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
}
