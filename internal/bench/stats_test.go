package bench

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("basic moments wrong: %+v", s)
	}
	wantSD := math.Sqrt(2.5)
	if !almost(s.Stddev, wantSD) {
		t.Errorf("stddev = %v, want %v", s.Stddev, wantSD)
	}
	// t(0.975, df=4) = 2.776
	if want := 2.776 * wantSD / math.Sqrt(5); !almost(s.CI95, want) {
		t.Errorf("ci95 = %v, want %v", s.CI95, want)
	}
}

func TestSummarizeEvenMedianAndUnsortedInput(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("even-count summary wrong: %+v", s)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty input: %+v, want zero", s)
	}
	s := Summarize([]float64{7.5})
	if s.Count != 1 || s.Mean != 7.5 || s.Min != 7.5 || s.Max != 7.5 || s.Median != 7.5 {
		t.Errorf("single sample: %+v", s)
	}
	if s.Stddev != 0 || s.CI95 != 0 {
		t.Errorf("single sample must not claim spread: %+v", s)
	}
}

// TestSummarizeMeanMatchesLegacyArithmetic: Stats.Mean must be bit-identical
// to the historical sum-in-order/len mean that SweepPoint.Throughput (and
// the goldens downstream of it) are built on.
func TestSummarizeMeanMatchesLegacyArithmetic(t *testing.T) {
	xs := []float64{1234.5678, 991.337, 1023.4567, 1199.9999}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if legacy := sum / float64(len(xs)); Summarize(xs).Mean != legacy {
		t.Fatalf("mean %v != legacy mean %v (not bit-identical)", Summarize(xs).Mean, legacy)
	}
}

func TestTCrit95(t *testing.T) {
	for _, tc := range []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {4, 2.776}, {30, 2.042},
		{35, 2.021}, {50, 2.000}, {100, 1.980}, {1000, 1.960},
	} {
		if got := tCrit95(tc.df); got != tc.want {
			t.Errorf("tCrit95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	if tCrit95(0) != 0 {
		t.Error("df=0 must yield 0")
	}
}

func TestSummaryOverlaps(t *testing.T) {
	a := Summary{Count: 3, Mean: 100, CI95: 5}
	b := Summary{Count: 3, Mean: 108, CI95: 2}
	if a.Overlaps(b) {
		t.Error("disjoint intervals [95,105] and [106,110] reported overlapping")
	}
	c := Summary{Count: 3, Mean: 104, CI95: 2}
	if !a.Overlaps(c) {
		t.Error("intervals [95,105] and [102,106] reported disjoint")
	}
	single := Summary{Count: 1, Mean: 1e9}
	if !a.Overlaps(single) || !single.Overlaps(a) {
		t.Error("a single-replica side has no interval and must count as overlapping")
	}
}

// TestMergePointStats: a sweep's points must carry replication statistics
// consistent with their own mean, and single-trial sweeps must carry none.
func TestMergePointStats(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{100},
		KeyRange: 32, Ops: 50, Seed: 9, Trials: 3,
	}
	points, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Stats.Count != 3 {
		t.Fatalf("Stats.Count = %d, want 3", p.Stats.Count)
	}
	if p.Stats.Mean != p.Throughput {
		t.Fatalf("Stats.Mean %v != Throughput %v (must be the same float64)", p.Stats.Mean, p.Throughput)
	}
	if p.Stats.Min > p.Stats.Median || p.Stats.Median > p.Stats.Max {
		t.Fatalf("order statistics inconsistent: %+v", p.Stats)
	}
	if p.Stats.Stddev <= 0 || p.Stats.CI95 <= 0 {
		t.Fatalf("3 trials with different seeds must show spread: %+v", p.Stats)
	}

	cfg.Trials = 1
	points, err = Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := points[0].Stats; s.Count != 1 || s.Stddev != 0 || s.CI95 != 0 {
		t.Fatalf("single-trial point claims spread: %+v", s)
	}
}
