package bench

import (
	"fmt"
	"math"

	"condaccess/internal/sim"
)

// Key distributions for workload generation. The paper draws keys uniformly;
// the zipfian option models the skewed access patterns (hot keys) common in
// key-value workloads, concentrating contention the way the paper's
// high-update panels do with thread count.
const (
	DistUniform = "uniform"
	DistZipf    = "zipf"
)

// ZipfTheta is the skew parameter for DistZipf (YCSB's default).
const ZipfTheta = 0.99

// keygen draws keys in [1, n].
type keygen interface {
	Next(rng *sim.RNG) uint64
}

type uniformGen struct{ n uint64 }

func (g uniformGen) Next(rng *sim.RNG) uint64 { return rng.Uint64n(g.n) + 1 }

// zipfGen is Gray et al.'s O(1)-per-sample zipfian generator (the YCSB
// algorithm): zeta sums are precomputed once, each draw costs two float ops
// and one RNG call. Rank 1 is the hottest key; ranks are scattered over the
// key space by a fixed multiplicative hash so hot keys are not neighbors in
// the sorted structures.
type zipfGen struct {
	n                        uint64
	theta, zetan, alpha, eta float64
	thresh                   float64 // 1 + 0.5^theta, precomputed
}

func newZipfGen(n uint64, theta float64) *zipfGen {
	if n == 0 {
		panic("bench: zipf over empty key range")
	}
	g := &zipfGen{n: n, theta: theta}
	var zetan float64
	for i := uint64(1); i <= n; i++ {
		zetan += 1 / pow(float64(i), theta)
	}
	g.zetan = zetan
	zeta2 := 1 + 1/pow(2, theta)
	g.alpha = 1 / (1 - theta)
	g.eta = (1 - pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan)
	g.thresh = 1 + pow(0.5, theta)
	return g
}

func (g *zipfGen) Next(rng *sim.RNG) uint64 {
	u := float64(rng.Uint64()>>11) / float64(1<<53) // uniform in [0,1)
	uz := u * g.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 1
	case uz < g.thresh:
		rank = 2
	default:
		rank = 1 + uint64(float64(g.n)*pow(g.eta*u-g.eta+1, g.alpha))
	}
	if rank > g.n {
		rank = g.n
	}
	// Scatter ranks across the key space deterministically so the hot keys
	// land in different list/tree neighborhoods.
	return (rank-1)*2654435761%g.n + 1
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// newKeygen builds the generator named by dist.
func newKeygen(dist string, n uint64) (keygen, error) {
	switch dist {
	case "", DistUniform:
		return uniformGen{n: n}, nil
	case DistZipf:
		return newZipfGen(n, ZipfTheta), nil
	default:
		return nil, fmt.Errorf("bench: unknown key distribution %q", dist)
	}
}
