package bench

import (
	"fmt"
	"reflect"
	"testing"

	"condaccess/internal/latency"
)

// The tail-latency integration suite pins the streaming histogram pipeline
// against the exact-sort pipeline that the golden files fingerprint: on
// every golden workload the histogram's quantiles must bracket the exact
// percentiles within one bucket, and the per-kind / per-attribution counts
// must partition the op counts exactly, per phase and per trial.

// requireWithinOneBucket asserts est (a histogram quantile answer) is an
// upper bound for exact and that exact lies in est's bucket — the
// histogram's advertised error contract.
func requireWithinOneBucket(t *testing.T, what string, est, exact uint64) {
	t.Helper()
	if est < exact {
		t.Errorf("%s: histogram %d below exact %d", what, est, exact)
		return
	}
	if lo, _ := latency.BucketBounds(latency.BucketOf(est)); exact < lo {
		t.Errorf("%s: exact %d outside histogram bucket [%d..%d]", what, exact, lo, est)
	}
}

// requireTailConsistent checks one measured window's tail record against its
// exact-sort stats and op count.
func requireTailConsistent(t *testing.T, what string, tail *latency.Tail, exact LatencyStats, ops uint64) {
	t.Helper()
	if tail == nil {
		t.Errorf("%s: no tail record", what)
		return
	}
	if tail.Total.Count() != ops {
		t.Errorf("%s: tail samples %d != ops %d", what, tail.Total.Count(), ops)
	}
	if tail.Total.Count() != uint64(exact.Samples) {
		t.Errorf("%s: tail samples %d != exact samples %d", what, tail.Total.Count(), exact.Samples)
	}
	if kinds := tail.Insert.Count() + tail.Delete.Count() + tail.Read.Count(); kinds != ops {
		t.Errorf("%s: kind partition %d != ops %d", what, kinds, ops)
	}
	if attrs := tail.Useful.Count() + tail.Reclaim.Count() + tail.Retry.Count(); attrs != ops {
		t.Errorf("%s: attribution partition %d != ops %d", what, attrs, ops)
	}
	// Each reclaim-tagged op recorded exactly one pause span.
	if tail.Pause.Count() != tail.Reclaim.Count() {
		t.Errorf("%s: pause samples %d != reclaim-tagged ops %d", what, tail.Pause.Count(), tail.Reclaim.Count())
	}
	if ops == 0 {
		return
	}
	requireWithinOneBucket(t, what+" p50", tail.Total.Quantile(0.50), exact.P50)
	requireWithinOneBucket(t, what+" p90", tail.Total.Quantile(0.90), exact.P90)
	requireWithinOneBucket(t, what+" p99", tail.Total.Quantile(0.99), exact.P99)
	requireWithinOneBucket(t, what+" p99.9", tail.Total.Quantile(0.999), exact.P999)
	if tail.Total.Max() != exact.Max {
		t.Errorf("%s: tail max %d != exact max %d (max is tracked exactly)", what, tail.Total.Max(), exact.Max)
	}
	if tail.Total.Mean() != exact.MeanCycles {
		t.Errorf("%s: tail mean %v != exact mean %v", what, tail.Total.Mean(), exact.MeanCycles)
	}
}

// TestTailMatchesExactOnGoldens runs the full golden matrix and checks the
// histogram pipeline against the exact-sort pipeline the goldens pin — the
// pinning for the Tail fields that goldenSum deliberately excludes.
func TestTailMatchesExactOnGoldens(t *testing.T) {
	var runner Runner
	for _, ds := range Structures() {
		for _, scheme := range goldenSchemes {
			res, err := runner.Run(goldenWorkload(ds, scheme))
			if err != nil {
				t.Fatalf("%s/%s: %v", ds, scheme, err)
			}
			requireTailConsistent(t, ds+"/"+scheme, res.Tail, res.Latency, res.Ops)
			if scheme == "ca" {
				// CA frees inline: no batches, so no op can be tagged as
				// having absorbed a reclamation pause.
				if res.Tail.Reclaim.Count() != 0 || res.Tail.Pause.Count() != 0 {
					t.Errorf("%s/ca: %d reclaim-tagged ops, %d pauses — CA has no reclamation batches",
						ds, res.Tail.Reclaim.Count(), res.Tail.Pause.Count())
				}
			}
		}
	}
}

// TestScenarioTailPerPhase runs the scenario golden cells and checks every
// phase's tail record, plus that the phase tails merge exactly into the
// trial tail (counts, sums, and extreme values all reconstruct).
func TestScenarioTailPerPhase(t *testing.T) {
	var runner Runner
	for _, sw := range scenarioGoldenCells() {
		sres, err := runner.RunScenario(sw)
		if err != nil {
			t.Fatalf("%s: %v", scenarioCellKey(sw), err)
		}
		key := scenarioCellKey(sw)
		requireTailConsistent(t, key+"/total", sres.Tail, sres.Latency, sres.Ops)
		var merged latency.Tail
		for i, seg := range sres.Phases {
			requireTailConsistent(t, fmt.Sprintf("%s/phase[%d]%s", key, i, seg.Name), seg.Tail, seg.Latency, seg.Ops)
			// Attribution reads each thread's own retry counter, so every
			// retry-tagged op accounts for at least one genuine retry in the
			// window — a shared-counter implementation (blaming ops for
			// other threads' retries) breaks this bound under contention.
			if seg.Tail.Retry.Count() > seg.Retries {
				t.Errorf("%s/phase[%d]%s: %d retry-tagged ops but only %d retries in the window",
					key, i, seg.Name, seg.Tail.Retry.Count(), seg.Retries)
			}
			merged.Merge(seg.Tail)
		}
		if merged.Total.Count() != sres.Tail.Total.Count() ||
			merged.Total.Sum() != sres.Tail.Total.Sum() ||
			merged.Total.Max() != sres.Tail.Total.Max() ||
			merged.Pause.Count() != sres.Tail.Pause.Count() {
			t.Errorf("%s: merged phase tails != trial tail", key)
		}
		if sres.Prefill.Tail != nil {
			t.Errorf("%s: prefill must not carry a tail record", key)
		}
	}
}

// TestSweepTailMergesTrials: a multi-trial sweep point's Tail summary covers
// the samples of every trial, and its exact-tracked max is the max over the
// trials' exact maxima.
func TestSweepTailMergesTrials(t *testing.T) {
	cfg := SweepConfig{
		DS: "list", Schemes: []string{"ca", "rcu"}, Threads: []int{2},
		Updates: []int{100}, KeyRange: 64, Ops: 200, Seed: 3,
		Trials: 3, RecordLatency: true,
	}
	points, err := Sweep(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		wantSamples := uint64(0)
		for trial := 0; trial < cfg.Trials; trial++ {
			res, err := Run(trialWorkload(cfg, pointSpec{Scheme: p.Scheme, Threads: p.Threads, UpdatePct: p.UpdatePct}, trial))
			if err != nil {
				t.Fatal(err)
			}
			wantSamples += res.Tail.Total.Count()
			if res.Tail.Total.Max() > p.Tail.Max {
				t.Errorf("%s trial %d: trial max %d exceeds merged point max %d",
					p.Scheme, trial, res.Tail.Total.Max(), p.Tail.Max)
			}
		}
		if p.Tail.Samples != wantSamples {
			t.Errorf("%s: point tail samples %d, want %d (sum over trials)", p.Scheme, p.Tail.Samples, wantSamples)
		}
		if p.Tail.Samples != uint64(cfg.Trials)*uint64(p.Threads)*uint64(cfg.Ops) {
			t.Errorf("%s: point tail samples %d, want trials*threads*ops", p.Scheme, p.Tail.Samples)
		}
	}
}

// TestTailOffByDefault: without RecordLatency nothing is recorded and no
// tail structures are allocated, on both execution paths.
func TestTailOffByDefault(t *testing.T) {
	w := goldenWorkload("list", "rcu")
	w.RecordLatency = false
	res, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail != nil {
		t.Error("stationary: Tail non-nil without RecordLatency")
	}
	cells := scenarioGoldenCells()
	sw := cells[0]
	sw.RecordLatency = false
	sres, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Tail != nil {
		t.Error("scenario: Tail non-nil without RecordLatency")
	}
	for _, seg := range sres.Phases {
		if seg.Tail != nil {
			t.Error("scenario: phase Tail non-nil without RecordLatency")
		}
	}
}

// TestRecordTailOnlyMatchesFullRecording: a RecordTail-only run produces
// the identical Tail a full RecordLatency run does — recording is the same
// pass — while skipping the exact-sort pipeline entirely (Latency zero).
// Covers both execution paths and every phase tail.
func TestRecordTailOnlyMatchesFullRecording(t *testing.T) {
	w := goldenWorkload("list", "rcu")
	full, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	w.RecordLatency, w.RecordTail = false, true
	tailOnly, err := Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if tailOnly.Latency != (LatencyStats{}) {
		t.Errorf("tail-only run filled exact-sort stats: %+v", tailOnly.Latency)
	}
	if !reflect.DeepEqual(tailOnly.Tail, full.Tail) {
		t.Error("tail-only run's Tail differs from the full recording's")
	}

	sw := scenarioGoldenCells()[0]
	sfull, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	sw.RecordLatency, sw.RecordTail = false, true
	sTailOnly, err := RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sTailOnly.Tail, sfull.Tail) {
		t.Error("scenario tail-only Tail differs from the full recording's")
	}
	for i := range sfull.Phases {
		if sTailOnly.Phases[i].Latency != (LatencyStats{}) {
			t.Errorf("phase %d: tail-only run filled exact-sort stats", i)
		}
		if !reflect.DeepEqual(sTailOnly.Phases[i].Tail, sfull.Phases[i].Tail) {
			t.Errorf("phase %d: tail-only Tail differs from the full recording's", i)
		}
	}
}

// tailStrippingStore wraps another TrialStore and hands out hits with the
// Tail removed — exactly what a store written by a pre-tail binary returns.
type tailStrippingStore struct{ inner TrialStore }

func (s *tailStrippingStore) LookupTrial(w Workload) (Result, bool) {
	res, ok := s.inner.LookupTrial(w)
	res.Tail = nil
	return res, ok
}
func (s *tailStrippingStore) StoreTrial(w Workload, res Result) error {
	return s.inner.StoreTrial(w, res)
}
func (s *tailStrippingStore) LookupScenario(sw ScenarioWorkload) (ScenarioResult, bool) {
	res, ok := s.inner.LookupScenario(sw)
	res.Tail = nil
	return res, ok
}
func (s *tailStrippingStore) StoreScenario(sw ScenarioWorkload, res ScenarioResult) error {
	return s.inner.StoreScenario(sw, res)
}

// specKey returns the canonical spec string the shared memStore (see
// store_test.go) indexes by.
func specKey(b []byte, err error) string {
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestStaleStoreHitReSimulates: a warm hit whose stored result predates the
// tail histograms (nil Tail) must be treated as a miss when the spec asks
// for tail recording — the trial re-simulates, returns a full Tail, and
// overwrites the stale entry — while specs without tail recording keep
// hitting it.
func TestStaleStoreHitReSimulates(t *testing.T) {
	mem := newMemStore()
	w := goldenWorkload("list", "rcu")

	// Seed the store with a tail-less entry under w's exact key.
	r := Runner{Store: &tailStrippingStore{inner: mem}}
	if _, err := r.Run(w); err != nil {
		t.Fatal(err)
	}
	stored := mem.trials[specKey(TrialSpecBytes(w))]
	stored.Tail = nil
	mem.trials[specKey(TrialSpecBytes(w))] = stored

	r = Runner{Store: mem}
	res, err := r.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tail == nil {
		t.Fatal("stale hit was returned instead of re-simulated")
	}
	if got := mem.trials[specKey(TrialSpecBytes(w))]; got.Tail == nil {
		t.Error("re-simulation did not overwrite the stale entry")
	}

	// A spec that records nothing must keep hitting a tail-less entry.
	w2 := w
	w2.RecordLatency, w2.RecordTail = false, false
	if _, err := r.Run(w2); err != nil {
		t.Fatal(err)
	}
	before := mem.trials[specKey(TrialSpecBytes(w2))]
	res2, err := r.Run(w2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2, before) {
		t.Error("no-recording spec did not hit the cached entry")
	}

	// Scenario path: same rule.
	sw := scenarioGoldenCells()[0]
	rs := Runner{Store: &tailStrippingStore{inner: mem}}
	if _, err := rs.RunScenario(sw); err != nil {
		t.Fatal(err)
	}
	sstored := mem.scenarios[specKey(ScenarioSpecBytes(sw))]
	sstored.Tail = nil
	mem.scenarios[specKey(ScenarioSpecBytes(sw))] = sstored
	rs = Runner{Store: mem}
	sres, err := rs.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Tail == nil {
		t.Fatal("stale scenario hit was returned instead of re-simulated")
	}
}
