// Package bench is the benchmark harness that regenerates the paper's
// evaluation (Section V): throughput sweeps over data structure x
// reclamation scheme x thread count x update rate (Figures 1 and 2), the
// memory-footprint trace (Figure 3), and the ablations (associativity
// sensitivity, batching/epoch-frequency tuning).
//
// Methodology mirrors the paper: each trial prefills its structure to 50%
// of the key range, then runs N operations per thread choosing insert and
// delete with equal probability (so size stays roughly constant) and
// contains for the rest. Throughput is reported in operations per million
// simulated cycles — absolute values are not comparable to the paper's
// Graphite testbed, but the scheme-vs-scheme shape is.
//
// Beyond the paper's stationary mix, the harness executes declarative
// non-stationary workloads (package scenario) through RunScenario: phased,
// role-based, time-varying trials reported with exact per-phase segments.
// The stationary Workload path is itself a lowering onto that engine (see
// run.go and scenario.go).
package bench

import (
	"fmt"

	"condaccess/internal/cache"
	"condaccess/internal/core"
	"condaccess/internal/ds/extbst"
	"condaccess/internal/ds/hashtable"
	"condaccess/internal/ds/hmlist"
	"condaccess/internal/ds/lazylist"
	"condaccess/internal/ds/queue"
	"condaccess/internal/ds/stack"
	"condaccess/internal/latency"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
	"condaccess/internal/trace"
)

// Scheme names accepted by Workload.Scheme: "ca" plus smr.Names().
func Schemes() []string { return append([]string{"ca"}, smr.Names()...) }

// Structures lists the benchmarkable data structures. "list" is the lazy
// list of the paper's Figure 1; "hmlist" is the Harris-Michael lock-free
// list (the paper's future-work extension, not in its plots).
func Structures() []string { return []string{"list", "bst", "hash", "stack", "queue", "hmlist"} }

// Workload describes one trial.
type Workload struct {
	DS     string // list, bst, hash, stack, queue
	Scheme string // ca, none, rcu, qsbr, ibr, hp, he

	Threads      int
	KeyRange     uint64 // keys drawn from [1, KeyRange]
	UpdatePct    int    // inserts+deletes percentage: 0, 10 or 100 in the paper
	OpsPerThread int
	Buckets      int // hash only; 0 means hashtable.DefaultBuckets

	Seed  uint64
	Check bool // enable use-after-free and Theorem 6/7 assertions

	SMR   smr.Options  // reclamation tuning (paper defaults when zero)
	Cache cache.Params // cache geometry override (defaults when zero)
	Slack uint64       // scheduler quantum override (default when zero)

	// FootprintEvery samples allocated-not-freed nodes every this many
	// completed operations (0 disables) — the Figure 3 series.
	FootprintEvery int

	// OpWorkCycles models the fixed instruction cost of an operation's
	// non-memory work (harness loop, RNG, call overhead). Zero means
	// DefaultOpWork.
	OpWorkCycles uint64

	// Dist selects the key distribution: DistUniform (default, the paper's
	// choice) or DistZipf (skewed, theta 0.99).
	Dist string

	// RecordLatency collects every operation's simulated latency and fills
	// Result.Latency with its exact-sort percentiles (O(ops) memory) —
	// and, since the two pipelines share the recording pass, Result.Tail.
	RecordLatency bool

	// RecordTail fills Result.Tail alone: the log-bucketed histograms in
	// O(buckets) memory, skipping the exact-sort sample slices entirely.
	// The field participates in the store content address only when set
	// (omitempty), so pre-existing store keys are untouched.
	RecordTail bool `json:",omitempty"`

	// RecordTimeline fills Result.Timeline: the windowed sim-time metrics
	// series (per-window ops by kind, retries, absorbed pause cycles).
	// Like RecordTail it is omitempty, so pre-existing store keys are
	// untouched, and the recorded timeline travels through the store
	// envelope — a warm hit reproduces it byte-for-byte.
	RecordTimeline bool `json:",omitempty"`

	// TimelineWindow overrides the timeline window size in simulated cycles
	// (0 means trace.DefaultWindow; nonzero values below trace.MinWindow are
	// rejected).
	TimelineWindow uint64 `json:",omitempty"`
}

// DefaultOpWork approximates per-operation bookkeeping instructions.
const DefaultOpWork = 15

// FootprintSample is one Figure 3 data point.
type FootprintSample struct {
	AfterOps int
	Live     uint64
}

// Result aggregates one trial.
type Result struct {
	W           Workload
	PrefillSize int

	Ops        uint64  // measured operations completed
	Cycles     uint64  // simulated wall time of the measured phase
	Throughput float64 // ops per million cycles

	Retries uint64 // operation restarts (conditional-access or validation)

	Cache cache.Stats
	CA    core.Stats
	SMR   smr.Stats
	Mem   mem.Stats

	Footprint []FootprintSample

	// Latency is filled when W.RecordLatency is set.
	Latency LatencyStats

	// Tail is the streaming tail-latency record of the measured run, filled
	// when W.RecordLatency or W.RecordTail is set: the full log-bucketed
	// latency distribution plus its exact partitions by op kind
	// (insert/delete/read) and by attribution (useful work vs. absorbed SMR
	// reclamation pause vs. conditional-access/validation retry), and the
	// distribution of the reclamation pauses themselves. Unlike Latency it
	// costs O(buckets) memory however long the trial is, and merges exactly
	// across threads, phases, and trials.
	Tail *latency.Tail `json:",omitempty"`

	// Timeline is the windowed sim-time metrics series of the measured run,
	// filled when W.RecordTimeline is set: per-window op counts by kind,
	// retry restarts, and absorbed reclamation-pause cycles, merged exactly
	// across threads and phases like Tail. Cycle zero is the measured run's
	// start (the clocks reset after prefill).
	Timeline *trace.Timeline `json:",omitempty"`
}

// LatencyStats summarizes the per-operation simulated-latency distribution.
// Batch-based reclamation shows up here (an unlucky operation absorbs a
// whole scan+free pass), which is the paper's tail-latency critique of
// batching; Conditional Access has no such events.
type LatencyStats struct {
	Samples    int
	P50, P90   uint64
	P99, P999  uint64
	Max        uint64
	MeanCycles float64
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s t=%d u=%d%%: %.2f ops/Mcyc (%d ops, %d retries, live %d)",
		r.W.DS, r.W.Scheme, r.W.Threads, r.W.UpdatePct, r.Throughput, r.Ops, r.Retries, r.Mem.NodeLive())
}

// setOps is the uniform set interface both variants satisfy.
type setOps interface {
	Insert(c *sim.Ctx, key uint64) bool
	Delete(c *sim.Ctx, key uint64) bool
	Contains(c *sim.Ctx, key uint64) bool
}

// stackOps is the uniform stack interface.
type stackOps interface {
	Push(c *sim.Ctx, key uint64)
	Pop(c *sim.Ctx) (uint64, bool)
	Peek(c *sim.Ctx) (uint64, bool)
}

// queueOps is the uniform queue interface. Peek is the read-share op for
// scenario workloads; the stationary lowering keeps the historical
// dequeue+enqueue pair instead (see progOp).
type queueOps interface {
	Enqueue(c *sim.Ctx, key uint64)
	Dequeue(c *sim.Ctx) (uint64, bool)
	Peek(c *sim.Ctx) (uint64, bool)
}

// built bundles a constructed structure with its diagnostics accessors.
type built struct {
	set     setOps
	stk     stackOps
	que     queueOps
	retries func() uint64
	rec     smr.Reclaimer // nil for ca and none-less cases
}

// build constructs the requested structure+scheme pair on m.
func build(m *sim.Machine, w Workload) (built, error) {
	space := m.Space
	nb := w.Buckets
	if nb == 0 {
		nb = hashtable.DefaultBuckets
	}
	if w.Scheme == "ca" {
		switch w.DS {
		case "list":
			l := lazylist.NewCA(space)
			return built{set: l, retries: func() uint64 { return l.Retries }}, nil
		case "bst":
			t := extbst.NewCA(space)
			return built{set: t, retries: func() uint64 { return t.Retries }}, nil
		case "hash":
			t := hashtable.NewCA(space, nb)
			return built{set: t, retries: t.Retries}, nil
		case "stack":
			s := stack.NewCA(space)
			return built{stk: s, retries: func() uint64 { return 0 }}, nil
		case "queue":
			q := queue.NewCA(space)
			return built{que: q, retries: func() uint64 { return q.Retries }}, nil
		case "hmlist":
			l := hmlist.NewCA(space)
			return built{set: l, retries: func() uint64 { return l.Retries }}, nil
		}
		return built{}, fmt.Errorf("bench: unknown structure %q", w.DS)
	}
	r, err := smr.New(w.Scheme, space, w.Threads, w.SMR)
	if err != nil {
		return built{}, err
	}
	switch w.DS {
	case "list":
		l := lazylist.NewGuarded(space, r)
		return built{set: l, retries: func() uint64 { return l.Retries }, rec: r}, nil
	case "bst":
		t := extbst.NewGuarded(space, r)
		return built{set: t, retries: func() uint64 { return t.Retries }, rec: r}, nil
	case "hash":
		t := hashtable.NewGuarded(space, r, nb)
		return built{set: t, retries: t.Retries, rec: r}, nil
	case "stack":
		s := stack.NewGuarded(space, r)
		return built{stk: s, retries: func() uint64 { return 0 }, rec: r}, nil
	case "queue":
		q := queue.NewGuarded(space, r)
		return built{que: q, retries: func() uint64 { return q.Retries }, rec: r}, nil
	case "hmlist":
		l := hmlist.NewGuarded(space, r)
		return built{set: l, retries: func() uint64 { return l.Retries }, rec: r}, nil
	}
	return built{}, fmt.Errorf("bench: unknown structure %q", w.DS)
}
