package smr

import (
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// none is the leaky baseline: retired nodes are forgotten, never freed. It
// is trivially safe (nothing is ever reclaimed) and has zero per-read and
// per-retire overhead, which makes it the throughput ceiling the paper
// normalizes against — at the cost of an unbounded memory footprint.
type none struct {
	stats Stats
}

func newNone() *none { return &none{} }

func (n *none) Name() string                                          { return "none" }
func (n *none) BeginOp(c *sim.Ctx)                                    {}
func (n *none) EndOp(c *sim.Ctx)                                      {}
func (n *none) Protect(c *sim.Ctx, slot int, node, src mem.Addr) bool { return true }
func (n *none) Alloc(c *sim.Ctx) mem.Addr                             { return c.AllocNode() }

func (n *none) Retire(c *sim.Ctx, node mem.Addr) {
	// Leak: the node stays allocated forever (its footprint shows up in the
	// Figure 3 accounting).
	n.stats.Retired++
	c.Work(1)
}

func (n *none) Stats() Stats { return n.stats }

// Validating: the leaky baseline never frees, so no re-validation is needed.
func (n *none) Validating() bool { return false }
