// Package smr implements the safe memory reclamation schemes the paper
// benchmarks Conditional Access against (Section V): a leaky baseline
// (none), epoch-based RCU (rcu), quiescent-state-based reclamation (qsbr),
// interval-based reclamation in its 2GEIBR variant (ibr), hazard pointers
// (hp), and hazard eras (he).
//
// All reclamation metadata that real implementations keep in shared memory —
// the global epoch/era word, per-thread reservations, hazard slots — lives
// in the simulated heap, one cache line per thread, so the coherence traffic
// these schemes generate (the fences and remote reads the paper blames for
// hp/he/ibr's slowness) is faithfully charged by the cache model. Retired
// lists are reclaimer-local bookkeeping, modeled with a small cycle charge
// per operation.
//
// Parameter defaults follow the paper: reclamation is attempted every 30
// retires and the epoch/era advances every 150 allocations.
package smr

import (
	"fmt"

	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// Node-layout contract shared with the data structures: the last word of
// every 64-byte node holds the birth era for the era-based schemes.
const (
	// BirthEraOff is the byte offset of the birth-era word in a node line.
	BirthEraOff = 7 * mem.WordBytes
	// MaxSlots is the number of protection slots every scheme must support
	// (the deepest requirement is three: grandparent/parent/leaf in the BST
	// and pred/curr/next rotation in the list).
	MaxSlots = 4
)

// inf marks an inactive reservation.
const inf = ^uint64(0)

// Options tunes a reclamation scheme. The zero value selects the paper's
// defaults.
type Options struct {
	// ReclaimEvery is the reclamation frequency: a scan/free pass runs after
	// this many retires by a thread. Paper default: 30.
	ReclaimEvery int
	// EpochEvery is the epoch frequency: the global epoch/era advances after
	// this many allocations by a thread. Paper default: 150.
	EpochEvery int
}

func (o Options) withDefaults() Options {
	if o.ReclaimEvery == 0 {
		o.ReclaimEvery = 30
	}
	if o.EpochEvery == 0 {
		o.EpochEvery = 150
	}
	return o
}

// Reclaimer is the hook interface the guarded (non-Conditional-Access) data
// structure variants are written against.
//
// The contract, per operation:
//
//	BeginOp(c)
//	... traversal: Protect(c, slot, node, src) before first dereferencing
//	    node, where src is the address of the pointer field node was loaded
//	    from (0 for immortal roots). false means restart the operation.
//	... writers: Retire(c, node) after a node is unlinked and can no longer
//	    be reached by new operations.
//	EndOp(c)
//
// Alloc must be used instead of Ctx.AllocNode so era-based schemes can stamp
// birth eras and advance epochs.
type Reclaimer interface {
	Name() string
	BeginOp(c *sim.Ctx)
	EndOp(c *sim.Ctx)
	Protect(c *sim.Ctx, slot int, node, src mem.Addr) bool
	Alloc(c *sim.Ctx) mem.Addr
	Retire(c *sim.Ctx, node mem.Addr)
	// Validating reports whether Protect's guarantee is conditional on the
	// structure re-validating link/mark invariants after each Protect (true
	// for the pointer- and era-publishing schemes hp and he, whose published
	// protection only covers nodes that were reachable at publish time).
	// Epoch- and interval-based schemes protect everything unreclaimed and
	// return false, letting traversals skip the extra validation reads.
	Validating() bool
	// Stats reports scheme-level counters for the harness.
	Stats() Stats
}

// Stats aggregates reclaimer activity.
type Stats struct {
	Retired    uint64
	Freed      uint64
	Scans      uint64
	MaxBacklog int // largest retired-not-yet-freed backlog of any thread
}

// New constructs a reclaimer by name for a machine with nThreads simulated
// threads over space. Valid names: none, rcu, qsbr, ibr, hp, he.
// Conditional Access is not a Reclaimer — it is a different code path in the
// data structures — so "ca" is rejected here.
func New(name string, space *mem.Space, nThreads int, o Options) (Reclaimer, error) {
	o = o.withDefaults()
	switch name {
	case "none":
		return newNone(), nil
	case "rcu":
		return newEpoch(space, nThreads, o, false), nil
	case "qsbr":
		return newEpoch(space, nThreads, o, true), nil
	case "ibr":
		return newIBR(space, nThreads, o), nil
	case "hp":
		return newHP(space, nThreads, o), nil
	case "he":
		return newHE(space, nThreads, o), nil
	default:
		return nil, fmt.Errorf("smr: unknown scheme %q", name)
	}
}

// Names lists the reclaimer schemes in the order the paper plots them.
func Names() []string { return []string{"none", "ibr", "rcu", "qsbr", "hp", "he"} }

// retiredNode is one entry of a per-thread retired list.
type retiredNode struct {
	addr   mem.Addr
	birth  uint64 // era-based schemes
	retire uint64 // epoch/era at retire time
}

// retireCost is the local bookkeeping charge for pushing one retired node.
const retireCost = 3
