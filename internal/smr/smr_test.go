package smr

import (
	"testing"

	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// await spins in simulated time until the flag word reaches v.
func await(c *sim.Ctx, flag mem.Addr, v uint64) {
	for c.Read(flag) != v {
		c.Work(20)
	}
}

func TestNewRejectsUnknownAndCA(t *testing.T) {
	s := mem.NewSpace()
	for _, name := range []string{"ca", "bogus", ""} {
		if _, err := New(name, s, 1, Options{}); err == nil {
			t.Errorf("New(%q) accepted", name)
		}
	}
	for _, name := range Names() {
		r, err := New(name, s, 2, Options{})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
		} else if r.Name() != name {
			t.Errorf("Name() = %q, want %q", r.Name(), name)
		}
	}
}

func TestNoneNeverFrees(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1, Check: true})
	r, _ := New("none", m.Space, 1, Options{ReclaimEvery: 1})
	m.Spawn(func(c *sim.Ctx) {
		for i := 0; i < 100; i++ {
			n := r.Alloc(c)
			c.Write(n, 1)
			r.Retire(c, n)
		}
	})
	m.Run()
	if st := m.Space.Stats(); st.NodeFrees != 0 || st.NodeLive() != 100 {
		t.Fatalf("none freed nodes: %+v", st)
	}
}

// TestReaderBlocksReclamation: for every real scheme, a node retired while a
// reader protects it must survive until the reader finishes, then be freed
// by a later scan.
func TestReaderBlocksReclamation(t *testing.T) {
	for _, name := range []string{"rcu", "qsbr", "ibr", "hp", "he"} {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 2, Seed: 2, Check: true})
			r, err := New(name, m.Space, 2, Options{ReclaimEvery: 1, EpochEvery: 1})
			if err != nil {
				t.Fatal(err)
			}
			flag := m.Space.AllocInfra()
			target := m.Space.AllocNode() // the node under contention
			ptrCell := m.Space.AllocInfra()
			m.Space.Write(ptrCell, target)
			m.Space.Write(target+BirthEraOff, 1) // plausible birth for era schemes

			var duringFrees, afterFrees uint64
			// Reader (thread 0): protect target, hold, release.
			m.Spawn(func(c *sim.Ctx) {
				r.BeginOp(c)
				if !r.Protect(c, 0, target, ptrCell) {
					t.Error("protect failed")
				}
				c.Write(flag, 1)
				await(c, flag, 2)
				r.EndOp(c)
				// qsbr announces at op boundaries: run one more no-op cycle
				// so the reservation moves past the retire epoch.
				r.BeginOp(c)
				r.EndOp(c)
				c.Write(flag, 3)
			})
			// Reclaimer (thread 1): retire target during protection. Its own
			// retires run inside proper op brackets so its reservation (and,
			// for qsbr, its quiescent announcements) do not block the world.
			churn := func(c *sim.Ctx, rounds int) {
				for i := 0; i < rounds; i++ {
					r.BeginOp(c)
					n := r.Alloc(c)
					c.Write(n, 1)
					r.Retire(c, n)
					r.EndOp(c)
				}
			}
			m.Spawn(func(c *sim.Ctx) {
				await(c, flag, 1)
				r.BeginOp(c)
				c.Write(target, 0xAA) // writer's store before retiring
				r.Retire(c, target)   // scan runs (ReclaimEvery=1)
				r.EndOp(c)
				churn(c, 5) // target must survive the churn
				duringFrees = m.Space.Stats().NodeFrees
				if !m.Space.Live(target) {
					t.Error("protected node was freed")
				}
				c.Write(flag, 2)
				await(c, flag, 3)
				// Reader done: more churn must eventually free target.
				for i := 0; i < 10 && m.Space.Live(target); i++ {
					churn(c, 1)
				}
				afterFrees = m.Space.Stats().NodeFrees
				if m.Space.Live(target) {
					t.Error("node never freed after protection ended")
				}
			})
			m.Run()
			if afterFrees <= duringFrees {
				t.Fatalf("no additional frees after release (%d -> %d)", duringFrees, afterFrees)
			}
		})
	}
}

// TestQSBRStalledThreadBlocksAll reproduces the paper's qsbr/rcu weakness:
// one thread that never again passes a quiescent state keeps every retired
// node unreclaimed, growing the footprint without bound.
func TestQSBRStalledThreadBlocksAll(t *testing.T) {
	m := sim.New(sim.Config{Cores: 2, Seed: 3, Check: true})
	r, _ := New("qsbr", m.Space, 2, Options{ReclaimEvery: 1, EpochEvery: 1})
	flag := m.Space.AllocInfra()
	m.Spawn(func(c *sim.Ctx) {
		r.BeginOp(c)
		r.EndOp(c) // announce once...
		c.Write(flag, 1)
		await(c, flag, 2) // ...then stall forever (no more quiescent states)
	})
	m.Spawn(func(c *sim.Ctx) {
		await(c, flag, 1)
		for i := 0; i < 100; i++ {
			n := r.Alloc(c)
			c.Write(n, 1)
			r.Retire(c, n)
		}
		if fr := m.Space.Stats().NodeFrees; fr != 0 {
			t.Errorf("stalled qsbr thread should block all frees, got %d", fr)
		}
		c.Write(flag, 2)
	})
	m.Run()
	if r.Stats().MaxBacklog < 90 {
		t.Fatalf("backlog = %d, want ~100", r.Stats().MaxBacklog)
	}
}

// TestHPBoundsBacklog: hazard pointers free everything not literally
// pointed at, so the backlog stays at the reclaim threshold even with a
// reader parked on one node.
func TestHPBoundsBacklog(t *testing.T) {
	m := sim.New(sim.Config{Cores: 2, Seed: 4, Check: true})
	r, _ := New("hp", m.Space, 2, Options{ReclaimEvery: 10})
	flag := m.Space.AllocInfra()
	parked := m.Space.AllocNode()
	m.Spawn(func(c *sim.Ctx) {
		r.BeginOp(c)
		r.Protect(c, 0, parked, 0)
		c.Write(flag, 1)
		await(c, flag, 2)
		r.EndOp(c)
	})
	m.Spawn(func(c *sim.Ctx) {
		await(c, flag, 1)
		c.Write(parked, 1)
		r.Retire(c, parked)
		for i := 0; i < 200; i++ {
			n := r.Alloc(c)
			c.Write(n, 1)
			r.Retire(c, n)
		}
		c.Write(flag, 2)
	})
	m.Run()
	if m.Space.Live(parked) != true {
		t.Fatal("hazard-protected node freed")
	}
	// Live = parked + backlog below threshold (+1 for timing slop).
	if live := m.Space.Stats().NodeLive(); live > 12 {
		t.Fatalf("hp live backlog = %d, want <= 12", live)
	}
}

func TestEraSchemesStampBirth(t *testing.T) {
	for _, name := range []string{"ibr", "he"} {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 5, Check: true})
			r, _ := New(name, m.Space, 1, Options{EpochEvery: 2})
			m.Spawn(func(c *sim.Ctx) {
				var lastBirth uint64
				for i := 0; i < 10; i++ {
					n := r.Alloc(c)
					b := c.Read(n + BirthEraOff)
					if b == 0 {
						t.Errorf("alloc %d: birth era not stamped", i)
					}
					if b < lastBirth {
						t.Errorf("birth eras went backwards: %d after %d", b, lastBirth)
					}
					lastBirth = b
					c.Write(n, 1)
					r.Retire(c, n)
				}
				if lastBirth < 3 {
					t.Errorf("era never advanced (EpochEvery=2, 10 allocs): last birth %d", lastBirth)
				}
			})
			m.Run()
		})
	}
}

func TestSchemeStatsAccumulate(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 6, Check: true})
	// EpochEvery must be small enough for the epoch to advance during the
	// test: epoch-based schemes can free a node only once every reservation
	// postdates its retire epoch.
	r, _ := New("rcu", m.Space, 1, Options{ReclaimEvery: 5, EpochEvery: 2})
	m.Spawn(func(c *sim.Ctx) {
		for i := 0; i < 20; i++ {
			r.BeginOp(c)
			n := r.Alloc(c)
			c.Write(n, 1)
			r.Retire(c, n)
			r.EndOp(c)
		}
	})
	m.Run()
	st := r.Stats()
	if st.Retired != 20 || st.Scans == 0 || st.Freed == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValidatingFlags(t *testing.T) {
	s := mem.NewSpace()
	want := map[string]bool{"none": false, "rcu": false, "qsbr": false, "ibr": false, "hp": true, "he": true}
	for name, v := range want {
		r, _ := New(name, s, 1, Options{})
		if r.Validating() != v {
			t.Errorf("%s.Validating() = %v, want %v", name, !v, v)
		}
	}
}
