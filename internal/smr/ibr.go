package smr

import (
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// ibr implements interval-based reclamation in the 2GEIBR variant (Wen et
// al., PPoPP'18) the paper benchmarks: every node carries its birth era;
// every thread advertises a reservation interval [lo, hi]; a retired node
// may be freed once its lifetime interval [birth, retire] intersects no
// thread's reservation.
//
// 2GE's optimization over plain per-read publication is that the upper bound
// is republished (with its fence) only when the global era has actually
// advanced since the thread last looked — most protected reads pay just the
// global-era load. That makes ibr cheaper than hp/he but still more
// expensive per read than rcu/qsbr/ca, matching the paper's ordering.
type ibr struct {
	o Options

	globalAddr mem.Addr
	resAddr    []mem.Addr // per-thread line: word0 = lo, word1 = hi

	perThread []ibrThread
	stats     Stats
}

type ibrThread struct {
	allocs   uint64
	cachedHi uint64 // value last published to hi (avoids re-publishing)
	retired  []retiredNode
}

func newIBR(space *mem.Space, nThreads int, o Options) *ibr {
	r := &ibr{o: o}
	r.globalAddr = space.AllocInfra()
	space.Write(r.globalAddr, 1)
	r.resAddr = make([]mem.Addr, nThreads)
	for t := range r.resAddr {
		r.resAddr[t] = space.AllocInfra()
		// Idle interval [inf, 0] intersects nothing.
		space.Write(r.resAddr[t], inf)
		space.Write(r.resAddr[t]+mem.WordBytes, 0)
	}
	r.perThread = make([]ibrThread, nThreads)
	return r
}

func (r *ibr) Name() string { return "ibr" }

func (r *ibr) BeginOp(c *sim.Ctx) {
	t := c.ThreadID()
	e := c.Read(r.globalAddr)
	c.Write(r.resAddr[t], e)               // lo
	c.Write(r.resAddr[t]+mem.WordBytes, e) // hi (same line: one upgrade)
	c.Fence()
	r.perThread[t].cachedHi = e
}

func (r *ibr) EndOp(c *sim.Ctx) {
	t := c.ThreadID()
	c.Write(r.resAddr[t], inf)
	c.Write(r.resAddr[t]+mem.WordBytes, 0)
	r.perThread[t].cachedHi = 0
}

// Protect extends the reservation's upper bound to the current era before
// the caller dereferences node. The fence is paid only when the era moved.
func (r *ibr) Protect(c *sim.Ctx, slot int, node, src mem.Addr) bool {
	t := c.ThreadID()
	pt := &r.perThread[t]
	e := c.Read(r.globalAddr)
	if e != pt.cachedHi {
		c.Write(r.resAddr[t]+mem.WordBytes, e)
		c.Fence()
		pt.cachedHi = e
	}
	return true
}

func (r *ibr) Alloc(c *sim.Ctx) mem.Addr {
	t := c.ThreadID()
	pt := &r.perThread[t]
	pt.allocs++
	if pt.allocs%uint64(r.o.EpochEvery) == 0 {
		c.FetchAdd(r.globalAddr, 1)
	}
	node := c.AllocNode()
	// Stamp the birth era. The store is part of node initialization; the
	// line was just allocated so this is typically a cheap upgrade.
	c.Write(node+BirthEraOff, c.Read(r.globalAddr))
	return node
}

func (r *ibr) Retire(c *sim.Ctx, node mem.Addr) {
	t := c.ThreadID()
	pt := &r.perThread[t]
	pt.retired = append(pt.retired, retiredNode{
		addr:   node,
		birth:  c.Read(node + BirthEraOff),
		retire: c.Read(r.globalAddr),
	})
	r.stats.Retired++
	c.Work(retireCost)
	if len(pt.retired) >= r.o.ReclaimEvery {
		r.scan(c, pt)
	}
	if len(pt.retired) > r.stats.MaxBacklog {
		r.stats.MaxBacklog = len(pt.retired)
	}
}

func (r *ibr) scan(c *sim.Ctx, pt *ibrThread) {
	c.BeginPause() // the pass is a reclamation pause for the triggering op
	defer c.EndPause()
	r.stats.Scans++
	type ival struct{ lo, hi uint64 }
	ivals := make([]ival, len(r.resAddr))
	for t, ra := range r.resAddr {
		ivals[t] = ival{lo: c.Read(ra), hi: c.Read(ra + mem.WordBytes)}
	}
	kept := pt.retired[:0]
	freed0 := r.stats.Freed
	for _, rn := range pt.retired {
		conflict := false
		for _, iv := range ivals {
			// Lifetime [birth, retire] vs reservation [lo, hi].
			if iv.lo <= rn.retire && rn.birth <= iv.hi {
				conflict = true
				break
			}
		}
		if conflict {
			kept = append(kept, rn)
		} else {
			c.Free(rn.addr)
			r.stats.Freed++
		}
	}
	pt.retired = kept
	c.TraceScan(r.Name(), int(r.stats.Freed-freed0), len(kept))
}

func (r *ibr) Stats() Stats { return r.stats }

// Validating: interval reservations protect every covered node.
func (r *ibr) Validating() bool { return false }
