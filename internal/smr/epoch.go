package smr

import (
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// epoch implements the two epoch-based schemes:
//
//   - rcu: readers announce the global epoch with a fenced store on every
//     operation entry and withdraw on exit. This is epoch-based reclamation
//     in the style the paper's benchmark calls "rcu".
//   - qsbr: quiescent-state-based reclamation. Threads announce the epoch
//     they last observed at operation boundaries (their quiescent states)
//     with a plain store and never withdraw. Cheaper than rcu (no fence, no
//     begin-of-op work) but a single stalled thread blocks all reclamation —
//     the unbounded-footprint weakness the paper points out.
//
// Both have zero per-read overhead, which is why the paper finds them (with
// none) to be the fastest baselines. Reclamation frees a retired node once
// its retire epoch precedes every announced reservation.
type epoch struct {
	qsbr bool
	o    Options

	globalAddr mem.Addr   // global epoch word
	resAddr    []mem.Addr // per-thread reservation word, one line each

	perThread []epochThread
	stats     Stats
}

type epochThread struct {
	allocs  uint64
	retired []retiredNode
}

func newEpoch(space *mem.Space, nThreads int, o Options, qsbr bool) *epoch {
	e := &epoch{qsbr: qsbr, o: o}
	e.globalAddr = space.AllocInfra()
	space.Write(e.globalAddr, 1) // epochs start at 1 so 0 reads as "idle"
	e.resAddr = make([]mem.Addr, nThreads)
	for t := range e.resAddr {
		e.resAddr[t] = space.AllocInfra()
		if qsbr {
			// qsbr threads have not passed a quiescent state yet; epoch 0
			// blocks reclamation until they first announce.
			space.Write(e.resAddr[t], 0)
		} else {
			space.Write(e.resAddr[t], inf)
		}
	}
	e.perThread = make([]epochThread, nThreads)
	return e
}

func (e *epoch) Name() string {
	if e.qsbr {
		return "qsbr"
	}
	return "rcu"
}

func (e *epoch) BeginOp(c *sim.Ctx) {
	if e.qsbr {
		return
	}
	t := c.ThreadID()
	v := c.Read(e.globalAddr)
	c.Write(e.resAddr[t], v)
	c.Fence()
}

func (e *epoch) EndOp(c *sim.Ctx) {
	t := c.ThreadID()
	if e.qsbr {
		// Operation boundaries are the quiescent states: announce the
		// current epoch with a plain (unfenced) store.
		v := c.Read(e.globalAddr)
		c.Write(e.resAddr[t], v)
		return
	}
	c.Write(e.resAddr[t], inf)
}

// Protect is free: epoch-based readers pay nothing per read.
func (e *epoch) Protect(c *sim.Ctx, slot int, node, src mem.Addr) bool { return true }

func (e *epoch) Alloc(c *sim.Ctx) mem.Addr {
	t := c.ThreadID()
	pt := &e.perThread[t]
	pt.allocs++
	if pt.allocs%uint64(e.o.EpochEvery) == 0 {
		c.FetchAdd(e.globalAddr, 1)
	}
	return c.AllocNode()
}

func (e *epoch) Retire(c *sim.Ctx, node mem.Addr) {
	t := c.ThreadID()
	pt := &e.perThread[t]
	pt.retired = append(pt.retired, retiredNode{addr: node, retire: c.Read(e.globalAddr)})
	e.stats.Retired++
	c.Work(retireCost)
	if len(pt.retired) >= e.o.ReclaimEvery {
		e.scan(c, pt)
	}
	if len(pt.retired) > e.stats.MaxBacklog {
		e.stats.MaxBacklog = len(pt.retired)
	}
}

// scan frees every retired node whose retire epoch precedes all announced
// reservations. The reservation reads are real shared-memory reads, so the
// scan cost (and the cache misses it takes) is charged to the reclaimer.
func (e *epoch) scan(c *sim.Ctx, pt *epochThread) {
	// The whole pass is a reclamation pause: the triggering operation
	// absorbs every cycle charged here (the paper's batching critique).
	c.BeginPause()
	defer c.EndPause()
	e.stats.Scans++
	minRes := uint64(inf)
	for _, ra := range e.resAddr {
		if v := c.Read(ra); v < minRes {
			minRes = v
		}
	}
	kept := pt.retired[:0]
	freed0 := e.stats.Freed
	for _, rn := range pt.retired {
		if rn.retire < minRes {
			c.Free(rn.addr)
			e.stats.Freed++
		} else {
			kept = append(kept, rn)
		}
	}
	pt.retired = kept
	c.TraceScan(e.Name(), int(e.stats.Freed-freed0), len(kept))
}

func (e *epoch) Stats() Stats { return e.stats }

// Validating: epoch reservations protect every unreclaimed node.
func (e *epoch) Validating() bool { return false }
