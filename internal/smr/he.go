package smr

import (
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// he implements hazard eras (Ramalhete & Correia, SPAA'17): hazard pointers'
// slot discipline with epochs' node metadata. A thread protects a node by
// publishing the current era into a slot (fence included, like hp), then
// validating both that the source pointer still names the node and that the
// node's birth era is covered by the published era — retrying the publish if
// the global era raced ahead. A retired node is freed once no slot holds an
// era inside the node's [birth, retire] lifetime.
//
// Compared to hp, he trades the per-node publish for a per-era publish (a
// slot already holding the current era can be reused for free), but the
// validation loop still fences, keeping it in the paper's slow group.
type he struct {
	o Options

	globalAddr mem.Addr
	resAddr    []mem.Addr // per-thread line: MaxSlots era words

	perThread []heThread
	stats     Stats
}

type heThread struct {
	allocs  uint64
	slotVal [MaxSlots]uint64
	retired []retiredNode
}

func newHE(space *mem.Space, nThreads int, o Options) *he {
	h := &he{o: o}
	h.globalAddr = space.AllocInfra()
	space.Write(h.globalAddr, 1)
	h.resAddr = make([]mem.Addr, nThreads)
	for t := range h.resAddr {
		h.resAddr[t] = space.AllocInfra() // zeroed: era 0 = idle slot
	}
	h.perThread = make([]heThread, nThreads)
	return h
}

func (h *he) Name() string { return "he" }

func (h *he) slotAddr(t, slot int) mem.Addr {
	return h.resAddr[t] + mem.Addr(slot)*mem.WordBytes
}

func (h *he) BeginOp(c *sim.Ctx) {}

func (h *he) EndOp(c *sim.Ctx) {
	t := c.ThreadID()
	pt := &h.perThread[t]
	for s := range pt.slotVal {
		if pt.slotVal[s] != 0 {
			c.Write(h.slotAddr(t, s), 0)
			pt.slotVal[s] = 0
		}
	}
}

// Protect publishes the current era to slot and validates coverage:
// src (if nonzero) must still point at node, and node's birth era must not
// exceed the published era. The loop republishes if the era advanced
// between the publish and the birth check.
func (h *he) Protect(c *sim.Ctx, slot int, node, src mem.Addr) bool {
	t := c.ThreadID()
	pt := &h.perThread[t]
	for attempt := 0; attempt < 3; attempt++ {
		e := c.Read(h.globalAddr)
		if pt.slotVal[slot] != e {
			c.Write(h.slotAddr(t, slot), e)
			pt.slotVal[slot] = e
			c.Fence()
		}
		if src != 0 && c.Read(src) != node {
			return false
		}
		if src == 0 {
			return true
		}
		// The node is still reachable, so it is live and its birth word is
		// safe to read. If it was born after the era we published, the
		// published era does not cover it: republish.
		if c.Read(node+BirthEraOff) <= e {
			return true
		}
	}
	return false
}

func (h *he) Alloc(c *sim.Ctx) mem.Addr {
	t := c.ThreadID()
	pt := &h.perThread[t]
	pt.allocs++
	if pt.allocs%uint64(h.o.EpochEvery) == 0 {
		c.FetchAdd(h.globalAddr, 1)
	}
	node := c.AllocNode()
	c.Write(node+BirthEraOff, c.Read(h.globalAddr))
	return node
}

func (h *he) Retire(c *sim.Ctx, node mem.Addr) {
	t := c.ThreadID()
	pt := &h.perThread[t]
	pt.retired = append(pt.retired, retiredNode{
		addr:   node,
		birth:  c.Read(node + BirthEraOff),
		retire: c.Read(h.globalAddr),
	})
	h.stats.Retired++
	c.Work(retireCost)
	if len(pt.retired) >= h.o.ReclaimEvery {
		h.scan(c, pt)
	}
	if len(pt.retired) > h.stats.MaxBacklog {
		h.stats.MaxBacklog = len(pt.retired)
	}
}

func (h *he) scan(c *sim.Ctx, pt *heThread) {
	c.BeginPause() // the pass is a reclamation pause for the triggering op
	defer c.EndPause()
	h.stats.Scans++
	eras := make([]uint64, 0, len(h.resAddr)*MaxSlots)
	for t := range h.resAddr {
		for s := 0; s < MaxSlots; s++ {
			if v := c.Read(h.slotAddr(t, s)); v != 0 {
				eras = append(eras, v)
			}
		}
	}
	kept := pt.retired[:0]
	freed0 := h.stats.Freed
	for _, rn := range pt.retired {
		conflict := false
		for _, e := range eras {
			if rn.birth <= e && e <= rn.retire {
				conflict = true
				break
			}
		}
		if conflict {
			kept = append(kept, rn)
		} else {
			c.Free(rn.addr)
			h.stats.Freed++
		}
	}
	pt.retired = kept
	c.TraceScan(h.Name(), int(h.stats.Freed-freed0), len(kept))
}

func (h *he) Stats() Stats { return h.stats }

// Validating: like hp, hazard eras require link/mark re-validation.
func (h *he) Validating() bool { return true }
