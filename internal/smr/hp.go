package smr

import (
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// hp implements Michael's hazard pointers. Each thread owns MaxSlots hazard
// slots on a private cache line. Protecting a node publishes its address to
// a slot, drains the store buffer (the fence that dominates hp's per-read
// cost), and re-reads the source pointer to confirm the node is still
// reachable; a reclaimer frees a retired node only after scanning every
// slot of every thread and finding the node in none of them.
//
// hp bounds the retired backlog at nThreads*MaxSlots outstanding nodes, the
// tightest bound of the baselines — paid for with the per-read fence and the
// O(threads) scan, which is why the paper measures it among the slowest.
type hp struct {
	o       Options
	resAddr []mem.Addr // per-thread line: MaxSlots hazard words

	perThread []hpThread
	stats     Stats
}

type hpThread struct {
	used    [MaxSlots]bool
	retired []retiredNode
}

func newHP(space *mem.Space, nThreads int, o Options) *hp {
	h := &hp{o: o}
	h.resAddr = make([]mem.Addr, nThreads)
	for t := range h.resAddr {
		h.resAddr[t] = space.AllocInfra() // zeroed: all slots empty
	}
	h.perThread = make([]hpThread, nThreads)
	return h
}

func (h *hp) Name() string { return "hp" }

func (h *hp) BeginOp(c *sim.Ctx) {}

// EndOp clears the slots published during the operation (plain stores; the
// next Protect's fence orders them).
func (h *hp) EndOp(c *sim.Ctx) {
	t := c.ThreadID()
	pt := &h.perThread[t]
	for s := range pt.used {
		if pt.used[s] {
			c.Write(h.slotAddr(t, s), 0)
			pt.used[s] = false
		}
	}
}

func (h *hp) slotAddr(t, slot int) mem.Addr {
	return h.resAddr[t] + mem.Addr(slot)*mem.WordBytes
}

// Protect publishes node to slot, fences, and validates that src still
// points at node. src == 0 skips validation (immortal roots such as
// sentinels). Returning false obliges the caller to restart its operation.
func (h *hp) Protect(c *sim.Ctx, slot int, node, src mem.Addr) bool {
	t := c.ThreadID()
	pt := &h.perThread[t]
	c.Write(h.slotAddr(t, slot), node)
	pt.used[slot] = true
	c.Fence()
	if src == 0 {
		return true
	}
	return c.Read(src) == node
}

func (h *hp) Alloc(c *sim.Ctx) mem.Addr { return c.AllocNode() }

func (h *hp) Retire(c *sim.Ctx, node mem.Addr) {
	t := c.ThreadID()
	pt := &h.perThread[t]
	pt.retired = append(pt.retired, retiredNode{addr: node})
	h.stats.Retired++
	c.Work(retireCost)
	if len(pt.retired) >= h.o.ReclaimEvery {
		h.scan(c, pt)
	}
	if len(pt.retired) > h.stats.MaxBacklog {
		h.stats.MaxBacklog = len(pt.retired)
	}
}

// scan reads every hazard slot of every thread and frees the retired nodes
// protected by none of them.
func (h *hp) scan(c *sim.Ctx, pt *hpThread) {
	c.BeginPause() // the pass is a reclamation pause for the triggering op
	defer c.EndPause()
	h.stats.Scans++
	hazards := make(map[mem.Addr]struct{}, len(h.resAddr)*MaxSlots)
	for t := range h.resAddr {
		for s := 0; s < MaxSlots; s++ {
			if v := c.Read(h.slotAddr(t, s)); v != 0 {
				hazards[v] = struct{}{}
			}
		}
	}
	kept := pt.retired[:0]
	freed0 := h.stats.Freed
	for _, rn := range pt.retired {
		if _, hazardous := hazards[rn.addr]; hazardous {
			kept = append(kept, rn)
		} else {
			c.Free(rn.addr)
			h.stats.Freed++
		}
	}
	pt.retired = kept
	c.TraceScan(h.Name(), int(h.stats.Freed-freed0), len(kept))
}

func (h *hp) Stats() Stats { return h.stats }

// Validating: hazard pointers only protect nodes reachable at publish time,
// so traversals must re-validate links/marks after each Protect.
func (h *hp) Validating() bool { return true }
