// The JSONL event log: one JSON object per line, appendable and tailable,
// so a future coordinator or caserve can follow a run without touching its
// stdout. Event kinds: run_start, point_start, point_done, trials (batched
// commit counter), store_flush, run_done. Point events are emitted only
// from the sweeps' in-order reporting loop, so they are strictly sequential
// even when the pool completes trials out of order.
package obs

import (
	"encoding/json"
	"io"
	"time"
)

// event is the wire form of one log line. Fields are per-kind; Point is a
// pointer so point 0 survives omitempty.
type event struct {
	Ev     string    `json:"ev"`
	T      time.Time `json:"t"`
	Run    string    `json:"run,omitempty"`
	Tool   string    `json:"tool,omitempty"`
	Engine string    `json:"engine,omitempty"`
	Point  *int      `json:"point,omitempty"`
	Label  string    `json:"label,omitempty"`
	Done   int       `json:"done,omitempty"`
	Warm   int       `json:"warm,omitempty"`
	Trials int       `json:"trials,omitempty"`

	Records int `json:"records,omitempty"`
	Bytes   int `json:"bytes,omitempty"`

	WallNanos int64  `json:"wallNanos,omitempty"`
	Error     string `json:"error,omitempty"`
}

// eventLog serializes events onto one writer. Callers already hold r.mu, so
// no extra locking; write errors are dropped — the event stream is advisory
// and must never fail a run.
type eventLog struct {
	w io.Writer

	lastTrials     time.Time
	everTrialsSent bool
}

func (l *eventLog) emit(ev event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	l.w.Write(append(data, '\n'))
}

// trialsEventEvery batches the per-commit counter events: one "trials" line
// per interval, not per trial.
const trialsEventEvery = time.Second

// maybeTrialsEventLocked emits a batched trial-commit counter event when
// enough time has passed since the last one. Caller holds r.mu.
func (r *Rec) maybeTrialsEventLocked() {
	l := r.events
	if l == nil {
		return
	}
	now := r.now()
	if l.everTrialsSent && now.Sub(l.lastTrials) < trialsEventEvery {
		return
	}
	l.lastTrials = now
	l.everTrialsSent = true
	l.emit(event{Ev: "trials", T: now, Done: r.done, Warm: r.warm, Trials: r.planned})
}
