// Shared profiling entry points. Every CLI registers the same three flags —
// -cpuprofile, -memprofile, -exectrace — through one Profiler, so profiling
// any command is uniform and the start/stop ordering (trace and CPU profile
// stopped before the heap snapshot) lives in one place.
package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiler owns the profiling flag values and the open output files.
type Profiler struct {
	CPUPath   string
	MemPath   string
	TracePath string

	cpuFile   *os.File
	traceFile *os.File
}

// Register installs the shared profiling flags on fs.
func (p *Profiler) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemPath, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&p.TracePath, "exectrace", "", "write a runtime execution trace to this file")
}

// Start begins whichever profiles were requested. On error everything
// already started is stopped, so a failed Start needs no Stop.
func (p *Profiler) Start() error {
	if p.CPUPath != "" {
		f, err := os.Create(p.CPUPath)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: starting cpu profile: %w", err)
		}
		p.cpuFile = f
	}
	if p.TracePath != "" {
		f, err := os.Create(p.TracePath)
		if err != nil {
			p.stopCPU()
			return fmt.Errorf("obs: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return fmt.Errorf("obs: starting execution trace: %w", err)
		}
		p.traceFile = f
	}
	return nil
}

func (p *Profiler) stopCPU() error {
	if p.cpuFile == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpuFile.Close()
	p.cpuFile = nil
	return err
}

// Stop finishes every active profile: CPU profile and execution trace are
// flushed and closed, then the heap snapshot (post-GC, so it shows retained
// memory, not garbage) is written. Safe to call when nothing was started.
func (p *Profiler) Stop() error {
	var first error
	if err := p.stopCPU(); err != nil && first == nil {
		first = err
	}
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		p.traceFile = nil
	}
	if p.MemPath != "" {
		f, err := os.Create(p.MemPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if first != nil {
		return fmt.Errorf("obs: stopping profiles: %w", first)
	}
	return nil
}
