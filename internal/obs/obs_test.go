package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestNilRecorderIsNoOp pins the nil-safety contract: instrumented code
// calls a nil *Rec / nil *WorkerRec unconditionally.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Rec
	if got := r.AddPoints([]string{"x"}, 1); got != 0 {
		t.Errorf("nil AddPoints = %d, want 0", got)
	}
	w := r.Worker(3)
	if w != nil {
		t.Fatalf("nil Rec Worker = %v, want nil", w)
	}
	t0 := w.Start(PhaseSimulate)
	w.End(PhaseSimulate, t0)
	w.Warm()
	w.Commit(0)
	w.Abandon()
	r.PointStart(0)
	r.PointDone(0)
	r.StoreFlushed(1, 2)
	r.SetStore(StoreRollup{})
	if err := r.Close(nil); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if id := r.RunID(); id != "" {
		t.Errorf("nil RunID = %q", id)
	}
	if m := r.Manifest(); m.RunID != "" {
		t.Errorf("nil Manifest = %+v", m)
	}
}

// TestTrialPathDoesNotAllocate pins the tentpole's zero-allocation
// invariant: with no progress or event writer configured, the per-trial
// recording path (Start, End, Warm, Commit, Abandon) performs no heap
// allocation.
func TestTrialPathDoesNotAllocate(t *testing.T) {
	r := New(Config{Tool: "test"})
	r.AddPoints([]string{"p"}, 1<<30)
	w := r.Worker(0)
	allocs := testing.AllocsPerRun(100, func() {
		t0 := w.Start(PhasePrepare)
		w.End(PhasePrepare, t0)
		t0 = w.Start(PhaseLookup)
		w.End(PhaseLookup, t0)
		w.Warm()
		t0 = w.Start(PhaseStore)
		w.End(PhaseStore, t0)
		w.Commit(0)
	})
	if allocs != 0 {
		t.Errorf("trial path allocates %.1f times per trial, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		t0 := w.Start(PhaseSimulate)
		w.End(PhaseSimulate, t0)
		w.Abandon()
	})
	if allocs != 0 {
		t.Errorf("abandon path allocates %.1f times per trial, want 0", allocs)
	}
}

// TestAggregation drives two workers across two points and checks the
// manifest rollups: per-point, per-worker, totals, and warm counting.
func TestAggregation(t *testing.T) {
	r := New(Config{Tool: "test", EngineTag: "tag123"})
	base := r.AddPoints([]string{"a", "b"}, 2)
	if base != 0 {
		t.Fatalf("first AddPoints base = %d, want 0", base)
	}
	if more := r.AddPoints([]string{"c"}, 1); more != 2 {
		t.Fatalf("second AddPoints base = %d, want 2", more)
	}

	w0, w1 := r.Worker(0), r.Worker(1)
	commit := func(w *WorkerRec, point int, warm bool) {
		t0 := w.Start(PhaseSimulate)
		time.Sleep(time.Millisecond)
		w.End(PhaseSimulate, t0)
		if warm {
			w.Warm()
		}
		w.Commit(point)
	}
	commit(w0, 0, false)
	commit(w1, 0, true)
	commit(w0, 1, true)
	commit(w1, 2, false)

	m := r.Manifest()
	if m.TrialsPlanned != 5 {
		t.Errorf("TrialsPlanned = %d, want 5 (2*2+1)", m.TrialsPlanned)
	}
	if m.TrialsDone != 4 || m.WarmHits != 2 {
		t.Errorf("TrialsDone/WarmHits = %d/%d, want 4/2", m.TrialsDone, m.WarmHits)
	}
	if len(m.Points) != 3 || len(m.Workers) != 2 {
		t.Fatalf("points/workers = %d/%d, want 3/2", len(m.Points), len(m.Workers))
	}
	if p := m.Points[0]; p.Label != "a" || p.Trials != 2 || p.Warm != 1 {
		t.Errorf("point a = %+v, want 2 trials 1 warm", p)
	}
	if p := m.Points[2]; p.Label != "c" || p.Trials != 1 || p.Warm != 0 {
		t.Errorf("point c = %+v, want 1 trial 0 warm", p)
	}
	if m.SimulateNanos < 4*int64(time.Millisecond) {
		t.Errorf("total SimulateNanos = %d, want >= 4ms", m.SimulateNanos)
	}
	var pointSum, workerSum int64
	for _, p := range m.Points {
		pointSum += p.Total()
	}
	for _, w := range m.Workers {
		workerSum += w.Total()
	}
	if pointSum != workerSum || workerSum != m.Total() {
		t.Errorf("span conservation: points %d, workers %d, total %d", pointSum, workerSum, m.Total())
	}
	if m.EngineTag != "tag123" {
		t.Errorf("EngineTag = %q", m.EngineTag)
	}
}

// TestAbandonDiscardsPartialTrial pins the error-path hygiene: spans of a
// failed trial must not leak into a reused worker's next commit.
func TestAbandonDiscardsPartialTrial(t *testing.T) {
	r := New(Config{Tool: "test"})
	r.AddPoints([]string{"p"}, 2)
	w := r.Worker(0)
	t0 := w.Start(PhaseSimulate)
	time.Sleep(time.Millisecond)
	w.End(PhaseSimulate, t0)
	w.Warm()
	w.Abandon()
	w.Commit(0) // empty trial: nothing recorded between Abandon and Commit
	m := r.Manifest()
	if m.SimulateNanos != 0 {
		t.Errorf("SimulateNanos = %d after abandon, want 0", m.SimulateNanos)
	}
	if m.WarmHits != 0 {
		t.Errorf("WarmHits = %d after abandon, want 0", m.WarmHits)
	}
	if m.TrialsDone != 1 {
		t.Errorf("TrialsDone = %d, want 1", m.TrialsDone)
	}
}

// TestEventLog drives a run with an event writer and checks the JSONL
// stream: kinds in order, sequential point events, and a run_done trailer.
func TestEventLog(t *testing.T) {
	var buf bytes.Buffer
	r := New(Config{Tool: "cabench", EngineTag: "e1", Events: &buf})
	r.AddPoints([]string{"a", "b"}, 1)
	w := r.Worker(0)
	for i := 0; i < 2; i++ {
		r.PointStart(i)
		w.Start(PhaseSimulate)
		w.Commit(i)
		r.PointDone(i)
	}
	r.StoreFlushed(3, 4096)
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	type ev struct {
		Ev     string `json:"ev"`
		Run    string `json:"run"`
		Point  *int   `json:"point"`
		Label  string `json:"label"`
		Trials int    `json:"trials"`
	}
	var evs []ev
	for _, l := range lines {
		var e ev
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("unparsable event %q: %v", l, err)
		}
		evs = append(evs, e)
	}
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, e.Ev)
	}
	want := []string{"run_start", "point_start", "trials", "point_done", "point_start", "point_done", "store_flush", "run_done"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
	// point 0 must serialize explicitly (a *int field, not omitted as zero).
	if evs[1].Point == nil || *evs[1].Point != 0 || evs[1].Label != "a" {
		t.Errorf("first point_start = %+v, want point 0 label a", evs[1])
	}
	if evs[4].Point == nil || *evs[4].Point != 1 {
		t.Errorf("second point_start = %+v, want point 1", evs[4])
	}
	if evs[3].Trials != 1 {
		t.Errorf("point_done trials = %d, want 1", evs[3].Trials)
	}
	if evs[0].Run == "" || evs[0].Run != evs[len(evs)-1].Run {
		t.Errorf("run id mismatch: start %q, done %q", evs[0].Run, evs[len(evs)-1].Run)
	}
}

// TestManifestWriteIsAtomic checks Close's manifest write: the file parses,
// no temp residue is left behind, a run error is recorded, and Close is
// idempotent.
func TestManifestWriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{Tool: "camem", ManifestDir: dir, Spec: map[string]int{"threads": 16}})
	r.AddPoints([]string{"p"}, 1)
	w := r.Worker(0)
	w.Start(PhaseSimulate)
	w.Commit(0)
	runErr := errors.New("simulated failure")
	if err := r.Close(runErr); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(nil); err != nil { // idempotent: second close is a no-op
		t.Fatal(err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("manifest dir holds %d entries, want exactly 1 (no temp residue)", len(ents))
	}
	path := filepath.Join(dir, ents[0].Name())
	if want := ManifestPath(dir, r.RunID()); path != want {
		t.Errorf("manifest at %s, want %s", path, want)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.RunID != r.RunID() || m.Tool != "camem" {
		t.Errorf("manifest identity = %q/%q", m.RunID, m.Tool)
	}
	if m.Error != "simulated failure" {
		t.Errorf("manifest Error = %q, want the run error", m.Error)
	}
	var spec map[string]int
	if err := json.Unmarshal(m.Config, &spec); err != nil || spec["threads"] != 16 {
		t.Errorf("manifest Config = %s (%v)", m.Config, err)
	}
	if m.TrialsDone != 1 {
		t.Errorf("TrialsDone = %d, want 1", m.TrialsDone)
	}
}

// TestManifestPathWinsOverDir pins the precedence: an explicit -manifest
// path beats the store-derived runs/ directory.
func TestManifestPathWinsOverDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "explicit.json")
	r := New(Config{Tool: "t", ManifestPath: path, ManifestDir: filepath.Join(dir, "runs")})
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("explicit manifest path not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runs")); !os.IsNotExist(err) {
		t.Errorf("runs/ dir created despite explicit path")
	}
}

// TestListRuns checks ordering by start time and that unparsable files are
// skipped rather than failing the listing.
func TestListRuns(t *testing.T) {
	dir := t.TempDir()
	mk := func(id string, start time.Time) {
		m := Manifest{RunID: id, Tool: "t", Start: start}
		data, _ := json.Marshal(m)
		if err := os.WriteFile(ManifestPath(dir, id), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t1 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	mk("later", t1.Add(time.Hour))
	mk("earlier", t1)
	if err := os.WriteFile(filepath.Join(dir, "junk.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	runs, err := ListRuns(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].RunID != "earlier" || runs[1].RunID != "later" {
		var ids []string
		for _, m := range runs {
			ids = append(ids, m.RunID)
		}
		t.Fatalf("ListRuns = %v, want [earlier later]", ids)
	}
}

// TestProgressPlainMode drives the rate-limited plain (non-TTY) renderer
// with a fake clock.
func TestProgressPlainMode(t *testing.T) {
	var buf bytes.Buffer
	now := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	r := New(Config{Tool: "t", Progress: &buf, now: clock})
	r.AddPoints([]string{"a", "b"}, 1)
	w := r.Worker(0)

	now = now.Add(time.Second)
	w.Start(PhaseSimulate)
	w.Warm()
	w.Commit(0)
	now = now.Add(10 * time.Millisecond) // within the 1s plain rate limit
	w.Start(PhaseSimulate)
	w.Commit(1)
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("%d progress lines after rapid commits, want 1 (rate limited): %q", got, buf.String())
	}
	if !strings.Contains(buf.String(), "progress: 1/2 trials, 1 trials/s, eta 1s, warm 100%") {
		t.Errorf("first line = %q", buf.String())
	}

	buf.Reset()
	now = now.Add(time.Minute)
	if err := r.Close(nil); err != nil { // final render forces through
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "progress: 2/2 trials") {
		t.Errorf("final line = %q", buf.String())
	}
	if strings.Contains(buf.String(), "\r") {
		t.Errorf("plain mode used carriage returns: %q", buf.String())
	}
}

// TestProgressOffByDefault: no writer, no output machinery — the progress
// state stays untouched.
func TestProgressOffByDefault(t *testing.T) {
	r := New(Config{Tool: "t"})
	r.AddPoints([]string{"a"}, 1)
	w := r.Worker(0)
	w.Commit(0)
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
	if r.prog.w != nil || r.events != nil {
		t.Error("writers configured without being asked")
	}
}

// TestRunIDFormat pins the sortable run id shape the runs/ directory and
// calab rely on.
func TestRunIDFormat(t *testing.T) {
	id := newRunID("cabench", time.Date(2026, 8, 8, 13, 45, 6, 123456789, time.UTC))
	if id != "20260808T134506-cabench-123456" {
		t.Errorf("newRunID = %q", id)
	}
}

func TestVersionLine(t *testing.T) {
	line := VersionLine("cabench", "abc123")
	if !strings.HasPrefix(line, "cabench ") || !strings.HasSuffix(line, "engine abc123") {
		t.Errorf("VersionLine = %q", line)
	}
}

// TestProfiler exercises the shared -cpuprofile/-memprofile/-exectrace
// plumbing end to end: all three files exist and are non-empty after Stop.
func TestProfiler(t *testing.T) {
	dir := t.TempDir()
	p := Profiler{
		CPUPath:   filepath.Join(dir, "cpu.pprof"),
		MemPath:   filepath.Join(dir, "mem.pprof"),
		TracePath: filepath.Join(dir, "trace.out"),
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	sink := 0
	for i := 0; i < 1000; i++ {
		sink += i
	}
	_ = sink
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUPath, p.MemPath, p.TracePath} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	if err := p.Stop(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestSessionEventsFlushedOnError pins the -events teardown contract: the
// buffered JSONL writer is flushed and the file closed on the failure path
// too, so a run that errors out (stores failing, trials abandoned) still
// leaves a complete event log ending in the run_done trailer that carries
// the error.
func TestSessionEventsFlushedOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	c := CLIFlags{Events: path}
	sess, err := c.Start(SessionConfig{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Rec == nil {
		t.Fatal("Rec missing with -events set")
	}
	sess.Rec.AddPoints([]string{"a"}, 2)
	w := sess.Rec.Worker(0)
	sess.Rec.PointStart(0)
	w.Start(PhaseSimulate)
	w.Commit(0)
	w.Start(PhaseSimulate)
	w.Abandon() // the failing trial's spans are discarded, not committed
	if err := sess.Close(errors.New("store write failed")); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("event log holds %d lines, want at least run_start/trials/run_done:\n%s", len(lines), data)
	}
	type ev struct {
		Ev    string `json:"ev"`
		Error string `json:"error"`
	}
	var last ev
	for _, l := range lines {
		var e ev
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("unparsable (truncated?) event %q: %v", l, err)
		}
		last = e
	}
	if last.Ev != "run_done" || last.Error != "store write failed" {
		t.Errorf("final event = %+v, want run_done carrying the run error", last)
	}
}

// TestProgressBoundedUpdatesWarmSweep pins the rate limiter under the worst
// realistic load: a fully-warm 540-trial sweep whose trials commit every
// couple of fake milliseconds. The plain renderer must emit at least one
// update but stay bounded by elapsed time (one line per second), not by
// trial count.
func TestProgressBoundedUpdatesWarmSweep(t *testing.T) {
	var buf bytes.Buffer
	now := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	r := New(Config{Tool: "cabench", Progress: &buf, now: clock})
	const trials = 540
	r.AddPoints([]string{"sweep"}, trials)
	w := r.Worker(0)
	for i := 0; i < trials; i++ {
		now = now.Add(2 * time.Millisecond)
		w.Start(PhaseLookup)
		w.Warm()
		w.Commit(0)
	}
	got := strings.Count(buf.String(), "\n")
	// 540 trials x 2ms ≈ 1.08s of fake time: the 1s plain rate allows the
	// first line plus one refresh — far below one line per trial.
	if got == 0 || got > 5 {
		t.Fatalf("%d progress lines for %d rapid warm trials, want 1..5", got, trials)
	}
	now = now.Add(time.Second)
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
	final := buf.String()
	if !strings.Contains(final, "progress: 540/540 trials") || !strings.Contains(final, "warm 100%") {
		t.Errorf("final render missing totals: %q", final)
	}
}

// TestManifestRecordsTraceOutputs: the session's trace/timeline bookkeeping
// lands in the manifest, and stays omitted when off.
func TestManifestRecordsTraceOutputs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	c := CLIFlags{Manifest: path}
	sess, err := c.Start(SessionConfig{Tool: "t", TraceOut: "/tmp/run.trace.json", Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(nil); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.TraceOut != "/tmp/run.trace.json" || !m.Timeline {
		t.Errorf("manifest trace fields = %q/%v", m.TraceOut, m.Timeline)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"traceOut"`) {
		t.Error("traceOut key missing from manifest JSON")
	}

	// Off: the omitempty fields disappear from the document entirely.
	path2 := filepath.Join(dir, "m2.json")
	c = CLIFlags{Manifest: path2}
	sess, err = c.Start(SessionConfig{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(nil); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "traceOut") || strings.Contains(string(raw), `"timeline"`) {
		t.Error("trace fields serialized despite being off")
	}
}

// TestCLIFlagsRecOnlyWhenAsked pins the Session contract: with no obs flag
// and no store, the session's recorder is nil (recording fully off); with a
// manifest path it is live.
func TestCLIFlagsRecOnlyWhenAsked(t *testing.T) {
	var c CLIFlags
	sess, err := c.Start(SessionConfig{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Rec != nil {
		t.Error("Rec created with no obs configuration")
	}
	if err := sess.Close(nil); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c = CLIFlags{Manifest: filepath.Join(dir, "m.json")}
	sess, err = c.Start(SessionConfig{Tool: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Rec == nil {
		t.Fatal("Rec missing with -manifest set")
	}
	if err := sess.Close(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(c.Manifest); err != nil {
		t.Errorf("manifest not written: %v", err)
	}

	// A store directory alone auto-archives into <store>/runs.
	storeDir := t.TempDir()
	c = CLIFlags{}
	sess, err = c.Start(SessionConfig{Tool: "t", StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Rec == nil {
		t.Fatal("Rec missing with a store directory")
	}
	if err := sess.Close(nil); err != nil {
		t.Fatal(err)
	}
	runs, err := ListRuns(RunsDir(storeDir))
	if err != nil || len(runs) != 1 {
		t.Fatalf("auto-archived runs = %v, %v; want exactly one", runs, err)
	}
}
