// Live progress on stderr: completed/total trials, trial rate, ETA,
// warm-hit percentage, and each worker's current phase. On a terminal the
// display is a single line redrawn in place (carriage return + erase); on a
// pipe or file it degrades to plain, rate-limited lines. Rendering is
// rate-limited on both paths and only ever happens when a progress writer is
// configured, so the per-trial recording path stays allocation-free when
// progress is off.
package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Render rates: a terminal is repainted often enough to feel live; a log
// file gets a line a second at most.
const (
	liveEvery  = 100 * time.Millisecond
	plainEvery = time.Second
)

// maxWorkerStates caps the per-worker phase display width.
const maxWorkerStates = 16

// progressState tracks the render target and rate limiter.
type progressState struct {
	w    io.Writer
	live bool // terminal: redraw one line in place

	last     time.Time
	rendered bool // a live line is on screen and needs a final newline
}

func (p *progressState) init(w io.Writer) {
	p.w = w
	p.live = isTerminal(w)
}

// isTerminal reports whether w is an interactive terminal.
func isTerminal(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	st, err := f.Stat()
	if err != nil {
		return false
	}
	return st.Mode()&os.ModeCharDevice != 0
}

// maybeProgressLocked renders the progress display if one is configured and
// the rate limiter allows (final renders force through). Caller holds r.mu.
func (r *Rec) maybeProgressLocked(final bool) {
	p := &r.prog
	if p.w == nil {
		return
	}
	now := r.now()
	every := plainEvery
	if p.live {
		every = liveEvery
	}
	if !final && !p.last.IsZero() && now.Sub(p.last) < every {
		return
	}
	p.last = now
	line := r.progressLineLocked(now)
	switch {
	case p.live && final:
		fmt.Fprintf(p.w, "\r%s\x1b[K\n", line)
		p.rendered = false
	case p.live:
		fmt.Fprintf(p.w, "\r%s\x1b[K", line)
		p.rendered = true
	default:
		fmt.Fprintf(p.w, "%s\n", line)
	}
}

// progressLineLocked renders one display line. Caller holds r.mu.
func (r *Rec) progressLineLocked(now time.Time) string {
	var b strings.Builder
	elapsed := now.Sub(r.start).Seconds()
	fmt.Fprintf(&b, "progress: %d/%d trials", r.done, r.planned)
	if r.done > 0 && elapsed > 0 {
		rate := float64(r.done) / elapsed
		fmt.Fprintf(&b, ", %.0f trials/s", rate)
		if left := r.planned - r.done; left > 0 && rate > 0 {
			eta := time.Duration(float64(left) / rate * float64(time.Second)).Round(time.Second)
			fmt.Fprintf(&b, ", eta %s", eta)
		}
	}
	if r.done > 0 {
		fmt.Fprintf(&b, ", warm %.0f%%", 100*float64(r.warm)/float64(r.done))
	}
	if n := len(r.workers); n > 1 {
		b.WriteString(", workers [")
		for i, w := range r.workers {
			if i == maxWorkerStates {
				fmt.Fprintf(&b, " +%d", n-maxWorkerStates)
				break
			}
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(workerStateName(w.state.Load()))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// workerStateName renders a worker's current phase for the display.
func workerStateName(s int32) string {
	if s == workerIdle || s < 0 || s >= int32(NumPhases) {
		return "idle"
	}
	return phaseNames[s][1]
}
