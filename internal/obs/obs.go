// Package obs is the out-of-band observability layer: it records where a
// run's wall-clock goes (per-trial phase spans, store flush/fsync timings),
// aggregates the spans into a run manifest (manifest.go), optionally streams
// machine-readable progress events as JSONL (events.go), renders live
// progress on stderr (progress.go), and hosts the shared profiling and CLI
// flag plumbing (profile.go, cli.go).
//
// Everything here is strictly observational. Recording changes no simulated
// result, no stdout byte, and no store content key: a run with observability
// enabled is byte-identical on stdout to one without it (pinned by CLI tests
// and the CI smoke step). Recording happens at trial and flush granularity,
// never on the per-op hot path, and the per-trial path — Start, End, Warm,
// Commit — performs no allocation (pinned by testing.AllocsPerRun).
//
// The package deliberately imports no other internal package: the engine tag
// and store counters are passed in by callers, so bench and lab can both
// depend on obs without a cycle.
package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one timed span of a trial's execution, in the order the
// Runner passes through them.
type Phase int

const (
	// PhasePrepare covers spec validation and canonical marshaling — the
	// work needed before the store can even be consulted.
	PhasePrepare Phase = iota
	// PhaseLookup covers the trial-store read-through probe.
	PhaseLookup
	// PhaseSimulate covers the simulator run itself (compile, build,
	// prefill, measured phases). Zero on a warm store hit.
	PhaseSimulate
	// PhaseStore covers the trial-store write-through after a simulated
	// trial.
	PhaseStore

	// NumPhases sizes fixed per-trial span arrays.
	NumPhases
)

// phaseNames holds the long and short (progress display) names per phase.
var phaseNames = [NumPhases][2]string{
	PhasePrepare:  {"prepare", "prep"},
	PhaseLookup:   {"lookup", "look"},
	PhaseSimulate: {"simulate", "sim"},
	PhaseStore:    {"store", "put"},
}

// String returns the phase's name as used in manifests and calab output.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p][0]
}

// Spans accumulates nanoseconds per phase.
type Spans [NumPhases]int64

func (s *Spans) add(o Spans) {
	for i := range s {
		s[i] += o[i]
	}
}

// workerIdle is the WorkerRec state between trials.
const workerIdle int32 = -1

// WorkerRec is one worker's per-trial span recorder. A nil *WorkerRec is a
// valid no-op recorder, so instrumented code calls it unconditionally. The
// Start/End/Warm path touches only the worker's own fields (plus one atomic
// store for the live progress display); Commit takes the run recorder's
// mutex once per trial to fold the trial into the aggregates. Nothing on
// this path allocates.
type WorkerRec struct {
	r  *Rec
	id int

	state atomic.Int32 // Phase currently executing, or workerIdle

	// cur accumulates the in-flight trial; folded and cleared by Commit,
	// discarded by Abandon. Only the owning worker touches these.
	cur  Spans
	warm bool

	// Whole-run aggregates, guarded by r.mu (written under it in Commit,
	// read under it by the manifest snapshot).
	trials int
	warmN  int
	spans  Spans
}

// Start marks the beginning of phase p and returns its start time, which the
// caller hands back to End. On a nil recorder it returns the zero time.
func (w *WorkerRec) Start(p Phase) time.Time {
	if w == nil {
		return time.Time{}
	}
	w.state.Store(int32(p))
	return time.Now()
}

// End accumulates the span of phase p started at t0.
func (w *WorkerRec) End(p Phase, t0 time.Time) {
	if w == nil {
		return
	}
	w.cur[p] += int64(time.Since(t0))
}

// Warm marks the in-flight trial as served from the store (no simulation).
func (w *WorkerRec) Warm() {
	if w == nil {
		return
	}
	w.warm = true
}

// Commit folds the in-flight trial into the run aggregates under point
// index point (as returned by AddPoints) and clears the worker for the next
// trial.
func (w *WorkerRec) Commit(point int) {
	if w == nil {
		return
	}
	w.state.Store(workerIdle)
	r := w.r
	r.mu.Lock()
	if point >= 0 && point < len(r.points) {
		p := &r.points[point]
		p.trials++
		p.spans.add(w.cur)
		if w.warm {
			p.warm++
		}
	}
	w.trials++
	w.spans.add(w.cur)
	if w.warm {
		w.warmN++
	}
	r.done++
	if w.warm {
		r.warm++
	}
	r.maybeTrialsEventLocked()
	r.maybeProgressLocked(false)
	r.mu.Unlock()
	w.cur = Spans{}
	w.warm = false
}

// Abandon discards the in-flight trial (error paths): partial spans from a
// failed trial must not leak into the next trial's Commit on a reused
// worker.
func (w *WorkerRec) Abandon() {
	if w == nil {
		return
	}
	w.state.Store(workerIdle)
	w.cur = Spans{}
	w.warm = false
}

// pointAgg aggregates one sweep point's committed trials.
type pointAgg struct {
	trials int
	warm   int
	spans  Spans
}

// Config configures a run recorder. All outputs are optional: a Rec with
// none still aggregates (callers can snapshot via Manifest).
type Config struct {
	Tool      string   // producing command, e.g. "cabench"
	Args      []string // its raw argument vector, recorded in the manifest
	EngineTag string   // bench.EngineTag(), passed in to keep obs dependency-free
	Spec      any      // the full run config, marshaled into the manifest

	// ManifestPath, when non-empty, is where Close writes the manifest.
	// ManifestDir instead derives the path as <dir>/<runid>.json (the
	// runs/ directory next to a store). Path wins when both are set.
	ManifestPath string
	ManifestDir  string

	// Progress, when non-nil, receives the live progress display
	// (progress.go) — stderr in practice. Events, when non-nil, receives
	// the JSONL event log (events.go).
	Progress io.Writer
	Events   io.Writer

	// TraceOut and Timeline note the run's sim-time tracing outputs in the
	// manifest: the Chrome trace file the CLI wrote (-trace) and whether
	// windowed timelines were recorded (-timeline). Bookkeeping only — the
	// trace itself is produced by the bench/trace layers, out of band.
	TraceOut string
	Timeline bool

	// now overrides the clock in tests (progress rate limiting, ETA).
	now func() time.Time
}

// Rec aggregates one run: per-point and per-worker span rollups, warm-hit
// counts, store flush traffic, and the event/progress streams. A nil *Rec is
// a valid no-op recorder. Methods are safe for concurrent use by the sweep
// pool's workers.
type Rec struct {
	cfg   Config
	runID string
	start time.Time
	now   func() time.Time

	mu      sync.Mutex
	labels  []string
	points  []pointAgg
	planned int // trials expected across all points
	done    int
	warm    int
	workers []*WorkerRec

	store        *StoreRollup
	shards       []ShardRollup
	flushes      int
	flushRecords int
	flushBytes   int64

	prog   progressState
	events *eventLog

	closed bool
	err    error
}

// New creates a run recorder and, when an event writer is configured, emits
// the run_start event.
func New(cfg Config) *Rec {
	if cfg.now == nil {
		cfg.now = time.Now
	}
	r := &Rec{
		cfg:   cfg,
		start: cfg.now(),
		now:   cfg.now,
		runID: newRunID(cfg.Tool, cfg.now()),
	}
	r.prog.init(cfg.Progress)
	if cfg.Events != nil {
		r.events = &eventLog{w: cfg.Events}
		r.events.emit(event{Ev: "run_start", T: r.start, Run: r.runID, Tool: cfg.Tool, Engine: cfg.EngineTag})
	}
	return r
}

// RunID returns the run's identifier (the manifest's base name under a
// store's runs/ directory).
func (r *Rec) RunID() string {
	if r == nil {
		return ""
	}
	return r.runID
}

// AddPoints declares a batch of sweep points, one label each, expecting
// trialsPerPoint committed trials per point, and returns the index of the
// first new point. Point indices are append-ordered across calls, so a tool
// running several sweeps (figures) accumulates them all in one manifest.
func (r *Rec) AddPoints(labels []string, trialsPerPoint int) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	base := len(r.points)
	r.labels = append(r.labels, labels...)
	r.points = append(r.points, make([]pointAgg, len(labels))...)
	r.planned += len(labels) * trialsPerPoint
	return base
}

// Worker returns the recorder for worker i, creating it (and any lower
// indices) on first use. Each returned WorkerRec must only be used by one
// goroutine at a time.
func (r *Rec) Worker(i int) *WorkerRec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.workers) <= i {
		w := &WorkerRec{r: r, id: len(r.workers)}
		w.state.Store(workerIdle)
		r.workers = append(r.workers, w)
	}
	return r.workers[i]
}

// PointStart records that point i is now at the head of the run's in-order
// reporting sequence. Sweeps call PointStart/PointDone from their ordered
// merge loop — never from pool workers — so the event stream's point events
// are strictly sequential even when trials complete out of order.
func (r *Rec) PointStart(i int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events != nil && i >= 0 && i < len(r.labels) {
		r.events.emit(event{Ev: "point_start", T: r.now(), Point: ptr(i), Label: r.labels[i]})
	}
}

// PointDone records that point i has been merged and reported.
func (r *Rec) PointDone(i int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= 0 && i < len(r.points) {
		if r.events != nil {
			p := r.points[i]
			r.events.emit(event{
				Ev: "point_done", T: r.now(), Point: ptr(i), Label: r.labels[i],
				Trials: p.trials, Warm: p.warm,
			})
		}
	}
	r.maybeProgressLocked(false)
}

// StoreFlushed records one durable store flush (records published, bytes
// written). Wired to lab.Store.OnFlush by the CLIs; called from whichever
// goroutine triggered the flush.
func (r *Rec) StoreFlushed(records, bytes int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushes++
	r.flushRecords += records
	r.flushBytes += int64(bytes)
	if r.events != nil {
		r.events.emit(event{Ev: "store_flush", T: r.now(), Records: records, Bytes: bytes})
	}
}

// SetStore attaches the store's end-of-run counter rollup to the manifest.
func (r *Rec) SetStore(s StoreRollup) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = &s
}

// SetShards attaches the farm workers' per-shard rollups to the manifest.
func (r *Rec) SetShards(shards []ShardRollup) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.shards = append([]ShardRollup(nil), shards...)
}

// Close finalizes the run: a last progress render, the run_done event, and
// the atomic manifest write (when a path or directory is configured). runErr
// is the run's outcome, recorded in the manifest — a failed run still gets a
// complete, parseable manifest or none at all, never a truncated one. Close
// is idempotent; only the first call does work.
func (r *Rec) Close(runErr error) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.err = runErr
	r.maybeProgressLocked(true)
	m := r.manifestLocked()
	if r.events != nil {
		ev := event{Ev: "run_done", T: r.now(), Run: r.runID, Trials: m.TrialsDone, Warm: m.WarmHits, WallNanos: m.WallNanos}
		if runErr != nil {
			ev.Error = runErr.Error()
		}
		r.events.emit(ev)
	}
	r.mu.Unlock()
	path := r.cfg.ManifestPath
	if path == "" && r.cfg.ManifestDir != "" {
		path = ManifestPath(r.cfg.ManifestDir, r.runID)
	}
	if path == "" {
		return nil
	}
	return writeManifest(path, m)
}

// Manifest snapshots the run's aggregates as they stand. Close uses the
// same snapshot for the written manifest.
func (r *Rec) Manifest() Manifest {
	if r == nil {
		return Manifest{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.manifestLocked()
}

// ptr is the *int helper for optional event fields (point 0 must not be
// omitted as a zero value).
func ptr(i int) *int { return &i }
