// CLI plumbing shared by every command: one flag block (-version,
// -progress, -manifest, -events, plus the Profiler's flags) and one Session
// wrapper that turns the parsed flags into a running recorder and tears
// everything down — manifest write included — in one Close call. Keeping
// this here means each command adds observability with three calls:
// Register, Start, Close.
package obs

import (
	"bufio"
	"flag"
	"io"
	"os"
)

// CLIFlags is the observability flag block.
type CLIFlags struct {
	Version  bool
	Progress bool
	Manifest string
	Events   string
	Prof     Profiler
}

// Register installs the full observability flag set (version, progress,
// manifest, events, profiling) on fs.
func (c *CLIFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Version, "version", false, "print tool, module version, and engine tag, then exit")
	fs.BoolVar(&c.Progress, "progress", false, "render live run progress (trials done, rate, ETA, warm %) on stderr")
	fs.StringVar(&c.Manifest, "manifest", "", "write the run manifest JSON to this path (default with -store: <store>/runs/<runid>.json)")
	fs.StringVar(&c.Events, "events", "", "append JSONL run events (run/point/trials/store_flush) to this file")
	c.Prof.Register(fs)
}

// SessionConfig describes one CLI run to Start.
type SessionConfig struct {
	Tool      string
	EngineTag string
	Args      []string  // raw argument vector, recorded in the manifest
	Spec      any       // the run's full configuration, recorded in the manifest
	Stderr    io.Writer // progress target when -progress is set
	StoreDir  string    // store root, "" if none; enables the default manifest location
	TraceOut  string    // path of the -trace output, recorded in the manifest
	Timeline  bool      // whether windowed timeline recording was on
}

// Session is one CLI run's live observability: profiling started, recorder
// (possibly nil — recording only happens when some output wants it) wired.
type Session struct {
	// Rec is the run recorder, or nil when no manifest, progress, or event
	// output is configured. All Rec methods are nil-safe, so callers pass
	// it along unconditionally.
	Rec *Rec

	prof       *Profiler
	eventsFile *os.File
	eventsBuf  *bufio.Writer
}

// Start begins profiling and, when any observability output is requested —
// -progress, -manifest, -events, or a store directory to default the
// manifest into — creates the run recorder. The returned Session is always
// usable (Close it exactly once, with the run's error).
func (c *CLIFlags) Start(sc SessionConfig) (*Session, error) {
	if err := c.Prof.Start(); err != nil {
		return nil, err
	}
	s := &Session{prof: &c.Prof}
	manifestDir := ""
	if c.Manifest == "" && sc.StoreDir != "" {
		manifestDir = RunsDir(sc.StoreDir)
	}
	if !c.Progress && c.Manifest == "" && c.Events == "" && manifestDir == "" {
		return s, nil
	}
	cfg := Config{
		Tool:         sc.Tool,
		Args:         sc.Args,
		EngineTag:    sc.EngineTag,
		Spec:         sc.Spec,
		ManifestPath: c.Manifest,
		ManifestDir:  manifestDir,
		TraceOut:     sc.TraceOut,
		Timeline:     sc.Timeline,
	}
	if c.Progress {
		cfg.Progress = sc.Stderr
	}
	if c.Events != "" {
		f, err := os.OpenFile(c.Events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			c.Prof.Stop()
			return nil, err
		}
		s.eventsFile = f
		// Buffer the JSONL stream: events are small and frequent, and the
		// recorder writes them from the run's hot path. Close flushes the
		// buffer on every exit — including the error/Abandon path — before
		// the file is closed, so a failed run's tail events still land.
		s.eventsBuf = bufio.NewWriter(f)
		cfg.Events = s.eventsBuf
	}
	s.Rec = New(cfg)
	return s, nil
}

// Close finalizes the session: the recorder writes its manifest (stamped
// with runErr when the run failed), the event log is closed, and profiles
// are flushed. It returns the first teardown error; callers report it only
// when the run itself succeeded.
func (s *Session) Close(runErr error) error {
	if s == nil {
		return nil
	}
	var first error
	if err := s.Rec.Close(runErr); err != nil {
		first = err
	}
	if s.eventsBuf != nil {
		// Rec.Close just emitted the final run_done/run_failed event into
		// the buffer; flush it before closing the underlying file.
		if err := s.eventsBuf.Flush(); err != nil && first == nil {
			first = err
		}
		s.eventsBuf = nil
	}
	if s.eventsFile != nil {
		if err := s.eventsFile.Close(); err != nil && first == nil {
			first = err
		}
		s.eventsFile = nil
	}
	if s.prof != nil {
		if err := s.prof.Stop(); err != nil && first == nil {
			first = err
		}
		s.prof = nil
	}
	return first
}
