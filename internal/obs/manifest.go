// Run manifests: the durable, machine-readable record of one run. A
// manifest is a single JSON document holding the run's identity (tool,
// version, engine tag, argument vector, host), its full configuration, and
// the timing rollups — total, per-point, and per-worker phase spans plus
// warm-hit counts and store flush traffic. Manifests are written atomically
// (temp file + rename, like the store's index sidecar), so a crashed or
// failed run leaves either a complete manifest or none — never a truncated
// one.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"
)

// SpanNanos is a phase-span rollup in manifest form. The fixed fields (not
// a map) keep the JSON deterministic and diffs trivial.
type SpanNanos struct {
	PrepareNanos  int64 `json:"prepareNanos"`
	LookupNanos   int64 `json:"lookupNanos"`
	SimulateNanos int64 `json:"simulateNanos"`
	StoreNanos    int64 `json:"storeNanos"`
}

// nanosOf converts an accumulated span array to its manifest form.
func nanosOf(s Spans) SpanNanos {
	return SpanNanos{
		PrepareNanos:  s[PhasePrepare],
		LookupNanos:   s[PhaseLookup],
		SimulateNanos: s[PhaseSimulate],
		StoreNanos:    s[PhaseStore],
	}
}

// Phase returns the span of one phase.
func (s SpanNanos) Phase(p Phase) int64 {
	switch p {
	case PhasePrepare:
		return s.PrepareNanos
	case PhaseLookup:
		return s.LookupNanos
	case PhaseSimulate:
		return s.SimulateNanos
	case PhaseStore:
		return s.StoreNanos
	}
	return 0
}

// Total returns the sum over all phases.
func (s SpanNanos) Total() int64 {
	var t int64
	for p := Phase(0); p < NumPhases; p++ {
		t += s.Phase(p)
	}
	return t
}

// HostInfo records the environment a run executed in.
type HostInfo struct {
	Go         string `json:"go"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// hostInfo snapshots the current process's environment.
func hostInfo() HostInfo {
	return HostInfo{
		Go:         runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// PointRollup is one sweep point's committed-trial aggregate.
type PointRollup struct {
	Label  string `json:"label"`
	Trials int    `json:"trials"`
	Warm   int    `json:"warm"`
	SpanNanos
}

// WorkerRollup is one pool worker's committed-trial aggregate.
type WorkerRollup struct {
	Worker int `json:"worker"`
	Trials int `json:"trials"`
	Warm   int `json:"warm"`
	SpanNanos
}

// StoreRollup is the lab store's end-of-run counter snapshot, passed in by
// the CLI (obs does not import lab).
type StoreRollup struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	Opens          uint64 `json:"opens"`
	Flushes        uint64 `json:"flushes"`
	BytesWritten   uint64 `json:"bytesWritten"`
	FlushNanos     int64  `json:"flushNanos"`
	FsyncNanos     int64  `json:"fsyncNanos"`
	IndexLoadNanos int64  `json:"indexLoadNanos"`
}

// ShardRollup summarizes one farm worker process on the coordinator's
// manifest, distilled from the worker's own manifest (which remains the
// detailed record, under the shard store's runs/ directory).
type ShardRollup struct {
	Shard     int    `json:"shard"`
	RunID     string `json:"runId,omitempty"`
	Trials    int    `json:"trials"`
	Warm      int    `json:"warm"`
	WallNanos int64  `json:"wallNanos"`
	Error     string `json:"error,omitempty"`
	SpanNanos
}

// Manifest is the complete run record. The embedded SpanNanos is the
// whole-run phase rollup (the sum over Workers and, equivalently, over
// Points plus any trials committed outside a declared point).
type Manifest struct {
	RunID     string          `json:"runId"`
	Tool      string          `json:"tool"`
	Version   string          `json:"version"`
	EngineTag string          `json:"engineTag,omitempty"`
	Args      []string        `json:"args,omitempty"`
	Start     time.Time       `json:"start"`
	WallNanos int64           `json:"wallNanos"`
	Host      HostInfo        `json:"host"`
	Config    json.RawMessage `json:"config,omitempty"`
	Error     string          `json:"error,omitempty"`
	TraceOut  string          `json:"traceOut,omitempty"`
	Timeline  bool            `json:"timeline,omitempty"`

	TrialsPlanned int `json:"trialsPlanned"`
	TrialsDone    int `json:"trialsDone"`
	WarmHits      int `json:"warmHits"`
	SpanNanos

	Points  []PointRollup  `json:"points,omitempty"`
	Workers []WorkerRollup `json:"workers,omitempty"`
	Store   *StoreRollup   `json:"store,omitempty"`
	Shards  []ShardRollup  `json:"shards,omitempty"`
}

// manifestLocked builds the manifest snapshot. Caller holds r.mu.
func (r *Rec) manifestLocked() Manifest {
	m := Manifest{
		RunID:     r.runID,
		Tool:      r.cfg.Tool,
		Version:   Version(),
		EngineTag: r.cfg.EngineTag,
		Args:      r.cfg.Args,
		Start:     r.start,
		WallNanos: int64(r.now().Sub(r.start)),
		Host:      hostInfo(),
		TraceOut:  r.cfg.TraceOut,
		Timeline:  r.cfg.Timeline,

		TrialsPlanned: r.planned,
		TrialsDone:    r.done,
		WarmHits:      r.warm,
	}
	if r.err != nil {
		m.Error = r.err.Error()
	}
	if r.cfg.Spec != nil {
		if raw, err := json.Marshal(r.cfg.Spec); err == nil {
			m.Config = raw
		}
	}
	var total Spans
	for i, p := range r.points {
		m.Points = append(m.Points, PointRollup{
			Label: r.labels[i], Trials: p.trials, Warm: p.warm,
			SpanNanos: nanosOf(p.spans),
		})
	}
	for _, w := range r.workers {
		total.add(w.spans)
		m.Workers = append(m.Workers, WorkerRollup{
			Worker: w.id, Trials: w.trials, Warm: w.warmN,
			SpanNanos: nanosOf(w.spans),
		})
	}
	m.SpanNanos = nanosOf(total)
	if r.store != nil {
		s := *r.store
		m.Store = &s
	}
	m.Shards = append([]ShardRollup(nil), r.shards...)
	return m
}

// newRunID builds a sortable, human-scannable run identifier: UTC timestamp,
// tool name, and the start time's sub-second bits to de-collide runs started
// within the same second.
func newRunID(tool string, t time.Time) string {
	t = t.UTC()
	return fmt.Sprintf("%s-%s-%06d", t.Format("20060102T150405"), tool, t.Nanosecond()/1000)
}

// RunsDir returns the manifest directory conventionally kept next to a
// store: <storeDir>/runs.
func RunsDir(storeDir string) string { return filepath.Join(storeDir, "runs") }

// ManifestPath places a run's manifest inside dir: <dir>/<runID>.json.
// It is the inverse of the naming ListRuns expects.
func ManifestPath(dir, runID string) string {
	return filepath.Join(dir, runID+".json")
}

// writeManifest writes m to path atomically: temp file in the target
// directory, then rename. A reader never observes a partial manifest.
func writeManifest(path string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err == nil {
		if err = tmp.Close(); err == nil {
			if err = os.Rename(tmp.Name(), path); err == nil {
				return nil
			}
		}
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
	return fmt.Errorf("obs: writing manifest: %w", err)
}

// ReadManifest loads one manifest file.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("obs: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("obs: parsing manifest %s: %w", path, err)
	}
	return m, nil
}

// ListRuns loads every parseable manifest under dir, sorted by start time
// (then run id). Unparsable files are skipped — a half-copied directory
// should not hide the sound runs.
func ListRuns(dir string) ([]Manifest, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: listing runs: %w", err)
	}
	var runs []Manifest
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		m, err := ReadManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		runs = append(runs, m)
	}
	sort.Slice(runs, func(i, j int) bool {
		if !runs[i].Start.Equal(runs[j].Start) {
			return runs[i].Start.Before(runs[j].Start)
		}
		return runs[i].RunID < runs[j].RunID
	})
	return runs, nil
}

// Version returns the module's version as stamped by the Go toolchain
// ("(devel)" for plain source builds).
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "(unknown)"
}

// VersionLine renders the -version output every CLI prints: tool, module
// path and version, and the engine tag that scopes store keys and goldens.
func VersionLine(tool, engineTag string) string {
	path := "condaccess"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		path = bi.Main.Path
	}
	return fmt.Sprintf("%s %s %s engine %s", tool, path, Version(), engineTag)
}
