package trace

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"condaccess/internal/latency"
)

func TestResolveWindow(t *testing.T) {
	if got := ResolveWindow(0); got != DefaultWindow {
		t.Errorf("ResolveWindow(0) = %d, want %d", got, DefaultWindow)
	}
	if got := ResolveWindow(4096); got != 4096 {
		t.Errorf("ResolveWindow(4096) = %d, want 4096", got)
	}
}

func TestTimelineRecordOpWindowMath(t *testing.T) {
	tl := &Timeline{Window: 1000}
	tl.RecordOp(0, latency.KindInsert, 0, 0)    // window 0 (first cycle)
	tl.RecordOp(999, latency.KindDelete, 2, 0)  // window 0 (last cycle)
	tl.RecordOp(1000, latency.KindRead, 0, 7)   // window 1 (boundary opens next)
	tl.RecordOp(5500, latency.KindInsert, 1, 3) // window 5, skipping 2..4

	if got := tl.Windows(); got != 6 {
		t.Fatalf("Windows() = %d, want 6", got)
	}
	if tl.Insert[0] != 1 || tl.Delete[0] != 1 || tl.Read[0] != 0 {
		t.Errorf("window 0 kinds = i%d/d%d/r%d, want i1/d1/r0", tl.Insert[0], tl.Delete[0], tl.Read[0])
	}
	if tl.Read[1] != 1 || tl.Pause[1] != 7 {
		t.Errorf("window 1 = read %d pause %d, want read 1 pause 7", tl.Read[1], tl.Pause[1])
	}
	for i := 2; i <= 4; i++ {
		if tl.Insert[i]+tl.Delete[i]+tl.Read[i]+tl.Retries[i]+tl.Pause[i] != 0 {
			t.Errorf("skipped window %d is not zero", i)
		}
	}
	if tl.Insert[5] != 1 || tl.Retries[5] != 1 || tl.Pause[5] != 3 {
		t.Errorf("window 5 = insert %d retries %d pause %d, want 1/1/3", tl.Insert[5], tl.Retries[5], tl.Pause[5])
	}
	if got := tl.TotalOps(); got != 4 {
		t.Errorf("TotalOps() = %d, want 4", got)
	}
}

func TestTimelineZeroWindowDefaults(t *testing.T) {
	var tl Timeline
	tl.RecordOp(DefaultWindow+1, latency.KindRead, 0, 0)
	if tl.Window != DefaultWindow {
		t.Errorf("Window = %d after recording on zero value, want %d", tl.Window, DefaultWindow)
	}
	if tl.Windows() != 2 || tl.Read[1] != 1 {
		t.Errorf("op did not land in window 1: windows %d, read %v", tl.Windows(), tl.Read)
	}
}

func TestTimelineMerge(t *testing.T) {
	a := &Timeline{Window: 2048}
	a.RecordOp(100, latency.KindInsert, 1, 5)
	b := &Timeline{Window: 2048}
	b.RecordOp(100, latency.KindDelete, 2, 7)
	b.RecordOp(5000, latency.KindRead, 0, 0) // b is longer than a

	a.Merge(b)
	if got := a.Windows(); got != 3 {
		t.Fatalf("merged Windows() = %d, want 3", got)
	}
	if a.Insert[0] != 1 || a.Delete[0] != 1 || a.Retries[0] != 3 || a.Pause[0] != 12 {
		t.Errorf("window 0 after merge = i%d/d%d retries %d pause %d, want 1/1/3/12",
			a.Insert[0], a.Delete[0], a.Retries[0], a.Pause[0])
	}
	if a.Read[2] != 1 {
		t.Errorf("window 2 read = %d, want 1", a.Read[2])
	}

	// Merging into an empty timeline adopts the source's window.
	var empty Timeline
	empty.Merge(b)
	if empty.Window != 2048 || empty.TotalOps() != 2 {
		t.Errorf("merge into empty: window %d ops %d, want 2048/2", empty.Window, empty.TotalOps())
	}

	// Merging nil or empty sources is a no-op.
	before := a.TotalOps()
	a.Merge(nil)
	a.Merge(&Timeline{})
	if a.TotalOps() != before {
		t.Error("merging nil/empty changed the timeline")
	}
}

func TestTimelineMergeWindowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched windows did not panic")
		}
	}()
	a := &Timeline{Window: 1024}
	b := &Timeline{Window: 2048}
	b.RecordOp(1, latency.KindRead, 0, 0)
	a.Merge(b)
}

func TestTimelineResetKeepsNoStaleCounts(t *testing.T) {
	tl := &Timeline{Window: 1024}
	tl.RecordOp(3000, latency.KindInsert, 9, 9)
	tl.Reset()
	if tl.Windows() != 0 {
		t.Fatalf("Windows() after Reset = %d, want 0", tl.Windows())
	}
	// Regrowing over the old backing array must see zeros, not the pre-Reset
	// counts.
	tl.RecordOp(3000, latency.KindDelete, 0, 0)
	if tl.Insert[2] != 0 || tl.Retries[2] != 0 || tl.Pause[2] != 0 {
		t.Errorf("stale counts survived Reset: insert %d retries %d pause %d",
			tl.Insert[2], tl.Retries[2], tl.Pause[2])
	}
	if tl.Delete[2] != 1 {
		t.Errorf("post-Reset op lost: delete %d, want 1", tl.Delete[2])
	}
}

func TestTimelineRecordOpAllocFree(t *testing.T) {
	tl := &Timeline{Window: 1024}
	tl.RecordOp(100*1024, latency.KindRead, 0, 0) // pre-size the windows
	n := testing.AllocsPerRun(200, func() {
		tl.RecordOp(50*1024, latency.KindInsert, 1, 2)
	})
	if n != 0 {
		t.Errorf("RecordOp allocated %.1f times per op once windows exist, want 0", n)
	}
}

func TestTimelineRows(t *testing.T) {
	tl := &Timeline{Window: 1000}
	tl.RecordOp(500, latency.KindInsert, 2, 3)
	tl.RecordOp(1500, latency.KindRead, 0, 0)
	rows := tl.Rows()
	want := []WindowRow{
		{Index: 0, Start: 0, End: 1000, Insert: 1, Retries: 2, Pause: 3},
		{Index: 1, Start: 1000, End: 2000, Read: 1},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("Rows() = %+v, want %+v", rows, want)
	}
	if rows[0].Ops() != 1 {
		t.Errorf("Ops() = %d, want 1", rows[0].Ops())
	}
}

func TestTimelineWriteTable(t *testing.T) {
	tl := &Timeline{Window: 50_000}
	tl.RecordOp(10, latency.KindInsert, 0, 0)
	tl.RecordOp(60_000, latency.KindRead, 1, 2)
	var sb strings.Builder
	tl.WriteTable(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 windows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "pause") || !strings.Contains(lines[1], "50") {
		t.Errorf("unexpected table:\n%s", out)
	}
}

// TestTimelineJSONRoundTrip pins the store envelope property: a timeline
// marshals and unmarshals without loss, so a warm store hit replays the
// recorded series exactly.
func TestTimelineJSONRoundTrip(t *testing.T) {
	tl := &Timeline{Window: 4096}
	tl.RecordOp(100, latency.KindInsert, 1, 2)
	tl.RecordOp(9000, latency.KindDelete, 0, 5)
	b1, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	var back Timeline
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl, &back) {
		t.Errorf("round trip changed the timeline:\n got %+v\nwant %+v", &back, tl)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("re-marshal is not byte-identical:\n%s\n%s", b1, b2)
	}
}
