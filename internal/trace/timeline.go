// The windowed sim-time metrics timeline: the cheap, always-affordable
// alternative to a full event trace. The simulated-cycle axis is cut into
// fixed windows and every completed operation lands its counters in the
// window its end cycle falls in — per-window op counts by kind, retry
// restarts, and absorbed reclamation-pause cycles. A Timeline is recorded
// per thread with zero per-op allocation once its windows exist, and merges
// exactly thread→phase→trial like latency.Tail, so a trial's timeline is
// identical whether it was simulated or replayed from the lab store.
package trace

import (
	"fmt"
	"io"

	"condaccess/internal/latency"
)

// DefaultWindow is the timeline window size in simulated cycles when a spec
// leaves it zero. Coarse enough that a realistic trial yields tens of
// windows, fine enough that a batching reclaimer's pause storm is visibly
// localized rather than averaged away.
const DefaultWindow = 50_000

// MinWindow bounds explicit window overrides from below. Windows far
// smaller than one operation would make the dense per-window arrays larger
// than the raw data they summarize.
const MinWindow = 1024

// Timeline is a windowed sim-time metrics series. The parallel slices are
// indexed by window number (window i covers cycles [i*Window, (i+1)*Window))
// and always share one length. A pause that spans a window boundary is
// charged wholly to the window its operation ends in — the same per-op delta
// attribution latency.Tail uses — so pause cycles sum exactly to the tail's
// pause histogram, at the cost of edge windows that can report more pause
// cycles than the window holds.
//
// All fields are exported and marshal in declaration order, so the JSON
// form (and hence the lab store envelope) is byte-deterministic.
type Timeline struct {
	Window  uint64   `json:"window"`
	Insert  []uint64 `json:"insert,omitempty"`
	Delete  []uint64 `json:"delete,omitempty"`
	Read    []uint64 `json:"read,omitempty"`
	Retries []uint64 `json:"retries,omitempty"`
	Pause   []uint64 `json:"pause,omitempty"`
}

// ResolveWindow maps a spec's window override to the effective window size.
func ResolveWindow(w uint64) uint64 {
	if w == 0 {
		return DefaultWindow
	}
	return w
}

// grow extends s to n elements, zeroing the extension (the backing array may
// hold stale values after a Reset). Amortized allocation-free.
func grow(s []uint64, n int) []uint64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// ensure makes every series at least n windows long.
func (t *Timeline) ensure(n int) {
	if len(t.Insert) >= n {
		return
	}
	t.Insert = grow(t.Insert, n)
	t.Delete = grow(t.Delete, n)
	t.Read = grow(t.Read, n)
	t.Retries = grow(t.Retries, n)
	t.Pause = grow(t.Pause, n)
}

// Windows returns the number of recorded windows.
func (t *Timeline) Windows() int { return len(t.Insert) }

// RecordOp lands one completed operation: its kind count, the retry
// restarts it absorbed, and the reclamation-pause cycles it absorbed, all in
// the window endCycle falls in. Allocation-free once that window exists.
func (t *Timeline) RecordOp(endCycle uint64, k latency.Kind, retries, pauseCycles uint64) {
	if t.Window == 0 {
		t.Window = DefaultWindow
	}
	i := int(endCycle / t.Window)
	t.ensure(i + 1)
	switch k {
	case latency.KindInsert:
		t.Insert[i]++
	case latency.KindDelete:
		t.Delete[i]++
	default:
		t.Read[i]++
	}
	t.Retries[i] += retries
	t.Pause[i] += pauseCycles
}

// Merge folds o into t window by window. Merging timelines with different
// window sizes is a harness bug — the windows no longer mean the same span
// of simulated time — so it panics rather than aggregating nonsense.
func (t *Timeline) Merge(o *Timeline) {
	if o == nil || (o.Window == 0 && o.Windows() == 0) {
		return
	}
	if t.Window == 0 {
		t.Window = o.Window
	}
	if t.Window != o.Window {
		panic(fmt.Sprintf("trace: merging timelines with windows %d and %d", t.Window, o.Window))
	}
	t.ensure(o.Windows())
	for i := range o.Insert {
		t.Insert[i] += o.Insert[i]
		t.Delete[i] += o.Delete[i]
		t.Read[i] += o.Read[i]
		t.Retries[i] += o.Retries[i]
		t.Pause[i] += o.Pause[i]
	}
}

// Reset empties the series, keeping their allocations (the harness reuses
// per-thread timelines across phases) and the window size.
func (t *Timeline) Reset() {
	t.Insert = t.Insert[:0]
	t.Delete = t.Delete[:0]
	t.Read = t.Read[:0]
	t.Retries = t.Retries[:0]
	t.Pause = t.Pause[:0]
}

// TotalOps returns the op count summed over all windows and kinds.
func (t *Timeline) TotalOps() uint64 {
	var n uint64
	for i := range t.Insert {
		n += t.Insert[i] + t.Delete[i] + t.Read[i]
	}
	return n
}

// WindowRow is one timeline window in display form.
type WindowRow struct {
	Index      int
	Start, End uint64 // cycle bounds [Start, End)
	Insert     uint64
	Delete     uint64
	Read       uint64
	Retries    uint64
	Pause      uint64
}

// Ops returns the row's total op count.
func (r WindowRow) Ops() uint64 { return r.Insert + r.Delete + r.Read }

// Rows returns every window in order, shared by the CLI tables, the figures
// CSV, and the tests.
func (t *Timeline) Rows() []WindowRow {
	w := ResolveWindow(t.Window)
	rows := make([]WindowRow, t.Windows())
	for i := range rows {
		rows[i] = WindowRow{
			Index:   i,
			Start:   uint64(i) * w,
			End:     uint64(i+1) * w,
			Insert:  t.Insert[i],
			Delete:  t.Delete[i],
			Read:    t.Read[i],
			Retries: t.Retries[i],
			Pause:   t.Pause[i],
		}
	}
	return rows
}

// WriteTable renders the timeline as an aligned text table, one row per
// window. Zero windows are printed too: a flat stretch of the time axis is
// information (nothing ran there), not noise.
func (t *Timeline) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-9s %12s %9s %8s %8s %8s %8s %10s\n",
		"window", "kcycles", "ops", "insert", "delete", "read", "retries", "pause")
	for _, r := range t.Rows() {
		fmt.Fprintf(w, "%-9d %5d-%-7d %9d %8d %8d %8d %8d %10d\n",
			r.Index, r.Start/1000, r.End/1000, r.Ops(), r.Insert, r.Delete, r.Read, r.Retries, r.Pause)
	}
}
