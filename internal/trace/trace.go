// Package trace instruments the simulated machine itself: deterministic,
// simulated-cycle-stamped event traces plus windowed metric timelines
// (timeline.go). Where package obs watches the harness in wall-clock time,
// this package watches the machine in sim time — when a retry cascade or a
// reclamation pause storm happens inside a trial, not just that the
// end-of-trial aggregate is bad.
//
// The Sink is an append-only event recorder attached to a sim.Machine via
// SetTrace. Every hook is nil-safe on a nil *Sink and every producer guards
// with a single pointer nil check, so the tracing-off hot path costs one
// predictable branch and zero allocations. Because the simulator is a
// deterministic single-goroutine event loop, events are appended in a
// deterministic order and two runs of the same spec yield byte-identical
// trace files.
//
// Traces export in the Chrome trace_event JSON format, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing: each trial is a process track, each
// simulated core a thread track, operations are complete ("X") slices named
// by op kind, reclamation pauses are "B"/"E" duration slices, and retries
// and scans are thread-scoped instants. Timestamps are simulated cycles; the
// viewers label them microseconds, so read 1 µs as 1 cycle.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"condaccess/internal/latency"
)

type evKind uint8

const (
	evOp evKind = iota
	evRetry
	evPauseBegin
	evPauseEnd
	evScan
	evThreadBegin
	evThreadEnd
	evPhase
)

// event is one recorded occurrence, compact enough that a full trial's
// trace is a few dozen bytes per operation.
type event struct {
	kind evKind
	pid  int32 // trial sequence number, 1-based
	tid  int32 // simulated core id (phaseTID for phase events)
	op   latency.Kind
	attr latency.Attr
	ts   uint64 // simulated cycle (start cycle for spans)
	dur  uint64 // span length for evOp and evPhase
	a, b uint64 // evScan: nodes freed, nodes kept
	name string // evPhase: phase name; evScan: scheme name
}

// phaseTID is the synthetic track phase-boundary events render on: one
// "phases" lane per trial, well clear of any real core id.
const phaseTID = 1_000_000

// Sink records simulated-machine events. The zero value is ready to use;
// a nil *Sink is a valid, permanently-off sink (every method no-ops), which
// is what lets producers hold an always-valid pointer and skip tracing with
// one nil check. Not safe for concurrent use: the simulator is a single
// goroutine, and the sweep path refuses to share a sink across workers.
type Sink struct {
	events []event
	pid    int32
	labels []string // trial labels, indexed by pid-1
}

// ensureTrial lazily opens trial 1 so events recorded before any
// BeginTrial call still land on a valid process track.
func (s *Sink) ensureTrial() {
	if s.pid == 0 {
		s.pid = 1
		s.labels = append(s.labels, "")
	}
}

// BeginTrial opens the next trial: subsequent events render on a new
// process track named label.
func (s *Sink) BeginTrial(label string) {
	if s == nil {
		return
	}
	s.pid++
	s.labels = append(s.labels, label)
}

// Op records one completed operation as a duration slice on the thread's
// track, named by kind and tagged with its latency attribution.
func (s *Sink) Op(tid int, k latency.Kind, a latency.Attr, start, end uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evOp, pid: s.pid, tid: int32(tid),
		op: k, attr: a, ts: start, dur: end - start})
}

// Retry records one operation restart (conditional-access or validation
// failure) as a thread-scoped instant.
func (s *Sink) Retry(tid int, cycle uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evRetry, pid: s.pid, tid: int32(tid), ts: cycle})
}

// PauseBegin and PauseEnd bracket a reclamation pause (the outermost
// BeginPause/EndPause pair of a reclaimer's scan+free pass).
func (s *Sink) PauseBegin(tid int, cycle uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evPauseBegin, pid: s.pid, tid: int32(tid), ts: cycle})
}

// PauseEnd closes the pause opened by the matching PauseBegin.
func (s *Sink) PauseEnd(tid int, cycle uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evPauseEnd, pid: s.pid, tid: int32(tid), ts: cycle})
}

// Scan records one reclamation scan's outcome — scheme name, nodes freed,
// nodes still pinned — as an instant inside the pause that ran it.
func (s *Sink) Scan(tid int, cycle uint64, scheme string, freed, kept int) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evScan, pid: s.pid, tid: int32(tid), ts: cycle,
		name: scheme, a: uint64(freed), b: uint64(kept)})
}

// ThreadBegin and ThreadEnd bracket a simulated thread's run on its core
// track.
func (s *Sink) ThreadBegin(tid int, cycle uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evThreadBegin, pid: s.pid, tid: int32(tid), ts: cycle})
}

// ThreadEnd closes the run opened by the matching ThreadBegin.
func (s *Sink) ThreadEnd(tid int, cycle uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evThreadEnd, pid: s.pid, tid: int32(tid), ts: cycle})
}

// Phase records one workload phase as a slice on the trial's phases track.
func (s *Sink) Phase(name string, start, end uint64) {
	if s == nil {
		return
	}
	s.ensureTrial()
	s.events = append(s.events, event{kind: evPhase, pid: s.pid, tid: phaseTID,
		ts: start, dur: end - start, name: name})
}

// Len returns the number of recorded events (nil-safe).
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Reset drops every recorded event and trial, keeping allocations.
func (s *Sink) Reset() {
	if s == nil {
		return
	}
	s.events = s.events[:0]
	s.labels = s.labels[:0]
	s.pid = 0
}

// jstr renders v as a JSON string literal (the only escaping the writer
// needs — every other value is a number or fixed text).
func jstr(v string) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Unreachable: marshaling a string cannot fail.
		panic(err)
	}
	return string(b)
}

// WriteJSON renders the trace in Chrome trace_event JSON object format.
// The writer is hand-rolled fmt over the fixed event vocabulary (strings
// escaped through encoding/json), so the output is byte-deterministic:
// same events in, same bytes out.
func (s *Sink) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n")
		return err
	}
	bw := &strings.Builder{}
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")

	// Metadata first: a process_name per trial, then a thread_name for each
	// (pid, tid) pair in order of first appearance — both derived from the
	// event list itself, so metadata order is as deterministic as the events.
	n := 0
	meta := func(format string, args ...any) {
		if n > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, format, args...)
		n++
	}
	for i, label := range s.labels {
		if label == "" {
			label = fmt.Sprintf("trial %d", i+1)
		}
		meta(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`, i+1, jstr(label))
	}
	seen := make(map[int64]bool, 64)
	for _, e := range s.events {
		key := int64(e.pid)<<32 | int64(uint32(e.tid))
		if seen[key] {
			continue
		}
		seen[key] = true
		name := fmt.Sprintf("thread %d", e.tid)
		if e.tid == phaseTID {
			name = "phases"
		}
		meta(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`, e.pid, e.tid, jstr(name))
	}

	for _, e := range s.events {
		if n > 0 {
			bw.WriteString(",\n")
		}
		n++
		switch e.kind {
		case evOp:
			fmt.Fprintf(bw, `{"name":%s,"cat":"op","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"attr":%s}}`,
				jstr(e.op.String()), e.ts, e.dur, e.pid, e.tid, jstr(e.attr.String()))
		case evRetry:
			fmt.Fprintf(bw, `{"name":"retry","cat":"retry","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d}`,
				e.ts, e.pid, e.tid)
		case evPauseBegin:
			fmt.Fprintf(bw, `{"name":"pause","cat":"smr","ph":"B","ts":%d,"pid":%d,"tid":%d}`,
				e.ts, e.pid, e.tid)
		case evPauseEnd:
			fmt.Fprintf(bw, `{"name":"pause","cat":"smr","ph":"E","ts":%d,"pid":%d,"tid":%d}`,
				e.ts, e.pid, e.tid)
		case evScan:
			fmt.Fprintf(bw, `{"name":"scan","cat":"smr","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"scheme":%s,"freed":%d,"kept":%d}}`,
				e.ts, e.pid, e.tid, jstr(e.name), e.a, e.b)
		case evThreadBegin:
			fmt.Fprintf(bw, `{"name":"run","cat":"sched","ph":"B","ts":%d,"pid":%d,"tid":%d}`,
				e.ts, e.pid, e.tid)
		case evThreadEnd:
			fmt.Fprintf(bw, `{"name":"run","cat":"sched","ph":"E","ts":%d,"pid":%d,"tid":%d}`,
				e.ts, e.pid, e.tid)
		case evPhase:
			fmt.Fprintf(bw, `{"name":%s,"cat":"phase","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d}`,
				jstr(e.name), e.ts, e.dur, e.pid, e.tid)
		}
	}
	bw.WriteString("\n]}\n")
	_, err := io.WriteString(w, bw.String())
	return err
}

// WriteFile writes the trace to path (see WriteJSON).
func (s *Sink) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
