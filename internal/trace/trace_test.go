package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"condaccess/internal/latency"
)

// TestNilSinkIsSafe pins the tracing-off contract: every hook on a nil *Sink
// is a no-op, and a nil sink still writes a valid (empty) trace document.
func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	s.BeginTrial("x")
	s.Op(0, latency.KindInsert, latency.AttrUseful, 1, 2)
	s.Retry(0, 3)
	s.PauseBegin(0, 4)
	s.PauseEnd(0, 5)
	s.Scan(0, 5, "rcu", 1, 2)
	s.ThreadBegin(1, 0)
	s.ThreadEnd(1, 9)
	s.Phase("p", 0, 9)
	s.Reset()
	if s.Len() != 0 {
		t.Errorf("nil sink Len() = %d", s.Len())
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("nil sink output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("nil sink wrote %d events", len(doc.TraceEvents))
	}
}

// TestNilSinkAllocFree pins the tracing-off hot path: with no sink attached
// every hook must cost zero allocations (producers guard with one nil check
// and these calls compile to nothing that escapes).
func TestNilSinkAllocFree(t *testing.T) {
	var s *Sink
	n := testing.AllocsPerRun(200, func() {
		s.Op(0, latency.KindInsert, latency.AttrUseful, 1, 2)
		s.Retry(0, 3)
		s.PauseBegin(0, 4)
		s.PauseEnd(0, 5)
		s.ThreadBegin(0, 0)
		s.ThreadEnd(0, 9)
	})
	if n != 0 {
		t.Errorf("nil-sink hooks allocated %.1f times per run, want 0", n)
	}
}

// traceDoc is the subset of the Chrome trace_event format the tests check.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		TS   *uint64         `json:"ts"`
		Dur  uint64          `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func parseTrace(t *testing.T, s *Sink) traceDoc {
	t.Helper()
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, sb.String())
	}
	return doc
}

func recordSample(s *Sink) {
	s.BeginTrial("list/ca t=2")
	s.ThreadBegin(0, 0)
	s.Op(0, latency.KindInsert, latency.AttrUseful, 10, 25)
	s.Retry(0, 30)
	s.PauseBegin(0, 40)
	s.Scan(0, 45, "rcu", 3, 1)
	s.PauseEnd(0, 50)
	s.Op(0, latency.KindRead, latency.AttrReclaim, 30, 55)
	s.ThreadEnd(0, 60)
	s.Phase("churn", 0, 60)
	s.BeginTrial("list/ca t=2 trial 2")
	s.Op(1, latency.KindDelete, latency.AttrRetry, 5, 9)
}

func TestWriteJSONStructure(t *testing.T) {
	s := &Sink{}
	recordSample(s)
	doc := parseTrace(t, s)
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	byPh := map[string]int{}
	byCat := map[string]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
		if e.Cat != "" {
			byCat[e.Cat]++
		}
		if e.Ph != "M" && e.TS == nil {
			t.Errorf("event %q has no ts", e.Name)
		}
	}
	// 2 process_name + 3 thread_name (trial1 core0, trial1 phases, trial2
	// core1) metadata records.
	if byPh["M"] != 5 {
		t.Errorf("metadata events = %d, want 5", byPh["M"])
	}
	if byCat["op"] != 3 {
		t.Errorf("op events = %d, want 3", byCat["op"])
	}
	if byCat["smr"] != 3 { // pause B, pause E, scan
		t.Errorf("smr events = %d, want 3", byCat["smr"])
	}
	if byCat["phase"] != 1 || byCat["retry"] != 1 || byCat["sched"] != 2 {
		t.Errorf("cats = %v", byCat)
	}

	// The op slice carries kind as name, attribution in args, and the span.
	var op *struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		TS   *uint64         `json:"ts"`
		Dur  uint64          `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	}
	for i := range doc.TraceEvents {
		if doc.TraceEvents[i].Cat == "op" {
			op = &doc.TraceEvents[i]
			break
		}
	}
	if op == nil {
		t.Fatal("no op event")
	}
	if op.Name != "insert" || op.Ph != "X" || *op.TS != 10 || op.Dur != 15 || op.Pid != 1 || op.Tid != 0 {
		t.Errorf("op event = %+v", op)
	}
	var args struct {
		Attr string `json:"attr"`
	}
	if err := json.Unmarshal(op.Args, &args); err != nil || args.Attr != "useful" {
		t.Errorf("op args = %s (err %v)", op.Args, err)
	}

	// The second trial's events land on pid 2.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Pid != 2 || last.Name != "delete" {
		t.Errorf("second trial event = %+v", last)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	render := func() string {
		s := &Sink{}
		recordSample(s)
		var sb strings.Builder
		if err := s.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("two renders of the same events differ")
	}
}

func TestWriteJSONEscapesNames(t *testing.T) {
	s := &Sink{}
	s.BeginTrial(`quote " backslash \ newline` + "\n")
	s.Phase(`ph"ase`, 0, 1)
	doc := parseTrace(t, s) // json.Unmarshal fails if escaping is broken
	found := false
	for _, e := range doc.TraceEvents {
		if e.Cat == "phase" && e.Name == `ph"ase` {
			found = true
		}
	}
	if !found {
		t.Error("escaped phase name did not round-trip")
	}
}

func TestSinkLazyTrialAndReset(t *testing.T) {
	s := &Sink{}
	// An event before any BeginTrial opens trial 1 implicitly.
	s.Op(0, latency.KindRead, latency.AttrUseful, 0, 1)
	doc := parseTrace(t, s)
	var procName string
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil {
				t.Fatal(err)
			}
			procName = args.Name
		}
	}
	if procName != "trial 1" {
		t.Errorf("implicit trial label = %q, want \"trial 1\"", procName)
	}
	if s.Len() != 1 {
		t.Errorf("Len() = %d, want 1", s.Len())
	}

	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len() after Reset = %d", s.Len())
	}
	s.BeginTrial("fresh")
	s.Op(0, latency.KindRead, latency.AttrUseful, 0, 1)
	doc = parseTrace(t, s)
	for _, e := range doc.TraceEvents {
		if e.Ph != "M" && e.Pid != 1 {
			t.Errorf("post-Reset event on pid %d, want 1", e.Pid)
		}
	}
}

func TestPhaseRendersOnPhasesTrack(t *testing.T) {
	s := &Sink{}
	s.BeginTrial("t")
	s.Phase("warm", 0, 100)
	doc := parseTrace(t, s)
	named := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" && e.Tid == phaseTID {
			var args struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(e.Args, &args); err != nil || args.Name != "phases" {
				t.Errorf("phases track named %q (err %v)", args.Name, err)
			}
			named = true
		}
		if e.Cat == "phase" && e.Tid != phaseTID {
			t.Errorf("phase event on tid %d, want %d", e.Tid, phaseTID)
		}
	}
	if !named {
		t.Error("no thread_name metadata for the phases track")
	}
}
