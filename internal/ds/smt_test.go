package ds_test

// End-to-end tests of the paper's Section III system-integration features:
// SMT (hyperthreads sharing an L1, sibling writes revoking sibling tags) and
// context-switch revocation. Conditional Access structures must stay safe
// and correct under both — at worst they retry more.

import (
	"testing"

	"condaccess/internal/cache"
	"condaccess/internal/ds/lazylist"
	"condaccess/internal/ds/stack"
	"condaccess/internal/sim"
)

// TestCAListUnderSMT runs the Conditional Access lazy list with 8 hardware
// threads on 4 physical cores (2-way SMT) with all safety assertions on.
func TestCAListUnderSMT(t *testing.T) {
	p := cache.DefaultParams(8)
	p.ThreadsPerCore = 2
	m := sim.New(sim.Config{Cores: 8, Seed: 21, Check: true, Cache: p})
	l := lazylist.NewCA(m.Space)
	for i := 0; i < 8; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < 250; j++ {
				key := rng.Uint64n(64) + 1
				switch rng.Intn(3) {
				case 0:
					l.Insert(c, key)
				case 1:
					l.Delete(c, key)
				default:
					l.Contains(c, key)
				}
			}
		})
	}
	m.Run()
	ks := lazylist.Keys(m.Space, l.Head)
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("list unsorted under SMT: %v", ks)
		}
	}
	if live, n := m.Space.Stats().NodeLive(), len(ks); int(live) != n {
		t.Fatalf("live %d != list %d: immediate reclamation broke under SMT", live, n)
	}
}

// TestSiblingWriteForcesRetry pins the SMT semantics end to end: a
// hyperthread's plain write to a line its sibling tagged makes the sibling's
// next conditional access fail.
func TestSiblingWriteForcesRetry(t *testing.T) {
	p := cache.DefaultParams(2)
	p.ThreadsPerCore = 2 // threads 0 and 1 share one L1
	m := sim.New(sim.Config{Cores: 2, Seed: 22, Check: true, Cache: p})
	x := m.Space.AllocInfra()
	flag := m.Space.AllocInfra()
	m.Spawn(func(c *sim.Ctx) {
		if _, ok := c.CRead(x); !ok {
			t.Error("initial cread failed")
		}
		c.Write(flag, 1)
		for c.Read(flag) != 2 {
			c.Work(10)
		}
		if _, ok := c.CRead(x); ok {
			t.Error("cread succeeded after sibling write (no coherence event, same L1 — SMT rule violated)")
		}
	})
	m.Spawn(func(c *sim.Ctx) {
		for c.Read(flag) != 1 {
			c.Work(10)
		}
		c.Write(x, 5) // stays in the shared L1: only the SMT rule revokes
		c.Write(flag, 2)
	})
	m.Run()
}

// TestPreemptionRevokes checks the context-switch rule: after Preempt, the
// thread's conditional accesses fail until untagAll.
func TestPreemptionRevokes(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 23, Check: true})
	x := m.Space.AllocInfra()
	m.Spawn(func(c *sim.Ctx) {
		if _, ok := c.CRead(x); !ok {
			t.Error("cread failed")
		}
		c.Preempt()
		if _, ok := c.CRead(x); ok {
			t.Error("cread succeeded across a context switch")
		}
		if c.CWrite(x, 1) {
			t.Error("cwrite succeeded across a context switch")
		}
		c.UntagAll()
		if _, ok := c.CRead(x); !ok {
			t.Error("cread failed after untagAll")
		}
	})
	m.Run()
}

// TestPreemptionChaos injects random context switches into a concurrent
// Conditional Access workload: operations retry through them and the
// structures stay consistent (nothing panics under Check).
func TestPreemptionChaos(t *testing.T) {
	m := sim.New(sim.Config{Cores: 6, Seed: 24, Check: true})
	l := lazylist.NewCA(m.Space)
	s := stack.NewCA(m.Space)
	for i := 0; i < 6; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < 200; j++ {
				if rng.Intn(13) == 0 {
					c.Preempt() // the OS interferes mid-operation-stream
				}
				key := rng.Uint64n(48) + 1
				switch rng.Intn(4) {
				case 0:
					l.Insert(c, key)
				case 1:
					l.Delete(c, key)
				case 2:
					s.Push(c, key)
				default:
					s.Pop(c)
				}
			}
		})
	}
	m.Run()
	ks := lazylist.Keys(m.Space, l.Head)
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("list unsorted under preemption: %v", ks)
		}
	}
}
