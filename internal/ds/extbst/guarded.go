package extbst

import (
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// Guarded is the lock-based external BST paired with a reclamation scheme.
// Searches maintain reclaimer protection over (grandparent, parent, current)
// hand-over-hand across four slots; updates lock root-to-leaf (an order that
// ancestry changes never invert, so there are no lock cycles), validate, and
// retire unlinked nodes.
type Guarded struct {
	// Root is the immortal sentinel root.
	Root mem.Addr
	// R is the reclamation scheme.
	R smr.Reclaimer
	// Retries counts operation restarts.
	Retries uint64
}

// NewGuarded builds an empty tree on space reclaimed by r.
func NewGuarded(space *mem.Space, r smr.Reclaimer) *Guarded {
	return &Guarded{Root: newTreeSentinels(space), R: r}
}

func spinLock(c *sim.Ctx, addr mem.Addr) {
	for !c.CAS(addr, 0, 1) {
		c.Work(12)
	}
}

func unlock(c *sim.Ctx, addr mem.Addr) { c.Write(addr, 0) }

// find descends to the leaf for key with hand-over-hand protection,
// returning (gp, p, leaf, leafKey). gp is 0 when p is the root. Protection
// slots 0..3 rotate over gp/p/curr/next; the root needs none (immortal).
func (t *Guarded) find(c *sim.Ctx, key uint64) (gp, p, leaf, leafKey uint64) {
	validating := t.R.Validating()
retry:
	gp, p = 0, 0
	gpSlot, pSlot, currSlot := -1, -1, -1
	curr := t.Root
	for {
		left := c.Read(curr + layout.OffLeft)
		if left == 0 { // leaf
			return gp, p, curr, c.Read(curr + layout.OffKey)
		}
		ckey := c.Read(curr + layout.OffKey)
		next := left
		src := curr + layout.OffLeft
		if key >= ckey {
			next = c.Read(curr + layout.OffRight)
			src = curr + layout.OffRight
		}
		ns := freeSlot4(gpSlot, pSlot, currSlot)
		if !t.R.Protect(c, ns, next, src) {
			t.Retries++
			c.CountRetry()
			goto retry
		}
		if validating && curr != t.Root && c.Read(curr+layout.OffMark) != 0 {
			// hp/he: an unmarked curr at this instant proves next was
			// reachable after the hazard publish (see lazylist.Guarded.find).
			t.Retries++
			c.CountRetry()
			goto retry
		}
		gp, gpSlot = p, pSlot
		p, pSlot = curr, currSlot
		curr, currSlot = next, ns
	}
}

// freeSlot4 returns a slot in {0,1,2,3} distinct from a, b and c.
func freeSlot4(a, b, c int) int {
	for s := 0; s < 4; s++ {
		if s != a && s != b && s != c {
			return s
		}
	}
	panic("extbst: no free slot")
}

// Contains reports whether key is in the set.
func (t *Guarded) Contains(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	t.R.BeginOp(c)
	defer t.R.EndOp(c)
	_, _, leaf, leafKey := t.find(c, key)
	if leafKey != key {
		return false
	}
	return c.Read(leaf+layout.OffMark) == 0
}

// Insert adds key, returning false if present.
func (t *Guarded) Insert(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	t.R.BeginOp(c)
	defer t.R.EndOp(c)
	for {
		_, p, leaf, leafKey := t.find(c, key)
		if leafKey == key {
			if c.Read(leaf+layout.OffMark) == 0 {
				return false
			}
			t.Retries++ // a delete of the same key is mid-flight
			c.CountRetry()
			continue
		}
		spinLock(c, p+layout.OffLock)
		pl := c.Read(p + layout.OffLeft)
		pr := c.Read(p + layout.OffRight)
		if c.Read(p+layout.OffMark) == 0 && (pl == leaf || pr == leaf) {
			newLeaf := t.R.Alloc(c)
			c.Write(newLeaf+layout.OffKey, key)
			newInt := t.R.Alloc(c)
			if key < leafKey {
				c.Write(newInt+layout.OffKey, leafKey)
				c.Write(newInt+layout.OffLeft, newLeaf)
				c.Write(newInt+layout.OffRight, leaf)
			} else {
				c.Write(newInt+layout.OffKey, key)
				c.Write(newInt+layout.OffLeft, leaf)
				c.Write(newInt+layout.OffRight, newLeaf)
			}
			if pl == leaf {
				c.Write(p+layout.OffLeft, newInt) // LP
			} else {
				c.Write(p+layout.OffRight, newInt) // LP
			}
			unlock(c, p+layout.OffLock)
			return true
		}
		unlock(c, p+layout.OffLock)
		t.Retries++
		c.CountRetry()
	}
}

// Delete removes key, retiring the unlinked leaf and its parent, returning
// false if absent.
func (t *Guarded) Delete(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	t.R.BeginOp(c)
	defer t.R.EndOp(c)
	for {
		gp, p, leaf, leafKey := t.find(c, key)
		if leafKey != key {
			return false
		}
		if gp == 0 {
			panic("extbst: real leaf directly under root")
		}
		spinLock(c, gp+layout.OffLock)
		spinLock(c, p+layout.OffLock)
		spinLock(c, leaf+layout.OffLock)
		gl := c.Read(gp + layout.OffLeft)
		gr := c.Read(gp + layout.OffRight)
		pl := c.Read(p + layout.OffLeft)
		pr := c.Read(p + layout.OffRight)
		if c.Read(gp+layout.OffMark) == 0 && (gl == p || gr == p) &&
			c.Read(p+layout.OffMark) == 0 && (pl == leaf || pr == leaf) &&
			c.Read(leaf+layout.OffMark) == 0 {
			sibling := pl
			if pl == leaf {
				sibling = pr
			}
			c.Write(p+layout.OffMark, 1)
			c.Write(leaf+layout.OffMark, 1)
			if gl == p {
				c.Write(gp+layout.OffLeft, sibling) // LP
			} else {
				c.Write(gp+layout.OffRight, sibling) // LP
			}
			unlock(c, gp+layout.OffLock)
			unlock(c, p+layout.OffLock)
			unlock(c, leaf+layout.OffLock)
			t.R.Retire(c, p)
			t.R.Retire(c, leaf)
			return true
		}
		unlock(c, gp+layout.OffLock)
		unlock(c, p+layout.OffLock)
		unlock(c, leaf+layout.OffLock)
		t.Retries++
		c.CountRetry()
	}
}
