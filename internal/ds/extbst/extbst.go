// Package extbst implements the external (leaf-oriented) binary search tree
// of the paper's Figure 1 (bottom row), in the paper's own "optimistic
// two-phase locking" design pattern (Section IV-B): operations search
// optimistically, lock the nodes they will modify, validate (or, with
// Conditional Access, let the try-locks prove nothing changed), mark before
// unlinking, and reclaim.
//
// Structure. Internal nodes route: a search for key goes left when
// key < node.key, right otherwise; all keys live in the leaves. An insert
// replaces a leaf with a new internal node holding the old leaf and the new
// one; a delete unlinks a leaf and its parent, reconnecting the sibling to
// the grandparent. The tree is initialized with an immortal root
// Internal(SentinelHigh) whose children are Leaf(SentinelLow) and
// Leaf(SentinelHigh); real keys (< SentinelLow) always descend left of the
// root, so every real leaf has an internal parent and a grandparent, and
// the root is never locked as a grandparent target, never marked, never
// freed.
//
// Substitution note (DESIGN.md): the paper's evaluation cites Ellen et
// al.'s lock-free external BST; this lock-based external BST follows the
// design pattern the paper itself prescribes for Conditional Access upgrades
// and exercises the same code paths (long tagged descents, three-node
// lock/validate, immediate free of an internal+leaf pair).
package extbst

import (
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
)

// Tree geometry helpers shared by the two variants.

// newTreeSentinels allocates the immortal root and its two sentinel leaves,
// returning the root address.
func newTreeSentinels(space *mem.Space) mem.Addr {
	root := space.AllocInfra()
	infLo := space.AllocInfra()
	infHi := space.AllocInfra()
	space.Write(infLo+layout.OffKey, layout.SentinelLow)
	space.Write(infHi+layout.OffKey, layout.SentinelHigh)
	space.Write(root+layout.OffKey, layout.SentinelHigh)
	space.Write(root+layout.OffLeft, infLo)
	space.Write(root+layout.OffRight, infHi)
	return root
}

func checkKey(key uint64) {
	if key == 0 || key >= layout.SentinelLow {
		panic("extbst: key out of range [1, SentinelLow)")
	}
}

// Keys returns the live user keys in sorted order by walking the tree
// single-threadedly. Test helper; performs no simulated work.
func Keys(space *mem.Space, root mem.Addr) []uint64 {
	var ks []uint64
	var walk func(a mem.Addr)
	walk = func(a mem.Addr) {
		left := space.Read(a + layout.OffLeft)
		if left == 0 { // leaf
			k := space.Read(a + layout.OffKey)
			if k < layout.SentinelLow && space.Read(a+layout.OffMark) == 0 {
				ks = append(ks, k)
			}
			return
		}
		walk(left)
		walk(space.Read(a + layout.OffRight))
	}
	walk(root)
	return ks
}

// Len returns the number of live user keys. Test helper.
func Len(space *mem.Space, root mem.Addr) int { return len(Keys(space, root)) }

// CheckShape validates the external-BST shape invariants single-threadedly:
// every internal node has two children, every key routes correctly, and
// leaves are where searches expect them. Test helper; returns a description
// of the first violation, or "".
func CheckShape(space *mem.Space, root mem.Addr) string {
	var check func(a mem.Addr, lo, hi uint64) string
	check = func(a mem.Addr, lo, hi uint64) string {
		key := space.Read(a + layout.OffKey)
		if key < lo || key > hi {
			return "key out of routing range"
		}
		left := space.Read(a + layout.OffLeft)
		right := space.Read(a + layout.OffRight)
		if left == 0 && right == 0 {
			return "" // leaf
		}
		if left == 0 || right == 0 {
			return "internal node with one child"
		}
		if s := check(left, lo, key-1); s != "" {
			return s
		}
		return check(right, key, hi)
	}
	return check(root, 0, layout.SentinelHigh)
}
