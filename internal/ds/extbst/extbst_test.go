package extbst

import (
	"testing"

	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

type setIface interface {
	Insert(c *sim.Ctx, key uint64) bool
	Delete(c *sim.Ctx, key uint64) bool
	Contains(c *sim.Ctx, key uint64) bool
}

func sequentialSuite(t *testing.T, m *sim.Machine, s setIface, root uint64) {
	t.Helper()
	m.Spawn(func(c *sim.Ctx) {
		keys := []uint64{50, 25, 75, 10, 30, 60, 90, 5, 15, 27, 35}
		for _, k := range keys {
			if !s.Insert(c, k) {
				t.Errorf("insert %d failed", k)
			}
		}
		for _, k := range keys {
			if s.Insert(c, k) {
				t.Errorf("duplicate insert %d succeeded", k)
			}
			if !s.Contains(c, k) {
				t.Errorf("contains %d = false after insert", k)
			}
		}
		if s.Contains(c, 42) {
			t.Error("contains absent key")
		}
		for _, k := range []uint64{25, 5, 90, 50} {
			if !s.Delete(c, k) {
				t.Errorf("delete %d failed", k)
			}
			if s.Contains(c, k) {
				t.Errorf("contains %d = true after delete", k)
			}
			if s.Delete(c, k) {
				t.Errorf("double delete %d succeeded", k)
			}
		}
	})
	m.Run()
	if msg := CheckShape(m.Space, root); msg != "" {
		t.Fatalf("shape violated: %s", msg)
	}
	want := []uint64{10, 15, 27, 30, 35, 60, 75}
	got := Keys(m.Space, root)
	if len(got) != len(want) {
		t.Fatalf("keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestCASequential(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1, Check: true})
	tr := NewCA(m.Space)
	sequentialSuite(t, m, tr, tr.Root)
	// Immediate reclamation: 4 deletes freed 4 leaves + 4 internals.
	if st := m.Space.Stats(); st.NodeFrees != 8 {
		t.Fatalf("frees = %d, want 8", st.NodeFrees)
	}
}

func TestGuardedSequentialAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 2, Check: true})
			r, err := smr.New(name, m.Space, 1, smr.Options{ReclaimEvery: 4, EpochEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			tr := NewGuarded(m.Space, r)
			sequentialSuite(t, m, tr, tr.Root)
		})
	}
}

func runConcurrent(t *testing.T, m *sim.Machine, s setIface, threads, ops int, keyRange uint64) {
	t.Helper()
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < ops; j++ {
				key := rng.Uint64n(keyRange) + 1
				switch rng.Intn(3) {
				case 0:
					s.Insert(c, key)
				case 1:
					s.Delete(c, key)
				default:
					s.Contains(c, key)
				}
			}
		})
	}
	m.Run()
}

func TestCAConcurrent(t *testing.T) {
	m := sim.New(sim.Config{Cores: 8, Seed: 3, Check: true})
	tr := NewCA(m.Space)
	runConcurrent(t, m, tr, 8, 400, 128)
	if msg := CheckShape(m.Space, tr.Root); msg != "" {
		t.Fatalf("shape violated: %s", msg)
	}
	// Immediate reclamation: live nodes == tree nodes (keys + internals).
	n := Len(m.Space, tr.Root)
	wantLive := uint64(2 * n) // each key has one leaf and one internal above it
	if st := m.Space.Stats(); st.NodeLive() != wantLive {
		t.Fatalf("live = %d, want %d for %d keys", st.NodeLive(), wantLive, n)
	}
}

func TestGuardedConcurrentAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 8, Seed: 4, Check: true})
			r, err := smr.New(name, m.Space, 8, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			tr := NewGuarded(m.Space, r)
			runConcurrent(t, m, tr, 8, 400, 128)
			if msg := CheckShape(m.Space, tr.Root); msg != "" {
				t.Fatalf("shape violated: %s", msg)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := sim.New(sim.Config{Cores: 4, Seed: 9, Check: true})
		tr := NewCA(m.Space)
		runConcurrent(t, m, tr, 4, 200, 64)
		return m.MaxClock(), m.Space.Hash()
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Fatalf("nondeterministic: clocks %d/%d heap %x/%x", c1, c2, h1, h2)
	}
}
