package extbst

import (
	"condaccess/internal/core"
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// CATree is the Conditional Access external BST: searches descend with
// creads keeping at most three nodes (grandparent, parent, current) tagged,
// hand-over-hand; updates take Conditional Access try-locks; deletes mark
// the unlinked internal+leaf pair and free both immediately.
type CATree struct {
	// Root is the immortal sentinel root.
	Root mem.Addr
	// Retries counts operation restarts.
	Retries uint64
}

// NewCA builds an empty Conditional Access tree on space.
func NewCA(space *mem.Space) *CATree {
	return &CATree{Root: newTreeSentinels(space)}
}

// locate descends to the leaf for key, returning tagged (gp, p, leaf) and
// the leaf key. gp is 0 when p is the root. Every returned node was
// unmarked when tagged (DII) and reachable from its tagged parent (Lemma 5's
// inductive argument, applied to tree edges). Retries internally.
func (t *CATree) locate(c *sim.Ctx, key uint64) (gp, p, leaf, leafKey uint64) {
	spins := 0
retry:
	if spins++; spins > core.MaxSpuriousRetries {
		panic(core.ErrLivelock("extbst.locate"))
	}
	c.UntagAll()
	// Tag and validate the root (never marked; the cread tags it).
	if m, ok := c.CRead(t.Root + layout.OffMark); !ok || m != 0 {
		t.Retries++
		c.CountRetry()
		goto retry
	}
	gp, p = 0, 0
	for curr := t.Root; ; {
		left, ok := c.CRead(curr + layout.OffLeft)
		if !ok {
			t.Retries++
			c.CountRetry()
			goto retry
		}
		if left == 0 { // leaf
			lk, ok := c.CRead(curr + layout.OffKey)
			if !ok {
				t.Retries++
				c.CountRetry()
				goto retry
			}
			return gp, p, curr, lk
		}
		ckey, ok := c.CRead(curr + layout.OffKey)
		if !ok {
			t.Retries++
			c.CountRetry()
			goto retry
		}
		next := left
		if key >= ckey {
			if next, ok = c.CRead(curr + layout.OffRight); !ok {
				t.Retries++
				c.CountRetry()
				goto retry
			}
		}
		// Untag the outgoing great-grandparent before tagging the child so
		// the tag set never exceeds three lines (gp, p, curr) — the minimum
		// L1 associativity the descent can livelock below.
		if gp != 0 {
			c.UntagOne(gp)
		}
		// Tag the child and validate it was unmarked when tagged (DII).
		if m, ok := c.CRead(next + layout.OffMark); !ok || m != 0 {
			t.Retries++
			c.CountRetry()
			goto retry
		}
		gp, p = p, curr
		curr = next
	}
}

// Contains reports whether key is in the set.
func (t *CATree) Contains(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	_, _, _, leafKey := t.locate(c, key)
	c.UntagAll()
	return leafKey == key
}

// Insert adds key, returning false if present. The single try-lock on the
// parent suffices: its success proves the parent (and, via the shared
// accessRevokedBit, the tagged leaf) is unchanged since tagging, so the
// search-time child link and mark validations still hold.
func (t *CATree) Insert(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	for {
		_, p, leaf, leafKey := t.locate(c, key)
		if leafKey == key {
			c.UntagAll()
			return false
		}
		if !core.TryLock(c, p+layout.OffLock) {
			t.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		// Critical section: plain accesses are safe under the lock.
		newLeaf := c.AllocNode()
		c.Write(newLeaf+layout.OffKey, key)
		newInt := c.AllocNode()
		if key < leafKey {
			c.Write(newInt+layout.OffKey, leafKey)
			c.Write(newInt+layout.OffLeft, newLeaf)
			c.Write(newInt+layout.OffRight, leaf)
		} else {
			c.Write(newInt+layout.OffKey, key)
			c.Write(newInt+layout.OffLeft, leaf)
			c.Write(newInt+layout.OffRight, newLeaf)
		}
		if c.Read(p+layout.OffLeft) == leaf {
			c.Write(p+layout.OffLeft, newInt) // LP
		} else {
			c.Write(p+layout.OffRight, newInt) // LP
		}
		core.Unlock(c, p+layout.OffLock)
		c.UntagAll()
		return true
	}
}

// Delete removes key, unlinking its leaf and the leaf's parent and freeing
// both immediately, returning false if absent.
func (t *CATree) Delete(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	for {
		gp, p, leaf, leafKey := t.locate(c, key)
		if leafKey != key {
			c.UntagAll()
			return false
		}
		// A real leaf always has a grandparent: the root's children are
		// sentinel structures whose keys are never requested.
		if gp == 0 {
			panic("extbst: real leaf directly under root")
		}
		if !core.TryLock(c, gp+layout.OffLock) {
			t.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if !core.TryLock(c, p+layout.OffLock) {
			core.Unlock(c, gp+layout.OffLock)
			t.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if !core.TryLock(c, leaf+layout.OffLock) {
			core.Unlock(c, gp+layout.OffLock)
			core.Unlock(c, p+layout.OffLock)
			t.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		// All three locked: the successful cwrites prove gp -> p -> leaf is
		// intact and unmarked. Plain accesses below.
		pl := c.Read(p + layout.OffLeft)
		sibling := pl
		if pl == leaf {
			sibling = c.Read(p + layout.OffRight)
		}
		c.Write(p+layout.OffMark, 1)    // mark before unlink: the
		c.Write(leaf+layout.OffMark, 1) // reclaimer's mandatory stores
		if c.Read(gp+layout.OffLeft) == p {
			c.Write(gp+layout.OffLeft, sibling) // LP
		} else {
			c.Write(gp+layout.OffRight, sibling) // LP
		}
		core.Unlock(c, gp+layout.OffLock)
		core.Unlock(c, p+layout.OffLock)
		core.Unlock(c, leaf+layout.OffLock)
		c.UntagAll()
		c.Free(p) // immediate reclamation of both unlinked nodes
		c.Free(leaf)
		return true
	}
}
