// Package queue implements the Michael–Scott unbounded FIFO queue — the
// second "single write per update" structure the paper reports implementing
// (Section IV-A cites Michael & Scott alongside the Treiber stack) — in the
// usual two variants:
//
//   - CA: every read is a cread, every CAS a cwrite; the dequeued dummy is
//     freed immediately. Lagging tails are helped with a cwrite, which
//     either succeeds or fails because someone else already swung it.
//   - Guarded: the classic M&S queue with a pluggable reclamation scheme.
//
// The head and tail pointers live on separate immortal lines to avoid false
// sharing between enqueuers and dequeuers.
package queue

import (
	"condaccess/internal/core"
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// CA is a Conditional Access Michael–Scott queue.
type CA struct {
	headAddr mem.Addr
	tailAddr mem.Addr
	// Retries counts operation restarts.
	Retries uint64
}

// NewCA builds an empty queue (one dummy node) on space.
func NewCA(space *mem.Space) *CA {
	q := &CA{headAddr: space.AllocInfra(), tailAddr: space.AllocInfra()}
	dummy := space.AllocNode() // freed by the dequeue that passes it
	space.Write(q.headAddr, dummy)
	space.Write(q.tailAddr, dummy)
	return q
}

// Enqueue appends key.
func (q *CA) Enqueue(c *sim.Ctx, key uint64) {
	n := c.AllocNode()
	c.Write(n+layout.OffKey, key)
	for spins := 0; ; spins++ {
		if spins > core.MaxSpuriousRetries {
			panic(core.ErrLivelock("queue.Enqueue"))
		}
		t, ok := c.CRead(q.tailAddr) // tags the tail-pointer line
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		next, ok := c.CRead(t + layout.OffNext) // tags node t
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if next != 0 {
			// Tail lags: help swing it. Success and failure both mean the
			// tail has moved on; re-read either way.
			c.CWrite(q.tailAddr, next)
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if !c.CWrite(t+layout.OffNext, n) { // LP
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		// Linked. Swing the tail; if this fails, the revocation means
		// another thread observed the lag and helped.
		c.CWrite(q.tailAddr, n)
		c.UntagAll()
		return
	}
}

// Dequeue removes and returns the oldest key, freeing the outgoing dummy
// node immediately. ok=false means the queue was empty.
func (q *CA) Dequeue(c *sim.Ctx) (key uint64, ok bool) {
	for spins := 0; ; spins++ {
		if spins > core.MaxSpuriousRetries {
			panic(core.ErrLivelock("queue.Dequeue"))
		}
		h, ok := c.CRead(q.headAddr) // tags the head-pointer line
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		next, ok := c.CRead(h + layout.OffNext) // tags node h
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if next == 0 {
			c.UntagAll()
			return 0, false
		}
		// Keep the tail from pointing at the node we are about to free.
		t, ok2 := c.CRead(q.tailAddr)
		if !ok2 {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if t == h {
			c.CWrite(q.tailAddr, next) // help; outcome re-checked on retry
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		// Read the value before unlinking (after the swing h is recycled).
		key, ok = c.CRead(next + layout.OffKey)
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if !c.CWrite(q.headAddr, next) { // LP
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		c.UntagAll()
		// Safe to free immediately: every thread holding h tagged also
		// tagged the head (or tail) pointer line, which our cwrite (or the
		// helped swing) just invalidated.
		c.Free(h)
		return key, true
	}
}

// Peek returns the oldest key without removing it — a genuine front read:
// two creads down the head chain and no writes, so (unlike the historical
// dequeue+enqueue pair the stationary harness used for the queue's read
// share) it cannot contend with other threads' linearization points.
// ok=false means the queue was empty.
func (q *CA) Peek(c *sim.Ctx) (key uint64, ok bool) {
	for spins := 0; ; spins++ {
		if spins > core.MaxSpuriousRetries {
			panic(core.ErrLivelock("queue.Peek"))
		}
		h, ok := c.CRead(q.headAddr) // tags the head-pointer line
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		next, ok := c.CRead(h + layout.OffNext) // tags node h
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if next == 0 {
			c.UntagAll()
			return 0, false
		}
		key, ok = c.CRead(next + layout.OffKey)
		if !ok {
			q.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		c.UntagAll()
		return key, true
	}
}

// Guarded is the classic Michael–Scott queue with deferred reclamation.
type Guarded struct {
	headAddr mem.Addr
	tailAddr mem.Addr
	r        smr.Reclaimer
	// Retries counts operation restarts.
	Retries uint64
}

// NewGuarded builds an empty queue on space reclaimed by r.
func NewGuarded(space *mem.Space, r smr.Reclaimer) *Guarded {
	q := &Guarded{headAddr: space.AllocInfra(), tailAddr: space.AllocInfra(), r: r}
	dummy := space.AllocNode()
	space.Write(q.headAddr, dummy)
	space.Write(q.tailAddr, dummy)
	return q
}

// Reclaimer returns the queue's reclamation scheme.
func (q *Guarded) Reclaimer() smr.Reclaimer { return q.r }

// Enqueue appends key.
func (q *Guarded) Enqueue(c *sim.Ctx, key uint64) {
	n := q.r.Alloc(c)
	c.Write(n+layout.OffKey, key)
	q.r.BeginOp(c)
	defer q.r.EndOp(c)
	for {
		t := c.Read(q.tailAddr)
		if !q.r.Protect(c, 0, t, q.tailAddr) {
			q.Retries++
			c.CountRetry()
			continue
		}
		next := c.Read(t + layout.OffNext)
		if c.Read(q.tailAddr) != t {
			q.Retries++
			c.CountRetry()
			continue
		}
		if next != 0 {
			c.CAS(q.tailAddr, t, next) // help
			q.Retries++
			c.CountRetry()
			continue
		}
		if c.CAS(t+layout.OffNext, 0, n) { // LP
			c.CAS(q.tailAddr, t, n)
			return
		}
		q.Retries++
		c.CountRetry()
	}
}

// Dequeue removes and returns the oldest key; the outgoing dummy is retired.
func (q *Guarded) Dequeue(c *sim.Ctx) (key uint64, ok bool) {
	q.r.BeginOp(c)
	defer q.r.EndOp(c)
	for {
		h := c.Read(q.headAddr)
		if !q.r.Protect(c, 0, h, q.headAddr) {
			q.Retries++
			c.CountRetry()
			continue
		}
		t := c.Read(q.tailAddr)
		next := c.Read(h + layout.OffNext)
		if c.Read(q.headAddr) != h {
			q.Retries++
			c.CountRetry()
			continue
		}
		if next == 0 {
			return 0, false
		}
		if h == t {
			c.CAS(q.tailAddr, t, next) // help the lagging tail
			q.Retries++
			c.CountRetry()
			continue
		}
		if !q.r.Protect(c, 1, next, h+layout.OffNext) {
			q.Retries++
			c.CountRetry()
			continue
		}
		key = c.Read(next + layout.OffKey)
		if c.CAS(q.headAddr, h, next) { // LP
			q.r.Retire(c, h)
			return key, true
		}
		q.Retries++
		c.CountRetry()
	}
}

// Peek returns the oldest key without removing it; ok=false means the queue
// was empty. Protection mirrors Dequeue's: the head node and its successor
// are both protected before the successor's key is read.
func (q *Guarded) Peek(c *sim.Ctx) (key uint64, ok bool) {
	q.r.BeginOp(c)
	defer q.r.EndOp(c)
	for {
		h := c.Read(q.headAddr)
		if !q.r.Protect(c, 0, h, q.headAddr) {
			q.Retries++
			c.CountRetry()
			continue
		}
		next := c.Read(h + layout.OffNext)
		if c.Read(q.headAddr) != h {
			q.Retries++
			c.CountRetry()
			continue
		}
		if next == 0 {
			return 0, false
		}
		if !q.r.Protect(c, 1, next, h+layout.OffNext) {
			q.Retries++
			c.CountRetry()
			continue
		}
		key = c.Read(next + layout.OffKey)
		if c.Read(q.headAddr) != h {
			q.Retries++
			c.CountRetry()
			continue
		}
		return key, true
	}
}

// Drain empties the queue single-threadedly and returns the keys in order.
// Test helper; performs no simulated work.
func Drain(space *mem.Space, headAddr mem.Addr) []uint64 {
	var ks []uint64
	h := space.Read(headAddr)
	for {
		next := space.Read(h + layout.OffNext)
		if next == 0 {
			return ks
		}
		ks = append(ks, space.Read(next+layout.OffKey))
		h = next
	}
}
