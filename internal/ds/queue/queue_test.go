package queue

import (
	"sort"
	"testing"

	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

type queueIface interface {
	Enqueue(c *sim.Ctx, key uint64)
	Dequeue(c *sim.Ctx) (uint64, bool)
	Peek(c *sim.Ctx) (uint64, bool)
}

func TestCASequentialFIFO(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1, Check: true})
	q := NewCA(m.Space)
	m.Spawn(func(c *sim.Ctx) {
		if _, ok := q.Dequeue(c); ok {
			t.Error("dequeue from empty queue succeeded")
		}
		for k := uint64(1); k <= 10; k++ {
			q.Enqueue(c, k)
		}
		for k := uint64(1); k <= 10; k++ {
			if got, ok := q.Dequeue(c); !ok || got != k {
				t.Errorf("dequeue = %d,%v, want %d,true", got, ok, k)
			}
		}
		if _, ok := q.Dequeue(c); ok {
			t.Error("drained queue dequeue succeeded")
		}
	})
	m.Run()
	// Immediate reclamation: only the current dummy remains live.
	if st := m.Space.Stats(); st.NodeLive() != 1 {
		t.Fatalf("live nodes = %d, want 1 (dummy)", st.NodeLive())
	}
}

func TestGuardedSequentialFIFOAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 2, Check: true})
			r, err := smr.New(name, m.Space, 1, smr.Options{ReclaimEvery: 4, EpochEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			q := NewGuarded(m.Space, r)
			m.Spawn(func(c *sim.Ctx) {
				for round := 0; round < 5; round++ {
					for k := uint64(1); k <= 20; k++ {
						q.Enqueue(c, k)
					}
					for k := uint64(1); k <= 20; k++ {
						if got, ok := q.Dequeue(c); !ok || got != k {
							t.Errorf("round %d: dequeue = %d,%v, want %d", round, got, ok, k)
						}
					}
				}
			})
			m.Run()
		})
	}
}

// testPeekSequential drives either variant through the Peek contract:
// empty-queue misses, agreement with the next Dequeue, and no side effects
// (peeking must not consume, reorder, or allocate).
func testPeekSequential(t *testing.T, m *sim.Machine, q queueIface) {
	t.Helper()
	m.Spawn(func(c *sim.Ctx) {
		if _, ok := q.Peek(c); ok {
			t.Error("peek on empty queue succeeded")
		}
		for k := uint64(1); k <= 10; k++ {
			q.Enqueue(c, k)
		}
		for k := uint64(1); k <= 10; k++ {
			for i := 0; i < 3; i++ { // repeated peeks must not consume
				if got, ok := q.Peek(c); !ok || got != k {
					t.Errorf("peek = %d,%v, want %d,true", got, ok, k)
				}
			}
			if got, ok := q.Dequeue(c); !ok || got != k {
				t.Errorf("dequeue after peek = %d,%v, want %d,true", got, ok, k)
			}
		}
		if _, ok := q.Peek(c); ok {
			t.Error("peek on drained queue succeeded")
		}
	})
	m.Run()
}

func TestCAPeek(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 5, Check: true})
	q := NewCA(m.Space)
	testPeekSequential(t, m, q)
	if st := m.Space.Stats(); st.NodeLive() != 1 {
		t.Fatalf("live nodes = %d, want 1 (dummy)", st.NodeLive())
	}
}

func TestGuardedPeekAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 6, Check: true})
			r, err := smr.New(name, m.Space, 1, smr.Options{ReclaimEvery: 4, EpochEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			testPeekSequential(t, m, NewGuarded(m.Space, r))
		})
	}
}

// TestPeekConcurrent mixes peekers among producers/consumers under Check
// mode: peeks must only ever observe a key some producer enqueued, and the
// queue must stay conservation-correct (runMixed's own checks) with peeks
// in flight.
func TestPeekConcurrent(t *testing.T) {
	const stamp = 1 << 32
	run := func(t *testing.T, m *sim.Machine, q queueIface) {
		for i := 0; i < 4; i++ {
			m.Spawn(func(c *sim.Ctx) {
				id := c.ThreadID()
				var seq uint64
				for j := 0; j < 300; j++ {
					switch j % 3 {
					case 0:
						seq++
						q.Enqueue(c, uint64(id)*stamp+seq)
					case 1:
						q.Dequeue(c)
					default:
						if v, ok := q.Peek(c); ok && v%stamp == 0 {
							t.Errorf("peek observed impossible key %d", v)
						}
					}
				}
			})
		}
		m.Run()
	}
	t.Run("ca", func(t *testing.T) {
		m := sim.New(sim.Config{Cores: 4, Seed: 7, Check: true})
		run(t, m, NewCA(m.Space))
	})
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 4, Seed: 8, Check: true})
			r, err := smr.New(name, m.Space, 4, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			run(t, m, NewGuarded(m.Space, r))
		})
	}
}

// runMixed checks conservation and per-producer FIFO order: each thread
// enqueues an ascending sequence stamped with its id; dequeued values from
// any single producer must come out in order.
func runMixed(t *testing.T, m *sim.Machine, q queueIface, threads, ops int) {
	t.Helper()
	const stamp = 1 << 32
	var dequeued [][]uint64 = make([][]uint64, threads)
	enqueued := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			id := c.ThreadID()
			rng := c.Rand()
			var seq uint64
			for j := 0; j < ops; j++ {
				if rng.Intn(2) == 0 {
					seq++
					q.Enqueue(c, uint64(id)*stamp+seq)
					enqueued[id]++
				} else if v, ok := q.Dequeue(c); ok {
					dequeued[id] = append(dequeued[id], v)
				}
			}
		})
	}
	m.Run()
	// Drain the remainder.
	var rest []uint64
	m.Spawn(func(c *sim.Ctx) {
		for {
			v, ok := q.Dequeue(c)
			if !ok {
				return
			}
			rest = append(rest, v)
		}
	})
	m.Run()
	// Conservation + per-producer FIFO.
	perProducer := make(map[uint64][]uint64)
	total := 0
	for _, batch := range append(dequeued, rest) {
		total += len(batch)
		for _, v := range batch {
			perProducer[v/stamp] = append(perProducer[v/stamp], v%stamp)
		}
	}
	var wantTotal uint64
	for _, n := range enqueued {
		wantTotal += n
	}
	if uint64(total) != wantTotal {
		t.Fatalf("conservation violated: enqueued %d, dequeued %d", wantTotal, total)
	}
	for p, seqs := range perProducer {
		// A producer's items may interleave with others', but among
		// themselves must be an ascending contiguous run 1..n once sorted
		// sets aside interleaving: the multiset must be exactly {1..n}.
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("producer %d: dequeued multiset %v not contiguous", p, seqs)
			}
		}
	}
}

func TestCAConcurrent(t *testing.T) {
	m := sim.New(sim.Config{Cores: 8, Seed: 3, Check: true})
	q := NewCA(m.Space)
	runMixed(t, m, q, 8, 400)
	if st := m.Space.Stats(); st.NodeLive() != 1 {
		t.Fatalf("after drain, live nodes = %d, want 1 (dummy)", st.NodeLive())
	}
}

func TestGuardedConcurrentAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 8, Seed: 4, Check: true})
			r, err := smr.New(name, m.Space, 8, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			q := NewGuarded(m.Space, r)
			runMixed(t, m, q, 8, 400)
		})
	}
}
