// Package ds_test cross-validates every set implementation (both variants,
// every reclamation scheme) against a map oracle on randomized operation
// sequences — the strongest correctness statement available for sequential
// histories — and checks pairwise agreement between all implementations on
// identical concurrent workloads where results must at least satisfy set
// semantics.
package ds_test

import (
	"strings"
	"testing"
	"testing/quick"

	"condaccess/internal/ds/extbst"
	"condaccess/internal/ds/hashtable"
	"condaccess/internal/ds/hmlist"
	"condaccess/internal/ds/lazylist"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

type set interface {
	Insert(c *sim.Ctx, key uint64) bool
	Delete(c *sim.Ctx, key uint64) bool
	Contains(c *sim.Ctx, key uint64) bool
}

// variant names every buildable set implementation.
type variant struct {
	name  string
	build func(m *sim.Machine, nThreads int) (set, error)
}

func variants() []variant {
	vs := []variant{
		{"list/ca", func(m *sim.Machine, _ int) (set, error) { return lazylist.NewCA(m.Space), nil }},
		{"bst/ca", func(m *sim.Machine, _ int) (set, error) { return extbst.NewCA(m.Space), nil }},
		{"hash/ca", func(m *sim.Machine, _ int) (set, error) { return hashtable.NewCA(m.Space, 8), nil }},
		{"hmlist/ca", func(m *sim.Machine, _ int) (set, error) { return hmlist.NewCA(m.Space), nil }},
	}
	for _, scheme := range smr.Names() {
		scheme := scheme
		vs = append(vs,
			variant{"list/" + scheme, func(m *sim.Machine, n int) (set, error) {
				r, err := smr.New(scheme, m.Space, n, smr.Options{ReclaimEvery: 8, EpochEvery: 16})
				if err != nil {
					return nil, err
				}
				return lazylist.NewGuarded(m.Space, r), nil
			}},
			variant{"bst/" + scheme, func(m *sim.Machine, n int) (set, error) {
				r, err := smr.New(scheme, m.Space, n, smr.Options{ReclaimEvery: 8, EpochEvery: 16})
				if err != nil {
					return nil, err
				}
				return extbst.NewGuarded(m.Space, r), nil
			}},
			variant{"hash/" + scheme, func(m *sim.Machine, n int) (set, error) {
				r, err := smr.New(scheme, m.Space, n, smr.Options{ReclaimEvery: 8, EpochEvery: 16})
				if err != nil {
					return nil, err
				}
				return hashtable.NewGuarded(m.Space, r, 8), nil
			}},
			variant{"hmlist/" + scheme, func(m *sim.Machine, n int) (set, error) {
				r, err := smr.New(scheme, m.Space, n, smr.Options{ReclaimEvery: 8, EpochEvery: 16})
				if err != nil {
					return nil, err
				}
				return hmlist.NewGuarded(m.Space, r), nil
			}},
		)
	}
	return vs
}

// op is one randomized set operation.
type op struct {
	Kind uint8 // %3: insert, delete, contains
	Key  uint8 // %32 + 1
}

// TestSequentialOracle replays random op sequences against each
// implementation and a map, requiring identical return values throughout.
func TestSequentialOracle(t *testing.T) {
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			seed := uint64(1)
			f := func(ops []op) bool {
				seed++
				m := sim.New(sim.Config{Cores: 1, Seed: seed, Check: true})
				s, err := v.build(m, 1)
				if err != nil {
					t.Fatal(err)
				}
				oracle := map[uint64]bool{}
				okAll := true
				m.Spawn(func(c *sim.Ctx) {
					for i, o := range ops {
						key := uint64(o.Key%32) + 1
						var got, want bool
						switch o.Kind % 3 {
						case 0:
							got = s.Insert(c, key)
							want = !oracle[key]
							oracle[key] = true
						case 1:
							got = s.Delete(c, key)
							want = oracle[key]
							delete(oracle, key)
						default:
							got = s.Contains(c, key)
							want = oracle[key]
						}
						if got != want {
							t.Logf("op %d (%v on %d): got %v, want %v", i, o.Kind%3, key, got, want)
							okAll = false
							return
						}
					}
				})
				m.Run()
				return okAll
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// setOp is one operation of a pre-compiled single-threaded program: the
// unit the reusable differential harness below executes. Programs are
// compiled once (from a seeded RNG or a random scenario spec, see
// scenario_differential_test.go) and replayed against every variant, so the
// op stream cannot depend on the implementation under test.
type setOp struct {
	kind uint8 // 0 insert, 1 delete, 2 contains
	key  uint64
}

// runProgram replays prog single-threaded on a fresh checked machine and
// returns every operation's boolean result plus the final membership of
// [1, keyRange]. Single-threaded set semantics are deterministic, so two
// correct variants must agree on both, whatever their reclamation scheme.
func runProgram(t *testing.T, v variant, prog []setOp, keyRange uint64) (rets []bool, final []bool) {
	t.Helper()
	m := sim.New(sim.Config{Cores: 1, Seed: 5, Check: true})
	s, err := v.build(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	rets = make([]bool, len(prog))
	final = make([]bool, keyRange+1)
	m.Spawn(func(c *sim.Ctx) {
		for i, op := range prog {
			switch op.kind {
			case 0:
				rets[i] = s.Insert(c, op.key)
			case 1:
				rets[i] = s.Delete(c, op.key)
			default:
				rets[i] = s.Contains(c, op.key)
			}
		}
		for k := uint64(1); k <= keyRange; k++ {
			final[k] = s.Contains(c, k)
		}
	})
	m.Run()
	return rets, final
}

// variantsByDS groups the variants by structure; the first (CA) variant of
// each structure is the reference the guarded schemes must match.
func variantsByDS() map[string][]variant {
	byDS := map[string][]variant{}
	for _, v := range variants() {
		ds := v.name[:strings.Index(v.name, "/")]
		byDS[ds] = append(byDS[ds], v)
	}
	return byDS
}

// requireVariantsAgree replays prog against every variant of every
// structure and reports any divergence in per-op results or final contents.
func requireVariantsAgree(t *testing.T, what string, prog []setOp, keyRange uint64) {
	t.Helper()
	for ds, vs := range variantsByDS() {
		if len(vs) < 2 {
			t.Fatalf("%s: only %d variants, differential test needs >= 2", ds, len(vs))
		}
		refRets, refFinal := runProgram(t, vs[0], prog, keyRange)
		for _, v := range vs[1:] {
			rets, final := runProgram(t, v, prog, keyRange)
			for i := range rets {
				if rets[i] != refRets[i] {
					t.Errorf("%s: op %d (%v key %d): %s returned %v, %s returned %v",
						what, i, prog[i].kind, prog[i].key, v.name, rets[i], vs[0].name, refRets[i])
					break // one op report per variant is enough
				}
			}
			for k := uint64(1); k <= keyRange; k++ {
				if final[k] != refFinal[k] {
					t.Errorf("%s: %s vs %s: key %d present=%v vs %v", what, v.name, vs[0].name, k, final[k], refFinal[k])
				}
			}
		}
	}
}

// TestCrossSchemeDifferential runs the same seeded workload under every
// variant and requires per-operation results and the final structure
// contents to be identical across reclamation schemes. The workload is
// single-threaded and pre-compiled, so the operation sequence does not
// depend on the scheme; the scheme only decides when unlinked nodes are
// freed. Any divergence (a key present under hp but absent under ca, say)
// is a structure or reclamation bug, caught here without an oracle: the
// implementations check each other.
func TestCrossSchemeDifferential(t *testing.T) {
	const keyRange, nOps = 40, 800
	rng := sim.NewRNG(5)
	prog := make([]setOp, nOps)
	for i := range prog {
		prog[i] = setOp{kind: uint8(rng.Intn(3)), key: rng.Uint64n(keyRange) + 1}
	}
	requireVariantsAgree(t, "seeded-uniform", prog, keyRange)
}

// TestConcurrentFinalStateAgreesWithReplay runs every implementation under
// the same concurrent workload and verifies the surviving key set is
// internally consistent: a final single-threaded Contains sweep must agree
// with a fresh traversal, and all keys must be inside the workload range.
func TestConcurrentFinalStateAgreesWithReplay(t *testing.T) {
	const threads, ops, keyRange = 6, 250, 48
	for _, v := range variants() {
		v := v
		t.Run(v.name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: threads, Seed: 77, Check: true})
			s, err := v.build(m, threads)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < threads; i++ {
				m.Spawn(func(c *sim.Ctx) {
					rng := c.Rand()
					for j := 0; j < ops; j++ {
						key := rng.Uint64n(keyRange) + 1
						switch rng.Intn(3) {
						case 0:
							s.Insert(c, key)
						case 1:
							s.Delete(c, key)
						default:
							s.Contains(c, key)
						}
					}
				})
			}
			m.Run()
			// Single-threaded epilogue: delete every key that Contains
			// reports, then verify the set reads empty. This exercises the
			// full read-modify path against whatever state concurrency left.
			m.Spawn(func(c *sim.Ctx) {
				for k := uint64(1); k <= keyRange; k++ {
					if s.Contains(c, k) {
						if !s.Delete(c, k) {
							t.Errorf("%s: contains(%d) true but delete failed", v.name, k)
						}
					}
				}
				for k := uint64(1); k <= keyRange; k++ {
					if s.Contains(c, k) {
						t.Errorf("%s: key %d survived the drain", v.name, k)
					}
				}
			})
			m.Run()
		})
	}
}
