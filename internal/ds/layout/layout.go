// Package layout fixes the in-line field offsets shared by every simulated
// data-structure node. Each node occupies exactly one 64-byte line (the
// paper's simplifying assumption in Section IV: one node per cache line), so
// tagging a node means tagging its line.
package layout

import "condaccess/internal/mem"

// Field byte offsets within a node line.
const (
	OffKey   = 0                 // immutable key
	OffNext  = 1 * mem.WordBytes // list/stack/queue successor
	OffLeft  = 1 * mem.WordBytes // BST left child (same word as next)
	OffRight = 2 * mem.WordBytes // BST right child
	OffMark  = 3 * mem.WordBytes // logical-deletion mark
	OffLock  = 4 * mem.WordBytes // per-node lock word
	OffValue = 5 * mem.WordBytes // payload (queue)
	// Offset 6 is spare; offset 7 (smr.BirthEraOff) is reserved for the
	// era-based reclamation schemes' birth stamp.
)

// Sentinel key values. User keys must lie in [1, SentinelLow).
const (
	// KeyMin is the head sentinel key (lists).
	KeyMin = uint64(0)
	// SentinelLow is the lower infinity sentinel (BST's inf1).
	SentinelLow = ^uint64(0) - 1
	// SentinelHigh is the upper infinity sentinel (tail / BST's inf2).
	SentinelHigh = ^uint64(0)
)
