package hashtable

import (
	"testing"

	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

type setIface interface {
	Insert(c *sim.Ctx, key uint64) bool
	Delete(c *sim.Ctx, key uint64) bool
	Contains(c *sim.Ctx, key uint64) bool
}

func sequentialSuite(t *testing.T, m *sim.Machine, s setIface) {
	t.Helper()
	m.Spawn(func(c *sim.Ctx) {
		for k := uint64(1); k <= 300; k++ {
			if !s.Insert(c, k) {
				t.Errorf("insert %d failed", k)
			}
		}
		for k := uint64(1); k <= 300; k += 3 {
			if !s.Delete(c, k) {
				t.Errorf("delete %d failed", k)
			}
		}
		for k := uint64(1); k <= 300; k++ {
			want := k%3 != 1
			if s.Contains(c, k) != want {
				t.Errorf("contains %d = %v, want %v", k, !want, want)
			}
		}
	})
	m.Run()
}

func TestCASequential(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1, Check: true})
	tbl := NewCA(m.Space, 16)
	sequentialSuite(t, m, tbl)
	if got := tbl.Len(m.Space); got != 200 {
		t.Fatalf("len = %d, want 200", got)
	}
	// Immediate reclamation: live == table size.
	if st := m.Space.Stats(); st.NodeLive() != 200 {
		t.Fatalf("live = %d, want 200", st.NodeLive())
	}
}

func TestGuardedSequentialAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 2, Check: true})
			r, err := smr.New(name, m.Space, 1, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			tbl := NewGuarded(m.Space, r, 16)
			sequentialSuite(t, m, tbl)
			if got := tbl.Len(m.Space); got != 200 {
				t.Fatalf("len = %d, want 200", got)
			}
		})
	}
}

func TestCAConcurrent(t *testing.T) {
	m := sim.New(sim.Config{Cores: 8, Seed: 3, Check: true})
	tbl := NewCA(m.Space, 16)
	for i := 0; i < 8; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < 400; j++ {
				key := rng.Uint64n(256) + 1
				switch rng.Intn(3) {
				case 0:
					tbl.Insert(c, key)
				case 1:
					tbl.Delete(c, key)
				default:
					tbl.Contains(c, key)
				}
			}
		})
	}
	m.Run()
	if st := m.Space.Stats(); int(st.NodeLive()) != tbl.Len(m.Space) {
		t.Fatalf("live %d != table size %d", st.NodeLive(), tbl.Len(m.Space))
	}
}

func TestBucketsIndependent(t *testing.T) {
	// Keys that collide mod 4 land in the same bucket and stay sorted there.
	m := sim.New(sim.Config{Cores: 1, Seed: 5, Check: true})
	tbl := NewCA(m.Space, 4)
	m.Spawn(func(c *sim.Ctx) {
		for _, k := range []uint64{4, 8, 12, 16, 1, 5, 9} {
			tbl.Insert(c, k)
		}
		for _, k := range []uint64{4, 8, 12, 16, 1, 5, 9} {
			if !tbl.Contains(c, k) {
				t.Errorf("contains %d = false", k)
			}
		}
		if tbl.Contains(c, 2) || tbl.Contains(c, 13) {
			t.Error("contains reported an absent key")
		}
	})
	m.Run()
}

func TestGuardedConcurrentAndCounters(t *testing.T) {
	m := sim.New(sim.Config{Cores: 8, Seed: 9, Check: true})
	r, err := smr.New("rcu", m.Space, 8, smr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewGuarded(m.Space, r, 16)
	if tbl.Reclaimer() != r {
		t.Fatal("Reclaimer accessor broken")
	}
	for i := 0; i < 8; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < 300; j++ {
				key := rng.Uint64n(128) + 1
				switch rng.Intn(3) {
				case 0:
					tbl.Insert(c, key)
				case 1:
					tbl.Delete(c, key)
				default:
					tbl.Contains(c, key)
				}
			}
		})
	}
	m.Run()
	// Retries is a sum over buckets; it must at least not panic and the
	// table must satisfy set semantics on a drain.
	_ = tbl.Retries()
	m.Spawn(func(c *sim.Ctx) {
		for k := uint64(1); k <= 128; k++ {
			if tbl.Contains(c, k) && !tbl.Delete(c, k) {
				t.Errorf("contains(%d) true but delete failed", k)
			}
		}
	})
	m.Run()
	if n := tbl.Len(m.Space); n != 0 {
		t.Fatalf("table not empty after drain: %d", n)
	}
}

func TestBadBucketCountPanics(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("zero buckets accepted")
		}
	}()
	NewCA(m.Space, 0)
}
