// Package hashtable implements the chaining hash table of the paper's
// Figure 2 (top row): a fixed array of buckets, each an independent lazy
// list (the paper uses 128 buckets). Both the Conditional Access and the
// guarded variants delegate to package lazylist per bucket, so the table
// inherits each variant's reclamation behaviour; the short chains make it a
// low-contention, shallow-traversal counterpoint to the long lists of
// Figure 1.
package hashtable

import (
	"condaccess/internal/ds/lazylist"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// DefaultBuckets matches the paper's configuration.
const DefaultBuckets = 128

// CA is a Conditional Access chaining hash table.
type CA struct {
	buckets []*lazylist.CAList
}

// NewCA builds a table with nBuckets Conditional Access bucket lists.
func NewCA(space *mem.Space, nBuckets int) *CA {
	if nBuckets <= 0 {
		panic("hashtable: nBuckets must be positive")
	}
	t := &CA{buckets: make([]*lazylist.CAList, nBuckets)}
	for i := range t.buckets {
		t.buckets[i] = lazylist.NewCA(space)
	}
	return t
}

func (t *CA) bucket(key uint64) *lazylist.CAList {
	return t.buckets[key%uint64(len(t.buckets))]
}

// Insert adds key, returning false if present.
func (t *CA) Insert(c *sim.Ctx, key uint64) bool { return t.bucket(key).Insert(c, key) }

// Delete removes key (freeing its node immediately), returning false if
// absent.
func (t *CA) Delete(c *sim.Ctx, key uint64) bool { return t.bucket(key).Delete(c, key) }

// Contains reports membership.
func (t *CA) Contains(c *sim.Ctx, key uint64) bool { return t.bucket(key).Contains(c, key) }

// Retries sums the bucket lists' restart counters.
func (t *CA) Retries() uint64 {
	var n uint64
	for _, b := range t.buckets {
		n += b.Retries
	}
	return n
}

// Len returns the table's live size (test helper; not simulated work).
func (t *CA) Len(space *mem.Space) int {
	n := 0
	for _, b := range t.buckets {
		n += lazylist.Len(space, b.Head)
	}
	return n
}

// Guarded is a chaining hash table over guarded lazy lists sharing one
// reclamation scheme.
type Guarded struct {
	buckets []*lazylist.Guarded
	r       smr.Reclaimer
}

// NewGuarded builds a table with nBuckets bucket lists reclaimed by r.
func NewGuarded(space *mem.Space, r smr.Reclaimer, nBuckets int) *Guarded {
	if nBuckets <= 0 {
		panic("hashtable: nBuckets must be positive")
	}
	t := &Guarded{buckets: make([]*lazylist.Guarded, nBuckets), r: r}
	for i := range t.buckets {
		t.buckets[i] = lazylist.NewGuarded(space, r)
	}
	return t
}

func (t *Guarded) bucket(key uint64) *lazylist.Guarded {
	return t.buckets[key%uint64(len(t.buckets))]
}

// Insert adds key, returning false if present.
func (t *Guarded) Insert(c *sim.Ctx, key uint64) bool { return t.bucket(key).Insert(c, key) }

// Delete removes key (retiring its node), returning false if absent.
func (t *Guarded) Delete(c *sim.Ctx, key uint64) bool { return t.bucket(key).Delete(c, key) }

// Contains reports membership.
func (t *Guarded) Contains(c *sim.Ctx, key uint64) bool { return t.bucket(key).Contains(c, key) }

// Reclaimer returns the shared reclamation scheme.
func (t *Guarded) Reclaimer() smr.Reclaimer { return t.r }

// Retries sums the bucket lists' restart counters.
func (t *Guarded) Retries() uint64 {
	var n uint64
	for _, b := range t.buckets {
		n += b.Retries
	}
	return n
}

// Len returns the table's live size (test helper; not simulated work).
func (t *Guarded) Len(space *mem.Space) int {
	n := 0
	for _, b := range t.buckets {
		n += lazylist.Len(space, b.Head)
	}
	return n
}
