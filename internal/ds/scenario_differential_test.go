// The scenario-driven structural differential: random scenario.Scenario
// specs (random phases, weights, roles, distributions, key windows, hotspot
// shifts) are compiled into deterministic single-threaded op programs and
// replayed through the reusable oracle harness against every variant —
// every structure under CA and under every reclamation scheme — requiring
// identical per-op results and final contents throughout. This is the
// structure-level half of the differential fuzz suite; the engine-level
// half (accounting and tail invariants through the full RunScenario
// pipeline) lives in internal/bench.
package ds_test

import (
	"fmt"
	"testing"

	"condaccess/internal/scenario"
	"condaccess/internal/sim"
)

// compileScenarioOps lowers a scenario into a single-threaded op program:
// for each phase, Ops draws against the effective weight table, keyed from
// the phase's window with its hotspot shift applied — the same thresholds
// and rotation the bench engine uses. One RNG stream carries across phases.
// Distributions: "zipf" is interpreted as a deterministic square-skew here
// (this harness defines its own execution of the spec — the assertion is
// cross-variant agreement on one stream, so any deterministic
// interpretation is sound and a skewed one stresses hot keys).
func compileScenarioOps(sc scenario.Scenario, seed, defaultRange uint64) []setOp {
	rng := sim.NewRNG(seed ^ 0xD1FFE7E4)

	// Single-threaded role resolution, mirroring the bench engine: roles
	// take threads in declaration order, so thread 0 belongs to the first
	// role with a nonzero allotment (the catch-all absorbs the remainder —
	// with one thread, whatever the fixed counts left over).
	var roleW *scenario.Weights
	fixed := 0
	for _, r := range sc.Roles {
		fixed += r.Count
	}
	for _, r := range sc.Roles {
		n := r.Count
		if n == 0 {
			n = 1 - fixed
		}
		if n > 0 {
			roleW = r.Weights
			break
		}
	}

	var prog []setOp
	for _, ph := range sc.Phases {
		w := ph.Weights
		if roleW != nil {
			w = *roleW
		}
		insLim := uint64(w.Insert)
		delLim := uint64(w.Insert + w.Delete)
		total := uint64(w.Total())
		kr := ph.KeyRange
		if kr == 0 {
			kr = defaultRange
		}
		offset := uint64(ph.KeyShift * float64(kr))
		for j := 0; j < ph.Ops; j++ {
			p := rng.Uint64n(total)
			key := rng.Uint64n(kr)
			if ph.Dist == "zipf" {
				key = key * key / kr // deterministic skew toward low keys
			}
			key++
			if offset != 0 {
				key = (key-1+offset)%kr + 1
			}
			kind := uint8(2)
			switch {
			case p < insLim:
				kind = 0
			case p < delLim:
				kind = 1
			}
			prog = append(prog, setOp{kind: kind, key: key})
		}
	}
	return prog
}

// scenarioDifferential generates the seed's scenario, compiles it, and
// requires every variant of every structure to agree on it.
func scenarioDifferential(t *testing.T, seed uint64) {
	t.Helper()
	const keyRange = 96
	sc := scenario.Random(seed)
	prog := compileScenarioOps(sc, seed, keyRange)
	if len(prog) == 0 {
		t.Fatalf("seed %d: empty program", seed)
	}
	requireVariantsAgree(t, fmt.Sprintf("scenario seed %d", seed), prog, keyRange)
}

// TestScenarioStructuralDifferential is the seeded quick mode: a fixed
// spread of random scenario specs, run on every variant, suitable for every
// CI run.
func TestScenarioStructuralDifferential(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			scenarioDifferential(t, seed)
		})
	}
}

// FuzzScenarioStructuralDifferential lets the fuzzer pick generator seeds
// beyond the quick spread.
func FuzzScenarioStructuralDifferential(f *testing.F) {
	for seed := uint64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		scenarioDifferential(t, seed)
	})
}
