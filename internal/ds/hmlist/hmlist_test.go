package hmlist

import (
	"testing"

	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

type setIface interface {
	Insert(c *sim.Ctx, key uint64) bool
	Delete(c *sim.Ctx, key uint64) bool
	Contains(c *sim.Ctx, key uint64) bool
}

func sequentialSuite(t *testing.T, m *sim.Machine, l setIface, head uint64) {
	t.Helper()
	m.Spawn(func(c *sim.Ctx) {
		for k := uint64(1); k <= 40; k++ {
			if !l.Insert(c, k) {
				t.Errorf("insert %d failed", k)
			}
		}
		if l.Insert(c, 7) {
			t.Error("duplicate insert succeeded")
		}
		for k := uint64(2); k <= 40; k += 2 {
			if !l.Delete(c, k) {
				t.Errorf("delete %d failed", k)
			}
		}
		for k := uint64(1); k <= 40; k++ {
			want := k%2 == 1
			if l.Contains(c, k) != want {
				t.Errorf("contains %d = %v, want %v", k, !want, want)
			}
		}
		if l.Delete(c, 2) {
			t.Error("double delete succeeded")
		}
	})
	m.Run()
	ks := Keys(m.Space, head)
	if len(ks) != 20 {
		t.Fatalf("len = %d, want 20 (%v)", len(ks), ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("unsorted: %v", ks)
		}
	}
}

func TestCASequential(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1, Check: true})
	l := NewCA(m.Space)
	sequentialSuite(t, m, l, l.Head)
	// Sequential deletes always win their own unlink: everything freed.
	st := m.Space.Stats()
	if int(st.NodeLive()) != Len(m.Space, l.Head) {
		t.Fatalf("live %d != list %d", st.NodeLive(), Len(m.Space, l.Head))
	}
}

func TestGuardedSequentialAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 2, Check: true})
			r, err := smr.New(name, m.Space, 1, smr.Options{ReclaimEvery: 4, EpochEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			l := NewGuarded(m.Space, r)
			sequentialSuite(t, m, l, l.Head)
		})
	}
}

func runConcurrent(t *testing.T, m *sim.Machine, l setIface, threads, ops int, keyRange uint64) {
	t.Helper()
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < ops; j++ {
				key := rng.Uint64n(keyRange) + 1
				switch rng.Intn(3) {
				case 0:
					l.Insert(c, key)
				case 1:
					l.Delete(c, key)
				default:
					l.Contains(c, key)
				}
			}
		})
	}
	m.Run()
}

func TestCAConcurrent(t *testing.T) {
	m := sim.New(sim.Config{Cores: 8, Seed: 3, Check: true})
	l := NewCA(m.Space)
	runConcurrent(t, m, l, 8, 400, 64)
	ks := Keys(m.Space, l.Head)
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("unsorted: %v", ks)
		}
	}
	// Marked-but-not-yet-unlinked nodes may outlive the run (their unlink
	// lost and no traversal passed since), so live >= list length; the gap
	// must be small relative to the op count.
	st := m.Space.Stats()
	if int(st.NodeLive()) < len(ks) {
		t.Fatalf("live %d < list %d", st.NodeLive(), len(ks))
	}
	if gap := int(st.NodeLive()) - len(ks); gap > 50 {
		t.Fatalf("deferred-unlink backlog %d too large", gap)
	}
}

func TestGuardedConcurrentAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 8, Seed: 4, Check: true})
			r, err := smr.New(name, m.Space, 8, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			l := NewGuarded(m.Space, r)
			runConcurrent(t, m, l, 8, 400, 64)
			ks := Keys(m.Space, l.Head)
			for i := 1; i < len(ks); i++ {
				if ks[i-1] >= ks[i] {
					t.Fatalf("unsorted: %v", ks)
				}
			}
		})
	}
}

// TestHelpingReclaims forces the helper path: one thread marks a node but
// loses its unlink; a later traversal must snip and (for CA) free it.
func TestHelpingHappens(t *testing.T) {
	m := sim.New(sim.Config{Cores: 4, Seed: 5, Check: true})
	l := NewCA(m.Space)
	for i := 0; i < 4; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < 500; j++ {
				key := rng.Uint64n(16) + 1 // tiny range: heavy contention
				if rng.Intn(2) == 0 {
					l.Insert(c, key)
				} else {
					l.Delete(c, key)
				}
			}
		})
	}
	m.Run()
	if l.Helped == 0 {
		t.Fatal("no helping occurred under heavy contention; the lost-unlink path is untested")
	}
	// Drain and verify every node is eventually reclaimed.
	m.Spawn(func(c *sim.Ctx) {
		for k := uint64(1); k <= 16; k++ {
			l.Delete(c, k)
		}
		// One last traversal snips any marked stragglers.
		l.Contains(c, 16)
	})
	m.Run()
	if n := Len(m.Space, l.Head); n != 0 {
		t.Fatalf("list not empty after drain: %d", n)
	}
	if live := m.Space.Stats().NodeLive(); live != 0 {
		t.Fatalf("live = %d after drain+sweep, want 0", live)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := sim.New(sim.Config{Cores: 4, Seed: 7, Check: true})
		l := NewCA(m.Space)
		runConcurrent(t, m, l, 4, 300, 32)
		return m.MaxClock(), m.Space.Hash()
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Fatalf("nondeterministic: %d/%d %x/%x", c1, c2, h1, h2)
	}
}
