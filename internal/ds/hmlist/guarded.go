package hmlist

import (
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// Guarded is the classic CAS-based Harris–Michael list over a reclamation
// scheme. Traversals help unlink marked nodes and retire them.
type Guarded struct {
	// Head is the immortal head sentinel.
	Head mem.Addr
	// R is the reclamation scheme.
	R smr.Reclaimer
	// Retries counts operation restarts.
	Retries uint64
	// Helped counts nodes unlinked by helping traversals.
	Helped uint64
}

// NewGuarded builds an empty Harris–Michael list on space reclaimed by r.
func NewGuarded(space *mem.Space, r smr.Reclaimer) *Guarded {
	return &Guarded{Head: NewSentinels(space), R: r}
}

// search locates pred/curr with pred.key < key <= curr.key, snipping marked
// nodes (Michael's algorithm). Protection uses three rotating slots; for the
// validating schemes (hp/he) the Protect re-read of pred's next field is the
// standard Michael validation — a marked or changed pred restarts.
func (l *Guarded) search(c *sim.Ctx, key uint64) (pred, curr, currNext, currKey uint64) {
retry:
	pred = l.Head
	predSlot := -1
	pn := c.Read(pred + layout.OffNext) // head's next is never marked
	curr = clearMark(pn)
	currSlot := 0
	if !l.R.Protect(c, currSlot, curr, pred+layout.OffNext) {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	for {
		cn := c.Read(curr + layout.OffNext)
		if marked(cn) {
			// Help unlink. The CAS requires pred's next to still be exactly
			// curr (unmarked), which also proves pred itself was not snipped.
			if !c.CAS(pred+layout.OffNext, curr, clearMark(cn)) {
				l.Retries++
				c.CountRetry()
				goto retry
			}
			l.Helped++
			l.R.Retire(c, curr)
			next := clearMark(cn)
			ns := freeSlot(predSlot, currSlot)
			if !l.R.Protect(c, ns, next, pred+layout.OffNext) {
				l.Retries++
				c.CountRetry()
				goto retry
			}
			curr, currSlot = next, ns
			continue
		}
		ck := c.Read(curr + layout.OffKey)
		if ck >= key {
			return pred, curr, cn, ck
		}
		next := clearMark(cn)
		ns := freeSlot(predSlot, currSlot)
		if !l.R.Protect(c, ns, next, curr+layout.OffNext) {
			l.Retries++
			c.CountRetry()
			goto retry
		}
		// For hp/he the pointer re-read in Protect proved curr.next still
		// names next; curr being unmarked then (the low bit of that very
		// word) makes next reachable, so no extra mark check is needed —
		// Harris–Michael encodes the mark in the validated word itself.
		pred, predSlot = curr, currSlot
		curr, currSlot = next, ns
	}
}

func freeSlot(a, b int) int {
	for s := 0; s < 3; s++ {
		if s != a && s != b {
			return s
		}
	}
	panic("hmlist: no free slot")
}

// Contains reports whether key is in the set.
func (l *Guarded) Contains(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	l.R.BeginOp(c)
	defer l.R.EndOp(c)
	_, _, _, ck := l.search(c, key)
	return ck == key
}

// Insert adds key, returning false if present.
func (l *Guarded) Insert(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	l.R.BeginOp(c)
	defer l.R.EndOp(c)
	n := l.R.Alloc(c)
	c.Write(n+layout.OffKey, key)
	for {
		pred, curr, _, ck := l.search(c, key)
		if ck == key {
			c.Free(n) // never published
			return false
		}
		c.Write(n+layout.OffNext, curr)
		if c.CAS(pred+layout.OffNext, curr, n) { // LP
			return true
		}
		l.Retries++
		c.CountRetry()
	}
}

// Delete removes key, returning false if absent.
func (l *Guarded) Delete(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	l.R.BeginOp(c)
	defer l.R.EndOp(c)
	for {
		pred, curr, cn, ck := l.search(c, key)
		if ck != key {
			return false
		}
		if !c.CAS(curr+layout.OffNext, cn, cn|markBit) { // LP (logical delete)
			l.Retries++
			c.CountRetry()
			continue
		}
		// Physical unlink: on success retire here; on failure a helping
		// traversal will snip and retire.
		if c.CAS(pred+layout.OffNext, curr, clearMark(cn)) {
			l.R.Retire(c, curr)
		}
		return true
	}
}
