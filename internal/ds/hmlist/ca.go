package hmlist

import (
	"condaccess/internal/core"
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// CAList is the Conditional Access Harris–Michael lock-free list.
type CAList struct {
	// Head is the immortal head sentinel.
	Head mem.Addr
	// Retries counts operation restarts.
	Retries uint64
	// Helped counts marked nodes unlinked (and freed) by traversals on
	// behalf of other threads' deletes.
	Helped uint64
}

// NewCA builds an empty Conditional Access Harris–Michael list on space.
func NewCA(space *mem.Space) *CAList {
	return &CAList{Head: NewSentinels(space)}
}

// search locates pred (tagged, unmarked when tagged) and curr (tagged,
// unmarked when tagged) with pred.key < key <= curr.key, unlinking — and
// immediately freeing — any marked nodes it passes. currNext is curr's next
// pointer as read while tagging it (unmarked). Retries internally.
func (l *CAList) search(c *sim.Ctx, key uint64) (pred, curr, currNext, currKey uint64) {
	spins := 0
retry:
	if spins++; spins > core.MaxSpuriousRetries {
		panic(core.ErrLivelock("hmlist.search"))
	}
	c.UntagAll()
	pred = l.Head
	// Tag the head via its next field; the head is never marked.
	pn, ok := c.CRead(pred + layout.OffNext)
	if !ok {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	curr = clearMark(pn)
	for {
		// Tagging cread of curr. The mark bit in the next field is the DII
		// validation: marked means logically deleted.
		cn, ok := c.CRead(curr + layout.OffNext)
		if !ok {
			l.Retries++
			c.CountRetry()
			goto retry
		}
		if marked(cn) {
			// Help: unlink curr from pred and free it. pred is tagged, so
			// the cwrite succeeds only if pred is untouched since its cread
			// — in which case this thread is the unique unlinker.
			if !c.CWrite(pred+layout.OffNext, clearMark(cn)) {
				l.Retries++
				c.CountRetry()
				goto retry
			}
			l.Helped++
			c.Free(curr) // immediate reclamation by the helper
			curr = clearMark(cn)
			continue
		}
		ck, ok := c.CRead(curr + layout.OffKey)
		if !ok {
			l.Retries++
			c.CountRetry()
			goto retry
		}
		if ck >= key {
			return pred, curr, cn, ck
		}
		c.UntagOne(pred)
		pred = curr
		curr = clearMark(cn)
	}
}

// Contains reports whether key is in the set.
func (l *CAList) Contains(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	_, _, _, ck := l.search(c, key)
	c.UntagAll()
	return ck == key
}

// Insert adds key, returning false if present. The node is allocated once
// and re-pointed across retries; if the key turns out to be present the
// still-private node is freed.
func (l *CAList) Insert(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	n := c.AllocNode()
	c.Write(n+layout.OffKey, key)
	for {
		pred, curr, _, ck := l.search(c, key)
		if ck == key {
			c.UntagAll()
			c.Free(n) // never published: private free needs no protocol
			return false
		}
		c.Write(n+layout.OffNext, curr)
		// The link cwrite replaces Harris–Michael's CAS(pred.next, curr, n):
		// success proves pred was untouched since tagging, so it is still
		// unmarked and still points at curr.
		if c.CWrite(pred+layout.OffNext, n) { // LP
			c.UntagAll()
			return true
		}
		l.Retries++
		c.CountRetry()
		c.UntagAll()
	}
}

// Delete removes key, returning false if absent. The logical delete is the
// mark cwrite; the unlink either succeeds here (node freed immediately) or
// is left to a helping traversal.
func (l *CAList) Delete(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	for {
		pred, curr, cn, ck := l.search(c, key)
		if ck != key {
			c.UntagAll()
			return false
		}
		// Logical delete: mark curr's next pointer. Replaces
		// CAS(curr.next, cn, cn|mark); revocation subsumes the comparison.
		if !c.CWrite(curr+layout.OffNext, cn|markBit) { // LP
			l.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		// Physical unlink: best effort. On success we are the unique
		// unlinker and free immediately; on failure a helper will.
		if c.CWrite(pred+layout.OffNext, cn) {
			c.UntagAll()
			c.Free(curr)
		} else {
			c.UntagAll()
		}
		return true
	}
}
