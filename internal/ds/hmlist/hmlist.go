// Package hmlist implements the Harris–Michael lock-free linked list — the
// paper's future-work question ("whether Conditional Access can also be used
// for more complex lock-free data structures", Section VII) answered in the
// affirmative — in the usual two variants:
//
//   - CA: every read is a cread and every CAS becomes a cwrite. The mark
//     bit lives in the low bit of the next pointer, so the logical-delete
//     cwrite doubles as the reclaimer's mandatory pre-free store. A
//     successful unlink (by the deleter or by a helping traversal) frees the
//     node immediately; a failed unlink leaves the marked node for the next
//     traversal to reclaim.
//   - Guarded: the classic Harris–Michael list over a reclamation scheme,
//     with helping traversals retiring the nodes they unlink.
//
// Why Conditional Access suffices where Harris–Michael normally needs CAS:
// a cwrite succeeds only if nothing invalidated the tagged line since its
// cread, which subsumes the CAS's value comparison (any change to the next
// field rewrites the line) and is additionally ABA-immune. The helping rule
// that makes lock-free lists tricky for reclamation — a reader may unlink a
// node some other thread logically deleted — composes cleanly: whichever
// thread's unlink cwrite succeeds is unique (everyone else was revoked by
// that very write), so exactly one thread frees each node.
package hmlist

import (
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
)

// markBit is stored in the low bit of the next field (nodes are 64-byte
// aligned, so pointer low bits are free).
const markBit = 1

func marked(next uint64) bool     { return next&markBit != 0 }
func clearMark(n uint64) mem.Addr { return n &^ markBit }

// NewSentinels allocates the immortal head/tail pair, returning the head.
func NewSentinels(space *mem.Space) mem.Addr {
	head := space.AllocInfra()
	tail := space.AllocInfra()
	space.Write(head+layout.OffKey, layout.KeyMin)
	space.Write(head+layout.OffNext, tail)
	space.Write(tail+layout.OffKey, layout.SentinelHigh)
	return head
}

func checkKey(key uint64) {
	if key == layout.KeyMin || key >= layout.SentinelLow {
		panic("hmlist: key out of range [1, SentinelLow)")
	}
}

// Keys returns the logically present (unmarked) user keys in order.
// Test helper; performs no simulated work.
func Keys(space *mem.Space, head mem.Addr) []uint64 {
	var ks []uint64
	next := space.Read(head + layout.OffNext)
	for {
		a := clearMark(next)
		if space.Read(a+layout.OffKey) == layout.SentinelHigh {
			return ks
		}
		next = space.Read(a + layout.OffNext)
		if !marked(next) {
			ks = append(ks, space.Read(a+layout.OffKey))
		}
	}
}

// Len returns the number of unmarked user keys. Test helper.
func Len(space *mem.Space, head mem.Addr) int { return len(Keys(space, head)) }
