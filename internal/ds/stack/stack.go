// Package stack implements the list-based unbounded Treiber stack used in
// the paper's Figure 2 (bottom row), in two variants:
//
//   - CA: the Conditional Access upgrade of the paper's Algorithm 1 — every
//     read becomes a cread, the CAS becomes a cwrite, and pop frees the
//     unlinked node immediately.
//   - Guarded: the classic CAS-based Treiber stack paired with a pluggable
//     safe-memory-reclamation scheme from package smr.
//
// The stack is the paper's "single write in the update phase" design-pattern
// example (Section IV-A): the only location readers must monitor is the top
// pointer, so tag sets have size one and DII (validate reachability) is
// trivially satisfied — the top pointer is immortal.
package stack

import (
	"condaccess/internal/core"
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// CA is a Treiber stack using Conditional Access with immediate reclamation.
type CA struct {
	// topAddr is the line holding the top pointer (word 0). It is immortal.
	topAddr mem.Addr
}

// NewCA builds an empty Conditional Access stack on space.
func NewCA(space *mem.Space) *CA {
	return &CA{topAddr: space.AllocInfra()}
}

// Push pushes key (paper Algorithm 1, PUSH).
func (s *CA) Push(c *sim.Ctx, key uint64) {
	n := c.AllocNode()
	c.Write(n+layout.OffKey, key)
	for spins := 0; ; spins++ {
		if spins > core.MaxSpuriousRetries {
			panic(core.ErrLivelock("stack.Push"))
		}
		t, ok := c.CRead(s.topAddr)
		if !ok {
			c.UntagAll()
			c.CountRetry()
			continue
		}
		// The new node is private until linked: plain store.
		c.Write(n+layout.OffNext, t)
		if c.CWrite(s.topAddr, n) { // LP
			c.UntagAll()
			return
		}
		c.UntagAll()
		c.CountRetry()
	}
}

// Pop pops the top key, freeing the unlinked node immediately (paper
// Algorithm 1, POP). ok=false means the stack was empty.
func (s *CA) Pop(c *sim.Ctx) (key uint64, ok bool) {
	for spins := 0; ; spins++ {
		if spins > core.MaxSpuriousRetries {
			panic(core.ErrLivelock("stack.Pop"))
		}
		t, ok := c.CRead(s.topAddr)
		if !ok {
			c.UntagAll()
			c.CountRetry()
			continue
		}
		if t == 0 {
			c.UntagAll()
			return 0, false
		}
		// t->next must itself be a cread: t may be freed by a concurrent
		// pop, but that pop's cwrite on top revokes our top tag first.
		next, ok := c.CRead(t + layout.OffNext)
		if !ok {
			c.UntagAll()
			c.CountRetry()
			continue
		}
		if !c.CWrite(s.topAddr, next) { // LP
			c.UntagAll()
			c.CountRetry()
			continue
		}
		// We unlinked t: it is now private. A plain read is safe, and the
		// immediate free is safe because every thread that tagged t also
		// holds a tag on the top line our cwrite just invalidated.
		key = c.Read(t + layout.OffKey)
		c.UntagAll()
		c.Free(t)
		return key, true
	}
}

// Peek returns the top key without popping. ok=false means empty.
func (s *CA) Peek(c *sim.Ctx) (key uint64, ok bool) {
	for spins := 0; ; spins++ {
		if spins > core.MaxSpuriousRetries {
			panic(core.ErrLivelock("stack.Peek"))
		}
		t, ok := c.CRead(s.topAddr)
		if !ok {
			c.UntagAll()
			c.CountRetry()
			continue
		}
		if t == 0 {
			c.UntagAll()
			return 0, false
		}
		key, ok = c.CRead(t + layout.OffKey)
		if !ok {
			c.UntagAll()
			c.CountRetry()
			continue
		}
		c.UntagAll()
		return key, true
	}
}

// Guarded is the classic Treiber stack paired with a reclamation scheme.
type Guarded struct {
	topAddr mem.Addr
	r       smr.Reclaimer
}

// NewGuarded builds an empty stack reclaimed by r.
func NewGuarded(space *mem.Space, r smr.Reclaimer) *Guarded {
	return &Guarded{topAddr: space.AllocInfra(), r: r}
}

// Reclaimer returns the stack's reclamation scheme.
func (s *Guarded) Reclaimer() smr.Reclaimer { return s.r }

// Push pushes key. Pushes need no protection: the node is private until the
// CAS, and a stale top value only fails the CAS.
func (s *Guarded) Push(c *sim.Ctx, key uint64) {
	n := s.r.Alloc(c)
	c.Write(n+layout.OffKey, key)
	s.r.BeginOp(c)
	for {
		t := c.Read(s.topAddr)
		c.Write(n+layout.OffNext, t)
		if c.CAS(s.topAddr, t, n) {
			break
		}
		c.CountRetry()
	}
	s.r.EndOp(c)
}

// Pop pops the top key and retires the unlinked node. The protection makes
// the CAS ABA-safe: a protected node cannot be freed, hence cannot be
// recycled into a new push at the same address.
func (s *Guarded) Pop(c *sim.Ctx) (key uint64, ok bool) {
	s.r.BeginOp(c)
	defer s.r.EndOp(c)
	for {
		t := c.Read(s.topAddr)
		if t == 0 {
			return 0, false
		}
		if !s.r.Protect(c, 0, t, s.topAddr) {
			c.CountRetry()
			continue
		}
		next := c.Read(t + layout.OffNext)
		key = c.Read(t + layout.OffKey)
		if c.CAS(s.topAddr, t, next) {
			s.r.Retire(c, t)
			return key, true
		}
		c.CountRetry()
	}
}

// Peek returns the top key without popping.
func (s *Guarded) Peek(c *sim.Ctx) (key uint64, ok bool) {
	s.r.BeginOp(c)
	defer s.r.EndOp(c)
	for {
		t := c.Read(s.topAddr)
		if t == 0 {
			return 0, false
		}
		if !s.r.Protect(c, 0, t, s.topAddr) {
			c.CountRetry()
			continue
		}
		return c.Read(t + layout.OffKey), true
	}
}
