package stack

import (
	"testing"

	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

type stackIface interface {
	Push(c *sim.Ctx, key uint64)
	Pop(c *sim.Ctx) (uint64, bool)
	Peek(c *sim.Ctx) (uint64, bool)
}

func TestCASequentialLIFO(t *testing.T) {
	m := sim.New(sim.Config{Cores: 1, Seed: 1, Check: true})
	s := NewCA(m.Space)
	m.Spawn(func(c *sim.Ctx) {
		if _, ok := s.Pop(c); ok {
			t.Error("pop from empty stack succeeded")
		}
		for k := uint64(1); k <= 10; k++ {
			s.Push(c, k)
		}
		if top, ok := s.Peek(c); !ok || top != 10 {
			t.Errorf("peek = %d,%v, want 10,true", top, ok)
		}
		for k := uint64(10); k >= 1; k-- {
			got, ok := s.Pop(c)
			if !ok || got != k {
				t.Errorf("pop = %d,%v, want %d,true", got, ok, k)
			}
		}
		if _, ok := s.Pop(c); ok {
			t.Error("drained stack pop succeeded")
		}
	})
	m.Run()
	// Immediate reclamation: all 10 nodes freed.
	if st := m.Space.Stats(); st.NodeLive() != 0 {
		t.Fatalf("live nodes = %d, want 0", st.NodeLive())
	}
}

func TestGuardedSequentialLIFOAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 1, Seed: 2, Check: true})
			r, err := smr.New(name, m.Space, 1, smr.Options{ReclaimEvery: 4, EpochEvery: 8})
			if err != nil {
				t.Fatal(err)
			}
			s := NewGuarded(m.Space, r)
			m.Spawn(func(c *sim.Ctx) {
				for round := 0; round < 5; round++ {
					for k := uint64(1); k <= 20; k++ {
						s.Push(c, k)
					}
					for k := uint64(20); k >= 1; k-- {
						if got, ok := s.Pop(c); !ok || got != k {
							t.Errorf("round %d: pop = %d,%v, want %d", round, got, ok, k)
						}
					}
				}
			})
			m.Run()
		})
	}
}

// runMixed drives a push/pop/peek mix and checks conservation: every pushed
// key is either popped or still on the stack at the end.
func runMixed(t *testing.T, m *sim.Machine, s stackIface, threads, ops int) {
	t.Helper()
	pushed := make([]uint64, threads)
	popped := make([]uint64, threads)
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			id := c.ThreadID()
			rng := c.Rand()
			for j := 0; j < ops; j++ {
				switch rng.Intn(3) {
				case 0:
					s.Push(c, rng.Uint64n(1000)+1)
					pushed[id]++
				case 1:
					if _, ok := s.Pop(c); ok {
						popped[id]++
					}
				default:
					s.Peek(c)
				}
			}
		})
	}
	m.Run()
	var totPush, totPop uint64
	for i := 0; i < threads; i++ {
		totPush += pushed[i]
		totPop += popped[i]
	}
	// Count what remains by popping single-threadedly.
	var rest uint64
	m.Spawn(func(c *sim.Ctx) {
		for {
			if _, ok := s.Pop(c); !ok {
				return
			}
			rest++
		}
	})
	m.Run()
	if totPush != totPop+rest {
		t.Fatalf("conservation violated: pushed %d, popped %d + rest %d", totPush, totPop, rest)
	}
}

func TestCAConcurrent(t *testing.T) {
	m := sim.New(sim.Config{Cores: 8, Seed: 3, Check: true})
	s := NewCA(m.Space)
	runMixed(t, m, s, 8, 400)
	if st := m.Space.Stats(); st.NodeLive() != 0 {
		t.Fatalf("after drain, live nodes = %d, want 0 (immediate reclamation)", st.NodeLive())
	}
}

func TestGuardedConcurrentAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := sim.New(sim.Config{Cores: 8, Seed: 4, Check: true})
			r, err := smr.New(name, m.Space, 8, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s := NewGuarded(m.Space, r)
			runMixed(t, m, s, 8, 400)
		})
	}
}
