package lazylist

import (
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// Guarded is the classic lazy list paired with a safe-memory-reclamation
// scheme. Deleted nodes are retired to the reclaimer, which frees them in
// batches once no reservation can reach them — the deferred-reclamation
// behaviour whose footprint Figure 3 contrasts with Conditional Access.
type Guarded struct {
	// Head is the immortal head sentinel.
	Head mem.Addr
	// R is the reclamation scheme.
	R smr.Reclaimer
	// Retries counts operation restarts (failed protections/validations).
	Retries uint64
}

// NewGuarded builds an empty lazy list on space reclaimed by r.
func NewGuarded(space *mem.Space, r smr.Reclaimer) *Guarded {
	return &Guarded{Head: NewSentinels(space), R: r}
}

// spinLock acquires a node lock with a CAS spin loop. Progress relies on
// lock holders finishing: the lazy list acquires locks in list order, so
// there are no cycles. The spun-on node is protected by the caller, so it
// cannot be freed mid-spin.
func spinLock(c *sim.Ctx, addr mem.Addr) {
	for !c.CAS(addr, 0, 1) {
		c.Work(12) // backoff: roughly a pause loop iteration
	}
}

func unlock(c *sim.Ctx, addr mem.Addr) { c.Write(addr, 0) }

// find locates pred/curr with pred.key < key <= curr.key, maintaining
// reclaimer protection hand-over-hand across three slots. On a failed
// protection it restarts from the head internally, so it always succeeds.
// The returned slot numbers identify which protections cover pred and curr;
// they remain published until the operation ends.
func (l *Guarded) find(c *sim.Ctx, key uint64) (pred, curr, currKey uint64) {
	validating := l.R.Validating()
retry:
	pred = l.Head
	predSlot := -1 // head is immortal: no protection needed
	curr = c.Read(pred + layout.OffNext)
	currSlot := 0
	if !l.R.Protect(c, currSlot, curr, pred+layout.OffNext) {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	// The head is never marked, so a validated protect from the head needs
	// no mark check.
	for {
		currKey = c.Read(curr + layout.OffKey)
		if currKey >= key {
			return pred, curr, currKey
		}
		next := c.Read(curr + layout.OffNext)
		ns := freeSlot(predSlot, currSlot)
		if !l.R.Protect(c, ns, next, curr+layout.OffNext) {
			l.Retries++
			c.CountRetry()
			goto retry
		}
		if validating && c.Read(curr+layout.OffMark) != 0 {
			// For hp/he the successful pointer re-read only proves next was
			// linked from curr; curr being unmarked at this later instant
			// proves curr — and therefore next — was reachable after the
			// hazard was published, so next cannot have been retired before.
			l.Retries++
			c.CountRetry()
			goto retry
		}
		pred, predSlot = curr, currSlot
		curr, currSlot = next, ns
	}
}

// freeSlot returns a protection slot in {0,1,2} distinct from a and b.
func freeSlot(a, b int) int {
	for s := 0; s < 3; s++ {
		if s != a && s != b {
			return s
		}
	}
	panic("lazylist: no free slot")
}

// Contains reports whether key is in the set. Like the original lazy list it
// is wait-free with respect to locks: no locking, one marked check.
func (l *Guarded) Contains(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	l.R.BeginOp(c)
	defer l.R.EndOp(c)
	_, curr, currKey := l.find(c, key)
	if currKey != key {
		return false
	}
	return c.Read(curr+layout.OffMark) == 0
}

// Insert adds key, returning false if present.
func (l *Guarded) Insert(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	l.R.BeginOp(c)
	defer l.R.EndOp(c)
	for {
		pred, curr, currKey := l.find(c, key)
		if currKey == key {
			// Unsuccessful insert linearizes like a contains, but only if
			// the matching node is unmarked; a marked match is a delete in
			// flight, so retraverse. (The CA variant gets this for free:
			// its locate never returns a marked node.)
			if c.Read(curr+layout.OffMark) == 0 {
				return false
			}
			l.Retries++
			c.CountRetry()
			continue
		}
		spinLock(c, pred+layout.OffLock)
		spinLock(c, curr+layout.OffLock)
		if c.Read(pred+layout.OffMark) == 0 &&
			c.Read(curr+layout.OffMark) == 0 &&
			c.Read(pred+layout.OffNext) == curr {
			n := l.R.Alloc(c)
			c.Write(n+layout.OffKey, key)
			c.Write(n+layout.OffNext, curr)
			c.Write(pred+layout.OffNext, n) // LP
			unlock(c, pred+layout.OffLock)
			unlock(c, curr+layout.OffLock)
			return true
		}
		unlock(c, pred+layout.OffLock)
		unlock(c, curr+layout.OffLock)
		l.Retries++
		c.CountRetry()
	}
}

// Delete removes key and retires its node, returning false if absent.
func (l *Guarded) Delete(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	l.R.BeginOp(c)
	defer l.R.EndOp(c)
	for {
		pred, curr, currKey := l.find(c, key)
		if currKey != key {
			return false
		}
		spinLock(c, pred+layout.OffLock)
		spinLock(c, curr+layout.OffLock)
		if c.Read(pred+layout.OffMark) == 0 &&
			c.Read(curr+layout.OffMark) == 0 &&
			c.Read(pred+layout.OffNext) == curr {
			c.Write(curr+layout.OffMark, 1) // LP (logical delete)
			next := c.Read(curr + layout.OffNext)
			c.Write(pred+layout.OffNext, next)
			unlock(c, pred+layout.OffLock)
			unlock(c, curr+layout.OffLock)
			l.R.Retire(c, curr)
			return true
		}
		unlock(c, pred+layout.OffLock)
		unlock(c, curr+layout.OffLock)
		l.Retries++
		c.CountRetry()
	}
}
