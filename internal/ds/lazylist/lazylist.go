// Package lazylist implements the lazy concurrent list-based set of Heller
// et al. (OPODIS'05) — the paper's running example of "data structures
// having multiple writes with locks" (Section IV-B) — in two variants:
//
//   - CA: the paper's Algorithm 3. Searches are chains of creads with
//     hand-over-hand untagging; updates take Conditional Access try-locks
//     (Algorithm 2) on pred and curr; deletes mark, unlink, and free the
//     victim immediately.
//   - Guarded: the classic lazy list with blocking per-node spin locks,
//     paired with a pluggable reclamation scheme; deletes mark, unlink, and
//     retire.
//
// Keys are uint64 in [1, layout.SentinelLow); head and tail sentinels use
// layout.KeyMin and layout.SentinelHigh and are immortal. Both variants
// expose the set interface (Insert / Delete / Contains) relative to an
// explicit head address so the chaining hash table (package hashtable) can
// reuse them per bucket.
package lazylist

import (
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
)

// NewSentinels allocates an immortal head/tail pair on space and returns the
// head address: head{key: KeyMin} -> tail{key: SentinelHigh}.
func NewSentinels(space *mem.Space) mem.Addr {
	head := space.AllocInfra()
	tail := space.AllocInfra()
	space.Write(head+layout.OffKey, layout.KeyMin)
	space.Write(head+layout.OffNext, tail)
	space.Write(tail+layout.OffKey, layout.SentinelHigh)
	return head
}

// checkKey panics on keys colliding with the sentinels.
func checkKey(key uint64) {
	if key == layout.KeyMin || key >= layout.SentinelLow {
		panic("lazylist: key out of range [1, SentinelLow)")
	}
}

// Len walks the list single-threadedly (no concurrency, no timing) and
// returns the number of unmarked non-sentinel nodes. Test helper.
func Len(space *mem.Space, head mem.Addr) int {
	n := 0
	for a := space.Read(head + layout.OffNext); space.Read(a+layout.OffKey) != layout.SentinelHigh; a = space.Read(a + layout.OffNext) {
		if space.Read(a+layout.OffMark) == 0 {
			n++
		}
	}
	return n
}

// Keys returns the unmarked user keys in order. Test helper.
func Keys(space *mem.Space, head mem.Addr) []uint64 {
	var ks []uint64
	for a := space.Read(head + layout.OffNext); space.Read(a+layout.OffKey) != layout.SentinelHigh; a = space.Read(a + layout.OffNext) {
		if space.Read(a+layout.OffMark) == 0 {
			ks = append(ks, space.Read(a+layout.OffKey))
		}
	}
	return ks
}
