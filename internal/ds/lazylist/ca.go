package lazylist

import (
	"condaccess/internal/core"
	"condaccess/internal/ds/layout"
	"condaccess/internal/mem"
	"condaccess/internal/sim"
)

// CAList is the Conditional Access lazy list of the paper's Algorithm 3.
// Deleted nodes are freed immediately: the list's footprint equals its live
// size, as in Figure 3.
type CAList struct {
	// Head is the immortal head sentinel.
	Head mem.Addr
	// Retries counts operation restarts caused by failed conditional
	// accesses or failed try-locks (diagnostic, written only by the
	// simulator's serialized threads).
	Retries uint64
}

// NewCA builds an empty Conditional Access lazy list on space.
func NewCA(space *mem.Space) *CAList {
	return &CAList{Head: NewSentinels(space)}
}

// locate is Algorithm 3's LOCATE: it returns tagged pred and curr with
// pred.key < key <= curr.key, where curr was unmarked when tagged (DII) and
// both were reachable. It retries internally on any conditional-access
// failure, so it always succeeds.
//
// Hand-over-hand untagging (untagOne on nodes behind pred) keeps the tag set
// at two nodes, the minimum needed to prove reachability — without it every
// traversed node would stay tagged and any update anywhere in the list would
// revoke the reader (Section IV-B's serialization problem).
func (l *CAList) locate(c *sim.Ctx, key uint64) (pred, curr, currKey uint64) {
	spins := 0
retry:
	if spins++; spins > core.MaxSpuriousRetries {
		panic(core.ErrLivelock("lazylist.locate"))
	}
	c.UntagAll()
	pred = l.Head
	// Tag head and validate it (head is never marked, but the cread is what
	// tags the line; Algorithm 3 line 11).
	m, ok := c.CRead(pred + layout.OffMark)
	if !ok || m != 0 {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	curr, ok = c.CRead(pred + layout.OffNext)
	if !ok {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	// VALIDATE(curr): the cread of the mark both tags curr and checks that
	// it was unmarked — hence reachable (Lemma 5) — when tagged.
	m, ok = c.CRead(curr + layout.OffMark)
	if !ok || m != 0 {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	currKey, ok = c.CRead(curr + layout.OffKey)
	if !ok {
		l.Retries++
		c.CountRetry()
		goto retry
	}
	for currKey < key {
		c.UntagOne(pred)
		pred = curr
		curr, ok = c.CRead(pred + layout.OffNext)
		if !ok {
			l.Retries++
			c.CountRetry()
			goto retry
		}
		m, ok = c.CRead(curr + layout.OffMark)
		if !ok || m != 0 {
			l.Retries++
			c.CountRetry()
			goto retry
		}
		currKey, ok = c.CRead(curr + layout.OffKey)
		if !ok {
			l.Retries++
			c.CountRetry()
			goto retry
		}
	}
	return pred, curr, currKey
}

// Contains reports whether key is in the set (Algorithm 3, CONTAIN).
func (l *CAList) Contains(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	_, _, currKey := l.locate(c, key)
	c.UntagAll()
	return currKey == key
}

// Insert adds key to the set, returning false if it was already present
// (Algorithm 3, INSERT).
func (l *CAList) Insert(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	for {
		pred, curr, currKey := l.locate(c, key)
		if currKey == key {
			c.UntagAll()
			return false
		}
		if !core.TryLock(c, pred+layout.OffLock) {
			l.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if !core.TryLock(c, curr+layout.OffLock) {
			core.Unlock(c, pred+layout.OffLock)
			l.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		// Both nodes locked: the successful cwrites prove neither changed
		// since it was tagged, so pred is unmarked and still points to curr.
		// Plain writes are safe inside the critical section.
		n := c.AllocNode()
		c.Write(n+layout.OffKey, key)
		c.Write(n+layout.OffNext, curr)
		c.Write(pred+layout.OffNext, n) // LP
		core.Unlock(c, pred+layout.OffLock)
		core.Unlock(c, curr+layout.OffLock)
		c.UntagAll()
		return true
	}
}

// Delete removes key from the set and frees its node immediately, returning
// false if it was absent (Algorithm 3, DELETE).
func (l *CAList) Delete(c *sim.Ctx, key uint64) bool {
	checkKey(key)
	for {
		pred, curr, currKey := l.locate(c, key)
		if currKey != key {
			c.UntagAll()
			return false
		}
		if !core.TryLock(c, pred+layout.OffLock) {
			l.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		if !core.TryLock(c, curr+layout.OffLock) {
			core.Unlock(c, pred+layout.OffLock)
			l.Retries++
			c.CountRetry()
			c.UntagAll()
			continue
		}
		c.Write(curr+layout.OffMark, 1) // LP; also the reclaimer's
		// mandatory pre-free store: it revokes every thread with curr tagged.
		next := c.Read(curr + layout.OffNext)
		c.Write(pred+layout.OffNext, next)
		core.Unlock(c, pred+layout.OffLock)
		core.Unlock(c, curr+layout.OffLock)
		c.UntagAll()
		c.Free(curr) // immediate reclamation
		return true
	}
}
