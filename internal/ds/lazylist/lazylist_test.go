package lazylist

import (
	"testing"

	"condaccess/internal/cache"
	"condaccess/internal/sim"
	"condaccess/internal/smr"
)

// newMachine builds a small checked machine for list tests.
func newMachine(threads int, seed uint64) *sim.Machine {
	return sim.New(sim.Config{Cores: threads, Seed: seed, Check: true})
}

// setIface lets the tests treat both variants uniformly.
type setIface interface {
	Insert(c *sim.Ctx, key uint64) bool
	Delete(c *sim.Ctx, key uint64) bool
	Contains(c *sim.Ctx, key uint64) bool
}

func TestCASequential(t *testing.T) {
	m := newMachine(1, 1)
	l := NewCA(m.Space)
	m.Spawn(func(c *sim.Ctx) {
		if l.Contains(c, 5) {
			t.Error("empty list contains 5")
		}
		if !l.Insert(c, 5) || !l.Insert(c, 3) || !l.Insert(c, 9) {
			t.Error("fresh inserts failed")
		}
		if l.Insert(c, 5) {
			t.Error("duplicate insert succeeded")
		}
		if !l.Contains(c, 3) || !l.Contains(c, 5) || !l.Contains(c, 9) {
			t.Error("inserted keys missing")
		}
		if l.Contains(c, 4) {
			t.Error("absent key found")
		}
		if !l.Delete(c, 5) {
			t.Error("delete of present key failed")
		}
		if l.Delete(c, 5) || l.Contains(c, 5) {
			t.Error("key survived delete")
		}
	})
	m.Run()
	if got := Keys(m.Space, l.Head); len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("final keys = %v, want [3 9]", got)
	}
	// Immediate reclamation: one node deleted, one node freed.
	if st := m.Space.Stats(); st.NodeAllocs != 3 || st.NodeFrees != 1 {
		t.Fatalf("alloc/free = %d/%d, want 3/1", st.NodeAllocs, st.NodeFrees)
	}
}

func TestGuardedSequentialAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := newMachine(1, 2)
			r, err := smr.New(name, m.Space, 1, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			l := NewGuarded(m.Space, r)
			m.Spawn(func(c *sim.Ctx) {
				for k := uint64(1); k <= 50; k++ {
					if !l.Insert(c, k) {
						t.Errorf("insert %d failed", k)
					}
				}
				for k := uint64(2); k <= 50; k += 2 {
					if !l.Delete(c, k) {
						t.Errorf("delete %d failed", k)
					}
				}
				for k := uint64(1); k <= 50; k++ {
					want := k%2 == 1
					if l.Contains(c, k) != want {
						t.Errorf("contains %d = %v, want %v", k, !want, want)
					}
				}
			})
			m.Run()
			if got := Len(m.Space, l.Head); got != 25 {
				t.Fatalf("len = %d, want 25", got)
			}
		})
	}
}

// runConcurrent drives nThreads threads of mixed operations against l and
// checks the final list against a replay oracle is impossible under
// concurrency, so instead it validates structural invariants: sortedness,
// sentinel integrity, and (for CA) exact footprint accounting.
func runConcurrent(t *testing.T, m *sim.Machine, l setIface, threads, ops int, keyRange uint64) {
	t.Helper()
	for i := 0; i < threads; i++ {
		m.Spawn(func(c *sim.Ctx) {
			rng := c.Rand()
			for j := 0; j < ops; j++ {
				key := rng.Uint64n(keyRange) + 1
				switch rng.Intn(3) {
				case 0:
					l.Insert(c, key)
				case 1:
					l.Delete(c, key)
				default:
					l.Contains(c, key)
				}
			}
		})
	}
	m.Run()
}

func checkSorted(t *testing.T, m *sim.Machine, head uint64) {
	t.Helper()
	ks := Keys(m.Space, head)
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("list not strictly sorted at %d: %v", i, ks)
		}
	}
}

func TestCAConcurrent(t *testing.T) {
	m := newMachine(8, 3)
	l := NewCA(m.Space)
	runConcurrent(t, m, l, 8, 300, 64)
	checkSorted(t, m, l.Head)
	// Immediate reclamation: every delete freed its node, so live nodes ==
	// list length.
	st := m.Space.Stats()
	if live, listLen := int(st.NodeLive()), Len(m.Space, l.Head); live != listLen {
		t.Fatalf("live nodes %d != list length %d (reclamation not immediate)", live, listLen)
	}
}

func TestGuardedConcurrentAllSchemes(t *testing.T) {
	for _, name := range smr.Names() {
		t.Run(name, func(t *testing.T) {
			m := newMachine(8, 4)
			r, err := smr.New(name, m.Space, 8, smr.Options{})
			if err != nil {
				t.Fatal(err)
			}
			l := NewGuarded(m.Space, r)
			runConcurrent(t, m, l, 8, 300, 64)
			checkSorted(t, m, l.Head)
			// Deferred reclamation keeps live >= list length; the checked
			// machine has already panicked if anything was freed unsafely.
			st := m.Space.Stats()
			if int(st.NodeLive()) < Len(m.Space, l.Head) {
				t.Fatalf("live %d < list length %d", st.NodeLive(), Len(m.Space, l.Head))
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		m := newMachine(4, 7)
		l := NewCA(m.Space)
		runConcurrent(t, m, l, 4, 200, 32)
		return m.MaxClock(), m.Space.Hash()
	}
	c1, h1 := run()
	c2, h2 := run()
	if c1 != c2 || h1 != h2 {
		t.Fatalf("nondeterministic: clocks %d/%d heap %x/%x", c1, c2, h1, h2)
	}
}

// TestDirectMappedLivelockDetected pins down a genuine hardware boundary of
// Conditional Access: the lazy list must hold two nodes tagged at once, so a
// direct-mapped L1 (tag capacity 1 per set) livelocks as soon as two
// adjacent nodes collide in one set. The retry cap must convert the silent
// livelock into a diagnostic panic (the paper's Section IV "facilitating
// progress" fallback discussion).
func TestDirectMappedLivelockDetected(t *testing.T) {
	cfg := sim.Config{Cores: 1, Seed: 1}
	cfg.Cache = bench0CacheParams()
	m := sim.New(cfg)
	l := NewCA(m.Space)
	var recovered any
	m.Spawn(func(c *sim.Ctx) {
		defer func() { recovered = recover() }()
		// head is line 1, tail line 2; the first node lands on line 3,
		// colliding with head in a 2-set direct-mapped L1.
		l.Insert(c, 10)
		l.Insert(c, 20) // traverses head -> node(10): tags two odd lines
	})
	m.Run()
	if recovered == nil {
		t.Fatal("direct-mapped collision did not trip the livelock detector")
	}
}

// bench0CacheParams returns a pathological 2-set direct-mapped L1.
func bench0CacheParams() cache.Params {
	p := cache.DefaultParams(1)
	p.L1Bytes = 2 * 64
	p.L1Assoc = 1
	return p
}
