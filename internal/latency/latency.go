// Package latency is the streaming tail-latency subsystem: a fixed-layout,
// log-bucketed (HDR-style) cycle histogram with O(buckets) memory regardless
// of sample count, exact sample counts per bucket, and lossless merging
// across threads, phases, and trials.
//
// The paper's core critique of batch-based reclamation is tail latency —
// "occasional freeing of large batches causes long program interruptions" —
// which an append-every-sample-and-sort pipeline can only report as five
// percentiles over O(ops) memory. A Hist keeps the whole distribution in a
// fixed bucket layout instead, so the harness can record every operation of
// arbitrarily long trials without per-op allocation, merge per-thread
// recordings exactly (bucket counts add), and still answer any quantile to
// within one bucket's relative error (1/16, ~6.25%). A Tail bundles the
// histograms one measured run needs: the total distribution, a per-op-kind
// split (insert/delete/read), a per-cause split (useful work vs. an absorbed
// SMR reclamation scan vs. a conditional-access/validation retry), and the
// distribution of the reclamation pauses themselves — the instrument that
// says not just how long the tail is but which operations and what cause
// produced it.
package latency

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"
)

// Bucket layout: values below subCount get one exact bucket each; every
// binary octave [2^e, 2^(e+1)) above that is split into subCount equal
// sub-buckets, so a bucket's width is at most 2^-subBits of its magnitude.
const (
	subBits  = 4
	subCount = 1 << subBits

	// NumBuckets is the fixed bucket-array length: subCount exact buckets
	// plus subCount per octave for exponents subBits..63.
	NumBuckets = subCount + (64-subBits)*subCount
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(v) - 1
	return subCount + (e-subBits)*subCount + int((v>>uint(e-subBits))&(subCount-1))
}

// BucketOf returns the index of the bucket v falls in.
func BucketOf(v uint64) int { return bucketIndex(v) }

// BucketBounds returns bucket i's value range [lo, hi] (inclusive). Every
// value in the range maps to i and no other value does.
func BucketBounds(i int) (lo, hi uint64) {
	if i < subCount {
		return uint64(i), uint64(i)
	}
	q := i - subCount
	e := subBits + q/subCount
	width := uint64(1) << uint(e-subBits)
	lo = 1<<uint(e) + uint64(q%subCount)*width
	return lo, lo + width - 1
}

// Hist is a log-bucketed histogram of uint64 samples (simulated cycles).
// The zero value is empty and ready to use; the bucket array is allocated
// on the first Record and never grows, so recording is allocation-free after
// that warm-up. Hist is not safe for concurrent use — the harness keeps one
// per simulated thread and merges.
type Hist struct {
	counts []uint64 // len NumBuckets once allocated
	n      uint64
	sum    uint64
	min    uint64 // valid when n > 0
	max    uint64
}

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	if h.counts == nil {
		h.counts = make([]uint64, NumBuckets)
	}
	h.counts[bucketIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Merge folds o into h. Bucket counts add exactly, so merging per-thread,
// per-phase, or per-trial histograms loses nothing: the merged histogram is
// identical to one that recorded every sample directly.
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, NumBuckets)
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Reset empties the histogram, keeping the bucket allocation.
func (h *Hist) Reset() {
	if h.counts != nil {
		clear(h.counts)
	}
	h.n, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Sum returns the sum of all recorded samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Mean returns the exact sample mean (sums are tracked exactly, not
// reconstructed from buckets); zero when empty.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Min and Max return the exact extreme samples (tracked alongside the
// buckets), zero when empty.
func (h *Hist) Min() uint64 { return h.min }
func (h *Hist) Max() uint64 { return h.max }

// Quantile returns an upper bound for the p-quantile sample: the upper edge
// of the bucket holding the sample of rank floor(p*(n-1)) — the same rank
// convention the exact-sort pipeline uses — clamped to the exact maximum.
// The true sample lies in the returned bucket, so the estimate is within one
// bucket's relative error (at most 1/16 of its magnitude) above the truth.
func (h *Hist) Quantile(p float64) uint64 {
	if h.n == 0 {
		return 0
	}
	// The clamp must also catch NaN, which slips past both ordered
	// comparisons (p < 0 and p > 1 are false for NaN) and would make the
	// float-to-uint conversion below undefined. !(p >= 0) is true exactly
	// for negative p and NaN, pinning both to the 0-quantile.
	if !(p >= 0) {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(h.n-1))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			_, hi := BucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max // unreachable: counts sum to n
}

// Bucket is one non-empty histogram bucket, for CDF/figure export.
type Bucket struct {
	Lo, Hi uint64 // value range (inclusive)
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Hist) Buckets() []Bucket {
	var bs []Bucket
	for i, c := range h.counts {
		if c != 0 {
			lo, hi := BucketBounds(i)
			bs = append(bs, Bucket{Lo: lo, Hi: hi, Count: c})
		}
	}
	return bs
}

// Summary is the headline view of one histogram: the percentile row the
// harness tables print. P50..P999 are bucket upper bounds (within one
// bucket's relative error); Max and Mean are exact.
type Summary struct {
	Samples uint64  `json:"samples"`
	P50     uint64  `json:"p50"`
	P90     uint64  `json:"p90"`
	P99     uint64  `json:"p99"`
	P999    uint64  `json:"p999"`
	Max     uint64  `json:"max"`
	Mean    float64 `json:"mean"`
}

// Summary computes the headline percentiles.
func (h *Hist) Summary() Summary {
	if h.n == 0 {
		return Summary{}
	}
	return Summary{
		Samples: h.n,
		P50:     h.Quantile(0.50),
		P90:     h.Quantile(0.90),
		P99:     h.Quantile(0.99),
		P999:    h.Quantile(0.999),
		Max:     h.max,
		Mean:    h.Mean(),
	}
}

// histJSON is the serialized form: scalar stats plus the non-empty buckets
// as parallel index/count arrays (sparse — a trial touches a few dozen of
// the 976 buckets). Field order is fixed, so the bytes are deterministic
// and store envelopes round-trip bit for bit.
type histJSON struct {
	Count uint64   `json:"count"`
	Sum   uint64   `json:"sum,omitempty"`
	Min   uint64   `json:"min,omitempty"`
	Max   uint64   `json:"max,omitempty"`
	Idx   []int    `json:"idx,omitempty"`
	N     []uint64 `json:"n,omitempty"`
}

// MarshalJSON encodes the histogram sparsely.
func (h Hist) MarshalJSON() ([]byte, error) {
	j := histJSON{Count: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.counts {
		if c != 0 {
			j.Idx = append(j.Idx, i)
			j.N = append(j.N, c)
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a sparse histogram. An empty histogram decodes to
// the zero Hist (no bucket allocation), matching what Marshal produced it
// from.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var j histJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Idx) != len(j.N) {
		return fmt.Errorf("latency: histogram idx/count length mismatch: %d vs %d", len(j.Idx), len(j.N))
	}
	*h = Hist{n: j.Count, sum: j.Sum, min: j.Min, max: j.Max}
	if len(j.Idx) == 0 {
		return nil
	}
	h.counts = make([]uint64, NumBuckets)
	for k, i := range j.Idx {
		if i < 0 || i >= NumBuckets {
			return fmt.Errorf("latency: histogram bucket index %d out of range", i)
		}
		h.counts[i] = j.N[k]
	}
	return nil
}

// Kind tags a recorded operation by what it did: the set/stack/queue
// insert-like, delete-like, and read-like slots of the harness weight
// tables.
type Kind uint8

const (
	KindInsert Kind = iota
	KindDelete
	KindRead
)

// String returns the canonical lower-case name used everywhere an op kind
// is rendered: tail tables, trace event names, timeline CSV columns.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	default:
		return "read"
	}
}

// Attr tags a recorded operation by what its latency was spent on: plain
// useful work, absorbing an SMR reclamation scan/free pass (the paper's
// batching-pause critique), or restarting after a conditional-access or
// validation failure. Every operation gets exactly one attribution —
// reclamation takes precedence over retry — so the per-attribution counts
// partition the op count just like the per-kind counts do.
type Attr uint8

const (
	AttrUseful Attr = iota
	AttrReclaim
	AttrRetry
)

// String returns the canonical lower-case attribution name, shared by the
// tail tables and the trace event args.
func (a Attr) String() string {
	switch a {
	case AttrReclaim:
		return "reclaim"
	case AttrRetry:
		return "retry"
	default:
		return "useful"
	}
}

// Tail is the full tail-latency record of one measured window (a phase, a
// trial, or a merge of either): the total per-op latency distribution, its
// exact partitions by op kind and by attribution, and the distribution of
// the reclamation pauses themselves. Pause samples are pause durations, not
// op latencies, so Pause.Count is the number of ops that absorbed at least
// one scan (back-to-back scans within one op merge into one pause), not a
// partition of the op count.
type Tail struct {
	Total  Hist `json:"total"`
	Insert Hist `json:"insert"`
	Delete Hist `json:"delete"`
	Read   Hist `json:"read"`

	Useful  Hist `json:"useful"`
	Reclaim Hist `json:"reclaim"`
	Retry   Hist `json:"retry"`

	Pause Hist `json:"pause"`
}

// Kind returns the histogram for op kind k.
func (t *Tail) Kind(k Kind) *Hist {
	switch k {
	case KindInsert:
		return &t.Insert
	case KindDelete:
		return &t.Delete
	default:
		return &t.Read
	}
}

// Attr returns the histogram for attribution a.
func (t *Tail) Attr(a Attr) *Hist {
	switch a {
	case AttrReclaim:
		return &t.Reclaim
	case AttrRetry:
		return &t.Retry
	default:
		return &t.Useful
	}
}

// Record adds one operation's latency under its kind and attribution tags.
// Allocation-free once each touched histogram has recorded its first sample.
func (t *Tail) Record(k Kind, a Attr, v uint64) {
	t.Total.Record(v)
	t.Kind(k).Record(v)
	t.Attr(a).Record(v)
}

// RecordPause adds one reclamation-pause duration.
func (t *Tail) RecordPause(v uint64) { t.Pause.Record(v) }

// Merge folds o into t, histogram by histogram.
func (t *Tail) Merge(o *Tail) {
	if o == nil {
		return
	}
	t.Total.Merge(&o.Total)
	t.Insert.Merge(&o.Insert)
	t.Delete.Merge(&o.Delete)
	t.Read.Merge(&o.Read)
	t.Useful.Merge(&o.Useful)
	t.Reclaim.Merge(&o.Reclaim)
	t.Retry.Merge(&o.Retry)
	t.Pause.Merge(&o.Pause)
}

// Reset empties every histogram, keeping allocations (the harness reuses
// per-thread Tails across phases).
func (t *Tail) Reset() {
	t.Total.Reset()
	t.Insert.Reset()
	t.Delete.Reset()
	t.Read.Reset()
	t.Useful.Reset()
	t.Reclaim.Reset()
	t.Retry.Reset()
	t.Pause.Reset()
}

// Rows returns the display rows of the tail table in canonical order: the
// kind partition, the attribution partition, the pause distribution, and the
// total. Rows with zero samples are included so partitions read complete.
func (t *Tail) Rows() []struct {
	Name string
	Sum  Summary
} {
	type row = struct {
		Name string
		Sum  Summary
	}
	return []row{
		{KindInsert.String(), t.Insert.Summary()},
		{KindDelete.String(), t.Delete.Summary()},
		{KindRead.String(), t.Read.Summary()},
		{AttrUseful.String(), t.Useful.Summary()},
		{AttrReclaim.String(), t.Reclaim.Summary()},
		{AttrRetry.String(), t.Retry.Summary()},
		{"pause", t.Pause.Summary()},
		{"total", t.Total.Summary()},
	}
}

// String renders the tail table (used by the -tail reporting modes).
func (t *Tail) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %9s %9s %9s %11s\n", "class", "count", "p50", "p99", "p99.9", "max", "mean")
	for _, r := range t.Rows() {
		fmt.Fprintf(&b, "%-8s %9d %9d %9d %9d %9d %11.1f\n",
			r.Name, r.Sum.Samples, r.Sum.P50, r.Sum.P99, r.Sum.P999, r.Sum.Max, r.Sum.Mean)
	}
	return b.String()
}
