package latency

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// sample pools spanning the exact region, several octaves, and the extremes.
func randomSamples(rng *rand.Rand, n int) []uint64 {
	vs := make([]uint64, n)
	for i := range vs {
		switch rng.Intn(4) {
		case 0:
			vs[i] = uint64(rng.Intn(subCount)) // exact buckets
		case 1:
			vs[i] = uint64(rng.Intn(1 << 12))
		case 2:
			vs[i] = uint64(rng.Int63n(1 << 40))
		default:
			vs[i] = rng.Uint64()
		}
	}
	return vs
}

func fromSamples(vs []uint64) *Hist {
	var h Hist
	for _, v := range vs {
		h.Record(v)
	}
	return &h
}

// TestBucketLayout checks the index/bounds pair is a partition: every bucket
// contains exactly the values that map to it, buckets tile the uint64 range
// in order, and the relative width bound holds.
func TestBucketLayout(t *testing.T) {
	var prevHi uint64
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", i, lo, hi)
		}
		if i == 0 {
			if lo != 0 {
				t.Fatalf("bucket 0 starts at %d, want 0", lo)
			}
		} else if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d, want %d (buckets must tile)", i, lo, prevHi+1)
		}
		prevHi = hi
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(lo=%d) = %d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(hi=%d) = %d, want %d", hi, got, i)
		}
		// One bucket's relative error bound: width <= lo/subCount above the
		// exact region.
		if lo >= subCount && hi-lo+1 > lo/subCount {
			t.Fatalf("bucket %d [%d,%d]: width %d exceeds lo/%d", i, lo, hi, hi-lo+1, subCount)
		}
	}
	if prevHi != ^uint64(0) {
		t.Fatalf("last bucket ends at %d, want 2^64-1", prevHi)
	}
}

// TestMergeAssociativeCommutative: merging is associative and commutative
// with exact count preservation — any merge tree over any ordering of the
// per-thread histograms yields the identical histogram.
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	parts := make([][]uint64, 5)
	var all []uint64
	for i := range parts {
		parts[i] = randomSamples(rng, 200+rng.Intn(300))
		all = append(all, parts[i]...)
	}

	direct := fromSamples(all)

	// Left fold in order.
	var leftFold Hist
	for _, p := range parts {
		leftFold.Merge(fromSamples(p))
	}
	// Right-leaning tree over a shuffled order.
	order := rng.Perm(len(parts))
	var tree Hist
	for i := len(order) - 1; i >= 0; i-- {
		sub := fromSamples(parts[order[i]])
		sub.Merge(&tree)
		tree = *sub
	}

	for name, h := range map[string]*Hist{"leftFold": &leftFold, "shuffledTree": &tree} {
		if h.Count() != uint64(len(all)) {
			t.Errorf("%s: count %d, want %d", name, h.Count(), len(all))
		}
		if h.Sum() != direct.Sum() || h.Min() != direct.Min() || h.Max() != direct.Max() {
			t.Errorf("%s: scalar stats diverge from direct recording", name)
		}
		if !reflect.DeepEqual(h.counts, direct.counts) {
			t.Errorf("%s: bucket counts diverge from direct recording", name)
		}
	}
}

// TestQuantileWithinOneBucket: for every probed quantile, the exact-sort
// value of the same rank must lie inside the bucket the histogram answers
// from — the "within one bucket's relative error" contract.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		vs := randomSamples(rng, 1+rng.Intn(4000))
		h := fromSamples(vs)
		sorted := slices.Clone(vs)
		slices.Sort(sorted)
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
			exact := sorted[int(p*float64(len(sorted)-1))]
			est := h.Quantile(p)
			if est < exact {
				t.Fatalf("p=%v: estimate %d below exact %d", p, est, exact)
			}
			lo, _ := BucketBounds(bucketIndex(est))
			if exact < lo {
				t.Fatalf("p=%v: exact %d not in estimate's bucket [lo %d, est %d]", p, exact, lo, est)
			}
		}
		if h.Quantile(1) != sorted[len(sorted)-1] {
			t.Fatalf("p=1 must be the exact maximum")
		}
	}
}

// TestQuantileEdgeCases pins Quantile's handling of out-of-domain p values
// (regression: NaN slipped past both ordered clamps, making the
// float-to-uint rank conversion undefined) and the empty-histogram case.
func TestQuantileEdgeCases(t *testing.T) {
	var empty Hist
	for _, p := range []float64{math.NaN(), math.Inf(-1), -1, 0, 0.5, 1, 2, math.Inf(1)} {
		if got := empty.Quantile(p); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", p, got)
		}
	}

	h := fromSamples([]uint64{5, 10, 20, 40, 80})
	p0, p1 := h.Quantile(0), h.Quantile(1)
	if p1 != h.Max() {
		t.Fatalf("Quantile(1) = %d, want exact max %d", p1, h.Max())
	}
	// NaN, -Inf, and any negative p clamp to the 0-quantile; +Inf and any
	// p > 1 clamp to the 1-quantile. None may panic or fall outside the
	// recorded range.
	for _, tc := range []struct {
		p    float64
		want uint64
	}{
		{math.NaN(), p0},
		{math.Inf(-1), p0},
		{-0.5, p0},
		{1.5, p1},
		{math.Inf(1), p1},
	} {
		if got := h.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// TestRecordAllocationFree pins the O(buckets) memory contract: after the
// one-time bucket-array warm-up, recording (and quantile queries) allocate
// nothing, so RecordLatency runs cost O(buckets) — not O(ops) — memory.
func TestRecordAllocationFree(t *testing.T) {
	var tl Tail
	// Warm-up: touch every histogram once so bucket arrays exist.
	for k := KindInsert; k <= KindRead; k++ {
		for a := AttrUseful; a <= AttrRetry; a++ {
			tl.Record(k, a, 100)
		}
	}
	tl.RecordPause(50)

	v := uint64(17)
	if avg := testing.AllocsPerRun(2000, func() {
		tl.Record(KindInsert, AttrReclaim, v)
		tl.RecordPause(v)
		v = v*2862933555777941757 + 3037000493 // spread across buckets
	}); avg != 0 {
		t.Fatalf("Record allocates %v per op after warm-up, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		_ = tl.Total.Quantile(0.99)
	}); avg != 0 {
		t.Fatalf("Quantile allocates %v per call, want 0", avg)
	}
}

// TestHistJSONRoundTrip: the sparse JSON form reconstructs the histogram
// exactly (the store envelope persists these).
func TestHistJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var tl Tail
	for i := 0; i < 3000; i++ {
		tl.Record(Kind(rng.Intn(3)), Attr(rng.Intn(3)), randomSamples(rng, 1)[0])
	}
	tl.RecordPause(12345)

	data, err := json.Marshal(&tl)
	if err != nil {
		t.Fatal(err)
	}
	var back Tail
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl, back) {
		t.Fatalf("tail JSON round trip lost information")
	}

	// Empty histograms stay empty (no bucket allocation) through the trip.
	var empty, emptyBack Hist
	data, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, emptyBack) {
		t.Fatalf("empty hist round trip: %+v != %+v", empty, emptyBack)
	}
	if emptyBack.counts != nil {
		t.Fatalf("empty hist decode allocated buckets")
	}

	// Corrupt envelopes are rejected, not silently mis-decoded.
	if err := new(Hist).UnmarshalJSON([]byte(`{"count":1,"idx":[1,2],"n":[3]}`)); err == nil {
		t.Fatal("idx/n length mismatch accepted")
	}
	if err := new(Hist).UnmarshalJSON([]byte(`{"count":1,"idx":[99999],"n":[1]}`)); err == nil {
		t.Fatal("out-of-range bucket index accepted")
	}
}

// TestTailPartitions: Record keeps the kind and attribution partitions exact
// — each sums to Total, bucket for bucket.
func TestTailPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var tl Tail
	for i := 0; i < 5000; i++ {
		tl.Record(Kind(rng.Intn(3)), Attr(rng.Intn(3)), randomSamples(rng, 1)[0])
	}
	for name, group := range map[string][]*Hist{
		"kind": {&tl.Insert, &tl.Delete, &tl.Read},
		"attr": {&tl.Useful, &tl.Reclaim, &tl.Retry},
	} {
		var sum Hist
		for _, h := range group {
			sum.Merge(h)
		}
		if !reflect.DeepEqual(sum, tl.Total) {
			t.Errorf("%s partition does not sum to the total histogram", name)
		}
	}
}

// TestResetKeepsAllocation: Reset empties without dropping the bucket array
// (per-thread Tails are reused across phases), and a reset histogram merges
// as a no-op.
func TestResetKeepsAllocation(t *testing.T) {
	var h Hist
	h.Record(9)
	buf := &h.counts[0]
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset histogram not empty")
	}
	h.Record(9)
	if &h.counts[0] != buf {
		t.Fatal("reset dropped the bucket allocation")
	}
	var into Hist
	into.Record(5)
	empty := Hist{counts: make([]uint64, NumBuckets)}
	into.Merge(&empty)
	if into.Count() != 1 || into.Min() != 5 {
		t.Fatal("merging an empty histogram changed the target")
	}
}
