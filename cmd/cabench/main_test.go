package main

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"condaccess/internal/lab"
)

func TestParseArgsDefaults(t *testing.T) {
	opt, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.cfg
	if cfg.DS != "list" || cfg.KeyRange != 1000 {
		t.Errorf("default ds/range = %s/%d, want list/1000", cfg.DS, cfg.KeyRange)
	}
	if !reflect.DeepEqual(cfg.Threads, []int{1, 2, 4, 8, 16, 32}) {
		t.Errorf("default threads = %v", cfg.Threads)
	}
	if !reflect.DeepEqual(cfg.Updates, []int{0, 10, 100}) {
		t.Errorf("default updates = %v", cfg.Updates)
	}
	if cfg.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS %d", cfg.Workers, runtime.GOMAXPROCS(0))
	}
	if cfg.Trials != 1 || cfg.Ops != 3000 || cfg.Seed != 1 {
		t.Errorf("default trials/ops/seed = %d/%d/%d", cfg.Trials, cfg.Ops, cfg.Seed)
	}
}

func TestParseArgsPaperKeyRanges(t *testing.T) {
	bst, err := parseArgs([]string{"-ds", "bst"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if bst.cfg.KeyRange != 10000 {
		t.Errorf("bst default range = %d, want 10000", bst.cfg.KeyRange)
	}
	over, err := parseArgs([]string{"-ds", "bst", "-range", "500"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if over.cfg.KeyRange != 500 {
		t.Errorf("-range not honored: %d", over.cfg.KeyRange)
	}
}

func TestParseArgsLists(t *testing.T) {
	opt, err := parseArgs([]string{
		"-schemes", "ca, rcu,,hp", "-threads", " 2 ,8", "-updates", "50",
		"-workers", "3", "-trials", "4", "-csv", "out.csv", "-v", "-lat",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	cfg := opt.cfg
	if !reflect.DeepEqual(cfg.Schemes, []string{"ca", "rcu", "hp"}) {
		t.Errorf("schemes = %v", cfg.Schemes)
	}
	if !reflect.DeepEqual(cfg.Threads, []int{2, 8}) || !reflect.DeepEqual(cfg.Updates, []int{50}) {
		t.Errorf("threads/updates = %v/%v", cfg.Threads, cfg.Updates)
	}
	if cfg.Workers != 3 || cfg.Trials != 4 {
		t.Errorf("workers/trials = %d/%d", cfg.Workers, cfg.Trials)
	}
	if opt.csvPath != "out.csv" || !opt.verbose || !cfg.RecordLatency {
		t.Errorf("csv/verbose/lat not parsed: %+v", opt)
	}
}

func TestParseArgsErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-threads", "1,zap"},
		{"-updates", "ten"},
		{"-ops", "many"},
		{"-nosuchflag"},
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestParseArgsStoreFlag(t *testing.T) {
	opt, err := parseArgs([]string{"-store", "results/store"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.storePath != "results/store" {
		t.Errorf("storePath = %q, want results/store", opt.storePath)
	}
	opt, err = parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.storePath != "" {
		t.Errorf("default storePath = %q, want empty (no store)", opt.storePath)
	}
}

// TestStoreSummaryLine pins the stderr traffic line the CI smoke greps for.
func TestStoreSummaryLine(t *testing.T) {
	got := lab.StoreStats{Hits: 8, Misses: 0}.String()
	if got != "store: 8 hits, 0 misses (100% warm)" {
		t.Errorf("warm summary = %q", got)
	}
	got = lab.StoreStats{Hits: 0, Misses: 8}.String()
	if got != "store: 0 hits, 8 misses (0% warm)" {
		t.Errorf("cold summary = %q", got)
	}
}

func TestParseArgsTailFlag(t *testing.T) {
	opt, err := parseArgs([]string{"-ds", "list", "-tail"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.tail || !opt.cfg.RecordTail {
		t.Error("-tail must enable the tail table and tail recording")
	}
	if opt.cfg.RecordLatency {
		t.Error("-tail alone must not enable the O(ops) exact-sort recording")
	}
	opt, err = parseArgs([]string{"-ds", "list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.tail || opt.cfg.RecordLatency || opt.cfg.RecordTail {
		t.Error("tail reporting must be off by default")
	}
}

func TestParseArgsTimelineAndTraceFlags(t *testing.T) {
	opt, err := parseArgs([]string{"-ds", "list", "-timeline", "-timeline-window", "4096"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.timeline || !opt.cfg.RecordTimeline || opt.cfg.TimelineWindow != 4096 {
		t.Error("-timeline must enable timeline recording with the given window")
	}
	if opt.tracePath != "" || opt.cfg.RecordTail {
		t.Error("-timeline must not drag in tracing or tail recording")
	}

	// -trace forces the sequential path: one sink, trials in sweep order.
	opt, err = parseArgs([]string{"-ds", "list", "-workers", "8", "-trace", "t.json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.tracePath != "t.json" || opt.cfg.Workers != 1 {
		t.Errorf("-trace: path %q workers %d, want t.json and forced workers 1", opt.tracePath, opt.cfg.Workers)
	}

	opt, err = parseArgs([]string{"-ds", "list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.timeline || opt.cfg.RecordTimeline || opt.tracePath != "" {
		t.Error("tracing and timelines must be off by default")
	}
}

// TestRunFailureModes pins the CLI error contract: every failure exits
// non-zero after exactly one line on stderr — no panic, no usage dump.
func TestRunFailureModes(t *testing.T) {
	plain := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"unopenable store", []string{"-store", filepath.Join(plain, "store")}, 1},
		{"bad thread list", []string{"-threads", "1,x"}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tc.args, code, tc.code, stderr.String())
			}
			if got := stderr.String(); strings.Count(got, "\n") != 1 {
				t.Errorf("stderr is not exactly one line:\n%s", got)
			} else if strings.Contains(got, "Usage") || !strings.HasPrefix(got, "cabench: ") {
				t.Errorf("stderr is not a bare one-line diagnosis:\n%s", got)
			}
		})
	}
}
