package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"condaccess/internal/lab"
)

// TestMain lets this test binary double as the cabench executable: farm-mode
// tests run the coordinator in-process, and the worker processes it spawns
// via os.Executable() are this same binary re-entering run() under the env
// marker, exactly like the installed CLI.
func TestMain(m *testing.M) {
	if os.Getenv("CABENCH_TEST_MAIN") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in      string
		idx, of int
	}{{"0/2", 0, 2}, {"1/4", 1, 4}, {"7/8", 7, 8}} {
		idx, of, err := parseShard(tc.in)
		if err != nil || idx != tc.idx || of != tc.of {
			t.Errorf("parseShard(%q) = %d, %d, %v; want %d, %d", tc.in, idx, of, err, tc.idx, tc.of)
		}
	}
	for _, in := range []string{"", "2", "2/2", "-1/2", "x/2", "1/x", "1/0", "1/-2"} {
		if _, _, err := parseShard(in); err == nil {
			t.Errorf("parseShard(%q) accepted", in)
		}
	}
}

func TestParseArgsShardAndFarm(t *testing.T) {
	opt, err := parseArgs([]string{"-shard", "1/4", "-store", "d"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.shardIdx != 1 || opt.shardOf != 4 {
		t.Errorf("shard parsed as %d/%d, want 1/4", opt.shardIdx, opt.shardOf)
	}
	opt, err = parseArgs([]string{"-farm", "3", "-store", "d"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.farm != 3 || opt.shardOf != 0 {
		t.Errorf("farm parsed as %d (shardOf %d), want 3 (0)", opt.farm, opt.shardOf)
	}
	for _, args := range [][]string{
		{"-shard", "0/2"},                                  // no store
		{"-farm", "2"},                                     // no store
		{"-farm", "-1", "-store", "d"},                     // negative
		{"-shard", "0/2", "-farm", "2", "-store", "d"},     // both modes
		{"-shard", "0/2", "-store", "d", "-csv", "f.csv"},  // worker renders nothing
		{"-shard", "0/2", "-store", "d", "-trace", "t.js"}, // trace is single-process
		{"-farm", "2", "-store", "d", "-trace", "t.js"},    // trace is single-process
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

// farmArgs is a small sweep used by every multi-process test: 4 points, 2
// trials each, 8 jobs total.
func farmArgs(extra ...string) []string {
	return append([]string{
		"-ds", "list", "-schemes", "ca,rcu", "-threads", "1,2",
		"-updates", "10", "-ops", "120", "-trials", "2", "-seed", "3",
	}, extra...)
}

// TestFarmMatchesSequential pins the tentpole acceptance: a farm run's
// stdout is byte-identical to the sequential sweep's, and a warm re-run
// against the merged store reports 100% hits with zero simulated trials.
func TestFarmMatchesSequential(t *testing.T) {
	t.Setenv("CABENCH_TEST_MAIN", "1") // worker processes re-enter run()
	dir := t.TempDir()

	var seqOut, seqErr strings.Builder
	if code := run(farmArgs("-store", filepath.Join(dir, "seq")), &seqOut, &seqErr); code != 0 {
		t.Fatalf("sequential run failed (%d): %s", code, seqErr.String())
	}

	mainStore := filepath.Join(dir, "main")
	var farmOut, farmErr strings.Builder
	if code := run(farmArgs("-store", mainStore, "-farm", "2"), &farmOut, &farmErr); code != 0 {
		t.Fatalf("farm run failed (%d): %s", code, farmErr.String())
	}
	if farmOut.String() != seqOut.String() {
		t.Errorf("farm stdout differs from sequential:\n--- farm ---\n%s--- seq ---\n%s", farmOut.String(), seqOut.String())
	}
	if !strings.Contains(farmErr.String(), "farm: merged 2 shards, 8 entries added (0 already present)") {
		t.Errorf("farm merge line missing:\n%s", farmErr.String())
	}
	if !strings.Contains(farmErr.String(), "store: 8 hits, 0 misses (100% warm)") {
		t.Errorf("farm render was not fully warm:\n%s", farmErr.String())
	}

	// Warm re-run against the merged store: zero simulator work.
	var warmOut, warmErr strings.Builder
	if code := run(farmArgs("-store", mainStore), &warmOut, &warmErr); code != 0 {
		t.Fatalf("warm re-run failed (%d): %s", code, warmErr.String())
	}
	if warmOut.String() != seqOut.String() {
		t.Error("warm re-run stdout differs from sequential")
	}
	if !strings.Contains(warmErr.String(), "store: 8 hits, 0 misses (100% warm)") {
		t.Errorf("warm re-run not 100%% warm:\n%s", warmErr.String())
	}
}

// TestShardWorkersAndMerge drives the manual farm workflow in-process: two
// -shard worker runs into private stores, lab.Merge, then a fully warm sweep.
func TestShardWorkersAndMerge(t *testing.T) {
	dir := t.TempDir()
	s0, s1 := filepath.Join(dir, "s0"), filepath.Join(dir, "s1")
	for i, store := range []string{s0, s1} {
		var out, errb strings.Builder
		if code := run(farmArgs("-shard", fmt.Sprintf("%d/2", i), "-store", store), &out, &errb); code != 0 {
			t.Fatalf("shard %d failed (%d): %s", i, code, errb.String())
		}
		if want := fmt.Sprintf("shard %d/2: 4 trials done\n", i); out.String() != want {
			t.Errorf("shard %d stdout = %q, want %q", i, out.String(), want)
		}
	}

	merged := filepath.Join(dir, "merged")
	dst, err := lab.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	src0, err := lab.OpenExisting(s0)
	if err != nil {
		t.Fatal(err)
	}
	src1, err := lab.OpenExisting(s1)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := lab.Merge(dst, src0, src1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Added != 8 || stats.Skipped != 0 {
		t.Fatalf("merge added %d skipped %d, want 8/0 (shards must not overlap)", stats.Added, stats.Skipped)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb strings.Builder
	if code := run(farmArgs("-store", merged), &out, &errb); code != 0 {
		t.Fatalf("warm run failed (%d): %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "store: 8 hits, 0 misses (100% warm)") {
		t.Errorf("merged store not fully warm:\n%s", errb.String())
	}
}

// TestFailedSweepKeepsCompletedTrials pins the durability bugfix: a sweep
// that fails partway (unknown scheme on the sequential path, after earlier
// points completed) must still flush the completed trials on Close, so a
// re-run of the good subset is warm.
func TestFailedSweepKeepsCompletedTrials(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	args := []string{
		"-ds", "list", "-schemes", "ca,bogus", "-threads", "1,2", "-updates", "10",
		"-ops", "120", "-trials", "1", "-seed", "3", "-workers", "1", "-store", store,
	}
	var out, errb strings.Builder
	if code := run(args, &out, &errb); code != 1 {
		t.Fatalf("sweep with unknown scheme exited %d, want 1 (stderr %q)", code, errb.String())
	}
	// The failure path keeps the one-line stderr contract: no stats line.
	if got := errb.String(); strings.Count(got, "\n") != 1 || !strings.HasPrefix(got, "cabench: ") {
		t.Errorf("failure stderr is not exactly one cabench line:\n%s", got)
	}

	// The two ca points (threads 1 and 2) completed before the bogus point
	// failed; Close must have made them durable.
	var wout, werr strings.Builder
	warm := []string{
		"-ds", "list", "-schemes", "ca", "-threads", "1,2", "-updates", "10",
		"-ops", "120", "-trials", "1", "-seed", "3", "-store", store,
	}
	if code := run(warm, &wout, &werr); code != 0 {
		t.Fatalf("warm subset run failed (%d): %s", code, werr.String())
	}
	if !strings.Contains(werr.String(), "store: 2 hits, 0 misses (100% warm)") {
		t.Errorf("completed trials were lost on failure:\n%s", werr.String())
	}
}

// TestKillMidSweepRecovery SIGKILLs a shard worker once its store has
// durable segment bytes, then asserts the store reopens with the surviving
// records sound (only a truncated tail frame may be reported), merges
// cleanly, and a re-run heals the gap with warm hits for every survivor.
func TestKillMidSweepRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a real worker process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	store := filepath.Join(dir, "shard0")
	// One point, many tiny trials (small key range keeps prefill cheap):
	// enough puts (~1600) to cross the batched writer's flush threshold long
	// before the shard finishes.
	args := []string{
		"-ds", "list", "-schemes", "ca", "-threads", "1", "-updates", "10",
		"-range", "64", "-ops", "10", "-trials", "1600", "-seed", "3",
		"-workers", "1", "-shard", "0/1", "-store", store,
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "CABENCH_TEST_MAIN=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill as soon as any segment holds durable bytes.
	segs := filepath.Join(store, "segments")
	deadline := time.Now().Add(30 * time.Second)
	for {
		var durable int64
		if ents, err := os.ReadDir(segs); err == nil {
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".pack") {
					if fi, err := e.Info(); err == nil {
						durable += fi.Size()
					}
				}
			}
		}
		if durable > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("no segment bytes appeared within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cmd.Process.Signal(syscall.SIGKILL)
	cmd.Wait() // exit state does not matter; the store on disk does

	// Surviving records verify clean: the only acceptable defect is the
	// truncated tail frame of the in-flight flush, which every reader skips.
	st, err := lab.OpenExisting(store)
	if err != nil {
		t.Fatal(err)
	}
	sound, problems, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		if !strings.Contains(p.Reason, "truncated or checksum-corrupt tail record") {
			t.Errorf("unexpected defect after kill: %s: %s", p.Path, p.Reason)
		}
	}
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != sound {
		t.Errorf("Keys() found %d sound entries, Verify %d", len(keys), sound)
	}
	if sound == 0 {
		t.Fatal("kill landed before any record became durable; the poll above should prevent this")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The killed shard merges into a fresh main store like any other.
	merged := filepath.Join(dir, "main")
	dst, err := lab.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	src, err := lab.OpenExisting(store)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := lab.Merge(dst, src)
	if err != nil {
		t.Fatalf("merging the killed shard: %v", err)
	}
	if stats.Added != sound {
		t.Errorf("merge added %d entries, want every survivor (%d)", stats.Added, sound)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-running the same shard against the merged store heals the gap:
	// every survivor is a warm hit, only the lost tail is re-simulated.
	var out, errb strings.Builder
	heal := append(args[:len(args)-1], merged)
	if code := run(heal, &out, &errb); code != 0 {
		t.Fatalf("healing re-run failed (%d): %s", code, errb.String())
	}
	want := fmt.Sprintf("store: %d hits, %d misses", sound, 1600-sound)
	if !strings.Contains(errb.String(), want) {
		t.Errorf("healing run stats = %q, want %q", errb.String(), want)
	}
}
