// Farm mode: multi-process sharded sweep execution.
//
// A sweep is a flat list of deterministic, independent trials, so it splits
// across processes by partitioning that list (bench.ShardWorkloads). A worker
// (`-shard I/N`) runs its jobs into a private store and renders nothing; the
// coordinator (`-farm N`) spawns N workers over private stores under
// <store>/shards, merges them into the main store (lab.Merge), and then runs
// the ordinary sweep path against the merged store — every trial warm, zero
// simulator work, and stdout byte-identical to the single-process run by
// construction, because it IS the single-process path.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/obs"
)

// shardRun executes one shard of the sweep's job list into the store. No
// table is rendered — the store (plus the run manifest) is the output.
func shardRun(opt options, rec *obs.Rec, stdout, stderr io.Writer) (err error) {
	store, err := lab.Open(opt.storePath)
	if err != nil {
		return err
	}
	store.OnFlush = rec.StoreFlushed
	defer func() {
		if cerr := store.Close(); err == nil {
			err = cerr
		}
		rec.SetStore(store.Stats().Rollup())
		if err == nil {
			fmt.Fprintln(stderr, store.Stats())
		}
	}()
	ws, err := bench.ShardWorkloads(opt.cfg, opt.shardIdx, opt.shardOf)
	if err != nil {
		return err
	}
	if _, err := bench.RunManyObserved(ws, opt.cfg.Workers, store, rec); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "shard %d/%d: %d trials done\n", opt.shardIdx, opt.shardOf, len(ws))
	return nil
}

// shardDir places shard i's private store under the main store root. The
// store only claims objects/, segments/, and runs/, so shards/ rides along
// without confusing any reader.
func shardDir(storePath string, i, n int) string {
	return filepath.Join(storePath, "shards", fmt.Sprintf("%d-of-%d", i, n))
}

// farmRun coordinates a sharded sweep: spawn one worker process per shard,
// collect their manifests into per-shard rollups, merge the shard stores
// into the main store, and render by re-running the ordinary sweep path
// against it — fully warm, so the output is the sequential output.
func farmRun(opt options, rec *obs.Rec, stdout, stderr io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	n := opt.farm
	outs := make([]bytes.Buffer, n) // combined worker output, shown only on failure
	werrs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe, workerArgs(opt, i, n)...)
			cmd.Stdout = &outs[i]
			cmd.Stderr = &outs[i]
			werrs[i] = cmd.Run()
		}(i)
	}
	wg.Wait()
	rec.SetShards(shardRollups(opt, n, werrs))
	// First failed shard (by index) wins, echoing the sweep paths'
	// first-error semantics. Completed shards' stores stay on disk: a re-run
	// heals the gap warm.
	for i, werr := range werrs {
		if werr != nil {
			return fmt.Errorf("farm: shard %d/%d: %s", i, n, workerFailure(outs[i].Bytes(), werr))
		}
	}
	if err := mergeShards(opt, n, stderr); err != nil {
		return err
	}
	seq := opt
	seq.farm = 0
	return sweep(seq, rec, stdout, stderr)
}

// mergeShards folds the N shard stores into the main store.
func mergeShards(opt options, n int, stderr io.Writer) (err error) {
	dst, err := lab.Open(opt.storePath)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := dst.Close(); err == nil {
			err = cerr
		}
	}()
	srcs := make([]*lab.Store, n)
	for i := range srcs {
		// oerr, not err: the deferred closures must see the function's named
		// return, not a loop-scoped shadow.
		src, oerr := lab.OpenExisting(shardDir(opt.storePath, i, n))
		if oerr != nil {
			return oerr
		}
		defer func() {
			if cerr := src.Close(); err == nil {
				err = cerr
			}
		}()
		srcs[i] = src
	}
	stats, err := lab.Merge(dst, srcs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "farm: merged %d shards, %d entries added (%d already present)\n",
		n, stats.Added, stats.Skipped)
	return nil
}

// shardRollups distills each worker's manifest into the coordinator
// manifest's per-shard summary. A worker that died before writing one (or
// wrote an unreadable one) still gets a rollup carrying its process error.
func shardRollups(opt options, n int, werrs []error) []obs.ShardRollup {
	rollups := make([]obs.ShardRollup, n)
	for i := range rollups {
		r := obs.ShardRollup{Shard: i}
		if werrs[i] != nil {
			r.Error = werrs[i].Error()
		}
		m, err := obs.ReadManifest(filepath.Join(shardDir(opt.storePath, i, n), "manifest.json"))
		if err == nil {
			r.RunID = m.RunID
			r.Trials = m.TrialsDone
			r.Warm = m.WarmHits
			r.WallNanos = m.WallNanos
			r.SpanNanos = m.SpanNanos
			if m.Error != "" {
				r.Error = m.Error
			}
		}
		rollups[i] = r
	}
	return rollups
}

// workerArgs rebuilds shard i's command line from the parsed sweep config —
// every field that reaches the trial Workload (and therefore the content
// key) is forwarded exactly, so shard entries are the entries the warm
// coordinator re-run looks up.
func workerArgs(opt options, i, n int) []string {
	cfg := opt.cfg
	dir := shardDir(opt.storePath, i, n)
	args := []string{
		"-ds", cfg.DS,
		"-schemes", strings.Join(cfg.Schemes, ","),
		"-threads", joinInts(cfg.Threads),
		"-updates", joinInts(cfg.Updates),
		"-ops", strconv.Itoa(cfg.Ops),
		"-range", strconv.FormatUint(cfg.KeyRange, 10),
		"-buckets", strconv.Itoa(cfg.Buckets),
		"-seed", strconv.FormatUint(cfg.Seed, 10),
		"-trials", strconv.Itoa(cfg.Trials),
		"-workers", strconv.Itoa(cfg.Workers),
		"-dist", cfg.Dist,
		"-shard", fmt.Sprintf("%d/%d", i, n),
		"-store", dir,
		"-manifest", filepath.Join(dir, "manifest.json"),
	}
	if cfg.Check {
		args = append(args, "-check")
	}
	if cfg.RecordLatency {
		args = append(args, "-lat")
	}
	if cfg.RecordTail {
		args = append(args, "-tail")
	}
	if cfg.RecordTimeline {
		args = append(args, "-timeline")
	}
	if cfg.TimelineWindow != 0 {
		args = append(args, "-timeline-window", strconv.FormatUint(cfg.TimelineWindow, 10))
	}
	return args
}

// workerFailure condenses a failed worker's captured output into the
// coordinator's one-line error: the worker's own error line when it printed
// one, the process error otherwise.
func workerFailure(out []byte, werr error) string {
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if line := strings.TrimSpace(lines[i]); line != "" {
			return fmt.Sprintf("%s (%v)", line, werr)
		}
	}
	return werr.Error()
}

// joinInts renders ints as the comma-separated form the flag parser reads.
func joinInts(ns []int) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, ",")
}
