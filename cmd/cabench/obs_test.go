package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/obs"
)

func TestParseArgsObsFlags(t *testing.T) {
	opt, err := parseArgs([]string{
		"-progress", "-manifest", "m.json", "-events", "ev.jsonl",
		"-cpuprofile", "cpu.out", "-memprofile", "mem.out", "-exectrace", "trace.out",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.obs.Progress || opt.obs.Manifest != "m.json" || opt.obs.Events != "ev.jsonl" {
		t.Errorf("obs flags not parsed: %+v", opt.obs)
	}
	if opt.obs.Prof.CPUPath != "cpu.out" || opt.obs.Prof.MemPath != "mem.out" || opt.obs.Prof.TracePath != "trace.out" {
		t.Errorf("profiling flags not parsed: %+v", opt.obs.Prof)
	}

	opt, err = parseArgs([]string{"-version"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.obs.Version {
		t.Error("-version not parsed")
	}
}

func TestVersionFlagShortCircuits(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -version = %d (stderr %q)", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "cabench ") || !strings.Contains(line, "engine "+bench.EngineTag()) {
		t.Errorf("version line = %q", line)
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr = %q, want empty", stderr.String())
	}
}

// TestObsOutOfBand is the tentpole invariant in miniature: the same sweep
// run cold with every observability output enabled, plain with none, and
// warm with observability again must produce byte-identical stdout — and
// the manifests must account for the run (trial counts exact, warm run's
// simulate span zero).
func TestObsOutOfBand(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")
	sweepArgs := []string{
		"-ds", "list", "-schemes", "ca,rcu", "-threads", "1,2",
		"-updates", "100", "-ops", "120", "-trials", "2", "-workers", "2",
	}
	obsArgs := append([]string{}, sweepArgs...)
	obsArgs = append(obsArgs,
		"-store", storeDir, "-progress",
		"-events", filepath.Join(dir, "ev.jsonl"),
	)

	var cold, plain, warm, stderrBuf strings.Builder
	if code := run(obsArgs, &cold, &stderrBuf); code != 0 {
		t.Fatalf("cold run = %d: %s", code, stderrBuf.String())
	}
	if code := run(sweepArgs, &plain, io.Discard); code != 0 {
		t.Fatal("plain run failed")
	}
	if code := run(obsArgs, &warm, io.Discard); code != 0 {
		t.Fatal("warm run failed")
	}
	if cold.String() != plain.String() {
		t.Errorf("cold obs stdout diverges from plain:\n--- obs ---\n%s--- plain ---\n%s", cold.String(), plain.String())
	}
	if warm.String() != plain.String() {
		t.Errorf("warm obs stdout diverges from plain")
	}
	if !strings.Contains(stderrBuf.String(), "progress: ") {
		t.Errorf("no progress on stderr: %q", stderrBuf.String())
	}

	// Manifests auto-archived under <store>/runs: cold then warm.
	runs, err := obs.ListRuns(obs.RunsDir(storeDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("%d manifests, want 2", len(runs))
	}
	const wantTrials = 2 * 2 * 1 * 2 // schemes * threads * updates * trials
	for i, m := range runs {
		if m.TrialsDone != wantTrials || m.TrialsPlanned != wantTrials {
			t.Errorf("run %d trials = %d/%d, want %d", i, m.TrialsDone, m.TrialsPlanned, wantTrials)
		}
		if m.Tool != "cabench" || m.EngineTag != bench.EngineTag() {
			t.Errorf("run %d identity = %s/%s", i, m.Tool, m.EngineTag)
		}
	}
	coldM, warmM := runs[0], runs[1]
	if coldM.WarmHits != 0 || coldM.SimulateNanos <= 0 {
		t.Errorf("cold manifest: warm %d, simulate %d", coldM.WarmHits, coldM.SimulateNanos)
	}
	if warmM.WarmHits != wantTrials || warmM.SimulateNanos != 0 {
		t.Errorf("warm manifest: warm %d (want %d), simulate %d (want 0)",
			warmM.WarmHits, wantTrials, warmM.SimulateNanos)
	}
	if warmM.LookupNanos <= 0 {
		t.Errorf("warm manifest lookup span = %d, want > 0", warmM.LookupNanos)
	}
	if coldM.Store == nil || coldM.Store.Flushes == 0 {
		t.Errorf("cold manifest store rollup = %+v, want flush traffic", coldM.Store)
	}

	ev, err := os.ReadFile(filepath.Join(dir, "ev.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(ev), `"ev":"run_done"`); n != 2 {
		t.Errorf("events hold %d run_done records, want 2 (file appends across runs)", n)
	}
}

// TestStoreSummaryLineWithFlushes pins the extended stderr traffic line: a
// cold run reports its flush traffic, while the warm line (zero flushes)
// keeps the exact historical format the CI greps rely on.
func TestStoreSummaryLineWithFlushes(t *testing.T) {
	got := lab.StoreStats{Hits: 0, Misses: 8, Flushes: 4, BytesWritten: 13517}.String()
	if got != "store: 0 hits, 8 misses (0% warm), 4 flushes (13.2 KiB written)" {
		t.Errorf("cold summary = %q", got)
	}
	got = lab.StoreStats{Hits: 8, Misses: 0}.String()
	if got != "store: 8 hits, 0 misses (100% warm)" {
		t.Errorf("warm summary grew a suffix: %q", got)
	}
}
