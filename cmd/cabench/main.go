// cabench runs one throughput sweep of the paper's evaluation: a data
// structure crossed with reclamation schemes, thread counts, and update
// rates, reporting operations per million simulated cycles.
//
// Examples:
//
//	cabench -ds list -updates 0,10,100 -threads 1,2,4,8,16,32   # Figure 1 top
//	cabench -ds bst -range 10000                                # Figure 1 bottom
//	cabench -ds hash                                            # Figure 2 top
//	cabench -ds stack                                           # Figure 2 bottom
//	cabench -ds list -schemes ca,rcu -check                     # with safety assertions
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"condaccess/internal/bench"
)

func main() {
	var (
		ds      = flag.String("ds", "list", "data structure: list, bst, hash, stack, queue")
		schemes = flag.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread counts")
		updates = flag.String("updates", "0,10,100", "comma-separated update percentages")
		ops     = flag.Int("ops", 3000, "operations per thread (paper: 3000)")
		keys    = flag.Uint64("range", 0, "key range (default: paper's per-structure value)")
		buckets = flag.Int("buckets", 128, "hash table buckets")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		trials  = flag.Int("trials", 1, "trials per point, throughput averaged (paper: 3)")
		check   = flag.Bool("check", false, "enable use-after-free and Theorem 6/7 assertions")
		csvPath = flag.String("csv", "", "also write long-form CSV to this file")
		verbose = flag.Bool("v", false, "print each point as it completes")
		dist    = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		lat     = flag.Bool("lat", false, "also print per-point latency percentiles")
	)
	flag.Parse()

	kr := *keys
	if kr == 0 {
		kr = 1000 // paper: list, stack, hash use 1K keys
		if *ds == "bst" {
			kr = 10000 // paper: extbst uses 10K keys
		}
	}
	cfg := bench.SweepConfig{
		DS:       *ds,
		Schemes:  splitList(*schemes),
		Threads:  splitInts(*threads),
		Updates:  splitInts(*updates),
		KeyRange: kr, Ops: *ops, Buckets: *buckets,
		Seed: *seed, Check: *check, Trials: *trials,
		Dist: *dist, RecordLatency: *lat,
	}
	var progress func(bench.SweepPoint)
	if *verbose || *lat {
		progress = func(p bench.SweepPoint) {
			fmt.Fprintf(os.Stderr, "  %-5s t=%-2d u=%3d%%: %10.1f ops/Mcyc",
				p.Scheme, p.Threads, p.UpdatePct, p.Throughput)
			if *lat {
				l := p.Result.Latency
				fmt.Fprintf(os.Stderr, "  p50=%d p99=%d p99.9=%d max=%d", l.P50, l.P99, l.P999, l.Max)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	points, err := bench.Sweep(cfg, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cabench:", err)
		os.Exit(1)
	}
	for _, u := range cfg.Updates {
		fmt.Printf("== %s, %d%% updates (%di-%dd), %d keys, %d ops/thread [ops/Mcyc] ==\n",
			*ds, u, u/2, u/2, kr, *ops)
		fmt.Print(bench.FormatTable(points, u))
		fmt.Println()
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := bench.WriteCSV(f, *ds, points); err != nil {
			fmt.Fprintln(os.Stderr, "cabench:", err)
			os.Exit(1)
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) []int {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cabench: bad integer %q\n", p)
			os.Exit(1)
		}
		out = append(out, n)
	}
	return out
}
