// cabench runs one throughput sweep of the paper's evaluation: a data
// structure crossed with reclamation schemes, thread counts, and update
// rates, reporting operations per million simulated cycles. Trials fan out
// across OS threads (-workers, default GOMAXPROCS); results are identical
// to -workers 1, just faster.
//
// Examples:
//
//	cabench -ds list -updates 0,10,100 -threads 1,2,4,8,16,32   # Figure 1 top
//	cabench -ds bst -range 10000                                # Figure 1 bottom
//	cabench -ds hash                                            # Figure 2 top
//	cabench -ds stack                                           # Figure 2 bottom
//	cabench -ds list -schemes ca,rcu -check                     # with safety assertions
//	cabench -ds list -trials 3 -workers 8                       # parallel trial execution
//	cabench -ds list -trials 3 -store results/store             # warm cells skip simulation
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/obs"
	"condaccess/internal/trace"
)

// options is the parsed command line.
type options struct {
	cfg       bench.SweepConfig
	csvPath   string
	storePath string
	verbose   bool
	tail      bool
	timeline  bool
	tracePath string
	obs       obs.CLIFlags

	// shardIdx/shardOf select worker mode (-shard I/N): run only this
	// shard's jobs into the store, render no table. shardOf == 0 means
	// unsharded.
	shardIdx, shardOf int
	// farm selects coordinator mode (-farm N): spawn N worker processes,
	// merge their shard stores, then render the sweep warm.
	farm int
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

// parseArgs parses the flag set into a SweepConfig, applying the paper's
// per-structure key-range defaults. Split out of main for testability.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("cabench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ds      = fs.String("ds", "list", "data structure: list, bst, hash, stack, queue")
		schemes = fs.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = fs.String("threads", "1,2,4,8,16,32", "comma-separated thread counts")
		updates = fs.String("updates", "0,10,100", "comma-separated update percentages")
		ops     = fs.Int("ops", 3000, "operations per thread (paper: 3000)")
		keys    = fs.Uint64("range", 0, "key range (default: paper's per-structure value)")
		buckets = fs.Int("buckets", 128, "hash table buckets")
		seed    = fs.Uint64("seed", 1, "base RNG seed")
		trials  = fs.Int("trials", 1, "trials per point, throughput averaged (paper: 3)")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel trial workers (1: sequential)")
		check   = fs.Bool("check", false, "enable use-after-free and Theorem 6/7 assertions")
		csvPath = fs.String("csv", "", "also write long-form CSV to this file")
		store   = fs.String("store", "", "content-addressed result store directory (warm cells skip simulation)")
		verbose = fs.Bool("v", false, "print each point as it completes")
		dist    = fs.String("dist", "uniform", "key distribution: uniform or zipf")
		lat     = fs.Bool("lat", false, "also print per-point latency percentiles")
		tail    = fs.Bool("tail", false, "print the tail-latency table: per-point percentiles over all trials merged")
		tline   = fs.Bool("timeline", false, "record and print windowed sim-time metric timelines per point")
		tlWin   = fs.Uint64("timeline-window", 0, "timeline window size in simulated cycles (0: default)")
		trPath  = fs.String("trace", "", "write a Chrome trace_event JSON file of every simulated trial (forces -workers 1)")
		shard   = fs.String("shard", "", "worker mode: run only shard I/N of the sweep's job list into -store, render no table")
		farm    = fs.Int("farm", 0, "coordinator mode: spawn N worker processes over private shard stores, merge into -store, render warm")
	)
	var ob obs.CLIFlags
	ob.Register(fs)
	if err := fs.Parse(args); err != nil {
		return options{}, reportedError{err}
	}

	kr := *keys
	if kr == 0 {
		kr = 1000 // paper: list, stack, hash use 1K keys
		if *ds == "bst" {
			kr = 10000 // paper: extbst uses 10K keys
		}
	}
	schemeList := splitList(*schemes)
	threadList, err := splitInts(*threads)
	if err != nil {
		return options{}, fmt.Errorf("-threads: %w", err)
	}
	updateList, err := splitInts(*updates)
	if err != nil {
		return options{}, fmt.Errorf("-updates: %w", err)
	}
	wk := *workers
	if *trPath != "" {
		// Deterministic trace files need the sequential path: one sink
		// recording trials in sweep order.
		wk = 1
	}
	shardIdx, shardOf := 0, 0
	if *shard != "" {
		var err error
		if shardIdx, shardOf, err = parseShard(*shard); err != nil {
			return options{}, err
		}
	}
	// Farm-mode plumbing: both modes fill a store (that is the whole point),
	// and neither composes with tracing, which needs one sequential process.
	if shardOf > 0 && *farm > 0 {
		return options{}, errors.New("pick one of -shard (worker) and -farm (coordinator)")
	}
	if (shardOf > 0 || *farm > 0) && *store == "" {
		return options{}, errors.New("-shard and -farm require -store")
	}
	if (shardOf > 0 || *farm > 0) && *trPath != "" {
		return options{}, errors.New("-trace needs a single sequential process; drop -shard/-farm")
	}
	if shardOf > 0 && *csvPath != "" {
		return options{}, errors.New("-shard renders no sweep output; ask the coordinator (or a warm re-run) for -csv")
	}
	if *farm < 0 {
		return options{}, fmt.Errorf("-farm %d must be non-negative", *farm)
	}
	return options{
		cfg: bench.SweepConfig{
			DS:       *ds,
			Schemes:  schemeList,
			Threads:  threadList,
			Updates:  updateList,
			KeyRange: kr, Ops: *ops, Buckets: *buckets,
			Seed: *seed, Check: *check, Trials: *trials, Workers: wk,
			Dist: *dist, RecordLatency: *lat, RecordTail: *tail,
			RecordTimeline: *tline, TimelineWindow: *tlWin,
		},
		csvPath:   *csvPath,
		storePath: *store,
		verbose:   *verbose,
		tail:      *tail,
		timeline:  *tline,
		tracePath: *trPath,
		obs:       ob,
		shardIdx:  shardIdx,
		shardOf:   shardOf,
		farm:      *farm,
	}, nil
}

// parseShard parses "I/N" into a 0-based shard index and shard count.
func parseShard(s string) (idx, of int, err error) {
	i, n, ok := strings.Cut(s, "/")
	if ok {
		if idx, err = strconv.Atoi(i); err == nil {
			of, err = strconv.Atoi(n)
		}
	}
	if !ok || err != nil || of < 1 || idx < 0 || idx >= of {
		return 0, 0, fmt.Errorf("-shard %q: want I/N with 0 <= I < N", s)
	}
	return idx, of, nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its exit code and streams surfaced, so the failure modes
// (bad flags, unopenable store, unwritable CSV) are pinned by tests: every
// error path prints exactly one line to stderr — never a panic, never a
// usage dump — and returns non-zero (2 for command-line errors, 1 for
// runtime failures).
func run(args []string, stdout, stderr io.Writer) int {
	opt, err := parseArgs(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(stderr, "cabench:", err)
		}
		return 2
	}
	if opt.obs.Version {
		fmt.Fprintln(stdout, obs.VersionLine("cabench", bench.EngineTag()))
		return 0
	}
	sess, err := opt.obs.Start(obs.SessionConfig{
		Tool: "cabench", EngineTag: bench.EngineTag(), Args: args,
		Spec: opt.cfg, Stderr: stderr, StoreDir: opt.storePath,
		TraceOut: opt.tracePath, Timeline: opt.timeline,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cabench:", err)
		return 1
	}
	switch {
	case opt.shardOf > 0:
		err = shardRun(opt, sess.Rec, stdout, stderr)
	case opt.farm > 0:
		err = farmRun(opt, sess.Rec, stdout, stderr)
	default:
		err = sweep(opt, sess.Rec, stdout, stderr)
	}
	// A session teardown failure (manifest write, profile flush) only
	// surfaces when the run itself succeeded; the run's error is primary.
	if cerr := sess.Close(err); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "cabench:", err)
		return 1
	}
	return 0
}

// sweep executes the parsed sweep and renders every output. Observability
// (rec may be nil) is out-of-band: stdout is byte-identical with or without
// it.
func sweep(opt options, rec *obs.Rec, stdout, stderr io.Writer) (err error) {
	cfg := opt.cfg
	cfg.Obs = rec
	var store *lab.Store
	if opt.storePath != "" {
		st, oerr := lab.Open(opt.storePath)
		if oerr != nil {
			return oerr
		}
		store = st
		store.OnFlush = rec.StoreFlushed
		cfg.Store = st
		// Close always runs — a failed sweep must not lose the batched
		// segment writes of the trials that did complete. First error wins;
		// the success-only stats line keeps the one-line failure contract.
		defer func() {
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			rec.SetStore(store.Stats().Rollup())
			if err == nil {
				fmt.Fprintln(stderr, store.Stats())
			}
		}()
	}
	var sink *trace.Sink
	if opt.tracePath != "" {
		sink = &trace.Sink{}
		cfg.Trace = sink
	}
	lat := cfg.RecordLatency
	var progress func(bench.SweepPoint)
	if opt.verbose || lat {
		total := len(cfg.Schemes) * len(cfg.Threads) * len(cfg.Updates)
		n := 0
		progress = func(p bench.SweepPoint) {
			n++
			fmt.Fprintf(stderr, "  [%3d/%3d] %-5s t=%-2d u=%3d%%: %10.1f ops/Mcyc",
				n, total, p.Scheme, p.Threads, p.UpdatePct, p.Throughput)
			if lat {
				l := p.Result.Latency
				fmt.Fprintf(stderr, "  p50=%d p99=%d p99.9=%d max=%d", l.P50, l.P99, l.P999, l.Max)
			}
			fmt.Fprintln(stderr)
		}
	}
	points, err := bench.Sweep(cfg, progress)
	if err != nil {
		return err
	}
	if sink != nil {
		if err := sink.WriteFile(opt.tracePath); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "trace: %d events -> %s\n", sink.Len(), opt.tracePath)
	}
	for _, u := range cfg.Updates {
		fmt.Fprintf(stdout, "== %s, %d%% updates (%di-%dd), %d keys, %d ops/thread [ops/Mcyc] ==\n",
			cfg.DS, u, u/2, u/2, cfg.KeyRange, cfg.Ops)
		fmt.Fprint(stdout, bench.FormatTable(points, u))
		fmt.Fprintln(stdout)
	}
	if opt.tail {
		printTail(stdout, points)
	}
	if opt.timeline {
		printTimelines(stdout, points)
	}
	if opt.csvPath != "" {
		f, err := os.Create(opt.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteCSV(f, cfg.DS, points); err != nil {
			return err
		}
	}
	return nil
}

// printTail renders the per-point tail-latency table: percentiles of the
// point's trials merged into one histogram (so every recorded op counts,
// not just the last trial's), with max and mean exact.
func printTail(w io.Writer, points []bench.SweepPoint) {
	fmt.Fprintln(w, "== tail latency [cycles], all trials merged ==")
	fmt.Fprintf(w, "%-6s %4s %4s %10s %8s %8s %8s %8s %10s\n",
		"scheme", "t", "u%", "samples", "p50", "p99", "p99.9", "max", "mean")
	for _, p := range points {
		s := p.Tail
		fmt.Fprintf(w, "%-6s %4d %4d %10d %8d %8d %8d %8d %10.1f\n",
			p.Scheme, p.Threads, p.UpdatePct, s.Samples, s.P50, s.P99, s.P999, s.Max, s.Mean)
	}
	fmt.Fprintln(w)
}

// printTimelines renders each point's windowed sim-time metrics series,
// all trials merged window by window (trials share the measured cycle axis).
func printTimelines(w io.Writer, points []bench.SweepPoint) {
	fmt.Fprintln(w, "== sim-time timelines [per window], all trials merged ==")
	for _, p := range points {
		if p.Timeline == nil {
			continue
		}
		fmt.Fprintf(w, "-- %s t=%d u=%d%% --\n", p.Scheme, p.Threads, p.UpdatePct)
		p.Timeline.WriteTable(w)
		fmt.Fprintln(w)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
