package main

import (
	"errors"
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestParseArgsDefaults(t *testing.T) {
	opt, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	w := opt.w
	if w.DS != "list" || w.Threads != 16 || w.UpdatePct != 100 || w.KeyRange != 1000 ||
		w.OpsPerThread != 2000 || w.Seed != 1 || w.Dist != "uniform" {
		t.Errorf("unexpected defaults: %+v", w)
	}
	if !w.RecordLatency {
		t.Error("castat must always record latency percentiles")
	}
	want := []string{"none", "ca", "ibr", "rcu", "qsbr", "hp", "he"}
	if !reflect.DeepEqual(opt.schemes, want) {
		t.Errorf("schemes = %v, want %v", opt.schemes, want)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opt, err := parseArgs([]string{
		"-ds", "bst", "-schemes", " ca , rcu ,", "-threads", "8",
		"-updates", "10", "-ops", "500", "-range", "10000",
		"-dist", "zipf", "-seed", "7",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	w := opt.w
	if w.DS != "bst" || w.Threads != 8 || w.UpdatePct != 10 || w.KeyRange != 10000 ||
		w.OpsPerThread != 500 || w.Seed != 7 || w.Dist != "zipf" {
		t.Errorf("overrides not applied: %+v", w)
	}
	if !reflect.DeepEqual(opt.schemes, []string{"ca", "rcu"}) {
		t.Errorf("schemes = %v (whitespace and empties should be dropped)", opt.schemes)
	}
}

func TestParseArgsEmptySchemes(t *testing.T) {
	if _, err := parseArgs([]string{"-schemes", " , "}, io.Discard); err == nil {
		t.Fatal("empty scheme list accepted")
	}
}

func TestParseArgsBadFlagIsReported(t *testing.T) {
	var buf strings.Builder
	_, err := parseArgs([]string{"-threads", "x"}, &buf)
	if err == nil {
		t.Fatal("bad -threads accepted")
	}
	var rep reportedError
	if !errors.As(err, &rep) {
		t.Errorf("flag-package error not marked reported: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("flag package printed nothing to stderr")
	}
}

func TestParseArgsHelp(t *testing.T) {
	_, err := parseArgs([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestVersionFlag pins the shared -version contract: exit 0, one stdout
// line naming the tool and engine tag, nothing on stderr.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -version = %d (stderr %q)", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "castat ") || !strings.Contains(line, "engine ") {
		t.Errorf("version line = %q", line)
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr = %q, want empty", stderr.String())
	}
}
