// castat runs one workload per scheme and prints the microarchitectural
// detail behind the paper's Section V narrative: cache hit/miss rates,
// invalidations, remote forwards, Conditional Access activity (creads,
// failures, revocations), reclaimer behaviour (retired/freed/backlog), and
// per-operation latency percentiles.
//
// Example:
//
//	castat -ds list -threads 16 -updates 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"condaccess/internal/bench"
	"condaccess/internal/obs"
)

// options is the parsed command line: the workload template (Scheme is
// filled per run) and the scheme list to iterate.
type options struct {
	w       bench.Workload
	schemes []string
	obs     obs.CLIFlags
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

// parseArgs parses the flag set into a workload template plus scheme list.
// Split out of main for testability (same pattern as cmd/cabench).
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("castat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ds      = fs.String("ds", "list", "data structure: list, hmlist, bst, hash, stack, queue")
		schemes = fs.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = fs.Int("threads", 16, "threads")
		updates = fs.Int("updates", 100, "update percentage")
		ops     = fs.Int("ops", 2000, "operations per thread")
		keys    = fs.Uint64("range", 1000, "key range")
		dist    = fs.String("dist", "uniform", "key distribution: uniform or zipf")
		seed    = fs.Uint64("seed", 1, "RNG seed")
	)
	var ob obs.CLIFlags
	ob.Register(fs)
	if err := fs.Parse(args); err != nil {
		return options{}, reportedError{err}
	}
	var schemeList []string
	for _, scheme := range strings.Split(*schemes, ",") {
		if scheme = strings.TrimSpace(scheme); scheme != "" {
			schemeList = append(schemeList, scheme)
		}
	}
	if len(schemeList) == 0 {
		return options{}, errors.New("-schemes: no schemes given")
	}
	return options{
		w: bench.Workload{
			DS:      *ds,
			Threads: *threads, KeyRange: *keys, UpdatePct: *updates,
			OpsPerThread: *ops, Seed: *seed, Dist: *dist,
			RecordLatency: true,
		},
		schemes: schemeList,
		obs:     ob,
	}, nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its exit code and streams surfaced (the same contract as
// the other commands): every error path prints exactly one line to stderr
// and returns non-zero (2 for command-line errors, 1 for runtime failures).
func run(args []string, stdout, stderr io.Writer) int {
	opt, err := parseArgs(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(stderr, "castat:", err)
		}
		return 2
	}
	if opt.obs.Version {
		fmt.Fprintln(stdout, obs.VersionLine("castat", bench.EngineTag()))
		return 0
	}
	sess, err := opt.obs.Start(obs.SessionConfig{
		Tool: "castat", EngineTag: bench.EngineTag(), Args: args,
		Spec: opt.w, Stderr: stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "castat:", err)
		return 1
	}
	err = stat(opt, sess.Rec, stdout)
	if cerr := sess.Close(err); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "castat:", err)
		return 1
	}
	return 0
}

// stat runs one workload per scheme and prints the detail blocks.
// Observability (rec may be nil) is out-of-band.
func stat(opt options, rec *obs.Rec, stdout io.Writer) error {
	w := opt.w
	fmt.Fprintf(stdout, "%s, %d threads, %d%% updates, %d keys (%s), %d ops/thread\n\n",
		w.DS, w.Threads, w.UpdatePct, w.KeyRange, w.Dist, w.OpsPerThread)
	labels := make([]string, len(opt.schemes))
	for i, scheme := range opt.schemes {
		labels[i] = fmt.Sprintf("%s/%s t=%d u=%d", w.DS, scheme, w.Threads, w.UpdatePct)
	}
	base := rec.AddPoints(labels, 1)
	runner := bench.Runner{Obs: rec.Worker(0)}
	for i, scheme := range opt.schemes {
		w.Scheme = scheme
		rec.PointStart(base + i)
		res, err := runner.Run(w)
		if err != nil {
			runner.Obs.Abandon()
			return err
		}
		runner.Obs.Commit(base + i)
		rec.PointDone(base + i)
		c := res.Cache
		accesses := c.L1Hits + c.L1Misses
		fmt.Fprintf(stdout, "== %s: %.1f ops/Mcyc ==\n", scheme, res.Throughput)
		fmt.Fprintf(stdout, "  cache:   %d accesses, L1 hit %.2f%%, L2 miss %d, remote-fwd %d, invalidations %d, upgrades %d, L1 evictions %d\n",
			accesses, 100*float64(c.L1Hits)/float64(max(accesses, 1)),
			c.L2Misses, c.RemoteFwds, c.Invalidations, c.Upgrades, c.L1Evictions)
		if scheme == "ca" {
			a := res.CA
			fmt.Fprintf(stdout, "  ca:      %d creads (%d failed), %d cwrites (%d failed, %d untagged), %d revocations, max tagset %d\n",
				a.CReads, a.CReadFails, a.CWrites, a.CWriteFails, a.Untagged, a.Revocations, a.MaxTagSet)
		} else if scheme != "none" {
			s := res.SMR
			fmt.Fprintf(stdout, "  smr:     retired %d, freed %d, scans %d, max backlog %d\n",
				s.Retired, s.Freed, s.Scans, s.MaxBacklog)
		}
		fmt.Fprintf(stdout, "  memory:  live %d nodes, peak %d, heap high-water %d lines\n",
			res.Mem.NodeLive(), res.Mem.PeakLive, res.Mem.NodeAllocs-res.Mem.NodeFrees+res.Mem.InfraLines)
		l := res.Latency
		fmt.Fprintf(stdout, "  latency: p50 %d, p90 %d, p99 %d, p99.9 %d, max %d cycles (retries %d)\n\n",
			l.P50, l.P90, l.P99, l.P999, l.Max, res.Retries)
	}
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
