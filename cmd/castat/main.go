// castat runs one workload per scheme and prints the microarchitectural
// detail behind the paper's Section V narrative: cache hit/miss rates,
// invalidations, remote forwards, Conditional Access activity (creads,
// failures, revocations), reclaimer behaviour (retired/freed/backlog), and
// per-operation latency percentiles.
//
// Example:
//
//	castat -ds list -threads 16 -updates 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"condaccess/internal/bench"
)

func main() {
	var (
		ds      = flag.String("ds", "list", "data structure: list, hmlist, bst, hash, stack, queue")
		schemes = flag.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = flag.Int("threads", 16, "threads")
		updates = flag.Int("updates", 100, "update percentage")
		ops     = flag.Int("ops", 2000, "operations per thread")
		keys    = flag.Uint64("range", 1000, "key range")
		dist    = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		seed    = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()

	fmt.Printf("%s, %d threads, %d%% updates, %d keys (%s), %d ops/thread\n\n",
		*ds, *threads, *updates, *keys, *dist, *ops)
	for _, scheme := range strings.Split(*schemes, ",") {
		scheme = strings.TrimSpace(scheme)
		if scheme == "" {
			continue
		}
		res, err := bench.Run(bench.Workload{
			DS: *ds, Scheme: scheme,
			Threads: *threads, KeyRange: *keys, UpdatePct: *updates,
			OpsPerThread: *ops, Seed: *seed, Dist: *dist,
			RecordLatency: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "castat:", err)
			os.Exit(1)
		}
		c := res.Cache
		accesses := c.L1Hits + c.L1Misses
		fmt.Printf("== %s: %.1f ops/Mcyc ==\n", scheme, res.Throughput)
		fmt.Printf("  cache:   %d accesses, L1 hit %.2f%%, L2 miss %d, remote-fwd %d, invalidations %d, upgrades %d, L1 evictions %d\n",
			accesses, 100*float64(c.L1Hits)/float64(max(accesses, 1)),
			c.L2Misses, c.RemoteFwds, c.Invalidations, c.Upgrades, c.L1Evictions)
		if scheme == "ca" {
			a := res.CA
			fmt.Printf("  ca:      %d creads (%d failed), %d cwrites (%d failed, %d untagged), %d revocations, max tagset %d\n",
				a.CReads, a.CReadFails, a.CWrites, a.CWriteFails, a.Untagged, a.Revocations, a.MaxTagSet)
		} else if scheme != "none" {
			s := res.SMR
			fmt.Printf("  smr:     retired %d, freed %d, scans %d, max backlog %d\n",
				s.Retired, s.Freed, s.Scans, s.MaxBacklog)
		}
		fmt.Printf("  memory:  live %d nodes, peak %d, heap high-water %d lines\n",
			res.Mem.NodeLive(), res.Mem.PeakLive, res.Mem.NodeAllocs-res.Mem.NodeFrees+res.Mem.InfraLines)
		l := res.Latency
		fmt.Printf("  latency: p50 %d, p90 %d, p99 %d, p99.9 %d, max %d cycles (retries %d)\n\n",
			l.P50, l.P90, l.P99, l.P999, l.Max, res.Retries)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
