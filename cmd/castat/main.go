// castat runs one workload per scheme and prints the microarchitectural
// detail behind the paper's Section V narrative: cache hit/miss rates,
// invalidations, remote forwards, Conditional Access activity (creads,
// failures, revocations), reclaimer behaviour (retired/freed/backlog), and
// per-operation latency percentiles.
//
// Example:
//
//	castat -ds list -threads 16 -updates 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"condaccess/internal/bench"
)

// options is the parsed command line: the workload template (Scheme is
// filled per run) and the scheme list to iterate.
type options struct {
	w       bench.Workload
	schemes []string
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

// parseArgs parses the flag set into a workload template plus scheme list.
// Split out of main for testability (same pattern as cmd/cabench).
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("castat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ds      = fs.String("ds", "list", "data structure: list, hmlist, bst, hash, stack, queue")
		schemes = fs.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = fs.Int("threads", 16, "threads")
		updates = fs.Int("updates", 100, "update percentage")
		ops     = fs.Int("ops", 2000, "operations per thread")
		keys    = fs.Uint64("range", 1000, "key range")
		dist    = fs.String("dist", "uniform", "key distribution: uniform or zipf")
		seed    = fs.Uint64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return options{}, reportedError{err}
	}
	var schemeList []string
	for _, scheme := range strings.Split(*schemes, ",") {
		if scheme = strings.TrimSpace(scheme); scheme != "" {
			schemeList = append(schemeList, scheme)
		}
	}
	if len(schemeList) == 0 {
		return options{}, errors.New("-schemes: no schemes given")
	}
	return options{
		w: bench.Workload{
			DS:      *ds,
			Threads: *threads, KeyRange: *keys, UpdatePct: *updates,
			OpsPerThread: *ops, Seed: *seed, Dist: *dist,
			RecordLatency: true,
		},
		schemes: schemeList,
	}, nil
}

func main() {
	opt, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(os.Stderr, "castat:", err)
		}
		os.Exit(2)
	}
	w := opt.w
	fmt.Printf("%s, %d threads, %d%% updates, %d keys (%s), %d ops/thread\n\n",
		w.DS, w.Threads, w.UpdatePct, w.KeyRange, w.Dist, w.OpsPerThread)
	var runner bench.Runner
	for _, scheme := range opt.schemes {
		w.Scheme = scheme
		res, err := runner.Run(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "castat:", err)
			os.Exit(1)
		}
		c := res.Cache
		accesses := c.L1Hits + c.L1Misses
		fmt.Printf("== %s: %.1f ops/Mcyc ==\n", scheme, res.Throughput)
		fmt.Printf("  cache:   %d accesses, L1 hit %.2f%%, L2 miss %d, remote-fwd %d, invalidations %d, upgrades %d, L1 evictions %d\n",
			accesses, 100*float64(c.L1Hits)/float64(max(accesses, 1)),
			c.L2Misses, c.RemoteFwds, c.Invalidations, c.Upgrades, c.L1Evictions)
		if scheme == "ca" {
			a := res.CA
			fmt.Printf("  ca:      %d creads (%d failed), %d cwrites (%d failed, %d untagged), %d revocations, max tagset %d\n",
				a.CReads, a.CReadFails, a.CWrites, a.CWriteFails, a.Untagged, a.Revocations, a.MaxTagSet)
		} else if scheme != "none" {
			s := res.SMR
			fmt.Printf("  smr:     retired %d, freed %d, scans %d, max backlog %d\n",
				s.Retired, s.Freed, s.Scans, s.MaxBacklog)
		}
		fmt.Printf("  memory:  live %d nodes, peak %d, heap high-water %d lines\n",
			res.Mem.NodeLive(), res.Mem.PeakLive, res.Mem.NodeAllocs-res.Mem.NodeFrees+res.Mem.InfraLines)
		l := res.Latency
		fmt.Printf("  latency: p50 %d, p90 %d, p99 %d, p99.9 %d, max %d cycles (retries %d)\n\n",
			l.P50, l.P90, l.P99, l.P999, l.Max, res.Retries)
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
