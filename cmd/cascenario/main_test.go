package main

import (
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"condaccess/internal/scenario"
)

func TestParseArgsPreset(t *testing.T) {
	opt, err := parseArgs([]string{"-preset", "read-burst"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sw := opt.sw
	if sw.DS != "list" || sw.Threads != 8 || sw.KeyRange != 1000 || sw.Seed != 1 || sw.Dist != "uniform" {
		t.Errorf("unexpected defaults: %+v", sw)
	}
	if sw.Scenario.Name != scenario.PresetReadBurst || len(sw.Scenario.Phases) != 3 {
		t.Errorf("scenario not resolved: %+v", sw.Scenario)
	}
	if !reflect.DeepEqual(opt.schemes, []string{"ca", "rcu"}) {
		t.Errorf("schemes = %v", opt.schemes)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opt, err := parseArgs([]string{
		"-preset", "churn-drain", "-ds", "bst", "-schemes", " ca , hp ,",
		"-threads", "16", "-seed", "7", "-check", "-lat",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sw := opt.sw
	if sw.DS != "bst" || sw.Threads != 16 || sw.KeyRange != 10000 || sw.Seed != 7 {
		t.Errorf("overrides not applied: %+v", sw)
	}
	if !sw.Check || !sw.RecordLatency || !opt.lat {
		t.Error("-check/-lat not applied")
	}
	if !reflect.DeepEqual(opt.schemes, []string{"ca", "hp"}) {
		t.Errorf("schemes = %v (whitespace and empties should be dropped)", opt.schemes)
	}
}

func TestParseArgsFile(t *testing.T) {
	sc := scenario.Scenario{
		Name:   "custom",
		Phases: []scenario.Phase{{Name: "p", Ops: 10, Weights: scenario.Weights{Read: 1}}},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opt, err := parseArgs([]string{"-file", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.sw.Scenario.Name != "custom" {
		t.Errorf("scenario = %+v", opt.sw.Scenario)
	}
}

func TestParseArgsRejects(t *testing.T) {
	cases := map[string][]string{
		"no source":       nil,
		"both sources":    {"-preset", "read-burst", "-file", "x.json"},
		"unknown preset":  {"-preset", "nope"},
		"missing file":    {"-file", "/definitely/not/here.json"},
		"empty schemes":   {"-preset", "read-burst", "-schemes", " , "},
		"too few threads": {"-preset", "mixed-role", "-threads", "2"},
	}
	for name, args := range cases {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseArgsList(t *testing.T) {
	opt, err := parseArgs([]string{"-list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.list {
		t.Fatal("-list not honored")
	}
	var buf strings.Builder
	printPresets(&buf)
	for _, name := range scenario.PresetNames() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("preset listing missing %s", name)
		}
	}
}

func TestParseArgsBadFlagIsReported(t *testing.T) {
	var buf strings.Builder
	_, err := parseArgs([]string{"-threads", "x"}, &buf)
	if err == nil {
		t.Fatal("bad -threads accepted")
	}
	var rep reportedError
	if !errors.As(err, &rep) {
		t.Errorf("flag-package error not marked reported: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("flag package printed nothing to stderr")
	}
}

func TestParseArgsHelp(t *testing.T) {
	_, err := parseArgs([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestParseArgsStoreFlag(t *testing.T) {
	opt, err := parseArgs([]string{"-preset", "read-burst", "-store", "results/store"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.storePath != "results/store" {
		t.Errorf("storePath = %q, want results/store", opt.storePath)
	}
	opt, err = parseArgs([]string{"-preset", "read-burst"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.storePath != "" {
		t.Errorf("default storePath = %q, want empty", opt.storePath)
	}
}
