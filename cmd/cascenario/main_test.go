package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"condaccess/internal/bench"
	"condaccess/internal/scenario"
)

func TestParseArgsPreset(t *testing.T) {
	opt, err := parseArgs([]string{"-preset", "read-burst"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sw := opt.sw
	if sw.DS != "list" || sw.Threads != 8 || sw.KeyRange != 1000 || sw.Seed != 1 || sw.Dist != "uniform" {
		t.Errorf("unexpected defaults: %+v", sw)
	}
	if sw.Scenario.Name != scenario.PresetReadBurst || len(sw.Scenario.Phases) != 3 {
		t.Errorf("scenario not resolved: %+v", sw.Scenario)
	}
	if !reflect.DeepEqual(opt.schemes, []string{"ca", "rcu"}) {
		t.Errorf("schemes = %v", opt.schemes)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opt, err := parseArgs([]string{
		"-preset", "churn-drain", "-ds", "bst", "-schemes", " ca , hp ,",
		"-threads", "16", "-seed", "7", "-check", "-lat",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sw := opt.sw
	if sw.DS != "bst" || sw.Threads != 16 || sw.KeyRange != 10000 || sw.Seed != 7 {
		t.Errorf("overrides not applied: %+v", sw)
	}
	if !sw.Check || !sw.RecordLatency || !opt.lat {
		t.Error("-check/-lat not applied")
	}
	if !reflect.DeepEqual(opt.schemes, []string{"ca", "hp"}) {
		t.Errorf("schemes = %v (whitespace and empties should be dropped)", opt.schemes)
	}
}

func TestParseArgsFile(t *testing.T) {
	sc := scenario.Scenario{
		Name:   "custom",
		Phases: []scenario.Phase{{Name: "p", Ops: 10, Weights: scenario.Weights{Read: 1}}},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sc.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opt, err := parseArgs([]string{"-file", path}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.sw.Scenario.Name != "custom" {
		t.Errorf("scenario = %+v", opt.sw.Scenario)
	}
}

func TestParseArgsRejects(t *testing.T) {
	cases := map[string][]string{
		"no source":       nil,
		"both sources":    {"-preset", "read-burst", "-file", "x.json"},
		"unknown preset":  {"-preset", "nope"},
		"missing file":    {"-file", "/definitely/not/here.json"},
		"empty schemes":   {"-preset", "read-burst", "-schemes", " , "},
		"too few threads": {"-preset", "mixed-role", "-threads", "2"},
	}
	for name, args := range cases {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseArgsList(t *testing.T) {
	opt, err := parseArgs([]string{"-list"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.list {
		t.Fatal("-list not honored")
	}
	var buf strings.Builder
	printPresets(&buf)
	for _, name := range scenario.PresetNames() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("preset listing missing %s", name)
		}
	}
}

func TestParseArgsBadFlagIsReported(t *testing.T) {
	var buf strings.Builder
	_, err := parseArgs([]string{"-threads", "x"}, &buf)
	if err == nil {
		t.Fatal("bad -threads accepted")
	}
	var rep reportedError
	if !errors.As(err, &rep) {
		t.Errorf("flag-package error not marked reported: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("flag package printed nothing to stderr")
	}
}

func TestParseArgsHelp(t *testing.T) {
	_, err := parseArgs([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

func TestParseArgsStoreFlag(t *testing.T) {
	opt, err := parseArgs([]string{"-preset", "read-burst", "-store", "results/store"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.storePath != "results/store" {
		t.Errorf("storePath = %q, want results/store", opt.storePath)
	}
	opt, err = parseArgs([]string{"-preset", "read-burst"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.storePath != "" {
		t.Errorf("default storePath = %q, want empty", opt.storePath)
	}
}

func TestParseArgsTailFlag(t *testing.T) {
	opt, err := parseArgs([]string{"-preset", "churn-drain", "-tail"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.tail || !opt.sw.RecordTail {
		t.Error("-tail must enable tail reporting and tail recording")
	}
	if opt.lat || opt.sw.RecordLatency {
		t.Error("-tail alone must not enable the O(ops) exact-sort recording")
	}
}

func TestParseArgsTimelineAndTraceFlags(t *testing.T) {
	opt, err := parseArgs([]string{"-preset", "churn-drain", "-timeline", "-trace", "t.json"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.timeline || !opt.sw.RecordTimeline {
		t.Error("-timeline must enable timeline recording")
	}
	if opt.tracePath != "t.json" {
		t.Errorf("tracePath = %q, want t.json", opt.tracePath)
	}
	opt, err = parseArgs([]string{"-preset", "churn-drain", "-timeline-window", "8192"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.sw.TimelineWindow != 8192 {
		t.Errorf("TimelineWindow = %d, want 8192", opt.sw.TimelineWindow)
	}
	opt, err = parseArgs([]string{"-preset", "churn-drain"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.timeline || opt.sw.RecordTimeline || opt.tracePath != "" {
		t.Error("tracing and timelines must be off by default")
	}
}

// TestTailTableConsistency is the acceptance check for the -tail report:
// for every phase (and the total), the per-kind counts (insert+delete+read)
// and the per-attribution counts (useful+reclaim+retry) printed by the
// table must each sum to the phase's op count.
func TestTailTableConsistency(t *testing.T) {
	opt, err := parseArgs([]string{
		"-preset", "churn-drain", "-ds", "list", "-schemes", "rcu",
		"-threads", "4", "-range", "128", "-tail",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	sw := opt.sw
	sw.Scheme = opt.schemes[0]
	res, err := bench.RunScenario(sw)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	printTail(&buf, res)
	out := buf.String()

	// Parse every table: "-- tail latency [cycles]: <name> (<ops> ops) --"
	// followed by class rows whose second column is the count.
	var ops uint64
	counts := map[string]uint64{}
	checkTable := func(header string) {
		t.Helper()
		if kinds := counts["insert"] + counts["delete"] + counts["read"]; kinds != ops {
			t.Errorf("%s: kind counts sum to %d, ops are %d\n%s", header, kinds, ops, out)
		}
		if attrs := counts["useful"] + counts["reclaim"] + counts["retry"]; attrs != ops {
			t.Errorf("%s: attribution counts sum to %d, ops are %d\n%s", header, attrs, ops, out)
		}
		if counts["total"] != ops {
			t.Errorf("%s: total row count %d, ops are %d", header, counts["total"], ops)
		}
	}
	header := ""
	tables := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "-- tail latency") {
			if header != "" {
				checkTable(header)
			}
			header = line
			tables++
			counts = map[string]uint64{}
			if _, err := fmt.Sscanf(line[strings.Index(line, "(")+1:], "%d ops", &ops); err != nil {
				t.Fatalf("unparseable table header %q: %v", line, err)
			}
			continue
		}
		var name string
		var n uint64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &n); err == nil && name != "class" {
			counts[name] = n
		}
	}
	if header != "" {
		checkTable(header)
	}
	if want := len(res.Phases) + 1; tables != want {
		t.Fatalf("printed %d tail tables, want %d (per phase + total)", tables, want)
	}
	if res.Tail.Pause.Count() == 0 {
		t.Fatal("rcu churn-drain recorded no reclamation pauses; the attribution column is untested")
	}
}

// TestRunFailureModes pins the CLI error contract: every failure exits
// non-zero after exactly one line on stderr — no panic, no usage dump.
func TestRunFailureModes(t *testing.T) {
	plain := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"missing scenario file", []string{"-file", filepath.Join(t.TempDir(), "nope.json")}, 2},
		{"unreadable scenario file", []string{"-file", t.TempDir()}, 2},
		{"scenario file is not JSON", []string{"-file", plain}, 2},
		{"unopenable store", []string{"-preset", "read-burst", "-store", filepath.Join(plain, "store")}, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tc.args, code, tc.code, stderr.String())
			}
			if got := stderr.String(); strings.Count(got, "\n") != 1 {
				t.Errorf("stderr is not exactly one line:\n%s", got)
			} else if strings.Contains(got, "Usage") || !strings.HasPrefix(got, "cascenario: ") {
				t.Errorf("stderr is not a bare one-line diagnosis:\n%s", got)
			}
		})
	}
}

// TestFailedRunKeepsCompletedTrials pins the durability fix: a run that
// fails partway (unknown scheme after a completed one) must still flush the
// completed trial on Close, so a re-run of the good scheme is warm.
func TestFailedRunKeepsCompletedTrials(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	var out, errb strings.Builder
	code := run([]string{"-preset", "read-burst", "-schemes", "ca,bogus", "-threads", "2", "-store", store}, &out, &errb)
	if code != 1 {
		t.Fatalf("run with unknown scheme exited %d, want 1 (stderr %q)", code, errb.String())
	}
	if got := errb.String(); strings.Count(got, "\n") != 1 || !strings.HasPrefix(got, "cascenario: ") {
		t.Errorf("failure stderr is not exactly one cascenario line:\n%s", got)
	}
	var wout, werr strings.Builder
	if code := run([]string{"-preset", "read-burst", "-schemes", "ca", "-threads", "2", "-store", store}, &wout, &werr); code != 0 {
		t.Fatalf("warm re-run failed (%d): %s", code, werr.String())
	}
	if !strings.Contains(werr.String(), "store: 1 hits, 0 misses (100% warm)") {
		t.Errorf("completed trial was lost on failure:\n%s", werr.String())
	}
}

// TestVersionFlag pins the shared -version contract: exit 0, one stdout
// line naming the tool and engine tag, nothing on stderr.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -version = %d (stderr %q)", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "cascenario ") || !strings.Contains(line, "engine ") {
		t.Errorf("version line = %q", line)
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr = %q, want empty", stderr.String())
	}
}
