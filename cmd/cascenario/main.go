// cascenario runs phased, role-based, time-varying workload scenarios on
// the simulator and prints a per-phase breakdown: operations, the phase's
// simulated wall-clock window, throughput within the window, retries, cache
// miss rate, and live nodes at the phase boundary. Scenarios come from the
// built-in presets (-preset, -list) or a JSON file (-file); the binding
// (structure, schemes, threads, key range, seed) comes from flags.
//
// Examples:
//
//	cascenario -list                                   # show presets
//	cascenario -preset read-burst -ds list -schemes ca,rcu
//	cascenario -preset churn-drain -ds bst -threads 16 -lat
//	cascenario -preset mixed-role -ds hash -schemes ca,hp,ibr
//	cascenario -file myscenario.json -ds queue -schemes ca
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/obs"
	"condaccess/internal/scenario"
	"condaccess/internal/trace"
)

// options is the parsed command line.
type options struct {
	sw        bench.ScenarioWorkload
	schemes   []string
	storePath string
	lat       bool
	tail      bool
	timeline  bool
	tracePath string
	list      bool
	obs       obs.CLIFlags
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

// parseArgs parses the flag set into a scenario binding, applying the
// paper's per-structure key-range defaults. Split out of main for
// testability.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("cascenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		preset  = fs.String("preset", "", "built-in scenario name (see -list)")
		file    = fs.String("file", "", "load scenario from this JSON file")
		list    = fs.Bool("list", false, "print the built-in scenarios and exit")
		ds      = fs.String("ds", "list", "data structure: list, bst, hash, stack, queue, hmlist")
		schemes = fs.String("schemes", "ca,rcu", "comma-separated reclamation schemes")
		threads = fs.Int("threads", 8, "simulated threads")
		keys    = fs.Uint64("range", 0, "key range (default: paper's per-structure value)")
		buckets = fs.Int("buckets", 128, "hash table buckets")
		seed    = fs.Uint64("seed", 1, "base RNG seed")
		check   = fs.Bool("check", false, "enable use-after-free and Theorem 6/7 assertions")
		dist    = fs.String("dist", "uniform", "default key distribution for phases that name none")
		lat     = fs.Bool("lat", false, "also print per-phase latency percentiles")
		tail    = fs.Bool("tail", false, "print per-phase tail-latency tables: per-kind and per-attribution percentiles")
		tline   = fs.Bool("timeline", false, "record and print windowed sim-time metric timelines per phase")
		tlWin   = fs.Uint64("timeline-window", 0, "timeline window size in simulated cycles (0: default)")
		trPath  = fs.String("trace", "", "write a Chrome trace_event JSON file of every simulated trial")
		store   = fs.String("store", "", "content-addressed result store directory (warm trials skip simulation)")
	)
	var ob obs.CLIFlags
	ob.Register(fs)
	if err := fs.Parse(args); err != nil {
		return options{}, reportedError{err}
	}
	// -version and -list need no scenario; they win before the
	// one-of-preset/file/list requirement can reject the command line.
	if ob.Version {
		return options{obs: ob}, nil
	}
	if *list {
		return options{list: true}, nil
	}

	var sc scenario.Scenario
	var err error
	switch {
	case *preset != "" && *file != "":
		return options{}, errors.New("-preset and -file are mutually exclusive")
	case *preset != "":
		sc, err = scenario.Preset(*preset)
	case *file != "":
		sc, err = scenario.Load(*file)
	default:
		return options{}, errors.New("one of -preset, -file, or -list is required")
	}
	if err != nil {
		return options{}, err
	}

	kr := *keys
	if kr == 0 {
		kr = 1000 // paper: list, stack, hash use 1K keys
		if *ds == "bst" {
			kr = 10000 // paper: extbst uses 10K keys
		}
	}
	schemeList := splitList(*schemes)
	if len(schemeList) == 0 {
		return options{}, errors.New("-schemes: empty list")
	}
	if min := sc.MinThreads(); *threads < min {
		return options{}, fmt.Errorf("scenario %q needs at least %d threads (role table)", sc.Name, min)
	}
	return options{
		sw: bench.ScenarioWorkload{
			DS:       *ds,
			Threads:  *threads,
			KeyRange: kr, Buckets: *buckets,
			Seed: *seed, Check: *check, Dist: *dist,
			RecordLatency: *lat, RecordTail: *tail,
			RecordTimeline: *tline, TimelineWindow: *tlWin,
			Scenario: sc,
		},
		schemes:   schemeList,
		storePath: *store,
		lat:       *lat,
		tail:      *tail,
		timeline:  *tline,
		tracePath: *trPath,
		obs:       ob,
	}, nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its exit code and streams surfaced, so the failure modes
// (bad flags, unreadable scenario file, unopenable store) are pinned by
// tests: every error path prints exactly one line to stderr — never a panic,
// never a usage dump — and returns non-zero (2 for command-line errors, 1
// for runtime failures).
func run(args []string, stdout, stderr io.Writer) int {
	opt, err := parseArgs(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(stderr, "cascenario:", err)
		}
		return 2
	}
	if opt.obs.Version {
		fmt.Fprintln(stdout, obs.VersionLine("cascenario", bench.EngineTag()))
		return 0
	}
	if opt.list {
		printPresets(stdout)
		return 0
	}
	sess, err := opt.obs.Start(obs.SessionConfig{
		Tool: "cascenario", EngineTag: bench.EngineTag(), Args: args,
		Spec: struct {
			Schemes  []string
			Scenario bench.ScenarioWorkload
		}{opt.schemes, opt.sw},
		Stderr: stderr, StoreDir: opt.storePath,
		TraceOut: opt.tracePath, Timeline: opt.timeline,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cascenario:", err)
		return 1
	}
	err = runScenarios(opt, sess.Rec, stdout, stderr)
	if cerr := sess.Close(err); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "cascenario:", err)
		return 1
	}
	return 0
}

// runScenarios executes one scenario trial per scheme, each declared as one
// observability point (rec may be nil).
func runScenarios(opt options, rec *obs.Rec, stdout, stderr io.Writer) (err error) {
	var runner bench.Runner
	var store *lab.Store
	if opt.storePath != "" {
		st, oerr := lab.Open(opt.storePath)
		if oerr != nil {
			return oerr
		}
		store = st
		store.OnFlush = rec.StoreFlushed
		runner.Store = st
		// Close always runs — a failed run must not lose the batched segment
		// writes of the trials that did complete. First error wins; the
		// success-only stats line keeps the one-line failure contract.
		defer func() {
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			rec.SetStore(store.Stats().Rollup())
			if err == nil {
				fmt.Fprintln(stderr, store.Stats())
			}
		}()
	}
	runner.Obs = rec.Worker(0)
	var sink *trace.Sink
	if opt.tracePath != "" {
		sink = &trace.Sink{}
		runner.Trace = sink
	}
	base := 0
	if rec != nil {
		labels := make([]string, len(opt.schemes))
		for i, scheme := range opt.schemes {
			labels[i] = fmt.Sprintf("%s %s/%s t=%d", opt.sw.Scenario.Name, opt.sw.DS, scheme, opt.sw.Threads)
		}
		base = rec.AddPoints(labels, 1)
	}
	for i, scheme := range opt.schemes {
		rec.PointStart(base + i)
		sw := opt.sw
		sw.Scheme = scheme
		res, err := runner.RunScenario(sw)
		if err != nil {
			runner.Obs.Abandon()
			return err
		}
		runner.Obs.Commit(base + i)
		rec.PointDone(base + i)
		printResult(stdout, sw, res, opt.lat)
		if opt.tail {
			printTail(stdout, res)
		}
		if opt.timeline {
			printTimeline(stdout, res)
		}
	}
	if sink != nil {
		if err := sink.WriteFile(opt.tracePath); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "trace: %d events -> %s\n", sink.Len(), opt.tracePath)
	}
	return nil
}

// printPresets renders the built-in scenario catalog.
func printPresets(w io.Writer) {
	for _, name := range scenario.PresetNames() {
		sc, _ := scenario.Preset(name)
		fmt.Fprintf(w, "%s\n", name)
		for _, r := range sc.Roles {
			n := fmt.Sprintf("%d", r.Count)
			if r.Count == 0 {
				n = "rest"
			}
			fmt.Fprintf(w, "  role  %-12s x%-4s %s\n", r.Name, n, weightsString(r.Weights))
		}
		for _, ph := range sc.Phases {
			dur := fmt.Sprintf("%d ops", ph.Ops)
			if ph.Cycles > 0 {
				dur = fmt.Sprintf("%d cycles", ph.Cycles)
			}
			extra := ""
			if ph.Dist != "" {
				extra += " dist=" + ph.Dist
			}
			if ph.KeyShift != 0 {
				extra += fmt.Sprintf(" shift=%.2f", ph.KeyShift)
			}
			if ph.Profile.Kind != "" && ph.Profile.Kind != scenario.ProfileConstant {
				extra += " profile=" + ph.Profile.Kind
			}
			fmt.Fprintf(w, "  phase %-12s %-10s i%d/d%d/r%d%s\n",
				ph.Name, dur, ph.Weights.Insert, ph.Weights.Delete, ph.Weights.Read, extra)
		}
	}
}

func weightsString(w *scenario.Weights) string {
	if w == nil {
		return "(phase mix)"
	}
	return fmt.Sprintf("i%d/d%d/r%d", w.Insert, w.Delete, w.Read)
}

// printResult renders one scheme's per-phase table.
func printResult(w io.Writer, sw bench.ScenarioWorkload, res bench.ScenarioResult, lat bool) {
	fmt.Fprintf(w, "== scenario %s: %s/%s, t=%d, range %d, seed %d ==\n",
		res.ScenarioName, sw.DS, sw.Scheme, sw.Threads, sw.KeyRange, sw.Seed)
	fmt.Fprintf(w, "%-14s %8s %10s %10s %8s %7s %7s", "phase", "ops", "cycles", "ops/Mcyc", "retries", "l1miss", "live")
	if lat {
		fmt.Fprintf(w, " %7s %7s %8s", "p50", "p99", "max")
	}
	fmt.Fprintln(w)
	row := func(name string, seg bench.PhaseSegment, throughput string) {
		fmt.Fprintf(w, "%-14s %8d %10d %10s %8d %6.2f%% %7d",
			name, seg.Ops, seg.Cycles, throughput, seg.Retries, missPct(seg), seg.LiveNodes)
		if lat {
			fmt.Fprintf(w, " %7d %7d %8d", seg.Latency.P50, seg.Latency.P99, seg.Latency.Max)
		}
		fmt.Fprintln(w)
	}
	row("prefill", res.Prefill, "-")
	for _, seg := range res.Phases {
		row(seg.Name, seg, fmt.Sprintf("%.1f", seg.Throughput))
	}
	// Every total-row column covers the measured run only, like the phase
	// rows above it (the prefill's share has its own row).
	total := bench.PhaseSegment{
		Ops: res.Ops, Cycles: res.Cycles,
		Retries: res.Retries - res.Prefill.Retries,
		Cache:   res.MeasuredCache(), LiveNodes: res.Mem.NodeLive(),
		Latency: res.Latency,
	}
	row("total", total, fmt.Sprintf("%.1f", res.Throughput))
	fmt.Fprintln(w)
}

// printTail renders the tail-latency tables: one per phase plus the trial
// total. Each table partitions the window's ops twice — by op kind
// (insert+delete+read = ops) and by attribution (useful+reclaim+retry =
// ops) — and reports the reclamation-pause distribution on its own row
// (count = ops that absorbed a scan pass, not a partition).
func printTail(w io.Writer, res bench.ScenarioResult) {
	for _, seg := range res.Phases {
		fmt.Fprintf(w, "-- tail latency [cycles]: phase %s (%d ops) --\n%s", seg.Name, seg.Ops, seg.Tail)
	}
	fmt.Fprintf(w, "-- tail latency [cycles]: total (%d ops) --\n%s\n", res.Ops, res.Tail)
}

// printTimeline renders the windowed sim-time metrics tables: one per phase
// plus the trial total. All phases share the trial's measured cycle axis, so
// a later phase's table leads with the zero windows its predecessors filled.
func printTimeline(w io.Writer, res bench.ScenarioResult) {
	for _, seg := range res.Phases {
		if seg.Timeline == nil {
			continue
		}
		fmt.Fprintf(w, "-- timeline [per window]: phase %s (%d ops) --\n", seg.Name, seg.Ops)
		seg.Timeline.WriteTable(w)
	}
	if res.Timeline != nil {
		fmt.Fprintf(w, "-- timeline [per window]: total (%d ops) --\n", res.Ops)
		res.Timeline.WriteTable(w)
		fmt.Fprintln(w)
	}
}

// missPct is the segment's L1 miss rate in percent.
func missPct(seg bench.PhaseSegment) float64 {
	acc := seg.Cache.L1Hits + seg.Cache.L1Misses
	if acc == 0 {
		return 0
	}
	return 100 * float64(seg.Cache.L1Misses) / float64(acc)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
