package main

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseArgsDefaults(t *testing.T) {
	opt, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := opt.g
	if g.out != "results" || g.seed != 1 || g.check {
		t.Errorf("unexpected defaults: %+v", g)
	}
	if !reflect.DeepEqual(g.threads, []int{1, 2, 4, 8, 16, 32}) {
		t.Errorf("full-scale threads = %v", g.threads)
	}
	if g.ops != 3000 || g.trials != 3 || g.memOps != 5000 {
		t.Errorf("full scale = ops %d / trials %d / memOps %d, want 3000/3/5000", g.ops, g.trials, g.memOps)
	}
	if opt.fig != "all" || opt.storePath != "" {
		t.Errorf("fig/store defaults: %+v", opt)
	}
	if g.workers < 1 {
		t.Errorf("workers default %d", g.workers)
	}
}

func TestParseArgsQuickScale(t *testing.T) {
	opt, err := parseArgs([]string{"-quick"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := opt.g
	if !reflect.DeepEqual(g.threads, []int{1, 4, 16, 32}) {
		t.Errorf("quick threads = %v", g.threads)
	}
	if g.ops != 800 || g.trials != 1 || g.memOps != 2000 {
		t.Errorf("quick scale = ops %d / trials %d / memOps %d, want 800/1/2000", g.ops, g.trials, g.memOps)
	}
}

func TestParseArgsTrialsOverride(t *testing.T) {
	opt, err := parseArgs([]string{"-quick", "-trials", "5"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.g.trials != 5 {
		t.Errorf("-trials override lost: %d", opt.g.trials)
	}
}

func TestParseArgsFigAndStore(t *testing.T) {
	opt, err := parseArgs([]string{"-fig", "fig3mem", "-store", "results/store", "-out", "o", "-seed", "9"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if opt.fig != "fig3mem" || opt.storePath != "results/store" || opt.g.out != "o" || opt.g.seed != 9 {
		t.Errorf("overrides not applied: %+v", opt)
	}
}

func TestParseArgsUnknownFig(t *testing.T) {
	_, err := parseArgs([]string{"-fig", "fig9nope"}, io.Discard)
	if err == nil {
		t.Fatal("unknown -fig accepted (it used to silently run nothing)")
	}
	if !strings.Contains(err.Error(), "fig9nope") {
		t.Errorf("error %q does not name the bad figure", err)
	}
}

func TestParseArgsBadFlagIsReported(t *testing.T) {
	var buf strings.Builder
	_, err := parseArgs([]string{"-trials", "x"}, &buf)
	if err == nil {
		t.Fatal("bad -trials accepted")
	}
	var rep reportedError
	if !errors.As(err, &rep) {
		t.Errorf("flag-package error not marked reported: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("flag package printed nothing to stderr")
	}
}

func TestParseArgsHelp(t *testing.T) {
	_, err := parseArgs([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestFigOrderCoversJobs: every figure named in the run order must stay
// listed in the -fig validation set (figOrder is the single source).
func TestFigOrderCoversJobs(t *testing.T) {
	for _, name := range []string{"fig1list", "fig3mem", "tuning", "smt", "hmlist"} {
		if _, err := parseArgs([]string{"-fig", name}, io.Discard); err != nil {
			t.Errorf("-fig %s rejected: %v", name, err)
		}
	}
}

// TestRunFailureModes pins the CLI error contract: every failure exits
// non-zero after exactly one line on stderr — no panic, no usage dump.
func TestRunFailureModes(t *testing.T) {
	plain := filepath.Join(t.TempDir(), "plainfile")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		args []string
		code int
	}{
		{"unopenable store", []string{"-store", filepath.Join(plain, "store")}, 1},
		{"uncreatable output dir", []string{"-out", filepath.Join(plain, "results")}, 1},
		{"unknown figure", []string{"-fig", "nope"}, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tc.args, code, tc.code, stderr.String())
			}
			if got := stderr.String(); strings.Count(got, "\n") != 1 {
				t.Errorf("stderr is not exactly one line:\n%s", got)
			} else if strings.Contains(got, "Usage") || !strings.HasPrefix(got, "figures: ") {
				t.Errorf("stderr is not a bare one-line diagnosis:\n%s", got)
			}
		})
	}
}

// TestVersionFlag pins the shared -version contract: exit 0, one stdout
// line naming the tool and engine tag, nothing on stderr.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -version = %d (stderr %q)", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "figures ") || !strings.Contains(line, "engine ") {
		t.Errorf("version line = %q", line)
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr = %q, want empty", stderr.String())
	}
}
