// figures regenerates every table and figure of the paper's evaluation into
// a results directory, printing panel summaries as it goes:
//
//	fig1list  — lazy list throughput (Fig. 1 top): 0/10/100% updates, 1..32 threads
//	fig1bst   — external BST throughput (Fig. 1 bottom), 10K keys
//	fig2hash  — chaining hash table throughput (Fig. 2 top), 128 buckets
//	fig2stack — Treiber stack throughput (Fig. 2 bottom)
//	fig3mem   — allocated-not-freed trace (Fig. 3), 16 threads, 100% updates
//	assoc     — Section III ablation: L1 associativity vs CA spurious failures
//	tuning    — Section I/V ablation: baselines' reclaim/epoch frequency
//	            sensitivity vs CA's parameter-free operation
//	tail      — Section I tail-latency critique: per-op latency CDFs for CA
//	            vs batch-based reclamation, with pause attribution
//
// Use -quick for a reduced-scale pass (minutes instead of tens of minutes),
// and -store to cache trial results persistently: a re-run (after an
// interruption, or with more figures enabled) only simulates cells the
// store has not seen.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"time"

	"condaccess/internal/bench"
	"condaccess/internal/cache"
	"condaccess/internal/lab"
	"condaccess/internal/latency"
	"condaccess/internal/obs"
	"condaccess/internal/scenario"
	"condaccess/internal/smr"
)

var allSchemes = []string{"none", "ca", "ibr", "rcu", "qsbr", "hp", "he"}

// figOrder is the run order of the figure jobs; parseArgs validates -fig
// against it.
var figOrder = []string{"fig1list", "fig1bst", "fig2hash", "fig2stack", "fig3mem", "assoc", "tuning", "smt", "hmlist", "tail", "timeline"}

// options is the parsed command line: the fully-derived generator (scale
// already resolved from -quick and -trials) plus the figure selection.
type options struct {
	g         generator
	fig       string
	storePath string
	obs       obs.CLIFlags
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

// parseArgs parses the flag set and resolves the experiment scale. Split
// out of main for testability.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("out", "results", "output directory for CSV files")
		fig     = fs.String("fig", "all", "which figure: all, "+strings.Join(figOrder, ", "))
		quick   = fs.Bool("quick", false, "reduced scale: fewer threads/ops/trials")
		check   = fs.Bool("check", false, "enable safety assertions (slower)")
		seed    = fs.Uint64("seed", 1, "base seed")
		ntrial  = fs.Int("trials", 0, "override trials per point (0: 3 full / 1 quick)")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel trial workers (1: sequential)")
		store   = fs.String("store", "", "content-addressed result store directory (warm cells skip simulation)")
	)
	var ob obs.CLIFlags
	ob.Register(fs)
	if err := fs.Parse(args); err != nil {
		return options{}, reportedError{err}
	}
	if *fig != "all" && !slices.Contains(figOrder, *fig) {
		return options{}, fmt.Errorf("-fig %q: unknown figure (want all, %s)", *fig, strings.Join(figOrder, ", "))
	}

	threads := []int{1, 2, 4, 8, 16, 32}
	ops, trials, memOps := 3000, 3, 5000
	if *quick {
		threads = []int{1, 4, 16, 32}
		ops, trials, memOps = 800, 1, 2000
	}
	if *ntrial > 0 {
		trials = *ntrial
	}
	return options{
		g: generator{
			out: *out, check: *check, seed: *seed,
			threads: threads, ops: ops, trials: trials, memOps: memOps,
			workers: *workers,
		},
		fig:       *fig,
		storePath: *store,
		obs:       ob,
	}, nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its exit code and streams surfaced, so the failure modes
// (bad flags, unopenable store, uncreatable output directory) are pinned by
// tests: every error path prints exactly one line to stderr — never a
// panic, never a usage dump — and returns non-zero (2 for command-line
// errors, 1 for runtime failures). The figure jobs themselves stream their
// panel summaries to the process stdout.
func run(args []string, stdout, stderr io.Writer) int {
	opt, err := parseArgs(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(stderr, "figures:", err)
		}
		return 2
	}
	if opt.obs.Version {
		fmt.Fprintln(stdout, obs.VersionLine("figures", bench.EngineTag()))
		return 0
	}
	sess, err := opt.obs.Start(obs.SessionConfig{
		Tool: "figures", EngineTag: bench.EngineTag(), Args: args,
		Spec: struct {
			Fig     string `json:"fig"`
			Threads []int  `json:"threads"`
			Ops     int    `json:"ops"`
			Trials  int    `json:"trials"`
			MemOps  int    `json:"memOps"`
			Workers int    `json:"workers"`
			Seed    uint64 `json:"seed"`
			Check   bool   `json:"check"`
		}{opt.fig, opt.g.threads, opt.g.ops, opt.g.trials, opt.g.memOps, opt.g.workers, opt.g.seed, opt.g.check},
		Stderr: stderr, StoreDir: opt.storePath,
	})
	if err != nil {
		fmt.Fprintln(stderr, "figures:", err)
		return 1
	}
	err = figures(opt, sess.Rec, stdout, stderr)
	if cerr := sess.Close(err); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "figures:", err)
		return 1
	}
	return 0
}

// figures runs the selected figure jobs. Observability (rec may be nil) is
// out-of-band: stdout is byte-identical with or without it.
func figures(opt options, rec *obs.Rec, stdout, stderr io.Writer) (err error) {
	g := opt.g
	g.rec = rec
	var store *lab.Store
	if opt.storePath != "" {
		st, oerr := lab.Open(opt.storePath)
		if oerr != nil {
			return oerr
		}
		store = st
		store.OnFlush = rec.StoreFlushed
		g.store = store
		// Close always runs — a failed figure job must not lose the batched
		// segment writes of the trials that did complete. First error wins;
		// the success-only stats line keeps the one-line failure contract.
		defer func() {
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			rec.SetStore(store.Stats().Rollup())
			if err == nil {
				fmt.Fprintln(stderr, store.Stats())
			}
		}()
	}
	if err := os.MkdirAll(g.out, 0o755); err != nil {
		return err
	}

	jobs := map[string]func() error{
		"fig1list":  g.fig1list,
		"fig1bst":   g.fig1bst,
		"fig2hash":  g.fig2hash,
		"fig2stack": g.fig2stack,
		"fig3mem":   g.fig3mem,
		"assoc":     g.assoc,
		"tuning":    g.tuning,
		"smt":       g.smt,
		"hmlist":    g.hmlist,
		"tail":      g.tail,
		"timeline":  g.timeline,
	}
	for _, name := range figOrder {
		if opt.fig != "all" && opt.fig != name {
			continue
		}
		start := time.Now()
		fmt.Fprintf(stdout, "### %s\n", name)
		if err := jobs[name](); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "### %s done in %v\n\n", name, time.Since(start).Round(time.Second))
	}
	return nil
}

type generator struct {
	out     string
	check   bool
	seed    uint64
	threads []int
	ops     int
	trials  int
	memOps  int
	workers int
	store   bench.TrialStore
	rec     *obs.Rec // out-of-band instrumentation; nil disables recording
}

// runAt executes one standalone trial through the store (the ablations'
// point-by-point measurements are cacheable cells too), attributing its
// phase spans to manifest point pt.
func (g generator) runAt(pt int, w bench.Workload) (bench.Result, error) {
	r := bench.Runner{Store: g.store, Obs: g.rec.Worker(0)}
	g.rec.PointStart(pt)
	res, err := r.Run(w)
	if err != nil {
		r.Obs.Abandon()
		return res, err
	}
	r.Obs.Commit(pt)
	g.rec.PointDone(pt)
	return res, nil
}

func (g generator) sweepFig(name, ds string, keyRange uint64) error {
	cfg := bench.SweepConfig{
		DS: ds, Schemes: allSchemes, Threads: g.threads,
		Updates: []int{0, 10, 100}, KeyRange: keyRange,
		Ops: g.ops, Buckets: 128, Seed: g.seed, Check: g.check, Trials: g.trials,
		Workers: g.workers, Store: g.store, Obs: g.rec,
	}
	points, err := bench.Sweep(cfg, nil)
	if err != nil {
		return err
	}
	for _, u := range cfg.Updates {
		fmt.Printf("-- %s %d%% updates [ops/Mcyc] --\n%s", ds, u, bench.FormatTable(points, u))
	}
	f, err := os.Create(filepath.Join(g.out, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteCSV(f, ds, points)
}

func (g generator) fig1list() error  { return g.sweepFig("fig1_list", "list", 1000) }
func (g generator) fig1bst() error   { return g.sweepFig("fig1_bst", "bst", 10000) }
func (g generator) fig2hash() error  { return g.sweepFig("fig2_hash", "hash", 1000) }
func (g generator) fig2stack() error { return g.sweepFig("fig2_stack", "stack", 1000) }

func (g generator) fig3mem() error {
	f, err := os.Create(filepath.Join(g.out, "fig3_mem.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "scheme,ops,live_nodes")
	ws := make([]bench.Workload, len(allSchemes))
	for i, scheme := range allSchemes {
		ws[i] = bench.Workload{
			DS: "list", Scheme: scheme,
			Threads: 16, KeyRange: 1000, UpdatePct: 100,
			OpsPerThread: g.memOps, Seed: g.seed, Check: g.check,
			FootprintEvery: 1000,
		}
	}
	results, err := bench.RunManyObserved(ws, g.workers, g.store, g.rec)
	if err != nil {
		return err
	}
	for i, scheme := range allSchemes {
		res := results[i]
		last := res.Footprint[len(res.Footprint)-1]
		fmt.Printf("%-5s: final live %5d after %d ops (peak %d)\n",
			scheme, last.Live, last.AfterOps, res.Mem.PeakLive)
		for _, s := range res.Footprint {
			fmt.Fprintf(f, "%s,%d,%d\n", scheme, s.AfterOps, s.Live)
		}
	}
	return nil
}

// assoc reproduces the Section III claim that L1 associativity (the tagSet
// capacity bound) has no significant impact: spurious revocations from
// self-evictions stay negligible even at low associativity.
func (g generator) assoc() error {
	f, err := os.Create(filepath.Join(g.out, "ablation_assoc.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "l1_assoc,ops_per_mcyc,retries,self_evict_revocations,creads")
	threads := 16
	assocs := []int{2, 4, 8, 16}
	labels := make([]string, len(assocs))
	for i, assoc := range assocs {
		labels[i] = fmt.Sprintf("assoc a=%d", assoc)
	}
	base := g.rec.AddPoints(labels, 1)
	for i, assoc := range assocs {
		p := cache.DefaultParams(threads)
		p.L1Assoc = assoc
		res, err := g.runAt(base+i, bench.Workload{
			DS: "list", Scheme: "ca",
			Threads: threads, KeyRange: 1000, UpdatePct: 100,
			OpsPerThread: g.ops, Seed: g.seed, Check: g.check, Cache: p,
		})
		if err != nil {
			return err
		}
		fmt.Printf("assoc=%2d: %9.1f ops/Mcyc, retries %6d, revocations %6d (creads %d)\n",
			assoc, res.Throughput, res.Retries, res.CA.Revocations, res.CA.CReads)
		fmt.Fprintf(f, "%d,%.2f,%d,%d,%d\n", assoc, res.Throughput, res.Retries, res.CA.Revocations, res.CA.CReads)
	}
	return nil
}

// smt exercises the paper's Section III SMT integration: the same 16
// hardware threads run on 16 dedicated cores versus 8 cores with 2-way SMT.
// Hyperthread siblings revoke each other's tags on every write to a shared
// line, so CA retries more under SMT; the measurement quantifies the cost.
func (g generator) smt() error {
	f, err := os.Create(filepath.Join(g.out, "ablation_smt.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "threads_per_core,scheme,ops_per_mcyc,retries")
	schemes := []string{"ca", "rcu"}
	var labels []string
	for _, tpc := range []int{1, 2} {
		for _, scheme := range schemes {
			labels = append(labels, fmt.Sprintf("smt tpc=%d %s", tpc, scheme))
		}
	}
	base, pt := g.rec.AddPoints(labels, 1), 0
	for _, tpc := range []int{1, 2} {
		for _, scheme := range schemes {
			p := cache.DefaultParams(16)
			p.ThreadsPerCore = tpc
			res, err := g.runAt(base+pt, bench.Workload{
				DS: "list", Scheme: scheme,
				Threads: 16, KeyRange: 1000, UpdatePct: 100,
				OpsPerThread: g.ops, Seed: g.seed, Check: g.check, Cache: p,
			})
			if err != nil {
				return err
			}
			fmt.Printf("smt=%d %-4s: %9.1f ops/Mcyc, retries %d\n", tpc, scheme, res.Throughput, res.Retries)
			fmt.Fprintf(f, "%d,%s,%.2f,%d\n", tpc, scheme, res.Throughput, res.Retries)
			pt++
		}
	}
	return nil
}

// hmlist measures the future-work extension: the Harris-Michael lock-free
// list under Conditional Access versus the reclamation baselines.
func (g generator) hmlist() error {
	cfg := bench.SweepConfig{
		DS: "hmlist", Schemes: allSchemes, Threads: g.threads,
		Updates: []int{0, 100}, KeyRange: 1000,
		Ops: g.ops, Seed: g.seed, Check: g.check, Trials: g.trials,
		Workers: g.workers, Store: g.store, Obs: g.rec,
	}
	points, err := bench.Sweep(cfg, nil)
	if err != nil {
		return err
	}
	for _, u := range cfg.Updates {
		fmt.Printf("-- hmlist %d%% updates [ops/Mcyc] --\n%s", u, bench.FormatTable(points, u))
	}
	f, err := os.Create(filepath.Join(g.out, "ext_hmlist.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return bench.WriteCSV(f, "hmlist", points)
}

// tail reproduces the paper's Section I tail-latency critique with the
// streaming histogram pipeline: the lazy list under 100% updates for CA
// (frees one node inline) versus epoch-based reclamation at the paper's
// default batch and at a throughput-chasing large batch. The CSV holds one
// latency CDF per configuration, read straight off the log-bucketed
// histogram (cycles = bucket upper edge, cdf = cumulative sample fraction),
// plus the reclamation-pause CDF — the "long program interruptions"
// themselves, which the attribution split isolates from contention retries.
func (g generator) tail() error {
	f, err := os.Create(filepath.Join(g.out, "fig_tail_cdf.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "config,series,cycles,cdf")
	configs := []struct {
		name string
		w    bench.Workload
	}{
		{"ca", bench.Workload{Scheme: "ca"}},
		{"rcu_batch30", bench.Workload{Scheme: "rcu", SMR: smr.Options{ReclaimEvery: 30}}},
		{"rcu_batch400", bench.Workload{Scheme: "rcu", SMR: smr.Options{ReclaimEvery: 400}}},
	}
	labels := make([]string, len(configs))
	for i, tc := range configs {
		labels[i] = "tail " + tc.name
	}
	base := g.rec.AddPoints(labels, 1)
	for i, tc := range configs {
		w := tc.w
		w.DS = "list"
		w.Threads = 8
		w.KeyRange = 1000
		w.UpdatePct = 100
		w.OpsPerThread = g.ops
		w.Seed = g.seed
		w.Check = g.check
		w.RecordTail = true
		res, err := g.runAt(base+i, w)
		if err != nil {
			return err
		}
		t := res.Tail
		series := []struct {
			name string
			h    *latency.Hist
		}{{"op", &t.Total}, {"pause", &t.Pause}}
		for _, sr := range series {
			h := sr.h
			total := h.Count()
			if total == 0 {
				continue // ca records no pauses
			}
			cum := uint64(0)
			for _, b := range h.Buckets() {
				cum += b.Count
				fmt.Fprintf(f, "%s,%s,%d,%.6f\n", tc.name, sr.name, b.Hi, float64(cum)/float64(total))
			}
		}
		s := t.Total.Summary()
		fmt.Printf("%-12s: p50 %5d  p99 %5d  p99.9 %5d  max %5d  | reclaim-tagged %d/%d ops, pause p99 %d\n",
			tc.name, s.P50, s.P99, s.P999, s.Max,
			t.Reclaim.Count(), t.Total.Count(), t.Pause.Quantile(0.99))
	}
	return nil
}

// timeline renders the pause-storm picture behind the Section I critique as
// a windowed sim-time series: the churn-drain scenario (100% updates with a
// think-time swing) for CA versus epoch-based reclamation at the paper's
// default batch and at a throughput-chasing large batch. Each CSV row is one
// fixed cycle window of one configuration — ops by kind, retries, and the
// cycles the window's ops spent inside reclamation pauses — so the batching
// schemes' periodic pause spikes line up against CA's flat zero-pause line
// on a shared simulated-time axis.
func (g generator) timeline() error {
	f, err := os.Create(filepath.Join(g.out, "fig_timeline.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "config,window_start,window_end,ops,insert,delete,read,retries,pause_cycles")
	sc, err := scenario.Preset(scenario.PresetChurnDrain)
	if err != nil {
		return err
	}
	configs := []struct {
		name   string
		scheme string
		smr    smr.Options
	}{
		{"ca", "ca", smr.Options{}},
		{"rcu_batch30", "rcu", smr.Options{ReclaimEvery: 30}},
		{"rcu_batch400", "rcu", smr.Options{ReclaimEvery: 400}},
	}
	labels := make([]string, len(configs))
	for i, tc := range configs {
		labels[i] = "timeline " + tc.name
	}
	base := g.rec.AddPoints(labels, 1)
	r := bench.Runner{Store: g.store, Obs: g.rec.Worker(0)}
	for i, tc := range configs {
		sw := bench.ScenarioWorkload{
			DS: "list", Scheme: tc.scheme,
			Threads: 8, KeyRange: 1000,
			Seed: g.seed, Check: g.check, SMR: tc.smr,
			RecordTimeline: true,
			Scenario:       sc,
		}
		g.rec.PointStart(base + i)
		res, err := r.RunScenario(sw)
		if err != nil {
			r.Obs.Abandon()
			return err
		}
		r.Obs.Commit(base + i)
		g.rec.PointDone(base + i)
		tl := res.Timeline
		var peak, pauseSum uint64
		for _, row := range tl.Rows() {
			ops := row.Ops()
			if ops > peak {
				peak = ops
			}
			pauseSum += row.Pause
			fmt.Fprintf(f, "%s,%d,%d,%d,%d,%d,%d,%d,%d\n",
				tc.name, row.Start, row.End, ops, row.Insert, row.Delete, row.Read, row.Retries, row.Pause)
		}
		fmt.Printf("%-12s: %3d windows of %d kcycles, peak %4d ops/window, pause cycles %d\n",
			tc.name, len(tl.Rows()), tl.Window/1000, peak, pauseSum)
	}
	return nil
}

// tuning reproduces the paper's motivation: the baselines' throughput and
// footprint depend on the reclamation and epoch frequencies the programmer
// must pick, while CA has no parameters at all.
func (g generator) tuning() error {
	f, err := os.Create(filepath.Join(g.out, "ablation_tuning.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "scheme,reclaim_every,epoch_every,ops_per_mcyc,live_nodes,peak_live")
	threads := 16
	type cfg struct{ reclaim, epoch int }
	grid := []cfg{{1, 10}, {10, 50}, {30, 150}, {100, 500}, {1000, 5000}}
	schemes := []string{"rcu", "ibr", "hp", "ca"}
	var labels []string
	for _, scheme := range schemes {
		for _, tc := range grid {
			labels = append(labels, fmt.Sprintf("tuning %s r%d/e%d", scheme, tc.reclaim, tc.epoch))
			if scheme == "ca" {
				break
			}
		}
	}
	base, pt := g.rec.AddPoints(labels, 1), 0
	for _, scheme := range schemes {
		row := []string{}
		for _, tc := range grid {
			w := bench.Workload{
				DS: "list", Scheme: scheme,
				Threads: threads, KeyRange: 1000, UpdatePct: 100,
				OpsPerThread: g.ops, Seed: g.seed, Check: g.check,
				SMR: smr.Options{ReclaimEvery: tc.reclaim, EpochEvery: tc.epoch},
			}
			res, err := g.runAt(base+pt, w)
			if err != nil {
				return err
			}
			fmt.Fprintf(f, "%s,%d,%d,%.2f,%d,%d\n",
				scheme, tc.reclaim, tc.epoch, res.Throughput, res.Mem.NodeLive(), res.Mem.PeakLive)
			row = append(row, fmt.Sprintf("r%d/e%d: %.0f ops/Mcyc peak %d",
				tc.reclaim, tc.epoch, res.Throughput, res.Mem.PeakLive))
			pt++
			if scheme == "ca" {
				break // CA has no parameters; one point suffices
			}
		}
		fmt.Printf("%-4s %s\n", scheme, strings.Join(row, " | "))
	}
	return nil
}
