// camem regenerates the paper's Figure 3: the number of nodes allocated but
// not yet freed, sampled as a lazy list runs a 100% update workload. The
// paper's configuration is the default: key range 1000 (list size ~500), 16
// threads, 5000 operations per thread, sampled every 1000 operations.
//
// Expected shape: ca stays flat at the live list size (~500); hp/he/ibr
// plateau at their reclamation thresholds; rcu/qsbr ride higher; none grows
// without bound.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/obs"
)

// options is the parsed command line: one Workload per scheme plus the
// output and execution knobs.
type options struct {
	ws        []bench.Workload
	schemes   []string
	csvPath   string
	storePath string
	workers   int
	obs       obs.CLIFlags
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

// parseArgs parses the flag set into per-scheme workloads. Split out of
// main for testability.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("camem", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemes = fs.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = fs.Int("threads", 16, "threads (paper: 16)")
		keys    = fs.Uint64("range", 1000, "key range (paper: 1000)")
		ops     = fs.Int("ops", 5000, "operations per thread (paper: 5000)")
		every   = fs.Int("sample", 1000, "sample footprint every N total ops (paper: 1000)")
		seed    = fs.Uint64("seed", 1, "RNG seed")
		check   = fs.Bool("check", false, "enable safety assertions")
		csvPath = fs.String("csv", "", "also write CSV to this file")
		store   = fs.String("store", "", "content-addressed result store directory (warm schemes skip simulation)")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel scheme workers (1: sequential)")
	)
	var ob obs.CLIFlags
	ob.Register(fs)
	if err := fs.Parse(args); err != nil {
		return options{}, reportedError{err}
	}

	var names []string
	for _, scheme := range strings.Split(*schemes, ",") {
		if scheme = strings.TrimSpace(scheme); scheme != "" {
			names = append(names, scheme)
		}
	}
	if len(names) == 0 {
		return options{}, errors.New("-schemes: empty list")
	}
	ws := make([]bench.Workload, len(names))
	for i, scheme := range names {
		ws[i] = bench.Workload{
			DS: "list", Scheme: scheme,
			Threads: *threads, KeyRange: *keys, UpdatePct: 100,
			OpsPerThread: *ops, Seed: *seed, Check: *check,
			FootprintEvery: *every,
		}
	}
	return options{
		ws: ws, schemes: names,
		csvPath: *csvPath, storePath: *store, workers: *workers,
		obs: ob,
	}, nil
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main with its exit code and streams surfaced (the same contract as
// the other commands): every error path prints exactly one line to stderr
// and returns non-zero (2 for command-line errors, 1 for runtime failures).
func run(args []string, stdout, stderr io.Writer) int {
	opt, err := parseArgs(args, stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(stderr, "camem:", err)
		}
		return 2
	}
	if opt.obs.Version {
		fmt.Fprintln(stdout, obs.VersionLine("camem", bench.EngineTag()))
		return 0
	}
	sess, err := opt.obs.Start(obs.SessionConfig{
		Tool: "camem", EngineTag: bench.EngineTag(), Args: args,
		Spec: opt.ws, Stderr: stderr, StoreDir: opt.storePath,
	})
	if err != nil {
		fmt.Fprintln(stderr, "camem:", err)
		return 1
	}
	err = footprint(opt, sess.Rec, stdout, stderr)
	if cerr := sess.Close(err); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "camem:", err)
		return 1
	}
	return 0
}

// footprint runs the per-scheme workloads and renders the Figure 3 table
// (and CSV). Observability (rec may be nil) is out-of-band.
func footprint(opt options, rec *obs.Rec, stdout, stderr io.Writer) (err error) {
	var store *lab.Store
	var trialStore bench.TrialStore // typed nil must stay an untyped nil interface
	if opt.storePath != "" {
		st, oerr := lab.Open(opt.storePath)
		if oerr != nil {
			return oerr
		}
		store = st
		store.OnFlush = rec.StoreFlushed
		trialStore = store
		// Close always runs — a failed run must not lose the batched segment
		// writes of the trials that did complete. First error wins; the
		// success-only stats line keeps the one-line failure contract.
		defer func() {
			if cerr := store.Close(); err == nil {
				err = cerr
			}
			rec.SetStore(store.Stats().Rollup())
			if err == nil {
				fmt.Fprintln(stderr, store.Stats())
			}
		}()
	}
	results, err := bench.RunManyObserved(opt.ws, opt.workers, trialStore, rec)
	if err != nil {
		return err
	}
	names := opt.schemes
	series := map[string]map[int]uint64{}
	allOps := map[int]bool{}
	for i, scheme := range names {
		series[scheme] = map[int]uint64{}
		for _, s := range results[i].Footprint {
			series[scheme][s.AfterOps] = s.Live
			allOps[s.AfterOps] = true
		}
	}

	var xs []int
	for x := range allOps {
		xs = append(xs, x)
	}
	sort.Ints(xs)

	var out strings.Builder
	fmt.Fprintf(&out, "%-10s", "ops")
	for _, n := range names {
		fmt.Fprintf(&out, " %8s", n)
	}
	out.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&out, "%-10d", x)
		for _, n := range names {
			fmt.Fprintf(&out, " %8d", series[n][x])
		}
		out.WriteByte('\n')
	}
	fmt.Fprintf(stdout, "Figure 3: allocated-but-not-freed nodes, lazy list, %d threads, 100%% updates\n", opt.ws[0].Threads)
	fmt.Fprint(stdout, out.String())

	if opt.csvPath != "" {
		f, err := os.Create(opt.csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintln(f, "ops,"+strings.Join(names, ","))
		for _, x := range xs {
			row := make([]string, 0, len(names)+1)
			row = append(row, fmt.Sprint(x))
			for _, n := range names {
				row = append(row, fmt.Sprint(series[n][x]))
			}
			fmt.Fprintln(f, strings.Join(row, ","))
		}
	}
	return nil
}
