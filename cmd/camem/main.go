// camem regenerates the paper's Figure 3: the number of nodes allocated but
// not yet freed, sampled as a lazy list runs a 100% update workload. The
// paper's configuration is the default: key range 1000 (list size ~500), 16
// threads, 5000 operations per thread, sampled every 1000 operations.
//
// Expected shape: ca stays flat at the live list size (~500); hp/he/ibr
// plateau at their reclamation thresholds; rcu/qsbr ride higher; none grows
// without bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"condaccess/internal/bench"
)

func main() {
	var (
		schemes = flag.String("schemes", "none,ca,ibr,rcu,qsbr,hp,he", "comma-separated schemes")
		threads = flag.Int("threads", 16, "threads (paper: 16)")
		keys    = flag.Uint64("range", 1000, "key range (paper: 1000)")
		ops     = flag.Int("ops", 5000, "operations per thread (paper: 5000)")
		every   = flag.Int("sample", 1000, "sample footprint every N total ops (paper: 1000)")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		check   = flag.Bool("check", false, "enable safety assertions")
		csvPath = flag.String("csv", "", "also write CSV to this file")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel scheme workers (1: sequential)")
	)
	flag.Parse()

	names := []string{}
	for _, scheme := range strings.Split(*schemes, ",") {
		if scheme = strings.TrimSpace(scheme); scheme != "" {
			names = append(names, scheme)
		}
	}
	ws := make([]bench.Workload, len(names))
	for i, scheme := range names {
		ws[i] = bench.Workload{
			DS: "list", Scheme: scheme,
			Threads: *threads, KeyRange: *keys, UpdatePct: 100,
			OpsPerThread: *ops, Seed: *seed, Check: *check,
			FootprintEvery: *every,
		}
	}
	results, err := bench.RunMany(ws, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "camem:", err)
		os.Exit(1)
	}
	series := map[string]map[int]uint64{}
	allOps := map[int]bool{}
	for i, scheme := range names {
		series[scheme] = map[int]uint64{}
		for _, s := range results[i].Footprint {
			series[scheme][s.AfterOps] = s.Live
			allOps[s.AfterOps] = true
		}
	}

	var xs []int
	for x := range allOps {
		xs = append(xs, x)
	}
	sort.Ints(xs)

	var out strings.Builder
	fmt.Fprintf(&out, "%-10s", "ops")
	for _, n := range names {
		fmt.Fprintf(&out, " %8s", n)
	}
	out.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&out, "%-10d", x)
		for _, n := range names {
			fmt.Fprintf(&out, " %8d", series[n][x])
		}
		out.WriteByte('\n')
	}
	fmt.Printf("Figure 3: allocated-but-not-freed nodes, lazy list, %d threads, 100%% updates\n", *threads)
	fmt.Print(out.String())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "camem:", err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, "ops,"+strings.Join(names, ","))
		for _, x := range xs {
			row := make([]string, 0, len(names)+1)
			row = append(row, fmt.Sprint(x))
			for _, n := range names {
				row = append(row, fmt.Sprint(series[n][x]))
			}
			fmt.Fprintln(f, strings.Join(row, ","))
		}
	}
}
