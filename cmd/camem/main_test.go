package main

import (
	"errors"
	"flag"
	"io"
	"strings"
	"testing"
)

func TestParseArgsDefaults(t *testing.T) {
	opt, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.ws) != 7 || len(opt.schemes) != 7 {
		t.Fatalf("default scheme count = %d workloads / %d names, want 7", len(opt.ws), len(opt.schemes))
	}
	w := opt.ws[1]
	if opt.schemes[1] != "ca" || w.Scheme != "ca" {
		t.Errorf("scheme order broken: %v", opt.schemes)
	}
	if w.DS != "list" || w.Threads != 16 || w.KeyRange != 1000 || w.UpdatePct != 100 ||
		w.OpsPerThread != 5000 || w.FootprintEvery != 1000 || w.Seed != 1 {
		t.Errorf("paper defaults wrong: %+v", w)
	}
	if opt.csvPath != "" || opt.storePath != "" {
		t.Errorf("csv/store defaults: %+v", opt)
	}
	if opt.workers < 1 {
		t.Errorf("workers default %d", opt.workers)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opt, err := parseArgs([]string{
		"-schemes", " ca , rcu ,", "-threads", "4", "-range", "64",
		"-ops", "200", "-sample", "50", "-seed", "3", "-check",
		"-csv", "out.csv", "-store", "results/store", "-workers", "2",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.ws) != 2 || opt.schemes[0] != "ca" || opt.schemes[1] != "rcu" {
		t.Errorf("schemes = %v (whitespace and empties should be dropped)", opt.schemes)
	}
	w := opt.ws[0]
	if w.Threads != 4 || w.KeyRange != 64 || w.OpsPerThread != 200 ||
		w.FootprintEvery != 50 || w.Seed != 3 || !w.Check {
		t.Errorf("overrides not applied: %+v", w)
	}
	if opt.csvPath != "out.csv" || opt.storePath != "results/store" || opt.workers != 2 {
		t.Errorf("output/store/workers: %+v", opt)
	}
}

func TestParseArgsEmptySchemes(t *testing.T) {
	if _, err := parseArgs([]string{"-schemes", " , "}, io.Discard); err == nil {
		t.Fatal("empty scheme list accepted")
	}
}

func TestParseArgsBadFlagIsReported(t *testing.T) {
	var buf strings.Builder
	_, err := parseArgs([]string{"-ops", "many"}, &buf)
	if err == nil {
		t.Fatal("bad -ops accepted")
	}
	var rep reportedError
	if !errors.As(err, &rep) {
		t.Errorf("flag-package error not marked reported: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("flag package printed nothing to stderr")
	}
}

func TestParseArgsHelp(t *testing.T) {
	_, err := parseArgs([]string{"-h"}, io.Discard)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// TestVersionFlag pins the shared -version contract: exit 0, one stdout
// line naming the tool and engine tag, nothing on stderr.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run -version = %d (stderr %q)", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "camem ") || !strings.Contains(line, "engine ") {
		t.Errorf("version line = %q", line)
	}
	if stderr.Len() != 0 {
		t.Errorf("stderr = %q, want empty", stderr.String())
	}
}
