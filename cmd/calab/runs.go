// The runs subcommand reads the manifests the obs package writes: every
// instrumented cabench/cascenario/camem/castat/figures invocation drops a
// JSON run record (under <store>/runs by default), and calab is the reader —
// list an archive of runs, inspect one, or A/B two runs' timing rollups.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"condaccess/internal/obs"
)

// runs dispatches the three modes: -run inspects one manifest, -a/-b diff
// two, and plain -store lists the archive.
func runs(opt options, out io.Writer) error {
	switch {
	case opt.runID != "":
		path, err := resolveManifest(opt.runID, opt.store)
		if err != nil {
			return err
		}
		m, err := obs.ReadManifest(path)
		if err != nil {
			return err
		}
		printManifest(out, m)
		return nil
	case opt.a != "":
		return diffRuns(opt.a, opt.b, opt.store, out)
	default:
		return listRuns(opt.store, out)
	}
}

// resolveManifest maps a -run/-a/-b argument to a manifest path: anything
// that looks like a file (a path separator, a .json suffix, or an existing
// file) is used directly; otherwise it is a run id resolved in storeDir's
// runs/ directory.
func resolveManifest(arg, storeDir string) (string, error) {
	if strings.ContainsRune(arg, os.PathSeparator) || strings.HasSuffix(arg, ".json") {
		return arg, nil
	}
	if _, err := os.Stat(arg); err == nil {
		return arg, nil
	}
	if storeDir == "" {
		return "", fmt.Errorf("run id %q needs -store to resolve (or pass a manifest path)", arg)
	}
	return obs.ManifestPath(obs.RunsDir(storeDir), arg), nil
}

func listRuns(storeDir string, out io.Writer) error {
	dir := obs.RunsDir(storeDir)
	ms, err := obs.ListRuns(dir)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		fmt.Fprintf(out, "no runs in %s\n", dir)
		return nil
	}
	fmt.Fprintf(out, "%-36s %-10s %-20s %10s %11s %5s\n",
		"run", "tool", "start", "wall", "trials", "warm")
	for _, m := range ms {
		mark := ""
		if m.Error != "" {
			mark = " !" // failed run; inspect it for the error
		}
		fmt.Fprintf(out, "%-36s %-10s %-20s %10s %5d/%-5d %4.0f%%%s\n",
			m.RunID, m.Tool, m.Start.UTC().Format("2006-01-02T15:04:05Z"),
			dur(m.WallNanos), m.TrialsDone, m.TrialsPlanned,
			pct(m.WarmHits, m.TrialsDone), mark)
	}
	return nil
}

// printManifest renders one run's full record in the inspect layout.
func printManifest(out io.Writer, m obs.Manifest) {
	fmt.Fprintf(out, "run %s\n", m.RunID)
	fmt.Fprintf(out, "  tool %s %s engine %s\n", m.Tool, m.Version, m.EngineTag)
	fmt.Fprintf(out, "  start %s, wall %s\n", m.Start.UTC().Format(time.RFC3339), dur(m.WallNanos))
	fmt.Fprintf(out, "  host %s %s/%s, %d cpus (gomaxprocs %d)\n",
		m.Host.Go, m.Host.OS, m.Host.Arch, m.Host.CPUs, m.Host.GOMAXPROCS)
	if len(m.Args) > 0 {
		fmt.Fprintf(out, "  args %s\n", strings.Join(m.Args, " "))
	}
	if m.Error != "" {
		fmt.Fprintf(out, "  error %s\n", m.Error)
	}
	fmt.Fprintf(out, "  trials %d/%d, %d warm (%.0f%%)\n",
		m.TrialsDone, m.TrialsPlanned, m.WarmHits, pct(m.WarmHits, m.TrialsDone))
	fmt.Fprintf(out, "  spans prepare %s, lookup %s, simulate %s, store %s\n",
		dur(m.PrepareNanos), dur(m.LookupNanos), dur(m.SimulateNanos), dur(m.StoreNanos))
	if s := m.Store; s != nil {
		fmt.Fprintf(out, "  store %d hits, %d misses, %d puts, %d flushes (%d B), flush %s, fsync %s, index load %s\n",
			s.Hits, s.Misses, s.Puts, s.Flushes, s.BytesWritten,
			dur(s.FlushNanos), dur(s.FsyncNanos), dur(s.IndexLoadNanos))
	}
	if len(m.Shards) > 0 {
		fmt.Fprintln(out, "  shards:")
		for _, s := range m.Shards {
			fmt.Fprintf(out, "    s%-3d trials %5d, warm %5d, wall %s, simulate %s (run %s)",
				s.Shard, s.Trials, s.Warm, dur(s.WallNanos), dur(s.SimulateNanos), s.RunID)
			if s.Error != "" {
				fmt.Fprintf(out, " error %s", s.Error)
			}
			fmt.Fprintln(out)
		}
	}
	if len(m.Workers) > 0 {
		fmt.Fprintln(out, "  workers:")
		for _, w := range m.Workers {
			fmt.Fprintf(out, "    w%-3d trials %5d, warm %5d, simulate %s, lookup %s\n",
				w.Worker, w.Trials, w.Warm, dur(w.SimulateNanos), dur(w.LookupNanos))
		}
	}
	if len(m.Points) > 0 {
		fmt.Fprintln(out, "  points:")
		for _, p := range m.Points {
			fmt.Fprintf(out, "    %-28s trials %5d, warm %5d, simulate %s, lookup %s\n",
				p.Label, p.Trials, p.Warm, dur(p.SimulateNanos), dur(p.LookupNanos))
		}
	}
}

// diffRuns prints the A/B table of two runs' whole-run rollups: identities,
// trial counts, and the per-phase spans with B/A ratios — the shape a
// before/after performance comparison reads off directly.
func diffRuns(argA, argB, storeDir string, out io.Writer) error {
	load := func(arg string) (obs.Manifest, error) {
		path, err := resolveManifest(arg, storeDir)
		if err != nil {
			return obs.Manifest{}, err
		}
		return obs.ReadManifest(path)
	}
	a, err := load(argA)
	if err != nil {
		return err
	}
	b, err := load(argB)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "A = %s (%s), B = %s (%s)\n", a.RunID, a.Tool, b.RunID, b.Tool)
	if a.EngineTag != b.EngineTag {
		fmt.Fprintf(out, "engine differs: A %s, B %s\n", a.EngineTag, b.EngineTag)
	}
	fmt.Fprintf(out, "%-10s %14s %14s %8s\n", "", "A", "B", "B/A")
	row := func(name string, va, vb int64) {
		fmt.Fprintf(out, "%-10s %14s %14s %8s\n", name, dur(va), dur(vb), ratio(va, vb))
	}
	fmt.Fprintf(out, "%-10s %14s %14s\n", "trials",
		fmt.Sprintf("%d/%d", a.TrialsDone, a.TrialsPlanned),
		fmt.Sprintf("%d/%d", b.TrialsDone, b.TrialsPlanned))
	fmt.Fprintf(out, "%-10s %14d %14d\n", "warm", a.WarmHits, b.WarmHits)
	row("prepare", a.PrepareNanos, b.PrepareNanos)
	row("lookup", a.LookupNanos, b.LookupNanos)
	row("simulate", a.SimulateNanos, b.SimulateNanos)
	row("store", a.StoreNanos, b.StoreNanos)
	row("total", a.Total(), b.Total())
	row("wall", a.WallNanos, b.WallNanos)
	return nil
}

// dur renders a nanosecond count compactly (sub-millisecond noise rounded
// away above 1s).
func dur(n int64) string {
	d := time.Duration(n)
	if d >= time.Second {
		return d.Round(time.Millisecond).String()
	}
	return d.Round(time.Microsecond).String()
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// ratio renders B/A, or "-" when the baseline span is zero.
func ratio(a, b int64) string {
	if a == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(b)/float64(a))
}
