// calab manages experiment-lab result stores: the persistent,
// content-addressed trial caches that cabench/cascenario/figures/camem fill
// through their -store flag.
//
//	calab inspect -store DIR            # engine tags, entry counts, per-cell replication statistics
//	calab diff -a DIRA -b DIRB          # cross-run A/B: speedup per cell, CI-overlap significance
//	calab gc -store DIR [-all]          # drop entries from other engine versions (or everything)
//	calab export -store DIR [-csv F]    # long-form CSV of every trial entry
//	calab verify -store DIR             # integrity: content addresses and payload fingerprints
//	calab pack -store DIR               # convert loose objects/ entries into packed segments
//	calab index -store DIR              # rebuild the segment sidecar index by scanning segments
//	calab merge SRC... DST              # fold shard stores into DST (per-key dedup, one engine tag)
//	calab runs -store DIR               # list the run manifests under DIR/runs
//	calab runs -run ID -store DIR       # inspect one run's manifest (or -run PATH)
//	calab runs -a X -b Y [-store DIR]   # A/B two runs' timing rollups
//
// Entries are keyed by the engine tag (a digest of the golden files pinning
// the engine's output), so results from different engine versions never mix:
// inspect reports foreign-tag entries, gc collects them, and diff is the
// tool that deliberately compares across them.
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/obs"
)

// options is the parsed command line.
type options struct {
	cmd     string
	store   string // inspect, gc, export, verify; optional for runs; merge destination
	srcs    []string
	a, b    string // diff, runs
	all     bool   // gc
	csvPath string // export; empty writes to stdout
	runID   string // runs
	prof    obs.Profiler
}

// reportedError marks an error the flag package has already printed to
// stderr (with usage), so main must not print it a second time.
type reportedError struct{ err error }

func (e reportedError) Error() string { return e.err.Error() }
func (e reportedError) Unwrap() error { return e.err }

const usageText = "usage: calab <inspect|diff|gc|export|verify|pack|index|merge|runs> [flags]\n"

// parseArgs parses the subcommand and its flag set. Split out of main for
// testability.
func parseArgs(args []string, stderr io.Writer) (options, error) {
	if len(args) == 0 {
		fmt.Fprint(stderr, usageText)
		return options{}, reportedError{errors.New("missing subcommand")}
	}
	opt := options{cmd: args[0]}
	fs := flag.NewFlagSet("calab "+opt.cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeFlag := func() *string { return fs.String("store", "", "result store directory (required)") }
	var store, a, b, csvPath, runID *string
	var all *bool
	switch opt.cmd {
	case "inspect", "verify", "pack", "index":
		store = storeFlag()
	case "gc":
		store = storeFlag()
		all = fs.Bool("all", false, "remove every entry, not just foreign-engine ones")
	case "export":
		store = storeFlag()
		csvPath = fs.String("csv", "", "write CSV here instead of stdout")
	case "merge":
		// Positional: calab merge SRC... DST. Validated after fs.Parse.
	case "diff":
		a = fs.String("a", "", "baseline store directory (required)")
		b = fs.String("b", "", "candidate store directory (required)")
	case "runs":
		store = fs.String("store", "", "store directory whose runs/ manifests to list (or resolve ids in)")
		runID = fs.String("run", "", "inspect one run: a manifest path, or a run id with -store")
		a = fs.String("a", "", "A/B baseline: manifest path or run id (resolved in -store)")
		b = fs.String("b", "", "A/B candidate: manifest path or run id (resolved in -store)")
	case "-version", "--version", "version":
		return options{cmd: "version"}, nil
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stderr, usageText)
		return options{}, reportedError{flag.ErrHelp}
	default:
		fmt.Fprint(stderr, usageText)
		return options{}, reportedError{fmt.Errorf("unknown subcommand %q", opt.cmd)}
	}
	opt.prof.Register(fs)
	if err := fs.Parse(args[1:]); err != nil {
		return options{}, reportedError{err}
	}
	if opt.cmd == "merge" {
		args := fs.Args()
		if len(args) < 2 {
			return options{}, errors.New("merge: need at least one SRC and a DST (calab merge SRC... DST)")
		}
		opt.srcs, opt.store = args[:len(args)-1], args[len(args)-1]
	}
	if store != nil {
		if *store == "" && opt.cmd != "runs" {
			return options{}, fmt.Errorf("%s: -store is required", opt.cmd)
		}
		opt.store = *store
	}
	if a != nil {
		if opt.cmd == "runs" {
			if (*a == "") != (*b == "") {
				return options{}, errors.New("runs: -a and -b go together")
			}
		} else if *a == "" || *b == "" {
			return options{}, errors.New("diff: both -a and -b are required")
		}
		opt.a, opt.b = *a, *b
	}
	if runID != nil {
		opt.runID = *runID
		if opt.store == "" && opt.runID == "" && opt.a == "" {
			return options{}, errors.New("runs: one of -store, -run, or -a/-b is required")
		}
	}
	if all != nil {
		opt.all = *all
	}
	if csvPath != nil {
		opt.csvPath = *csvPath
	}
	return opt, nil
}

func main() {
	opt, err := parseArgs(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		var rep reportedError
		if !errors.As(err, &rep) {
			fmt.Fprintln(os.Stderr, "calab:", err)
		}
		os.Exit(2)
	}
	// Profiling (shared -cpuprofile/-memprofile/-exectrace flags) wraps the
	// command body; a profile-teardown failure only surfaces when the command
	// itself succeeded.
	if err := opt.prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "calab:", err)
		os.Exit(1)
	}
	err = run(opt, os.Stdout)
	if perr := opt.prof.Stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "calab:", err)
		os.Exit(1)
	}
}

// run dispatches a parsed command, writing its report to out.
func run(opt options, out io.Writer) error {
	switch opt.cmd {
	case "version":
		fmt.Fprintln(out, obs.VersionLine("calab", bench.EngineTag()))
		return nil
	case "runs":
		return runs(opt, out)
	case "inspect":
		return inspect(opt.store, out)
	case "verify":
		return verify(opt.store, out)
	case "gc":
		return gc(opt.store, opt.all, out)
	case "export":
		return export(opt.store, opt.csvPath, out)
	case "diff":
		return diff(opt.a, opt.b, out)
	case "pack":
		return pack(opt.store, out)
	case "index":
		return index(opt.store, out)
	case "merge":
		return merge(opt.srcs, opt.store, out)
	}
	return fmt.Errorf("unknown subcommand %q", opt.cmd)
}

// closing runs after a command body and surfaces the store Close error —
// which is where a packed store persists its sidecar index — unless the body
// already failed with something more specific.
func closing(st *lab.Store, err *error) {
	if cerr := st.Close(); cerr != nil && *err == nil {
		*err = cerr
	}
}

func inspect(dir string, out io.Writer) (err error) {
	st, err := lab.OpenExisting(dir)
	if err != nil {
		return err
	}
	defer closing(st, &err)
	// Spec entries suffice: counting, tag partitioning, and cell statistics
	// never need more of the result payload than the throughput.
	entries, err := st.SpecEntries()
	if err != nil {
		return err
	}
	var trials, scenarios, foreign int
	var current []lab.SpecEntry
	for _, e := range entries {
		if e.Tag != st.Tag() {
			foreign++
			continue
		}
		current = append(current, e)
		if e.Kind == lab.KindTrial {
			trials++
		} else {
			scenarios++
		}
	}
	fmt.Fprintf(out, "store %s (engine %s): %d trial + %d scenario entries",
		dir, st.Tag(), trials, scenarios)
	if foreign > 0 {
		fmt.Fprintf(out, ", %d foreign-engine (calab gc collects them)", foreign)
	}
	fmt.Fprintln(out)
	if len(current) > 0 {
		fmt.Fprint(out, lab.FormatCells(lab.Cells(current)))
	}
	return nil
}

func verify(dir string, out io.Writer) (err error) {
	st, err := lab.OpenExisting(dir)
	if err != nil {
		return err
	}
	defer closing(st, &err)
	sound, problems, err := st.Verify()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d sound entries, %d problems\n", sound, len(problems))
	for _, p := range problems {
		fmt.Fprintf(out, "  %s: %s\n", p.Path, p.Reason)
	}
	if len(problems) > 0 {
		return fmt.Errorf("%d corrupt entries (re-running the experiments repairs them)", len(problems))
	}
	return nil
}

func gc(dir string, all bool, out io.Writer) (err error) {
	st, err := lab.OpenExisting(dir)
	if err != nil {
		return err
	}
	defer closing(st, &err)
	removed, kept, err := st.GC(all)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "removed %d entries, kept %d\n", removed, kept)
	return nil
}

// pack converts every loose objects/ entry into packed segment records and
// removes the loose files, leaving a store whose warm lookups are one
// in-memory index probe plus one segment read.
func pack(dir string, out io.Writer) (err error) {
	st, err := lab.OpenExisting(dir)
	if err != nil {
		return err
	}
	defer closing(st, &err)
	packed, loose, err := st.Pack()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "packed %d loose entries; store now holds %d packed entries\n", loose, packed)
	return nil
}

// index rebuilds the sidecar index from the segment bytes themselves —
// recovery for a missing or stale segments/index.json.
func index(dir string, out io.Writer) (err error) {
	st, err := lab.OpenExisting(dir)
	if err != nil {
		return err
	}
	defer closing(st, &err)
	entries, segments, err := st.RebuildIndex()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "indexed %d entries across %d segments\n", entries, segments)
	return nil
}

// merge folds each SRC store into DST: per-key dedup (content-addressed
// entries cannot conflict), engine-tag mismatch refusal, packed and loose
// sources alike. Sources must already exist; the destination is created on
// demand, so merging shard stores into a fresh main store just works.
func merge(srcDirs []string, dstDir string, out io.Writer) (err error) {
	dst, err := lab.Open(dstDir)
	if err != nil {
		return err
	}
	defer closing(dst, &err)
	var srcs []*lab.Store
	for _, dir := range srcDirs {
		src, err := lab.OpenExisting(dir)
		if err != nil {
			return err
		}
		defer closing(src, &err)
		srcs = append(srcs, src)
	}
	stats, err := lab.Merge(dst, srcs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "merged %d entries from %d sources into %s (%d already present)\n",
		stats.Added, len(srcDirs), dstDir, stats.Skipped)
	return nil
}

func export(dir, csvPath string, out io.Writer) (err error) {
	st, err := lab.OpenExisting(dir)
	if err != nil {
		return err
	}
	defer closing(st, &err)
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	w := out
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	// encoding/csv quotes as needed: scenario names come from user JSON and
	// may contain commas.
	cw := csv.NewWriter(w)
	if err := cw.Write(strings.Split("kind,ds,scheme,threads,update_pct,scenario,key_range,ops,dist,seed,ops_per_mcyc,retries,live_nodes,tag,key", ",")); err != nil {
		return err
	}
	for _, e := range entries {
		var rec []string
		if e.Kind == lab.KindTrial {
			wl, res := e.Workload, e.Result
			rec = []string{
				e.Kind, wl.DS, wl.Scheme, itoa(wl.Threads), itoa(wl.UpdatePct), "",
				utoa(wl.KeyRange), itoa(wl.OpsPerThread), wl.Dist, utoa(wl.Seed),
				fmt.Sprintf("%.2f", res.Throughput), utoa(res.Retries), utoa(res.Mem.NodeLive()), e.Tag, e.Key,
			}
		} else {
			sw, res := e.Scenario, e.ScenarioResult
			rec = []string{
				e.Kind, sw.DS, sw.Scheme, itoa(sw.Threads), "", sw.Scenario.Name,
				utoa(sw.KeyRange), "", sw.Dist, utoa(sw.Seed),
				fmt.Sprintf("%.2f", res.Throughput), utoa(res.Retries), utoa(res.Mem.NodeLive()), e.Tag, e.Key,
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(n int) string    { return strconv.Itoa(n) }
func utoa(n uint64) string { return strconv.FormatUint(n, 10) }

func diff(dirA, dirB string, out io.Writer) error {
	cellsOf := func(dir string) (cells []lab.Cell, err error) {
		st, err := lab.OpenExisting(dir)
		if err != nil {
			return nil, err
		}
		defer closing(st, &err)
		return lab.SnapshotCells(st)
	}
	a, err := cellsOf(dirA)
	if err != nil {
		return err
	}
	b, err := cellsOf(dirB)
	if err != nil {
		return err
	}
	rows, onlyA, onlyB := lab.Diff(a, b)
	if len(rows) == 0 && len(onlyA) == 0 && len(onlyB) == 0 {
		return errors.New("both stores are empty")
	}
	fmt.Fprintf(out, "A = %s, B = %s; * marks disjoint 95%% CIs (significant), ~ within noise\n", dirA, dirB)
	fmt.Fprint(out, lab.FormatDiff(rows, onlyA, onlyB))
	var significant int
	for _, r := range rows {
		if r.Significant {
			significant++
		}
	}
	fmt.Fprintf(out, "%d aligned cells, %d significant differences\n", len(rows), significant)
	return nil
}
