package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
	"time"

	"condaccess/internal/obs"
)

func TestParseArgsRuns(t *testing.T) {
	cases := []struct {
		args []string
		ok   bool
	}{
		{[]string{"runs", "-store", "d"}, true},
		{[]string{"runs", "-run", "id", "-store", "d"}, true},
		{[]string{"runs", "-run", "some/path.json"}, true},
		{[]string{"runs", "-a", "x", "-b", "y"}, true},
		{[]string{"runs"}, false},            // nothing to do
		{[]string{"runs", "-a", "x"}, false}, // -a without -b
		{[]string{"runs", "-b", "y"}, false}, // -b without -a
	}
	for _, tc := range cases {
		opt, err := parseArgs(tc.args, io.Discard)
		if tc.ok && err != nil {
			t.Errorf("parseArgs(%v) = %v, want ok", tc.args, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseArgs(%v) accepted, want error", tc.args)
		}
		if tc.ok && opt.cmd != "runs" {
			t.Errorf("parseArgs(%v) cmd = %q", tc.args, opt.cmd)
		}
	}
}

func TestParseArgsVersion(t *testing.T) {
	for _, args := range [][]string{{"-version"}, {"--version"}, {"version"}} {
		opt, err := parseArgs(args, io.Discard)
		if err != nil || opt.cmd != "version" {
			t.Errorf("parseArgs(%v) = %+v, %v; want cmd version", args, opt, err)
		}
	}
	var out strings.Builder
	if err := run(options{cmd: "version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "calab ") || !strings.Contains(out.String(), "engine ") {
		t.Errorf("version output = %q", out.String())
	}
}

// fakeRun writes a manifest as an instrumented CLI would, returning its id.
func fakeRun(t *testing.T, storeDir, tool string, warm bool, simulate time.Duration) string {
	t.Helper()
	r := obs.New(obs.Config{Tool: tool, EngineTag: "e1", ManifestDir: obs.RunsDir(storeDir)})
	r.AddPoints([]string{"list/ca t=2 u=100"}, 1)
	w := r.Worker(0)
	t0 := w.Start(obs.PhaseSimulate)
	time.Sleep(simulate)
	w.End(obs.PhaseSimulate, t0)
	if warm {
		w.Warm()
	}
	w.Commit(0)
	if err := r.Close(nil); err != nil {
		t.Fatal(err)
	}
	return r.RunID()
}

// TestRunsListDeterministicOrder pins the listing order against a fixture
// directory of hand-written manifests: rows sort by start time, with a
// start-time tie broken by run id — never by the directory's filename
// enumeration, which here is arranged to disagree with both.
func TestRunsListDeterministicOrder(t *testing.T) {
	store := t.TempDir()
	dir := obs.RunsDir(store)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	mk := func(id string, start time.Time) {
		m := obs.Manifest{RunID: id, Tool: "cabench", Start: start}
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(obs.ManifestPath(dir, id), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Filename order (a-first, z-last) is the reverse of start order, and
	// the two tied runs' ids break their tie.
	mk("a-newest", base.Add(2*time.Hour))
	mk("m-tie-2", base.Add(time.Hour))
	mk("k-tie-1", base.Add(time.Hour))
	mk("z-oldest", base)

	render := func() string {
		var out strings.Builder
		if err := run(options{cmd: "runs", store: store}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got := render()
	var ids []string
	for i, line := range strings.Split(strings.TrimSpace(got), "\n") {
		if i == 0 {
			continue // header
		}
		ids = append(ids, strings.Fields(line)[0])
	}
	want := []string{"z-oldest", "k-tie-1", "m-tie-2", "a-newest"}
	if strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Fatalf("listing order = %v, want %v:\n%s", ids, want, got)
	}
	if again := render(); again != got {
		t.Error("two listings of the same fixture dir differ")
	}
}

func TestRunsEndToEnd(t *testing.T) {
	store := t.TempDir()
	idA := fakeRun(t, store, "cabench", false, 2*time.Millisecond)
	time.Sleep(5 * time.Millisecond) // distinct run ids and ordering
	idB := fakeRun(t, store, "cabench", true, 0)

	var list strings.Builder
	if err := run(options{cmd: "runs", store: store}, &list); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list.String(), idA) || !strings.Contains(list.String(), idB) {
		t.Errorf("list misses a run:\n%s", list.String())
	}
	if got := strings.Count(list.String(), "\n"); got != 3 { // header + two rows
		t.Errorf("list holds %d lines, want 3:\n%s", got, list.String())
	}

	// Inspect by id (resolved in the store) and by direct path.
	var byID, byPath strings.Builder
	if err := run(options{cmd: "runs", store: store, runID: idB}, &byID); err != nil {
		t.Fatal(err)
	}
	path := obs.ManifestPath(obs.RunsDir(store), idB)
	if err := run(options{cmd: "runs", runID: path}, &byPath); err != nil {
		t.Fatal(err)
	}
	if byID.String() != byPath.String() {
		t.Errorf("inspect by id and by path diverge:\n%s\nvs\n%s", byID.String(), byPath.String())
	}
	if !strings.Contains(byID.String(), "trials 1/1, 1 warm (100%)") {
		t.Errorf("inspect output:\n%s", byID.String())
	}
	if !strings.Contains(byID.String(), "simulate 0s") {
		t.Errorf("warm run's simulate span not zero:\n%s", byID.String())
	}

	var diffOut strings.Builder
	if err := run(options{cmd: "runs", store: store, a: idA, b: idB}, &diffOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A = " + idA, "B = " + idB, "simulate", "wall", "B/A"} {
		if !strings.Contains(diffOut.String(), want) {
			t.Errorf("diff output misses %q:\n%s", want, diffOut.String())
		}
	}

	// An id with no -store is unresolvable and must say so.
	if err := run(options{cmd: "runs", runID: "someid"}, io.Discard); err == nil || !strings.Contains(err.Error(), "-store") {
		t.Errorf("bare run id error = %v, want a -store hint", err)
	}

	// An empty archive is a report, not an error.
	var empty strings.Builder
	if err := run(options{cmd: "runs", store: t.TempDir()}, &empty); err == nil {
		t.Error("listing a store with no runs/ dir should fail (nothing recorded there)")
	} else if !strings.Contains(err.Error(), "runs") {
		t.Errorf("empty archive error = %v", err)
	}
}
