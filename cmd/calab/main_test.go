package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"condaccess/internal/bench"
	"condaccess/internal/lab"
	"condaccess/internal/scenario"
)

func TestParseArgsSubcommands(t *testing.T) {
	cases := []struct {
		args []string
		want options
	}{
		{[]string{"inspect", "-store", "d"}, options{cmd: "inspect", store: "d"}},
		{[]string{"verify", "-store", "d"}, options{cmd: "verify", store: "d"}},
		{[]string{"gc", "-store", "d", "-all"}, options{cmd: "gc", store: "d", all: true}},
		{[]string{"gc", "-store", "d"}, options{cmd: "gc", store: "d"}},
		{[]string{"export", "-store", "d", "-csv", "out.csv"}, options{cmd: "export", store: "d", csvPath: "out.csv"}},
		{[]string{"diff", "-a", "x", "-b", "y"}, options{cmd: "diff", a: "x", b: "y"}},
		{[]string{"pack", "-store", "d"}, options{cmd: "pack", store: "d"}},
		{[]string{"index", "-store", "d"}, options{cmd: "index", store: "d"}},
		{[]string{"merge", "s1", "dst"}, options{cmd: "merge", srcs: []string{"s1"}, store: "dst"}},
		{[]string{"merge", "s1", "s2", "dst"}, options{cmd: "merge", srcs: []string{"s1", "s2"}, store: "dst"}},
	}
	for _, tc := range cases {
		opt, err := parseArgs(tc.args, io.Discard)
		if err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		if !reflect.DeepEqual(opt, tc.want) {
			t.Errorf("%v: parsed %+v, want %+v", tc.args, opt, tc.want)
		}
	}
}

func TestParseArgsErrors(t *testing.T) {
	cases := [][]string{
		nil,                        // missing subcommand
		{"nosuchcmd"},              // unknown subcommand
		{"inspect"},                // missing -store
		{"gc"},                     // missing -store
		{"diff", "-a", "x"},        // missing -b
		{"diff", "-b", "y"},        // missing -a
		{"pack"},                   // missing -store
		{"index"},                  // missing -store
		{"merge"},                  // no stores at all
		{"merge", "onlydst"},       // no sources
		{"inspect", "-nosuchflag"}, // flag error
	}
	for _, args := range cases {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("%v: accepted, want error", args)
		}
	}
}

func TestParseArgsHelp(t *testing.T) {
	var buf strings.Builder
	_, err := parseArgs([]string{"help"}, &buf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("help returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(buf.String(), "usage: calab") {
		t.Error("help printed no usage")
	}
}

// TestReadCommandsRejectMissingStore: a typo'd -store path must be an
// error, not a freshly created empty store reporting zero entries.
func TestReadCommandsRejectMissingStore(t *testing.T) {
	missing := t.TempDir() + "/nosuchstore"
	for _, opt := range []options{
		{cmd: "inspect", store: missing},
		{cmd: "verify", store: missing},
		{cmd: "gc", store: missing},
		{cmd: "export", store: missing},
		{cmd: "diff", a: missing, b: missing},
		{cmd: "pack", store: missing},
		{cmd: "index", store: missing},
	} {
		if err := run(opt, io.Discard); err == nil {
			t.Errorf("%s: missing store accepted", opt.cmd)
		}
	}
}

// TestExportQuotesCommas: scenario names come from user JSON and may
// contain commas; export must emit parseable CSV regardless.
func TestExportQuotesCommas(t *testing.T) {
	dir := t.TempDir()
	st, err := lab.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Preset("read-burst")
	if err != nil {
		t.Fatal(err)
	}
	sc.Name = "spike, then drain"
	r := bench.Runner{Store: st}
	if _, err := r.RunScenario(bench.ScenarioWorkload{
		DS: "list", Scheme: "ca", Threads: 2, KeyRange: 32, Seed: 1, Scenario: sc,
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(options{cmd: "export", store: dir}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("export emitted unparseable CSV: %v\n%s", err, out.String())
	}
	if len(recs) != 2 || len(recs[1]) != len(recs[0]) {
		t.Fatalf("rows/columns off: %v", recs)
	}
	if recs[1][5] != "spike, then drain" {
		t.Fatalf("scenario column = %q, want the comma'd name intact", recs[1][5])
	}
}

// fillStore runs one tiny sweep into a fresh store at dir.
func fillStore(t *testing.T, dir string) {
	t.Helper()
	st, err := lab.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Sweep(bench.SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{100},
		KeyRange: 32, Ops: 50, Seed: 9, Trials: 2, Store: st,
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Close flushes the batched segment writes and persists the sidecar, the
	// same way the CLI fillers (cabench -store etc.) do on exit.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPackAndIndexEndToEnd: a loose store converts in place, the sidecar
// rebuilds from segment bytes alone, and the packed store keeps serving the
// same entries.
func TestPackAndIndexEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := lab.OpenLoose(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Sweep(bench.SweepConfig{
		DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{100},
		KeyRange: 32, Ops: 50, Seed: 9, Trials: 2, Store: st,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(options{cmd: "pack", store: dir}, &out); err != nil {
		t.Fatalf("pack: %v", err)
	}
	if !strings.Contains(out.String(), "packed 2 loose entries; store now holds 2 packed entries") {
		t.Errorf("pack output: %s", out.String())
	}

	// The sidecar index must be reconstructible from segment bytes alone.
	if err := os.Remove(filepath.Join(dir, "segments", "index.json")); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(options{cmd: "index", store: dir}, &out); err != nil {
		t.Fatalf("index: %v", err)
	}
	if !strings.Contains(out.String(), "indexed 2 entries across") {
		t.Errorf("index output: %s", out.String())
	}

	out.Reset()
	if err := run(options{cmd: "verify", store: dir}, &out); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out.String(), "2 sound entries, 0 problems") {
		t.Errorf("verify output after pack: %s", out.String())
	}
	out.Reset()
	if err := run(options{cmd: "inspect", store: dir}, &out); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !strings.Contains(out.String(), "2 trial + 0 scenario") {
		t.Errorf("inspect output after pack: %s", out.String())
	}
}

// TestMergeEndToEnd: two shard stores with an overlapping entry fold into a
// fresh destination; the merged store serves every entry, and a missing
// source is an error rather than a silently created empty store.
func TestMergeEndToEnd(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	fill := func(dir string, seed uint64) {
		st, err := lab.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bench.Sweep(bench.SweepConfig{
			DS: "list", Schemes: []string{"ca"}, Threads: []int{2}, Updates: []int{100},
			KeyRange: 32, Ops: 50, Seed: seed, Trials: 2, Store: st,
		}, nil); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	fill(dirA, 9)
	fill(dirB, 9)  // same grid: fully overlapping with dirA
	fill(dirB, 10) // plus two entries dirA lacks

	dst := filepath.Join(t.TempDir(), "main")
	var out strings.Builder
	if err := run(options{cmd: "merge", srcs: []string{dirA, dirB}, store: dst}, &out); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !strings.Contains(out.String(), "merged 4 entries from 2 sources into "+dst+" (2 already present)") {
		t.Errorf("merge output: %s", out.String())
	}

	out.Reset()
	if err := run(options{cmd: "inspect", store: dst}, &out); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !strings.Contains(out.String(), "4 trial + 0 scenario") {
		t.Errorf("merged store inspect: %s", out.String())
	}

	// Merge is idempotent: a second run copies nothing.
	out.Reset()
	if err := run(options{cmd: "merge", srcs: []string{dirA, dirB}, store: dst}, &out); err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	if !strings.Contains(out.String(), "merged 0 entries from 2 sources into "+dst+" (6 already present)") {
		t.Errorf("re-merge output: %s", out.String())
	}

	missing := filepath.Join(t.TempDir(), "nosuchstore")
	if err := run(options{cmd: "merge", srcs: []string{missing}, store: dst}, io.Discard); err == nil {
		t.Error("merge accepted a missing source store")
	}
}

// TestCommandsEndToEnd drives every subcommand against real stores.
func TestCommandsEndToEnd(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	fillStore(t, dirA)
	fillStore(t, dirB)

	var out strings.Builder
	if err := run(options{cmd: "inspect", store: dirA}, &out); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	for _, want := range []string{"2 trial + 0 scenario", "list/ca t=2 u=100"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run(options{cmd: "verify", store: dirA}, &out); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(out.String(), "2 sound entries, 0 problems") {
		t.Errorf("verify output: %s", out.String())
	}

	out.Reset()
	if err := run(options{cmd: "export", store: dirA}, &out); err != nil {
		t.Fatalf("export: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + 2 trials
		t.Fatalf("export rows = %d, want 3:\n%s", len(lines), out.String())
	}
	if !strings.HasPrefix(lines[0], "kind,ds,scheme,threads,update_pct") {
		t.Errorf("export header: %s", lines[0])
	}

	out.Reset()
	if err := run(options{cmd: "diff", a: dirA, b: dirB}, &out); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !strings.Contains(out.String(), "1 aligned cells, 0 significant differences") {
		t.Errorf("identical stores must align without significance:\n%s", out.String())
	}

	out.Reset()
	if err := run(options{cmd: "gc", store: dirA}, &out); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if !strings.Contains(out.String(), "removed 0 entries, kept 2") {
		t.Errorf("gc output: %s", out.String())
	}

	out.Reset()
	if err := run(options{cmd: "gc", store: dirA, all: true}, &out); err != nil {
		t.Fatalf("gc -all: %v", err)
	}
	if !strings.Contains(out.String(), "removed 2 entries, kept 0") {
		t.Errorf("gc -all output: %s", out.String())
	}
}
