module condaccess

go 1.24
