package condaccess

// One benchmark per table/figure of the paper's evaluation (Section V), at
// reduced scale so `go test -bench=.` finishes in minutes; cmd/figures runs
// the full-scale sweeps. Each benchmark iteration executes one complete
// simulated trial; the headline number is the custom metric simMops/Mcyc
// (simulated operations per million simulated cycles — the paper's
// throughput axis), not ns/op.

import (
	"fmt"
	"testing"

	"condaccess/internal/bench"
	"condaccess/internal/cache"
	"condaccess/internal/smr"
)

var figSchemes = []string{"none", "ca", "ibr", "rcu", "qsbr", "hp", "he"}

// benchFigure runs the scheme x threads x update-rate cross product for one
// structure as sub-benchmarks.
func benchFigure(b *testing.B, ds string, keyRange uint64) {
	for _, u := range []int{0, 100} {
		for _, threads := range []int{1, 8} {
			for _, scheme := range figSchemes {
				name := fmt.Sprintf("%s/u=%d/t=%d", scheme, u, threads)
				b.Run(name, func(b *testing.B) {
					var tp float64
					for i := 0; i < b.N; i++ {
						res, err := bench.Run(bench.Workload{
							DS: ds, Scheme: scheme,
							Threads: threads, KeyRange: keyRange, UpdatePct: u,
							OpsPerThread: 300, Buckets: 128,
							Seed: uint64(i) + 1,
						})
						if err != nil {
							b.Fatal(err)
						}
						tp = res.Throughput
					}
					b.ReportMetric(tp, "simops/Mcyc")
				})
			}
		}
	}
}

// BenchmarkFig1List is Figure 1 (top row): lazy list, 1K keys.
func BenchmarkFig1List(b *testing.B) { benchFigure(b, "list", 1000) }

// BenchmarkFig1BST is Figure 1 (bottom row): external BST, 10K keys.
func BenchmarkFig1BST(b *testing.B) { benchFigure(b, "bst", 10000) }

// BenchmarkFig2Hash is Figure 2 (top row): 128-bucket chaining hash table.
func BenchmarkFig2Hash(b *testing.B) { benchFigure(b, "hash", 1000) }

// BenchmarkFig2Stack is Figure 2 (bottom row): Treiber stack.
func BenchmarkFig2Stack(b *testing.B) { benchFigure(b, "stack", 1000) }

// BenchmarkQueue covers the M&S queue the paper implements but does not
// plot, with the same axes as Figure 2.
func BenchmarkQueue(b *testing.B) { benchFigure(b, "queue", 1000) }

// BenchmarkFig3Footprint is Figure 3: allocated-but-not-freed nodes on the
// lazy list under 100% updates at 16 threads. The reported metric is the
// final live-node count (the paper's Y axis); ca should sit at ~500, none
// far above, the batching schemes in between.
func BenchmarkFig3Footprint(b *testing.B) {
	for _, scheme := range figSchemes {
		b.Run(scheme, func(b *testing.B) {
			var live float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Workload{
					DS: "list", Scheme: scheme,
					Threads: 16, KeyRange: 1000, UpdatePct: 100,
					OpsPerThread: 1000, Seed: uint64(i) + 1,
					FootprintEvery: 1000,
				})
				if err != nil {
					b.Fatal(err)
				}
				live = float64(res.Mem.NodeLive())
			}
			b.ReportMetric(live, "liveNodes")
		})
	}
}

// BenchmarkAblationAssociativity is the Section III claim: tagSet capacity
// (L1 associativity) does not significantly affect Conditional Access.
func BenchmarkAblationAssociativity(b *testing.B) {
	for _, assoc := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("assoc=%d", assoc), func(b *testing.B) {
			p := cache.DefaultParams(8)
			p.L1Assoc = assoc
			var tp float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Workload{
					DS: "list", Scheme: "ca",
					Threads: 8, KeyRange: 1000, UpdatePct: 100,
					OpsPerThread: 500, Seed: uint64(i) + 1, Cache: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				tp = res.Throughput
			}
			b.ReportMetric(tp, "simops/Mcyc")
		})
	}
}

// BenchmarkAblationTuning is the paper's motivation: the baselines need
// their reclamation/epoch frequencies tuned; CA has no parameters.
func BenchmarkAblationTuning(b *testing.B) {
	type point struct {
		scheme  string
		reclaim int
		epoch   int
	}
	points := []point{
		{"rcu", 1, 10}, {"rcu", 30, 150}, {"rcu", 1000, 5000},
		{"ibr", 1, 10}, {"ibr", 30, 150}, {"ibr", 1000, 5000},
		{"ca", 0, 0},
	}
	for _, pt := range points {
		name := fmt.Sprintf("%s/r=%d_e=%d", pt.scheme, pt.reclaim, pt.epoch)
		b.Run(name, func(b *testing.B) {
			var tp, peak float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Workload{
					DS: "list", Scheme: pt.scheme,
					Threads: 8, KeyRange: 1000, UpdatePct: 100,
					OpsPerThread: 500, Seed: uint64(i) + 1,
					SMR: smr.Options{ReclaimEvery: pt.reclaim, EpochEvery: pt.epoch},
				})
				if err != nil {
					b.Fatal(err)
				}
				tp = res.Throughput
				peak = float64(res.Mem.PeakLive)
			}
			b.ReportMetric(tp, "simops/Mcyc")
			b.ReportMetric(peak, "peakNodes")
		})
	}
}

// BenchmarkExtHMList measures the Harris–Michael lock-free list — the
// paper's future-work extension implemented here — with the same axes as
// the figures.
func BenchmarkExtHMList(b *testing.B) { benchFigure(b, "hmlist", 1000) }

// BenchmarkExtSMT quantifies the paper's Section III SMT integration: 16
// hardware threads on dedicated cores versus 8 cores of 2-way SMT, where
// hyperthread sibling writes revoke sibling tags.
func BenchmarkExtSMT(b *testing.B) {
	for _, tpc := range []int{1, 2} {
		for _, scheme := range []string{"ca", "rcu"} {
			b.Run(fmt.Sprintf("%s/tpc=%d", scheme, tpc), func(b *testing.B) {
				p := cache.DefaultParams(16)
				p.ThreadsPerCore = tpc
				var tp float64
				for i := 0; i < b.N; i++ {
					res, err := bench.Run(bench.Workload{
						DS: "list", Scheme: scheme,
						Threads: 16, KeyRange: 1000, UpdatePct: 100,
						OpsPerThread: 400, Seed: uint64(i) + 1, Cache: p,
					})
					if err != nil {
						b.Fatal(err)
					}
					tp = res.Throughput
				}
				b.ReportMetric(tp, "simops/Mcyc")
			})
		}
	}
}

// BenchmarkExtZipf contrasts uniform and zipfian (theta .99) key skew on the
// hash table: skew concentrates contention on hot buckets, the regime where
// Conditional Access's early failure detection pays.
func BenchmarkExtZipf(b *testing.B) {
	for _, dist := range []string{"uniform", "zipf"} {
		for _, scheme := range []string{"ca", "rcu", "none"} {
			b.Run(fmt.Sprintf("%s/%s", scheme, dist), func(b *testing.B) {
				var tp float64
				for i := 0; i < b.N; i++ {
					res, err := bench.Run(bench.Workload{
						DS: "hash", Scheme: scheme,
						Threads: 16, KeyRange: 1000, UpdatePct: 100,
						OpsPerThread: 400, Seed: uint64(i) + 1, Dist: dist,
					})
					if err != nil {
						b.Fatal(err)
					}
					tp = res.Throughput
				}
				b.ReportMetric(tp, "simops/Mcyc")
			})
		}
	}
}

// BenchmarkExtTailLatency reports p99.9 operation latency for CA versus a
// large-batch epoch scheme — the paper's Section I tail-latency critique of
// batching, as a regression-checkable number.
func BenchmarkExtTailLatency(b *testing.B) {
	cfgs := []struct {
		name    string
		scheme  string
		reclaim int
	}{
		{"ca", "ca", 0},
		{"rcu_batch400", "rcu", 400},
		{"rcu_batch30", "rcu", 30},
	}
	for _, cfg := range cfgs {
		b.Run(cfg.name, func(b *testing.B) {
			var p999 float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Workload{
					DS: "list", Scheme: cfg.scheme,
					Threads: 8, KeyRange: 1000, UpdatePct: 100,
					OpsPerThread: 1500, Seed: uint64(i) + 1,
					SMR:           smr.Options{ReclaimEvery: cfg.reclaim},
					RecordLatency: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				p999 = float64(res.Latency.P999)
			}
			b.ReportMetric(p999, "p999cycles")
		})
	}
}
