// Package condaccess is a Go reproduction of "Efficient Hardware Primitives
// for Immediate Memory Reclamation in Optimistic Data Structures" (Singh,
// Brown, Spear; IPDPS 2023): the Conditional Access ISA extension, a
// deterministic multicore cache-coherence simulator to host it, six
// competing safe-memory-reclamation schemes, five concurrent data
// structures, and the benchmark harness that regenerates every figure of
// the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The root package holds
// only the figure benchmarks (bench_test.go); the implementation lives under
// internal/ — start at internal/core (the contribution) and internal/sim
// (the machine).
package condaccess
